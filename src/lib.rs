//! # narada — synthesizing racy tests
//!
//! A Rust reproduction of **“Synthesizing Racy Tests”** (Samak, Ramanathan,
//! Jagannathan — PLDI 2015, the *Narada* system): given a multithreaded
//! library and a *sequential* seed test-suite, fully automatically
//! synthesize *multithreaded* client tests whose execution manifests data
//! races inside the library.
//!
//! Because safe Rust's ownership rules statically prevent the very races
//! the technique hunts, everything runs over **MJ** — a small Java-like
//! object language with a shared heap, reference aliasing, and
//! monitor-style locking — executed by a steppable VM whose thread
//! interleavings are under scheduler control.
//!
//! This facade crate re-exports the whole system:
//!
//! * [`lang`] — MJ front end: lexer, parser, type checker, flat MIR;
//! * [`vm`] — steppable virtual machine, trace events, schedulers;
//! * [`core`] — the paper's pipeline: trace analysis (`H`/`A`/`D`),
//!   pair generation, context derivation (`Q` rules), test synthesis
//!   (Algorithm 1);
//! * [`screen`] — the static race pre-screener: a MIR-level lockset /
//!   escape analysis that prunes and ranks candidate pairs before any
//!   dynamic exploration (`--static-filter` / `--static-rank`);
//! * [`detect`] — Eraser lockset, FastTrack happens-before, and the
//!   RaceFuzzer-style confirmation scheduler with harmful/benign triage;
//! * [`contege`] — the ConTeGe-style random baseline;
//! * [`gen`] — feedback-directed sequential seed-test generation
//!   (Randoop-style, novelty-scored by the access analyzer), removing the
//!   need for hand-written seed suites (`narada gen`, `--generate-seeds`);
//! * [`corpus`] — MJ ports of the paper's nine benchmark classes;
//! * [`serve`] — the persistent detection service: a TCP daemon with a
//!   job queue and a digest-keyed artifact cache, returning verdicts
//!   byte-identical to the batch pipeline (`narada serve` / `submit` /
//!   `jobs` / `fetch`).
//!
//! ## Quickstart
//!
//! ```
//! use narada::{synthesize_source, SynthesisOptions};
//!
//! let (prog, _mir, out) = synthesize_source(r#"
//!     class Counter { int count; void inc() { this.count = this.count + 1; } }
//!     class Lib {
//!         Counter c;
//!         sync void update() { this.c.inc(); }
//!         sync void set(Counter x) { this.c = x; }
//!     }
//!     test seed {
//!         var r = new Counter();
//!         var p = new Lib();
//!         p.set(r);
//!         p.update();
//!     }
//! "#, &SynthesisOptions::default())?;
//!
//! println!("{} racing pairs, {} synthesized tests",
//!          out.pair_count(), out.test_count());
//! for test in &out.tests {
//!     println!("{}", test.plan.render(&prog));
//! }
//! # Ok::<(), narada::lang::Diagnostics>(())
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `narada-bench`
//! for the binaries regenerating every table and figure of the paper.

#![warn(missing_docs)]

pub use narada_contege as contege;
pub use narada_core as core;
pub use narada_corpus as corpus;
pub use narada_detect as detect;
pub use narada_difftest as difftest;
pub use narada_gen as gen;
pub use narada_lang as lang;
pub use narada_obs as obs;
pub use narada_screen as screen;
pub use narada_serve as serve;
pub use narada_vm as vm;

pub use narada_core::{
    execute_plan, parallel_map, synthesize, synthesize_generated, synthesize_observed,
    synthesize_source, synthesize_with, ScreenReason, StageTimings, StaticVerdict,
    SynthesisOptions, SynthesisOutput, TestPlan,
};
pub use narada_detect::{evaluate_suite, evaluate_suite_observed, evaluate_test, DetectConfig};
pub use narada_lang::compile;
pub use narada_obs::{Obs, RunManifest};
pub use narada_screen::screen_pairs;
