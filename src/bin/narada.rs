//! `narada` — command-line driver for the racy-test synthesis pipeline.
//!
//! ```text
//! narada run <file.mj> [--test NAME] [--trace]       run a sequential test
//! narada mir <file.mj> [--method Class.m]            dump lowered MIR
//! narada synth <file.mj> [--render] [flags]          synthesize racy tests
//! narada detect <file.mj> [--schedules N] [--confirms N] [--seed N]
//!                                                    synthesize + detect + confirm
//! narada corpus [C1..C9]                             run the pipeline on a corpus class
//! ```

use narada::detect::{evaluate_suite, DetectConfig};
use narada::lang::lower::lower_program;
use narada::lang::SourceMap;
use narada::vm::{Machine, TraceRenderer, VecSink};
use narada::{synthesize, SynthesisOptions};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "run" => cmd_run(rest),
        "mir" => cmd_mir(rest),
        "synth" => cmd_synth(rest),
        "detect" => cmd_detect(rest),
        "corpus" => cmd_corpus(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
narada — synthesizing racy tests (PLDI 2015 reproduction)

USAGE:
    narada run <file.mj> [--test NAME] [--trace]
    narada mir <file.mj> [--method Class.m]
    narada synth <file.mj> [--render] [--strict-unprotected]
                           [--no-prefix-fallback] [--no-lockset-aware]
                           [--threads N] [--timings]
    narada detect <file.mj> [--schedules N] [--confirms N] [--seed N]
                            [--threads N] [--timings]
    narada corpus [C1..C9] [--threads N] [--timings]

`--threads N` shards the pipeline and detector trials over N workers
(0 or omitted = one per core); results are identical at any value.
`--timings` prints the per-stage wall-clock breakdown.";

fn flag(rest: &[String], name: &str) -> bool {
    rest.iter().any(|a| a == name)
}

fn opt<'a>(rest: &'a [String], name: &str) -> Option<&'a str> {
    rest.iter()
        .position(|a| a == name)
        .and_then(|i| rest.get(i + 1))
        .map(String::as_str)
}

fn opt_usize(rest: &[String], name: &str, default: usize) -> Result<usize, String> {
    match opt(rest, name) {
        None if flag(rest, name) => Err(format!("{name} expects a number")),
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("{name} expects a number, got `{v}`")),
    }
}

fn load(rest: &[String]) -> Result<(String, narada::lang::hir::Program), String> {
    let path = rest
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| format!("expected an .mj file\n{USAGE}"))?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let prog = narada::compile(&src).map_err(|d| {
        let map = SourceMap::new(&src);
        format!("{path}: compilation failed\n{}", d.render(&map))
    })?;
    Ok((src, prog))
}

fn cmd_run(rest: &[String]) -> Result<(), String> {
    let (_src, prog) = load(rest)?;
    let mir = lower_program(&prog);
    let trace = flag(rest, "--trace");
    let tests: Vec<_> = match opt(rest, "--test") {
        Some(name) => vec![prog
            .test_by_name(name)
            .ok_or_else(|| format!("no test named `{name}`"))?],
        None => prog.tests.iter().map(|t| t.id).collect(),
    };
    if tests.is_empty() {
        return Err("the program declares no tests".into());
    }
    let mut machine = Machine::with_defaults(&prog, &mir);
    for t in tests {
        let mut sink = VecSink::new();
        let name = prog.test(t).name.clone();
        match machine.run_test(t, &mut sink) {
            Ok(()) => println!("test {name}: ok ({} events)", sink.events.len()),
            Err(e) => println!("test {name}: FAILED — {e}"),
        }
        if trace {
            let mut renderer = TraceRenderer::new(&prog, &mir);
            println!("{}", renderer.render_all(&sink.events));
        }
    }
    Ok(())
}

fn cmd_mir(rest: &[String]) -> Result<(), String> {
    let (_src, prog) = load(rest)?;
    let mir = lower_program(&prog);
    match opt(rest, "--method") {
        Some(qname) => {
            let m = prog
                .methods
                .iter()
                .find(|m| prog.qualified_name(m.id) == qname)
                .ok_or_else(|| format!("no method `{qname}`"))?;
            print!("{}", mir.method(m.id).dump());
        }
        None => {
            for m in &prog.methods {
                println!("// {}", prog.qualified_name(m.id));
                print!("{}", mir.method(m.id).dump());
                println!();
            }
            for t in &prog.tests {
                println!("// test {}", t.name);
                print!("{}", mir.test(t.id).dump());
                println!();
            }
        }
    }
    Ok(())
}

fn synth_opts(rest: &[String]) -> Result<SynthesisOptions, String> {
    Ok(SynthesisOptions {
        strict_unprotected: flag(rest, "--strict-unprotected"),
        prefix_fallback: !flag(rest, "--no-prefix-fallback"),
        lockset_aware: !flag(rest, "--no-lockset-aware"),
        threads: opt_usize(rest, "--threads", 0)?,
        ..Default::default()
    })
}

fn cmd_synth(rest: &[String]) -> Result<(), String> {
    let (_src, prog) = load(rest)?;
    let mir = lower_program(&prog);
    let out = synthesize(&prog, &mir, &synth_opts(rest)?);
    println!(
        "{} racing pairs, {} synthesized tests ({} race-expecting) in {:?}",
        out.pair_count(),
        out.test_count(),
        out.tests.iter().filter(|t| t.plan.expects_race).count(),
        out.elapsed
    );
    if flag(rest, "--timings") {
        print!("{}", out.timings.render());
    }
    for (name, err) in &out.seed_failures {
        println!("warning: seed `{name}` failed: {err}");
    }
    if flag(rest, "--render") {
        for t in &out.tests {
            println!("\n=== test #{} ===", t.index);
            print!("{}", t.plan.render(&prog));
        }
    }
    Ok(())
}

fn cmd_detect(rest: &[String]) -> Result<(), String> {
    let (_src, prog) = load(rest)?;
    let mir = lower_program(&prog);
    let mut out = synthesize(&prog, &mir, &synth_opts(rest)?);
    let cfg = DetectConfig {
        schedule_trials: opt_usize(rest, "--schedules", 6)?,
        confirm_trials: opt_usize(rest, "--confirms", 4)?,
        seed: opt_usize(rest, "--seed", 42)? as u64,
        budget: 2_000_000,
        threads: opt_usize(rest, "--threads", 0)?,
    };
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
    let plans: Vec<_> = out.tests.iter().map(|t| &t.plan).collect();
    let agg = evaluate_suite(&prog, &mir, &seeds, &plans, &cfg);
    println!(
        "{} tests: {} races detected, {} reproduced ({} harmful, {} benign), {} unreproduced",
        plans.len(),
        agg.races_detected,
        agg.harmful + agg.benign,
        agg.harmful,
        agg.benign,
        agg.unreproduced
    );
    if flag(rest, "--timings") {
        out.timings.record_detect(agg.elapsed, agg.jobs);
        print!("{}", out.timings.render());
    }
    Ok(())
}

fn cmd_corpus(rest: &[String]) -> Result<(), String> {
    let entries = match rest.first().filter(|a| !a.starts_with("--")) {
        Some(id) => vec![narada::corpus::by_id(id)
            .ok_or_else(|| format!("unknown corpus id `{id}` (C1..C9)"))?],
        None => narada::corpus::all(),
    };
    let opts = SynthesisOptions {
        threads: opt_usize(rest, "--threads", 0)?,
        ..SynthesisOptions::default()
    };
    for e in entries {
        let prog = e.compile().map_err(|d| format!("{}: {d}", e.id))?;
        let mir = lower_program(&prog);
        let out = synthesize(&prog, &mir, &opts);
        println!(
            "{} {} ({}): {} pairs, {} tests [paper: {} pairs, {} tests]",
            e.id,
            e.class_name,
            e.benchmark,
            out.pair_count(),
            out.test_count(),
            e.paper.race_pairs,
            e.paper.tests
        );
        if flag(rest, "--timings") {
            print!("{}", out.timings.render());
        }
    }
    Ok(())
}
