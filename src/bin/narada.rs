//! `narada` — command-line driver for the racy-test synthesis pipeline.
//!
//! ```text
//! narada run <file.mj> [--test NAME] [--trace]       run a sequential test
//! narada mir <file.mj> [--method Class.m]            dump lowered MIR
//! narada synth <file.mj> [--render] [flags]          synthesize racy tests
//! narada detect <file.mj> [--schedules N] [--confirms N] [--seed N]
//!                                                    synthesize + detect + confirm
//! narada gen <file.mj|C1..C9> [--budget N] [--seed N] [--threads N]
//!                                                    generate a sequential seed suite
//! narada pairs <file.mj|C1..C9> [--json]             dump candidate pairs + static verdicts
//! narada corpus [C1..C9]                             run the pipeline on a corpus class
//! narada difftest [--seed N] [--count N] [--shrink]  differential generator sweep
//! narada report <m.json..> [--diff a.json b.json]    render or diff run manifests
//! narada report <m.json..> --trend [--tolerance P]   perf-regression gate (exit 4)
//! narada top [--addr A] [--once]                     live daemon dashboard
//! ```

use narada::core::{demonstrate_observed, ExploreOptions, SynthesisOutput};
use narada::detect::{
    evaluate_suite_observed, evaluate_test_indexed, replay_schedule, DetectConfig, ExploreMode,
    StaticRaceKey,
};
use narada::lang::hir::Program;
use narada::lang::lower::lower_program;
use narada::lang::mir::MirProgram;
use narada::lang::SourceMap;
use narada::obs::Json;
use narada::vm::{
    render_schedule_summary, Engine, Machine, MachineOptions, Schedule, ScheduleStrategy,
    TraceRenderer, VecSink,
};
use narada::{synthesize, Obs, RunManifest, SynthesisOptions};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "run" => cmd_run(rest),
        "mir" => cmd_mir(rest),
        "synth" => cmd_synth(rest),
        "detect" => cmd_detect(rest),
        "gen" => cmd_gen(rest),
        "pairs" => cmd_pairs(rest),
        "corpus" => cmd_corpus(rest),
        // difftest owns its exit code (3 = disagreement found), so it
        // bypasses the Ok/Err mapping below; report likewise owns exit 4
        // (trend tolerance breach — the CI regression gate).
        "difftest" => return cmd_difftest(rest),
        "report" => return cmd_report(rest),
        "serve" => cmd_serve(rest),
        "top" => cmd_top(rest),
        "submit" => cmd_submit(rest),
        "jobs" => cmd_jobs(rest),
        "fetch" => cmd_fetch(rest),
        "shutdown" => cmd_shutdown(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
narada — synthesizing racy tests (PLDI 2015 reproduction)

USAGE:
    narada run <file.mj|C1..C9> [--test NAME] [--trace] [--engine E]
    narada mir <file.mj|C1..C9> [--method Class.m]
    narada synth <file.mj|C1..C9> [--render] [--strict-unprotected]
                           [--no-prefix-fallback] [--no-lockset-aware]
                           [--static-filter] [--static-rank]
                           [--threads N] [--timings] [--engine E]
                           [--strategy S] [--depth N]
                           [--record DIR] [--replay FILE.sched]
                           [--trace-out FILE.jsonl] [--manifest FILE.json]
    narada detect <file.mj|C1..C9> [--schedules N] [--confirms N] [--seed N]
                            [--static-filter] [--static-rank]
                            [--report-out FILE]
                            [--threads N] [--timings] [--engine E]
                            [--strategy S] [--depth N] [--explore M]
                            [--record DIR] [--replay FILE.sched]
                            [--trace-out FILE.jsonl] [--manifest FILE.json]
    narada gen <file.mj|C1..C9> [--budget N] [--seed N] [--threads N]
                                [--max-len N] [--full-api] [--engine E]
                                [--trace-out FILE.jsonl] [--manifest FILE.json]
    narada pairs <file.mj|C1..C9> [--may-race-only] [--threads N] [--json]
    narada corpus [C1..C9] [--threads N] [--timings] [--detect]
                           [--schedules N] [--confirms N] [--seed N]
                           [--static-filter] [--static-rank] [--engine E]
                           [--strategy S] [--depth N] [--explore M]
                           [--record DIR]
                           [--trace-out FILE.jsonl] [--manifest FILE.json]
    narada difftest [--seed N] [--count N] [--threads N] [--shrink]
                    [--fixtures DIR] [--schedules N] [--confirms N]
                    [--inject-unsound] [--verbose] [--engine E]
                    [--explore M]
                    [--trace-out FILE.jsonl] [--manifest FILE.json]
    narada report <manifest.json>... [--diff OLD.json NEW.json]
                  [--trend [--tolerance PCT] [--wall-tolerance PCT]]
    narada serve [--addr HOST:PORT] [--threads N] [--state-dir DIR]
                 [--port-file FILE] [--cache-capacity N]
                 [--slow-job-ms N] [--event-log-max-bytes N]
    narada top [--addr HOST:PORT] [--once] [--interval MS] [--count N]
    narada submit <file.mj|C1..C9> [--addr HOST:PORT] [detect flags]
    narada jobs [--addr HOST:PORT] [--stats]
    narada fetch <JOB> [--addr HOST:PORT] [--wait] [--out FILE] [--quiet]
    narada shutdown [--addr HOST:PORT]

`--engine E` picks the execution engine: tree (the reference
tree-walking interpreter, default) or bytecode (compiled dispatch,
several times faster). Both produce byte-identical traces, schedules,
and reports — the differential suite enforces it — so every command
accepts either engine with identical output.
`--strategy S` picks the exploration scheduler: pct[:DEPTH], random,
sticky[:PERCENT], or rr; `--depth N` overrides the PCT depth.
`--explore M` picks the trial explorer: rerun (re-execute each trial
from main(), default) or fork (run the shared prefix once per test,
snapshot the machine at the fork point with copy-on-write heap marks,
and probe divergent suffixes from restored forks). Both modes produce
byte-identical verdicts, schedules, reports, and manifests — modulo
the fork-only `explore.*` counters — and the fork-vs-rerun
differential suite enforces it; fork mode just skips re-executing the
prefix, which `explore.prefix_steps_saved` quantifies.
`--record DIR` writes replayable .sched logs: synth records one
demonstration run per race-expecting test, detect/corpus record the
ddmin-minimized schedule of every confirmed race as a fixture.
`--replay FILE.sched` re-executes a recorded schedule against the
re-synthesized suite and verifies it (target race, trace digest).
`--threads N` shards the pipeline and detector trials over N workers
(0 or omitted = one per core); results are identical at any value.
`--timings` prints the per-stage wall-clock breakdown.
`--static-filter` drops pairs the static pre-screener proves cannot
race; `--static-rank` orders the survivors most-suspicious-first.
`narada pairs` prints every candidate pair with both access sites,
their lock state, and the screener's verdict; `--json` emits the same
data machine-readably.
`narada gen` emits a feedback-directed generated seed suite (library +
`gen_*` tests) to stdout as printable MJ; output is byte-identical at
any `--threads` value. `--full-api` generates over the liberal
HIR-derived surface instead of the bindings observed from the
program's own tests. `synth`/`detect`/`corpus` accept
`--generate-seeds` (plus the same `--budget`/`--max-len`/`--gen-seed`
knobs) to replace the hand-written seed suite with a generated one
before synthesis.
`narada difftest` sweeps `--count` generated library classes through
both the static screener and the dynamic pipeline, treating them as
each other's oracle. A `MustNotRace` verdict on a dynamically
confirmed race is a soundness disagreement: the sweep prints it,
optionally ddmin-shrinks the class (`--shrink`, fixtures under
`--fixtures DIR`), and exits with code 3. The sweep digest is
byte-identical at any `--threads` value. `--inject-unsound`
deliberately mis-discharges one pair per class — a self test for the
disagreement path.
`--trace-out FILE` records hierarchical timing spans for every
pipeline stage as JSON Lines; `--manifest FILE` writes a run manifest
(environment, config, stage timings, and every metric — the metric
section is byte-identical at any --threads value). `narada report`
renders manifests; with `--diff` it compares two stage by stage and
metric by metric. `--trend` is the CI regression gate: manifests are
grouped by name (first = baseline, last = current), deterministic
counters gate at `--tolerance` percent (default 0), wall-derived
metrics (`*_ns`, `*_ms`, `*_per_sec`, `*_pct`, timings) stay
informational unless `--wall-tolerance` is given; any breach exits
with code 4.
`narada serve` keeps a detection daemon resident: clients `submit`
jobs (library source + the usual detect knobs), a worker pool runs the
full pipeline, and a digest-keyed artifact cache makes resubmission of
an unchanged or lightly-edited library incremental. `fetch --wait`
streams manifest-backed progress events, then the canonical
narada-report/1 document — byte-identical to what
`narada detect --report-out` writes for the same source and options.
`shutdown` drains the queue before stopping; every finished job's
report was already flushed to `--state-dir` at completion time.
`detect --report-out FILE` writes the batch twin of the served report.
`narada top` is the live daemon view: a refreshing dashboard fed by
the server's `watch` stream (queue depth, cold/warm and per-stage
latency quantiles, cache occupancy, worker heartbeats, slow-job
flags); `--once` prints a single `health` frame as JSON instead. The
serve-side knobs: `--slow-job-ms` sets the watchdog's wall budget
before a running job is flagged slow, `--event-log-max-bytes` bounds
each structured JSONL event-log segment under `--state-dir` (the log
rotates, never splitting a line).";

fn flag(rest: &[String], name: &str) -> bool {
    rest.iter().any(|a| a == name)
}

fn opt<'a>(rest: &'a [String], name: &str) -> Option<&'a str> {
    rest.iter()
        .position(|a| a == name)
        .and_then(|i| rest.get(i + 1))
        .map(String::as_str)
}

/// Parses the shared `--engine` flag (`tree` by default).
fn engine_opt(rest: &[String]) -> Result<Engine, String> {
    match opt(rest, "--engine") {
        None if flag(rest, "--engine") => Err("--engine expects 'tree' or 'bytecode'".into()),
        None => Ok(Engine::TreeWalk),
        Some(s) => Engine::parse(s),
    }
}

/// Parses the shared `--explore` flag (`rerun` by default).
fn explore_opt(rest: &[String]) -> Result<ExploreMode, String> {
    match opt(rest, "--explore") {
        None if flag(rest, "--explore") => Err("--explore expects 'rerun' or 'fork'".into()),
        None => Ok(ExploreMode::Rerun),
        Some(s) => ExploreMode::parse(s)
            .ok_or_else(|| format!("--explore expects 'rerun' or 'fork', got `{s}`")),
    }
}

fn opt_usize(rest: &[String], name: &str, default: usize) -> Result<usize, String> {
    match opt(rest, name) {
        None if flag(rest, name) => Err(format!("{name} expects a number")),
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("{name} expects a number, got `{v}`")),
    }
}

fn load(rest: &[String]) -> Result<(String, narada::lang::hir::Program), String> {
    let path = rest
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| format!("expected an .mj file or corpus id\n{USAGE}"))?;
    let src = match narada::corpus::by_id(path) {
        Some(entry) => entry.source.to_string(),
        None => std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?,
    };
    let prog = narada::compile(&src).map_err(|d| {
        let map = SourceMap::new(&src);
        format!("{path}: compilation failed\n{}", d.render(&map))
    })?;
    Ok((src, prog))
}

fn cmd_run(rest: &[String]) -> Result<(), String> {
    let (_src, prog) = load(rest)?;
    let mir = lower_program(&prog);
    let trace = flag(rest, "--trace");
    let tests: Vec<_> = match opt(rest, "--test") {
        Some(name) => vec![prog
            .test_by_name(name)
            .ok_or_else(|| format!("no test named `{name}`"))?],
        None => prog.tests.iter().map(|t| t.id).collect(),
    };
    if tests.is_empty() {
        return Err("the program declares no tests".into());
    }
    let mut machine = Machine::new(
        &prog,
        &mir,
        MachineOptions {
            engine: engine_opt(rest)?,
            ..MachineOptions::default()
        },
    );
    for t in tests {
        let mut sink = VecSink::new();
        let name = prog.test(t).name.clone();
        match machine.run_test(t, &mut sink) {
            Ok(()) => println!("test {name}: ok ({} events)", sink.events.len()),
            Err(e) => println!("test {name}: FAILED — {e}"),
        }
        if trace {
            let mut renderer = TraceRenderer::new(&prog, &mir);
            println!("{}", renderer.render_all(&sink.events));
        }
    }
    Ok(())
}

fn cmd_mir(rest: &[String]) -> Result<(), String> {
    let (_src, prog) = load(rest)?;
    let mir = lower_program(&prog);
    match opt(rest, "--method") {
        Some(qname) => {
            let m = prog
                .methods
                .iter()
                .find(|m| prog.qualified_name(m.id) == qname)
                .ok_or_else(|| format!("no method `{qname}`"))?;
            print!("{}", mir.method(m.id).dump());
        }
        None => {
            for m in &prog.methods {
                println!("// {}", prog.qualified_name(m.id));
                print!("{}", mir.method(m.id).dump());
                println!();
            }
            for t in &prog.tests {
                println!("// test {}", t.name);
                print!("{}", mir.test(t.id).dump());
                println!();
            }
        }
    }
    Ok(())
}

fn synth_opts(rest: &[String]) -> Result<SynthesisOptions, String> {
    Ok(SynthesisOptions {
        strict_unprotected: flag(rest, "--strict-unprotected"),
        prefix_fallback: !flag(rest, "--no-prefix-fallback"),
        lockset_aware: !flag(rest, "--no-lockset-aware"),
        static_filter: flag(rest, "--static-filter"),
        static_rank: flag(rest, "--static-rank"),
        threads: opt_usize(rest, "--threads", 0)?,
        engine: engine_opt(rest)?,
        ..Default::default()
    })
}

/// Builds the run's telemetry bundle; spans are recorded only when
/// `--trace-out` asks for them (inert guards otherwise).
fn obs_for(rest: &[String]) -> Obs {
    if opt(rest, "--trace-out").is_some() {
        Obs::with_tracing()
    } else {
        Obs::new()
    }
}

/// Writes the `--trace-out` / `--manifest` artifacts of one invocation.
fn write_telemetry(
    rest: &[String],
    obs: &Obs,
    name: &str,
    threads: usize,
    config: &[(&str, String)],
) -> Result<(), String> {
    if let Some(path) = opt(rest, "--trace-out") {
        std::fs::write(path, obs.tracer.to_jsonl())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {} span(s) to {path}", obs.tracer.finished().len());
    }
    if let Some(path) = opt(rest, "--manifest") {
        let mut m = RunManifest::from_obs(name, threads as u64, obs);
        for (k, v) in config {
            m.set_config(k, v);
        }
        std::fs::write(path, m.to_pretty()).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote manifest to {path}");
    }
    Ok(())
}

/// Parses the generation knobs shared by `narada gen` and
/// `--generate-seeds`. The generation seed flag differs per command:
/// `gen` owns `--seed`, but `detect`/`corpus` already use `--seed` for
/// the detector, so there the generator reads `--gen-seed`.
fn gen_opts(rest: &[String], seed_flag: &str) -> Result<narada::gen::GenOptions, String> {
    Ok(narada::gen::GenOptions {
        budget: opt_usize(rest, "--budget", 512)?,
        seed: opt_usize(rest, seed_flag, 0x67656e)? as u64,
        threads: opt_usize(rest, "--threads", 0)?,
        max_len: opt_usize(rest, "--max-len", 10)?,
        engine: engine_opt(rest)?,
        ..narada::gen::GenOptions::default()
    })
}

/// Synthesizes with the static pre-screener plugged in; the pipeline only
/// invokes it when `--static-filter` / `--static-rank` are set. Under
/// `--generate-seeds` the program's hand-written suite is replaced by a
/// generated one first; the returned program/MIR are the ones synthesis
/// actually ran on, so replay, recording, and detection downstream all
/// operate on the generated suite.
fn run_synthesis(
    prog: &Program,
    mir: &MirProgram,
    rest: &[String],
    obs: &Obs,
) -> Result<(Program, MirProgram, SynthesisOutput), String> {
    let mut opts = synth_opts(rest)?;
    opts.generate_seeds = flag(rest, "--generate-seeds");
    let (prog, mir, out) = if opts.generate_seeds {
        let gopts = gen_opts(rest, "--gen-seed")?;
        let generator = |p: &Program, m: &MirProgram| {
            let out = narada::gen::generate_suite(p, m, &gopts, obs);
            println!(
                "generated {} seed test(s) from {} candidate(s)",
                out.tests.len(),
                out.stats.candidates
            );
            out.tests
        };
        narada::synthesize_generated(
            prog,
            mir,
            &opts,
            &generator,
            Some(&narada::screen_pairs),
            obs,
        )
    } else {
        let out = narada::synthesize_observed(prog, mir, &opts, Some(&narada::screen_pairs), obs);
        (prog.clone(), mir.clone(), out)
    };
    if opts.static_filter || opts.static_rank {
        println!(
            "static screener: {} of {} pairs pruned{}",
            out.timings.pairs_pruned,
            out.pairs.pairs.len(),
            if opts.static_rank {
                ", survivors ranked by score"
            } else {
                ""
            }
        );
    }
    Ok((prog, mir, out))
}

/// Parses the shared exploration flags: `--strategy` and `--depth`.
fn strategy_opts(rest: &[String]) -> Result<ScheduleStrategy, String> {
    let mut strategy = match opt(rest, "--strategy") {
        Some(s) => ScheduleStrategy::parse(s)?,
        None => ScheduleStrategy::default(),
    };
    if let Some(d) = opt(rest, "--depth") {
        let depth: usize = d
            .parse()
            .map_err(|_| format!("--depth expects a number, got `{d}`"))?;
        strategy = strategy.with_depth(depth);
    }
    Ok(strategy)
}

/// Replays a recorded `.sched` log against a (re-)synthesized suite and
/// verifies everything its metadata claims: the plan identity, the target
/// race, and the trace digest.
fn replay_file(
    prog: &Program,
    mir: &MirProgram,
    out: &SynthesisOutput,
    path: &str,
    budget: u64,
    engine: Engine,
) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let schedule = Schedule::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    println!("{}", render_schedule_summary(&schedule));
    let index: usize = schedule
        .meta_get("plan-index")
        .ok_or_else(|| format!("{path}: no `plan-index` metadata"))?
        .parse()
        .map_err(|_| format!("{path}: bad `plan-index`"))?;
    let test = out.tests.get(index).ok_or_else(|| {
        format!(
            "{path}: plan-index {index} out of range (suite has {})",
            out.tests.len()
        )
    })?;
    if let Some(key) = schedule.meta_get("plan") {
        if key != test.plan.dedup_key() {
            return Err(format!(
                "{path}: plan {index} drifted — recorded `{key}`, synthesized `{}`",
                test.plan.dedup_key()
            ));
        }
    }
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
    let outcome = replay_schedule(prog, mir, &seeds, &test.plan, budget, &schedule, engine)?;
    println!(
        "replayed plan {index}: {} race key(s), {} divergence(s), trace digest {:#018x}",
        outcome.keys.len(),
        outcome.divergences,
        outcome.trace_digest
    );
    if outcome.divergences > 0 {
        return Err(format!("{path}: replay diverged from the recording"));
    }
    if let Some(target) = schedule.meta_get("target") {
        let key = StaticRaceKey::parse_meta(target).map_err(|e| format!("{path}: {e}"))?;
        if !outcome.manifests(&key) {
            return Err(format!("{path}: target race {key} did not manifest"));
        }
        println!("target race {key} manifested");
    }
    if let Some(digest) = schedule.meta_get("trace-digest") {
        let want = u64::from_str_radix(digest.trim_start_matches("0x"), 16)
            .map_err(|e| format!("{path}: bad trace-digest: {e}"))?;
        if outcome.trace_digest != want {
            return Err(format!(
                "{path}: trace digest mismatch — recorded {digest}, replayed {:#018x}",
                outcome.trace_digest
            ));
        }
        println!("trace digest matches the recording");
    }
    Ok(())
}

/// Runs the detection + confirmation protocol per plan and writes one
/// ddmin-minimized `.sched` fixture per confirmed race into `dir`.
fn record_fixtures(
    prog: &Program,
    mir: &MirProgram,
    out: &SynthesisOutput,
    cfg: &DetectConfig,
    dir: &Path,
    label: &str,
) -> Result<usize, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
    let cfg = DetectConfig {
        minimize: true,
        ..cfg.clone()
    };
    let mut written = 0usize;
    for test in &out.tests {
        let mut report =
            evaluate_test_indexed(prog, mir, &seeds, &test.plan, &cfg, test.index as u64);
        // Stamp the static pre-screener's verdict onto each confirmed race
        // (the detectors cannot: only the synthesis output knows which pair
        // a plan was derived from).
        for (_, confirmed) in &mut report.reproduced {
            confirmed.static_verdict =
                out.static_verdict_for(test.index, confirmed.key.span_a, confirmed.key.span_b);
        }
        for (_, confirmed) in &report.reproduced {
            let Some(schedule) = &confirmed.schedule else {
                continue;
            };
            let mut schedule = schedule.clone();
            schedule.set_meta("class", label);
            schedule.set_meta("plan-index", test.index.to_string());
            schedule.set_meta("plan", test.plan.dedup_key());
            schedule.set_meta("target", confirmed.key.to_meta());
            schedule.set_meta(
                "verdict",
                if confirmed.benign {
                    "benign"
                } else {
                    "harmful"
                },
            );
            schedule.set_meta("sched-seed", format!("{:#x}", confirmed.sched_seed));
            schedule.set_meta("strategy", cfg.strategy.label());
            // Provenance only — replay verifies byte-identity on *both*
            // engines regardless of which one recorded the fixture.
            schedule.set_meta("engine", cfg.engine.label());
            if let Some(v) = &confirmed.static_verdict {
                schedule.set_meta("static-verdict", v.to_string());
            }
            // Stamp the byte-identity oracle: replay once and record the
            // digest the regression suite must reproduce.
            let replay = replay_schedule(
                prog, mir, &seeds, &test.plan, cfg.budget, &schedule, cfg.engine,
            )?;
            if replay.divergences > 0 || !replay.manifests(&confirmed.key) {
                println!(
                    "warning: plan {} race {} does not replay cleanly, skipping fixture",
                    test.index, confirmed.key
                );
                continue;
            }
            schedule.set_meta("trace-digest", format!("{:#018x}", replay.trace_digest));
            let file = dir.join(format!("{label}-p{}-{written}.sched", test.index));
            std::fs::write(&file, schedule.to_text())
                .map_err(|e| format!("cannot write {}: {e}", file.display()))?;
            println!(
                "wrote {} ({} decisions, {} preemptions, {})",
                file.display(),
                schedule.len(),
                schedule.preemptions(),
                schedule.meta_get("verdict").unwrap_or("?"),
            );
            written += 1;
        }
    }
    Ok(written)
}

fn cmd_synth(rest: &[String]) -> Result<(), String> {
    let (_src, prog) = load(rest)?;
    let mir = lower_program(&prog);
    let obs = obs_for(rest);
    let (prog, mir, out) = run_synthesis(&prog, &mir, rest, &obs)?;
    println!(
        "{} racing pairs, {} synthesized tests ({} race-expecting) in {:?}",
        out.pair_count(),
        out.test_count(),
        out.tests.iter().filter(|t| t.plan.expects_race).count(),
        out.elapsed
    );
    if flag(rest, "--timings") {
        print!("{}", out.timings.render());
    }
    for (name, err) in &out.seed_failures {
        println!("warning: seed `{name}` failed: {err}");
    }
    if flag(rest, "--render") {
        for t in &out.tests {
            println!("\n=== test #{} ===", t.index);
            print!("{}", t.plan.render(&prog));
        }
    }
    if let Some(file) = opt(rest, "--replay") {
        replay_file(&prog, &mir, &out, file, 2_000_000, engine_opt(rest)?)?;
    }
    if let Some(dir) = opt(rest, "--record") {
        let explore = ExploreOptions {
            strategy: strategy_opts(rest)?,
            seed: opt_usize(rest, "--seed", 0xdecaf)? as u64,
            threads: opt_usize(rest, "--threads", 0)?,
            engine: engine_opt(rest)?,
            ..ExploreOptions::default()
        };
        let dir = Path::new(dir);
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        let demos = demonstrate_observed(&prog, &mir, &out, &explore, &obs);
        for d in &demos {
            let file = dir.join(format!("demo-p{}.sched", d.test_index));
            std::fs::write(&file, d.schedule.to_text())
                .map_err(|e| format!("cannot write {}: {e}", file.display()))?;
            println!("{}", render_schedule_summary(&d.schedule));
            println!("  -> {}", file.display());
            for f in &d.failures {
                println!("  thread failure: {f}");
            }
        }
        println!(
            "recorded {} demonstration run(s) under strategy {}",
            demos.len(),
            explore.strategy.label()
        );
    }
    write_telemetry(
        rest,
        &obs,
        "synth",
        out.timings.threads,
        &[("strategy", strategy_opts(rest)?.label().to_string())],
    )
}

fn cmd_detect(rest: &[String]) -> Result<(), String> {
    let (_src, prog) = load(rest)?;
    let mir = lower_program(&prog);
    let obs = obs_for(rest);
    let (prog, mir, mut out) = run_synthesis(&prog, &mir, rest, &obs)?;
    let cfg = DetectConfig {
        schedule_trials: opt_usize(rest, "--schedules", 6)?,
        confirm_trials: opt_usize(rest, "--confirms", 4)?,
        seed: opt_usize(rest, "--seed", 42)? as u64,
        budget: 2_000_000,
        threads: opt_usize(rest, "--threads", 0)?,
        strategy: strategy_opts(rest)?,
        engine: engine_opt(rest)?,
        explore: explore_opt(rest)?,
        ..DetectConfig::default()
    };
    if let Some(file) = opt(rest, "--replay") {
        return replay_file(&prog, &mir, &out, file, cfg.budget, cfg.engine);
    }
    if let Some(dir) = opt(rest, "--record") {
        let n = record_fixtures(&prog, &mir, &out, &cfg, Path::new(dir), "detect")?;
        println!("recorded {n} fixture(s)");
        return Ok(());
    }
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
    let plans: Vec<_> = out.tests.iter().map(|t| &t.plan).collect();
    let (reports, agg) =
        narada::detect::evaluate_suite_full(&prog, &mir, &seeds, &plans, &cfg, &obs);
    if let Some(path) = opt(rest, "--report-out") {
        let jopts = job_opts(rest)?;
        let doc = narada::serve::render_report(&prog, &_src, &jopts, &out, &reports, &agg);
        std::fs::write(path, doc).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    println!(
        "{} tests: {} races detected, {} reproduced ({} harmful, {} benign), {} unreproduced",
        plans.len(),
        agg.races_detected,
        agg.harmful + agg.benign,
        agg.harmful,
        agg.benign,
        agg.unreproduced
    );
    if flag(rest, "--timings") {
        out.timings.record_detect(agg.elapsed, agg.jobs);
        print!("{}", out.timings.render());
    }
    write_telemetry(
        rest,
        &obs,
        "detect",
        out.timings.threads,
        &[
            ("schedules", cfg.schedule_trials.to_string()),
            ("confirms", cfg.confirm_trials.to_string()),
            ("seed", cfg.seed.to_string()),
            ("strategy", cfg.strategy.label().to_string()),
            ("engine", cfg.engine.label().to_string()),
            ("explore", cfg.explore.label().to_string()),
        ],
    )
}

/// Renders one side of a candidate pair: `Class.method path kind locks`.
fn render_access(prog: &Program, a: &narada::core::AccessRecord) -> String {
    let path = a
        .path
        .as_ref()
        .map(|p| p.display(prog).to_string())
        .unwrap_or_else(|| "?".into());
    let locks: Vec<String> = a
        .locks
        .iter()
        .map(|l| {
            l.path
                .as_ref()
                .map(|p| p.display(prog).to_string())
                .unwrap_or_else(|| "<internal>".into())
        })
        .collect();
    format!(
        "{} {} {}{} locks=[{}]",
        prog.qualified_name(a.method),
        path,
        if a.is_write { "W" } else { "R" },
        if a.unprotected { " unprot" } else { "" },
        locks.join(",")
    )
}

/// One access site of a candidate pair as a JSON object (`pairs --json`).
fn access_json(prog: &Program, a: &narada::core::AccessRecord) -> Json {
    Json::obj()
        .with("method", Json::Str(prog.qualified_name(a.method)))
        .with(
            "path",
            Json::Str(
                a.path
                    .as_ref()
                    .map(|p| p.display(prog).to_string())
                    .unwrap_or_else(|| "?".into()),
            ),
        )
        .with("kind", Json::Str(if a.is_write { "W" } else { "R" }.into()))
        .with("unprotected", Json::Bool(a.unprotected))
        .with(
            "locks",
            Json::Arr(
                a.locks
                    .iter()
                    .map(|l| {
                        Json::Str(
                            l.path
                                .as_ref()
                                .map(|p| p.display(prog).to_string())
                                .unwrap_or_else(|| "<internal>".into()),
                        )
                    })
                    .collect(),
            ),
        )
}

/// Generates a sequential seed suite for a program (or corpus class) and
/// prints it as compilable MJ — library classes plus the `gen_*` tests —
/// so the output can feed straight back into `narada synth`/`detect`.
/// Generation statistics go to stderr, keeping stdout byte-comparable
/// across runs (the determinism smoke in CI relies on this).
fn cmd_gen(rest: &[String]) -> Result<(), String> {
    let prog = match rest.first().filter(|a| !a.starts_with("--")) {
        Some(id) if narada::corpus::by_id(id).is_some() => {
            let e = narada::corpus::by_id(id).expect("checked");
            e.compile().map_err(|d| format!("{}: {d}", e.id))?
        }
        _ => load(rest)?.1,
    };
    let mir = lower_program(&prog);
    let obs = obs_for(rest);
    let opts = gen_opts(rest, "--seed")?;
    let api = if flag(rest, "--full-api") || prog.tests.is_empty() {
        narada::gen::ApiSurface::for_program(&prog)
    } else {
        narada::gen::ApiSurface::from_tests_on(&prog, &mir, opts.engine)
    };
    let basis = (!flag(rest, "--full-api") && !prog.tests.is_empty())
        .then(|| narada::gen::FactBasis::from_tests_on(&prog, &mir, opts.engine));
    let out = narada::gen::generate(&prog, &mir, &api, basis.as_ref(), &opts, &obs);
    let stats = out.stats;
    let mut gen_prog = prog.clone();
    gen_prog.tests = out.tests;
    print!("{}", narada::lang::pretty::program(&gen_prog));
    eprintln!(
        "generated {} test(s): {} candidates over {} rounds, {} facts covered, \
         {} discarded (error), {} rejected (no novelty), {} rejected (shape), \
         {} rejected (off target)",
        gen_prog.tests.len(),
        stats.candidates,
        stats.rounds,
        stats.facts,
        stats.discarded_error,
        stats.rejected_no_novelty,
        stats.rejected_shape,
        stats.rejected_off_target,
    );
    write_telemetry(
        rest,
        &obs,
        "gen",
        narada::core::effective_threads(opts.threads),
        &[
            ("budget", opts.budget.to_string()),
            ("gen-seed", format!("{:#x}", opts.seed)),
            ("max-len", opts.max_len.to_string()),
        ],
    )
}

fn cmd_pairs(rest: &[String]) -> Result<(), String> {
    let prog = match rest.first().filter(|a| !a.starts_with("--")) {
        Some(id) if narada::corpus::by_id(id).is_some() => {
            let e = narada::corpus::by_id(id).expect("checked");
            e.compile().map_err(|d| format!("{}: {d}", e.id))?
        }
        _ => load(rest)?.1,
    };
    let mir = lower_program(&prog);
    let out = synthesize(&prog, &mir, &synth_opts(rest)?);
    let verdicts = narada::screen_pairs(&mir, &out.pairs);
    let may_only = flag(rest, "--may-race-only");
    if flag(rest, "--json") {
        let entries: Vec<Json> = out
            .pairs
            .pairs
            .iter()
            .zip(&verdicts)
            .enumerate()
            .filter(|(_, (_, v))| !may_only || v.may_race())
            .map(|(i, (pair, v))| {
                let (x, y) = out.pairs.accesses_of(pair);
                Json::obj()
                    .with("index", Json::Int(i as i64))
                    .with("verdict", Json::Str(v.to_string()))
                    .with("may_race", Json::Bool(v.may_race()))
                    .with("a", access_json(&prog, x))
                    .with("b", access_json(&prog, y))
            })
            .collect();
        println!("{}", Json::Arr(entries).to_pretty());
        return Ok(());
    }
    let mut shown = 0usize;
    for (i, (pair, v)) in out.pairs.pairs.iter().zip(&verdicts).enumerate() {
        if may_only && !v.may_race() {
            continue;
        }
        let (x, y) = out.pairs.accesses_of(pair);
        println!(
            "#{i:<4} {:<28} {}  |  {}",
            v.to_string(),
            render_access(&prog, x),
            render_access(&prog, y)
        );
        shown += 1;
    }
    let pruned = verdicts.iter().filter(|v| !v.may_race()).count();
    println!(
        "{} candidate pairs ({} may-race, {} must-not-race){}",
        out.pairs.pairs.len(),
        out.pairs.pairs.len() - pruned,
        pruned,
        if may_only {
            format!(", {shown} shown")
        } else {
            String::new()
        }
    );
    Ok(())
}

fn cmd_corpus(rest: &[String]) -> Result<(), String> {
    let entries = match rest.first().filter(|a| !a.starts_with("--")) {
        Some(id) => vec![narada::corpus::by_id(id)
            .ok_or_else(|| format!("unknown corpus id `{id}` (C1..C9)"))?],
        None => narada::corpus::all(),
    };
    let obs = obs_for(rest);
    let mut classes = Vec::new();
    let mut threads = 0usize;
    for e in entries {
        classes.push(e.id);
        let prog = e.compile().map_err(|d| format!("{}: {d}", e.id))?;
        let mir = lower_program(&prog);
        let (prog, mir, out) = run_synthesis(&prog, &mir, rest, &obs)?;
        threads = out.timings.threads;
        println!(
            "{} {} ({}): {} pairs, {} tests [paper: {} pairs, {} tests]",
            e.id,
            e.class_name,
            e.benchmark,
            out.pair_count(),
            out.test_count(),
            e.paper.race_pairs,
            e.paper.tests
        );
        if flag(rest, "--timings") {
            print!("{}", out.timings.render());
        }
        if flag(rest, "--detect") || opt(rest, "--record").is_some() {
            let cfg = DetectConfig {
                schedule_trials: opt_usize(rest, "--schedules", 6)?,
                confirm_trials: opt_usize(rest, "--confirms", 4)?,
                seed: opt_usize(rest, "--seed", 42)? as u64,
                threads: opt_usize(rest, "--threads", 0)?,
                strategy: strategy_opts(rest)?,
                engine: engine_opt(rest)?,
                explore: explore_opt(rest)?,
                ..DetectConfig::default()
            };
            if let Some(dir) = opt(rest, "--record") {
                let label = e.id.to_lowercase();
                let n = record_fixtures(&prog, &mir, &out, &cfg, Path::new(dir), &label)?;
                println!("{}: recorded {n} fixture(s)", e.id);
            } else {
                let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
                let plans: Vec<_> = out.tests.iter().map(|t| &t.plan).collect();
                let agg = evaluate_suite_observed(&prog, &mir, &seeds, &plans, &cfg, &obs);
                println!(
                    "{}: {} races detected, {} reproduced ({} harmful, {} benign)",
                    e.id,
                    agg.races_detected,
                    agg.harmful + agg.benign,
                    agg.harmful,
                    agg.benign
                );
            }
        }
    }
    write_telemetry(
        rest,
        &obs,
        "corpus",
        threads,
        &[("classes", classes.join(","))],
    )
}

/// Differential generator sweep: generated classes through screener +
/// scheduler, disagreements shrunk and written as fixtures. Owns its
/// exit codes: 0 = agreement, 1 = usage/IO error, 3 = soundness
/// disagreement found.
fn cmd_difftest(rest: &[String]) -> ExitCode {
    match run_difftest(rest) {
        Ok(disagreements) if disagreements > 0 => ExitCode::from(3),
        Ok(_) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

/// The fallible body of `cmd_difftest`; returns the number of classes
/// with soundness disagreements.
fn run_difftest(rest: &[String]) -> Result<usize, String> {
    use narada::difftest::{shrink_class, DiffConfig, Outcome};

    let cfg = DiffConfig {
        seed: opt_usize(rest, "--seed", 0xd1ff)? as u64,
        count: opt_usize(rest, "--count", 36)?,
        threads: opt_usize(rest, "--threads", 0)?,
        schedule_trials: opt_usize(rest, "--schedules", 6)?,
        confirm_trials: opt_usize(rest, "--confirms", 4)?,
        inject_unsound: flag(rest, "--inject-unsound"),
        engine: engine_opt(rest)?,
        explore: explore_opt(rest)?,
        ..DiffConfig::default()
    };
    let obs = obs_for(rest);
    let sweep = narada::difftest::run_sweep(&cfg, &obs);
    if flag(rest, "--verbose") {
        for r in &sweep.reports {
            println!("{}", r.summary());
        }
    } else {
        for r in &sweep.reports {
            if !matches!(r.outcome, Outcome::Agree) {
                println!("{}", r.summary());
            }
        }
    }
    println!("{}", sweep.summary());

    let disagreeing = sweep.soundness();
    for r in &disagreeing {
        if let Outcome::Soundness(ds) = &r.outcome {
            for d in ds {
                println!(
                    "SOUNDNESS {}: pair {} discharged ({}) but confirmed by test {}",
                    r.spec.label(),
                    d.race,
                    d.reason,
                    d.test_index
                );
            }
        }
    }
    if !disagreeing.is_empty() && flag(rest, "--shrink") {
        let dir = Path::new(opt(rest, "--fixtures").unwrap_or("tests/fixtures/difftest"));
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        for r in &disagreeing {
            match shrink_class(r.spec, &cfg, &obs) {
                Some(outcome) => {
                    let file = dir.join(format!("{}.mj", r.spec.label()));
                    std::fs::write(&file, outcome.fixture_source())
                        .map_err(|e| format!("cannot write {}: {e}", file.display()))?;
                    println!(
                        "shrunk {}: removed [{}] in {} probe(s) -> {}",
                        r.spec.label(),
                        outcome.removed.join(", "),
                        outcome.probes,
                        file.display()
                    );
                }
                None => println!(
                    "shrink {}: disagreement did not reproduce, no fixture written",
                    r.spec.label()
                ),
            }
        }
    }
    write_telemetry(
        rest,
        &obs,
        "difftest",
        narada::core::effective_threads(cfg.threads),
        &[
            ("seed", format!("{:#x}", cfg.seed)),
            ("count", cfg.count.to_string()),
            ("engine", cfg.engine.label().to_string()),
            ("explore", cfg.explore.label().to_string()),
            (
                "generator-version",
                narada::difftest::GENERATOR_VERSION.to_string(),
            ),
            ("digest", format!("{:016x}", sweep.digest)),
        ],
    )?;
    Ok(disagreeing.len())
}

/// Renders, diffs, or trend-gates run manifests. Owns its exit codes:
/// 0 = rendered / within tolerance, 1 = usage or IO error, 4 = a gated
/// metric breached its trend tolerance band (the CI regression signal).
fn cmd_report(rest: &[String]) -> ExitCode {
    match run_report(rest) {
        Ok(true) => ExitCode::from(4),
        Ok(false) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

/// Optional float flag (percent tolerances).
fn opt_f64(rest: &[String], name: &str) -> Result<Option<f64>, String> {
    match opt(rest, name) {
        None if flag(rest, name) => Err(format!("{name} expects a number")),
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("{name} expects a number, got `{v}`")),
    }
}

/// The fallible body of `cmd_report`; returns whether a trend gate
/// breached — validating every file against the schema's required fields
/// along the way.
fn run_report(rest: &[String]) -> Result<bool, String> {
    let load_manifest = |path: &str| -> Result<RunManifest, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        RunManifest::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    // Positional manifest paths: everything that is neither a flag nor
    // the value of a value-taking flag.
    let mut files: Vec<&String> = Vec::new();
    let mut skip_value = false;
    for a in rest {
        if skip_value {
            skip_value = false;
            continue;
        }
        if a == "--tolerance" || a == "--wall-tolerance" {
            skip_value = true;
            continue;
        }
        if !a.starts_with("--") {
            files.push(a);
        }
    }
    if flag(rest, "--trend") {
        if files.len() < 2 {
            return Err("report --trend expects at least two manifest files \
                        (a baseline and a current run per group)"
                .into());
        }
        let manifests = files
            .iter()
            .map(|f| load_manifest(f))
            .collect::<Result<Vec<_>, _>>()?;
        let tolerance = opt_f64(rest, "--tolerance")?.unwrap_or(0.0);
        let wall_tolerance = opt_f64(rest, "--wall-tolerance")?;
        let trend = narada::obs::trend::compare(&manifests, tolerance, wall_tolerance)?;
        print!("{}", trend.render());
        return Ok(!trend.ok());
    }
    if flag(rest, "--diff") {
        let [a, b] = files[..] else {
            return Err("report --diff expects exactly two manifest files".into());
        };
        print!(
            "{}",
            RunManifest::render_diff(&load_manifest(a)?, &load_manifest(b)?)
        );
        return Ok(false);
    }
    if files.is_empty() {
        return Err(format!(
            "report expects at least one manifest file\n{USAGE}"
        ));
    }
    for f in files {
        print!("{}", load_manifest(f)?.render());
    }
    Ok(false)
}

/// Default service address (`--addr` overrides; `narada serve` can bind
/// port 0 and publish the real port via `--port-file`).
const DEFAULT_ADDR: &str = "127.0.0.1:7979";

fn addr_opt(rest: &[String]) -> String {
    opt(rest, "--addr").unwrap_or(DEFAULT_ADDR).to_string()
}

/// Builds wire-form job options from the same flags `cmd_detect` reads,
/// so `narada submit <file> --seed 7 --static-rank` means exactly what
/// `narada detect <file> --seed 7 --static-rank` means.
fn job_opts(rest: &[String]) -> Result<narada::serve::JobOptions, String> {
    Ok(narada::serve::JobOptions {
        schedules: opt_usize(rest, "--schedules", 6)?,
        confirms: opt_usize(rest, "--confirms", 4)?,
        seed: opt_usize(rest, "--seed", 42)? as u64,
        threads: opt_usize(rest, "--threads", 0)?,
        strategy: strategy_opts(rest)?,
        engine: engine_opt(rest)?,
        explore: explore_opt(rest)?,
        static_filter: flag(rest, "--static-filter"),
        static_rank: flag(rest, "--static-rank"),
        generate_seeds: flag(rest, "--generate-seeds"),
        gen_budget: opt_usize(rest, "--budget", 512)?,
        gen_seed: opt_usize(rest, "--gen-seed", 0x67656e)? as u64,
        ..narada::serve::JobOptions::default()
    })
}

/// Reads a job's library source: an `.mj` path or a corpus id.
fn source_arg(rest: &[String]) -> Result<String, String> {
    let arg = rest
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| format!("expected an .mj file or corpus id\n{USAGE}"))?;
    if let Some(entry) = narada::corpus::by_id(arg) {
        return Ok(entry.source.to_string());
    }
    std::fs::read_to_string(arg).map_err(|e| format!("cannot read {arg}: {e}"))
}

fn cmd_serve(rest: &[String]) -> Result<(), String> {
    let defaults = narada::serve::ServeConfig::default();
    let config = narada::serve::ServeConfig {
        addr: opt(rest, "--addr").unwrap_or("127.0.0.1:7979").to_string(),
        workers: opt_usize(rest, "--threads", 2)?.max(1),
        state_dir: opt(rest, "--state-dir").map(std::path::PathBuf::from),
        port_file: opt(rest, "--port-file").map(std::path::PathBuf::from),
        cache_capacity: opt_usize(rest, "--cache-capacity", 64)?,
        slow_job_ms: opt_usize(rest, "--slow-job-ms", defaults.slow_job_ms as usize)? as u64,
        event_log_max_bytes: opt_usize(
            rest,
            "--event-log-max-bytes",
            defaults.event_log_max_bytes as usize,
        )? as u64,
    };
    let completed = narada::serve::serve(config)?;
    println!("narada serve: drained, {completed} job(s) completed");
    Ok(())
}

/// Live daemon dashboard over the `watch` stream; `--once` degrades to a
/// single `health` frame printed as compact JSON (for scripts).
fn cmd_top(rest: &[String]) -> Result<(), String> {
    let addr = addr_opt(rest);
    let mut client = narada::serve::Client::connect(&addr)?;
    if flag(rest, "--once") {
        println!("{}", client.health()?.to_compact());
        return Ok(());
    }
    let interval = opt_usize(rest, "--interval", 1000)? as u64;
    let count = opt_usize(rest, "--count", 0)? as u64;
    client.watch(interval, count, &mut |frame| {
        // Clear + home, then redraw — a self-contained refresh per frame.
        print!("\x1b[2J\x1b[H{}", render_top(&addr, frame));
        use std::io::Write as _;
        std::io::stdout().flush().ok();
        true
    })?;
    Ok(())
}

/// One `top` screen: daemon status, job table, latency quantiles (cold
/// vs warm plus per-stage), cache occupancy, and worker heartbeats.
fn render_top(addr: &str, frame: &Json) -> String {
    let int = |node: Option<&Json>| node.and_then(|v| v.as_i64()).unwrap_or(0);
    let secs = |ns: i64| ns as f64 / 1e9;
    let mut out = String::new();
    let status = frame.get("status").and_then(|s| s.as_str()).unwrap_or("?");
    out.push_str(&format!(
        "narada top — {addr}  [{status}]  uptime {:.1}s  frame {}\n\n",
        secs(int(frame.get("uptime_ns"))),
        int(frame.get("seq")),
    ));
    let jobs = frame.get("jobs");
    out.push_str(&format!(
        "jobs   total {}  queued {}  running {}  done {}  failed {}\n",
        int(jobs.and_then(|j| j.get("total"))),
        int(jobs.and_then(|j| j.get("queued"))),
        int(jobs.and_then(|j| j.get("running"))),
        int(jobs.and_then(|j| j.get("done"))),
        int(jobs.and_then(|j| j.get("failed"))),
    ));
    if let Some(slow) = frame.get("slow_jobs").and_then(|s| s.as_arr()) {
        for entry in slow {
            out.push_str(&format!(
                "  SLOW job {} running {:.1}s (budget {:.1}s)\n",
                int(entry.get("job")),
                secs(int(entry.get("running_ns"))),
                secs(int(frame.get("slow_job_budget_ns"))),
            ));
        }
    }
    out.push_str("\nlatency (ms)      count      p50      p90      p99\n");
    let lat = frame.get("latency");
    let mut lat_row = |label: &str, node: Option<&Json>| {
        let ms = |key: &str| int(node.and_then(|n| n.get(key))) as f64 / 1e6;
        out.push_str(&format!(
            "  {label:<12} {:>8} {:>8.2} {:>8.2} {:>8.2}\n",
            int(node.and_then(|n| n.get("count"))),
            ms("p50"),
            ms("p90"),
            ms("p99"),
        ));
    };
    lat_row("cold", lat.and_then(|l| l.get("cold")));
    lat_row("warm", lat.and_then(|l| l.get("warm")));
    for stage in ["compile", "synth", "detect"] {
        lat_row(
            stage,
            lat.and_then(|l| l.get("stages")).and_then(|s| s.get(stage)),
        );
    }
    let cache = frame.get("cache");
    out.push_str(&format!(
        "\ncache  sizes {}  capacity {}\n       counters {}\n",
        cache
            .and_then(|c| c.get("sizes"))
            .map(Json::to_compact)
            .unwrap_or_default(),
        cache
            .and_then(|c| c.get("capacity"))
            .map(Json::to_compact)
            .unwrap_or_default(),
        cache
            .and_then(|c| c.get("counters"))
            .map(Json::to_compact)
            .unwrap_or_default(),
    ));
    let exp = frame.get("explore");
    let exp_jobs = exp.and_then(|e| e.get("jobs"));
    out.push_str(&format!(
        "explore  jobs rerun {}  fork {}  forks {}  probes {}  prefix-steps-saved {}  snapshot {} B\n",
        int(exp_jobs.and_then(|j| j.get("rerun"))),
        int(exp_jobs.and_then(|j| j.get("fork"))),
        int(exp.and_then(|e| e.get("forks"))),
        int(exp.and_then(|e| e.get("probes"))),
        int(exp.and_then(|e| e.get("prefix_steps_saved"))),
        int(exp.and_then(|e| e.get("snapshot_bytes"))),
    ));
    if let Some(ages) = frame
        .get("workers")
        .and_then(|w| w.get("heartbeat_ages_ns"))
        .and_then(|a| a.as_arr())
    {
        out.push_str("workers");
        for (i, age) in ages.iter().enumerate() {
            match age.as_i64() {
                Some(ns) => out.push_str(&format!("  w{i} {:.1}s", secs(ns))),
                None => out.push_str(&format!("  w{i} -")),
            }
        }
        out.push('\n');
    }
    out
}

fn cmd_submit(rest: &[String]) -> Result<(), String> {
    let source = source_arg(rest)?;
    let options = job_opts(rest)?;
    let mut client = narada::serve::Client::connect(&addr_opt(rest))?;
    let job = client.submit(&source, &options)?;
    println!("job {job}");
    Ok(())
}

fn cmd_jobs(rest: &[String]) -> Result<(), String> {
    let addr = addr_opt(rest);
    let mut client = narada::serve::Client::connect(&addr)?;
    let resp = client.jobs()?;
    let rows = resp.get("jobs").and_then(|j| j.as_arr()).unwrap_or(&[]);
    if rows.is_empty() {
        println!("no jobs");
    }
    for row in rows {
        let id = row.get("job").and_then(|j| j.as_i64()).unwrap_or(-1);
        let status = row.get("status").and_then(|s| s.as_str()).unwrap_or("?");
        let fnv = row
            .get("source_fnv")
            .and_then(|s| s.as_str())
            .unwrap_or("?");
        match row.get("summary").and_then(|s| s.as_str()) {
            Some(summary) => println!("job {id} [{status}] fnv={fnv}: {summary}"),
            None => println!("job {id} [{status}] fnv={fnv}"),
        }
    }
    if flag(rest, "--stats") {
        let stats = client.stats()?;
        println!(
            "cache: {}",
            stats.get("cache").map(Json::to_compact).unwrap_or_default()
        );
        println!(
            "sizes: {}",
            stats.get("sizes").map(Json::to_compact).unwrap_or_default()
        );
    }
    Ok(())
}

fn cmd_fetch(rest: &[String]) -> Result<(), String> {
    let id: u64 = rest
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("expected a job id")?
        .parse()
        .map_err(|_| "job id must be a number".to_string())?;
    let wait = flag(rest, "--wait");
    let quiet = flag(rest, "--quiet");
    let mut client = narada::serve::Client::connect(&addr_opt(rest))?;
    let mut on_event = |frame: &Json| {
        if quiet {
            return;
        }
        let event = frame.get("event").and_then(|e| e.as_str()).unwrap_or("?");
        match frame.get("stage").and_then(|s| s.as_str()) {
            Some(stage) => eprintln!("job {id}: {event} {stage}"),
            None => eprintln!("job {id}: {event}"),
        }
    };
    let resp = client.fetch(id, wait, &mut on_event)?;
    let status = resp.get("status").and_then(|s| s.as_str()).unwrap_or("?");
    if let Some(err) = resp.get("error").and_then(|e| e.as_str()) {
        return Err(format!("job {id} {status}: {err}"));
    }
    match resp.get("report").and_then(|r| r.as_str()) {
        Some(report) => match opt(rest, "--out") {
            Some(path) => {
                std::fs::write(path, report).map_err(|e| format!("cannot write {path}: {e}"))?;
                println!("wrote {path}");
            }
            None => print!("{report}"),
        },
        None => println!("job {id}: {status}"),
    }
    Ok(())
}

fn cmd_shutdown(rest: &[String]) -> Result<(), String> {
    let mut client = narada::serve::Client::connect(&addr_opt(rest))?;
    let resp = client.shutdown()?;
    let done = resp.get("completed").and_then(|c| c.as_i64()).unwrap_or(0);
    let failed = resp.get("failed").and_then(|c| c.as_i64()).unwrap_or(0);
    println!("server drained: {done} completed, {failed} failed");
    Ok(())
}
