//! Golden tests for MIR lowering: the exact instruction streams for the
//! key lowering patterns (sync methods, constructors with field
//! initializers, loops with short-circuit conditions). Any change to the
//! lowering shows up here as a reviewable diff.

use narada_lang::lower::lower_program;

const SRC: &str = r#"
        class Counter {
            int count;
            sync void inc() { this.count = this.count + 1; }
        }
        class Box {
            int v = 7;
            init(int x) { this.v = x; }
        }
        test t {
            var c = new Counter();
            var i = 0;
            while (i < 2 && true) { c.inc(); i = i + 1; }
            var b = new Box(5);
        }
"#;

fn dump(which: &str) -> String {
    let prog = narada_lang::compile(SRC).unwrap();
    let mir = lower_program(&prog);
    match which {
        "inc" => mir
            .method(prog.methods.iter().find(|m| m.name == "inc").unwrap().id)
            .dump(),
        "init" => mir
            .method(prog.methods.iter().find(|m| m.is_ctor).unwrap().id)
            .dump(),
        "test" => mir.test(prog.tests[0].id).dump(),
        _ => unreachable!(),
    }
}

#[test]
fn golden_sync_method() {
    // Param-copy first (Fig. 11 order), then the monitor pair around the
    // three-address body.
    let expected = "\
body method:m0 (5 vars)
    0: I_this := this
    1: lock(this)
    2: $t2 := this.f0
    3: $t3 := 1
    4: $t4 := $t2 + $t3
    5: this.f0 := $t4
    6: unlock(this)
    7: return
";
    assert_eq!(dump("inc"), expected);
}

#[test]
fn golden_constructor() {
    let expected = "\
body method:m1 (4 vars)
    0: I_this := this
    1: I_p0 := x
    2: this.f1 := x
    3: return
";
    assert_eq!(dump("init"), expected);
}

#[test]
fn golden_test_body_with_loop_and_new() {
    // Notable shapes: `new Counter()` with no ctor is a bare alloc;
    // `new Box(5)` is alloc + field-initializer + exact ctor call; the
    // `&&` condition re-evaluates through a shared result temp with two
    // branches; the loop back-edge jumps to the condition start.
    let expected = "\
body test:t0 (13 vars)
    0: $t3 := alloc c0
    1: c := $t3
    2: $t4 := 0
    3: i := $t4
    4: $t6 := 2
    5: $t7 := i < $t6
    6: $t5 := $t7
    7: branch $t5 ? 8 : 10
    8: $t8 := true
    9: $t5 := $t8
   10: branch $t5 ? 11 : 16
   11: call c.m0()
   12: $t9 := 1
   13: $t10 := i + $t9
   14: i := $t10
   15: jump 4
   16: $t11 := 5
   17: $t12 := alloc c1
   18: init-field $t12.f1
   19: callexact $t12.m1($t11)
   20: b := $t12
   21: return
";
    assert_eq!(dump("test"), expected);
}
