//! Parsed (untyped) abstract syntax tree for MJ.
//!
//! The parser produces this tree verbatim from the source; all names are
//! unresolved strings. The type checker (`crate::typeck`) lowers it into the
//! resolved [`crate::hir`] representation that the VM executes.

use crate::span::Span;
use std::fmt;

/// An identifier together with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ident {
    /// The name text.
    pub name: String,
    /// Where the name appears in the source.
    pub span: Span,
}

impl Ident {
    /// Creates an identifier.
    pub fn new(name: impl Into<String>, span: Span) -> Self {
        Ident {
            name: name.into(),
            span,
        }
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// A syntactic type annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeExpr {
    /// `int`
    Int(Span),
    /// `bool`
    Bool(Span),
    /// A class name.
    Named(Ident),
    /// `T[]`
    Array(Box<TypeExpr>, Span),
}

impl TypeExpr {
    /// Source span of the annotation.
    pub fn span(&self) -> Span {
        match self {
            TypeExpr::Int(s) | TypeExpr::Bool(s) | TypeExpr::Array(_, s) => *s,
            TypeExpr::Named(id) => id.span,
        }
    }
}

impl fmt::Display for TypeExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeExpr::Int(_) => write!(f, "int"),
            TypeExpr::Bool(_) => write!(f, "bool"),
            TypeExpr::Named(id) => write!(f, "{id}"),
            TypeExpr::Array(t, _) => write!(f, "{t}[]"),
        }
    }
}

/// A whole compilation unit: class declarations plus sequential tests.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Class declarations, in source order.
    pub classes: Vec<ClassDecl>,
    /// Sequential client tests, in source order.
    pub tests: Vec<TestDecl>,
}

/// `class Name extends Parent { … }`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassDecl {
    /// The class name.
    pub name: Ident,
    /// Optional superclass name.
    pub parent: Option<Ident>,
    /// Field declarations.
    pub fields: Vec<FieldDecl>,
    /// Method declarations (including constructors).
    pub methods: Vec<MethodDecl>,
    /// Span of the whole declaration.
    pub span: Span,
}

/// A field declaration with an optional initializer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDecl {
    /// Declared type.
    pub ty: TypeExpr,
    /// Field name.
    pub name: Ident,
    /// Optional initializer expression, evaluated at allocation with `this`
    /// in scope.
    pub init: Option<Expr>,
    /// Span of the declaration.
    pub span: Span,
}

/// A method (or constructor) declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodDecl {
    /// `static` modifier.
    pub is_static: bool,
    /// `sync` modifier — the whole body runs holding the receiver's monitor.
    pub is_sync: bool,
    /// `true` for `init(…)` constructors.
    pub is_ctor: bool,
    /// Return type; `None` means `void` (always `None` for constructors).
    pub ret: Option<TypeExpr>,
    /// Method name (`"init"` for constructors).
    pub name: Ident,
    /// Formal parameters.
    pub params: Vec<Param>,
    /// Method body.
    pub body: Block,
    /// Span of the whole declaration.
    pub span: Span,
}

/// A formal parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Declared type.
    pub ty: TypeExpr,
    /// Parameter name.
    pub name: Ident,
}

/// `test name { … }` — a sequential client test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestDecl {
    /// The test name.
    pub name: Ident,
    /// Test body (client code).
    pub body: Block,
    /// Span of the whole declaration.
    pub span: Span,
}

/// A `{ … }` statement sequence.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Block {
    /// The statements, in order.
    pub stmts: Vec<Stmt>,
    /// Span including the braces.
    pub span: Span,
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `var x = e;`
    Let {
        /// Variable being introduced.
        name: Ident,
        /// Initializer.
        init: Expr,
        /// Statement span.
        span: Span,
    },
    /// `place = e;`
    Assign {
        /// Assignment target.
        target: Expr,
        /// Right-hand side.
        value: Expr,
        /// Statement span.
        span: Span,
    },
    /// `if (c) { … } else { … }`
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then_blk: Block,
        /// Optional else-branch.
        else_blk: Option<Block>,
        /// Statement span.
        span: Span,
    },
    /// `while (c) { … }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
        /// Statement span.
        span: Span,
    },
    /// `sync (e) { … }` — monitor-style critical section.
    Sync {
        /// Lock expression (must be a reference type).
        lock: Expr,
        /// Body executed while holding the lock.
        body: Block,
        /// Statement span.
        span: Span,
    },
    /// `return;` or `return e;`
    Return {
        /// Optional value.
        value: Option<Expr>,
        /// Statement span.
        span: Span,
    },
    /// `assert e;` — aborts the executing thread if `e` is false.
    Assert {
        /// Condition asserted to be true.
        cond: Expr,
        /// Statement span.
        span: Span,
    },
    /// An expression evaluated for effect (a call).
    Expr(Expr),
}

impl Stmt {
    /// Source span of the statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Let { span, .. }
            | Stmt::Assign { span, .. }
            | Stmt::If { span, .. }
            | Stmt::While { span, .. }
            | Stmt::Sync { span, .. }
            | Stmt::Return { span, .. }
            | Stmt::Assert { span, .. } => *span,
            Stmt::Expr(e) => e.span(),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuiting)
    And,
    /// `||` (short-circuiting)
    Or,
}

impl BinOp {
    /// Surface syntax for the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `!`
    Not,
    /// unary `-`
    Neg,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnOp::Not => write!(f, "!"),
            UnOp::Neg => write!(f, "-"),
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Span),
    /// Boolean literal.
    Bool(bool, Span),
    /// `null`
    Null(Span),
    /// `this`
    This(Span),
    /// A bare name: local variable, or class name in `C.m(…)` position.
    Name(Ident),
    /// `e.f` — field read (or class-qualified call receiver; disambiguated
    /// during checking).
    Field {
        /// Object expression.
        obj: Box<Expr>,
        /// Field name.
        field: Ident,
        /// Expression span.
        span: Span,
    },
    /// `a[i]` — array element read.
    Index {
        /// Array expression.
        arr: Box<Expr>,
        /// Index expression.
        idx: Box<Expr>,
        /// Expression span.
        span: Span,
    },
    /// `e.m(args)` — instance method call, or `C.m(args)` static call when
    /// `recv` is a class name (disambiguated during checking).
    Call {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Method name.
        method: Ident,
        /// Actual arguments.
        args: Vec<Expr>,
        /// Expression span.
        span: Span,
    },
    /// A bare call `f(args)` — reserved for builtins such as `rand()`.
    BuiltinCall {
        /// Builtin name.
        name: Ident,
        /// Actual arguments.
        args: Vec<Expr>,
        /// Expression span.
        span: Span,
    },
    /// `new C(args)`
    New {
        /// Class name.
        class: Ident,
        /// Constructor arguments.
        args: Vec<Expr>,
        /// Expression span.
        span: Span,
    },
    /// `new T[len]`
    NewArray {
        /// Element type.
        elem: TypeExpr,
        /// Length expression.
        len: Box<Expr>,
        /// Expression span.
        span: Span,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Expression span.
        span: Span,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
        /// Expression span.
        span: Span,
    },
}

impl Expr {
    /// Source span of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Int(_, s) | Expr::Bool(_, s) | Expr::Null(s) | Expr::This(s) => *s,
            Expr::Name(id) => id.span,
            Expr::Field { span, .. }
            | Expr::Index { span, .. }
            | Expr::Call { span, .. }
            | Expr::BuiltinCall { span, .. }
            | Expr::New { span, .. }
            | Expr::NewArray { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Unary { span, .. } => *span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_expr_display() {
        let t = TypeExpr::Array(
            Box::new(TypeExpr::Named(Ident::new("Counter", Span::DUMMY))),
            Span::DUMMY,
        );
        assert_eq!(t.to_string(), "Counter[]");
        assert_eq!(TypeExpr::Int(Span::DUMMY).to_string(), "int");
    }

    #[test]
    fn binop_symbols_unique() {
        use BinOp::*;
        let all = [Add, Sub, Mul, Div, Rem, Eq, Ne, Lt, Le, Gt, Ge, And, Or];
        let mut seen = std::collections::HashSet::new();
        for op in all {
            assert!(seen.insert(op.symbol()), "duplicate symbol {}", op.symbol());
        }
    }

    #[test]
    fn stmt_span_matches_expr() {
        let e = Expr::Int(1, Span::new(4, 5));
        assert_eq!(Stmt::Expr(e).span(), Span::new(4, 5));
    }
}
