//! Pretty-printer: renders resolved [`hir`] back to MJ surface syntax.
//!
//! Used to display synthesized tests as readable client programs and in
//! round-trip tests (`parse → check → pretty → parse → check` must agree).
//!
//! [`hir`]: crate::hir

use crate::ast::BinOp;
use crate::hir::*;
use std::fmt::Write as _;

/// Renders a whole program (classes then tests) as MJ source.
pub fn program(prog: &Program) -> String {
    let mut out = String::new();
    for class in &prog.classes {
        class_decl(prog, class, &mut out);
        out.push('\n');
    }
    for test in &prog.tests {
        let _ = writeln!(out, "test {} {{", test.name);
        let mut pp = Pretty {
            prog,
            locals: &test.locals,
            out: &mut out,
            indent: 1,
        };
        pp.block_stmts(&test.body);
        out.push_str("}\n\n");
    }
    out
}

/// Renders a single class declaration.
pub fn class_decl(prog: &Program, class: &Class, out: &mut String) {
    match class.parent {
        Some(p) => {
            let _ = writeln!(
                out,
                "class {} extends {} {{",
                class.name,
                prog.class(p).name
            );
        }
        None => {
            let _ = writeln!(out, "class {} {{", class.name);
        }
    }
    for &f in &class.own_fields {
        let field = prog.field(f);
        let _ = write!(out, "    {} {}", field.ty.display(prog), field.name);
        if let Some(init) = &field.init {
            out.push_str(" = ");
            let mut pp = Pretty {
                prog,
                locals: &[Local {
                    name: "this".into(),
                    ty: Ty::Class(class.id),
                }],
                out,
                indent: 0,
            };
            pp.expr(init);
        }
        out.push_str(";\n");
    }
    let mut methods: Vec<MethodId> = class.own_methods.clone();
    if let Some(ctor) = class.ctor {
        methods.insert(0, ctor);
    }
    for m in methods {
        method_decl(prog, prog.method(m), out);
    }
    out.push_str("}\n");
}

/// Renders a single method declaration (indented one level).
pub fn method_decl(prog: &Program, m: &Method, out: &mut String) {
    out.push_str("    ");
    if m.is_static {
        out.push_str("static ");
    }
    if m.is_sync {
        out.push_str("sync ");
    }
    if m.is_ctor {
        out.push_str("init");
    } else {
        let _ = write!(out, "{} {}", m.ret.display(prog), m.name);
    }
    out.push('(');
    for (i, l) in m.param_locals().into_iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let local = &m.locals[l.index()];
        let _ = write!(out, "{} {}", local.ty.display(prog), local.name);
    }
    out.push_str(") {\n");
    let mut pp = Pretty {
        prog,
        locals: &m.locals,
        out,
        indent: 2,
    };
    pp.block_stmts(&m.body);
    out.push_str("    }\n");
}

/// Renders a single statement with the given local table (used when
/// displaying synthesized test bodies).
pub fn stmt_str(prog: &Program, locals: &[Local], stmt: &Stmt) -> String {
    let mut out = String::new();
    let mut pp = Pretty {
        prog,
        locals,
        out: &mut out,
        indent: 0,
    };
    pp.stmt(stmt);
    out.trim_end().to_string()
}

/// Renders a single expression with the given local table.
pub fn expr_str(prog: &Program, locals: &[Local], expr: &Expr) -> String {
    let mut out = String::new();
    let mut pp = Pretty {
        prog,
        locals,
        out: &mut out,
        indent: 0,
    };
    pp.expr(expr);
    out
}

struct Pretty<'a> {
    prog: &'a Program,
    locals: &'a [Local],
    out: &'a mut String,
    indent: usize,
}

impl Pretty<'_> {
    fn pad(&mut self) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
    }

    fn block_stmts(&mut self, b: &Block) {
        for s in &b.stmts {
            self.stmt(s);
        }
    }

    fn local_name(&self, l: LocalId) -> &str {
        self.locals
            .get(l.index())
            .map(|l| l.name.as_str())
            .unwrap_or("<local?>")
    }

    fn stmt(&mut self, s: &Stmt) {
        self.pad();
        match s {
            Stmt::Let { local, init, .. } => {
                let name = self.local_name(*local).to_string();
                let _ = write!(self.out, "var {name} = ");
                self.expr(init);
                self.out.push_str(";\n");
            }
            Stmt::Assign { place, value, .. } => {
                match place {
                    Place::Local(l) => {
                        let name = self.local_name(*l).to_string();
                        self.out.push_str(&name);
                    }
                    Place::Field { obj, field } => {
                        self.expr(obj);
                        let _ = write!(self.out, ".{}", self.prog.field(*field).name);
                    }
                    Place::Index { arr, idx } => {
                        self.expr(arr);
                        self.out.push('[');
                        self.expr(idx);
                        self.out.push(']');
                    }
                }
                self.out.push_str(" = ");
                self.expr(value);
                self.out.push_str(";\n");
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                self.out.push_str("if (");
                self.expr(cond);
                self.out.push_str(") {\n");
                self.indent += 1;
                self.block_stmts(then_blk);
                self.indent -= 1;
                self.pad();
                self.out.push('}');
                if let Some(e) = else_blk {
                    self.out.push_str(" else {\n");
                    self.indent += 1;
                    self.block_stmts(e);
                    self.indent -= 1;
                    self.pad();
                    self.out.push('}');
                }
                self.out.push('\n');
            }
            Stmt::While { cond, body, .. } => {
                self.out.push_str("while (");
                self.expr(cond);
                self.out.push_str(") {\n");
                self.indent += 1;
                self.block_stmts(body);
                self.indent -= 1;
                self.pad();
                self.out.push_str("}\n");
            }
            Stmt::Sync { lock, body, .. } => {
                self.out.push_str("sync (");
                self.expr(lock);
                self.out.push_str(") {\n");
                self.indent += 1;
                self.block_stmts(body);
                self.indent -= 1;
                self.pad();
                self.out.push_str("}\n");
            }
            Stmt::Return { value, .. } => {
                self.out.push_str("return");
                if let Some(v) = value {
                    self.out.push(' ');
                    self.expr(v);
                }
                self.out.push_str(";\n");
            }
            Stmt::Assert { cond, .. } => {
                self.out.push_str("assert ");
                self.expr(cond);
                self.out.push_str(";\n");
            }
            Stmt::Expr(e) => {
                self.expr(e);
                self.out.push_str(";\n");
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Int(n, _) => {
                let _ = write!(self.out, "{n}");
            }
            Expr::Bool(b, _) => {
                let _ = write!(self.out, "{b}");
            }
            Expr::Null(_) => self.out.push_str("null"),
            Expr::Local(l, _) => {
                let name = self.local_name(*l).to_string();
                self.out.push_str(&name);
            }
            Expr::GetField { obj, field, .. } => {
                self.postfix_operand(obj);
                let _ = write!(self.out, ".{}", self.prog.field(*field).name);
            }
            Expr::Index { arr, idx, .. } => {
                self.postfix_operand(arr);
                self.out.push('[');
                self.expr(idx);
                self.out.push(']');
            }
            Expr::ArrayLen { arr, .. } => {
                self.postfix_operand(arr);
                self.out.push_str(".length");
            }
            Expr::New { class, args, .. } => {
                let _ = write!(self.out, "new {}(", self.prog.class(*class).name);
                self.args(args);
                self.out.push(')');
            }
            Expr::NewArray { elem, len, .. } => {
                let _ = write!(self.out, "new {}[", elem.display(self.prog));
                self.expr(len);
                self.out.push(']');
            }
            Expr::Call {
                recv, method, args, ..
            } => {
                self.postfix_operand(recv);
                let _ = write!(self.out, ".{}(", self.prog.method(*method).name);
                self.args(args);
                self.out.push(')');
            }
            Expr::StaticCall { method, args, .. } => {
                let _ = write!(self.out, "{}(", self.prog.qualified_name(*method));
                self.args(args);
                self.out.push(')');
            }
            Expr::Rand(_) => self.out.push_str("rand()"),
            Expr::Binary { op, lhs, rhs, .. } => {
                self.binary_operand(lhs, *op);
                let _ = write!(self.out, " {op} ");
                self.binary_operand(rhs, *op);
            }
            Expr::Unary { op, operand, .. } => {
                let _ = write!(self.out, "{op}");
                self.binary_operand(operand, BinOp::Mul);
            }
        }
    }

    fn args(&mut self, args: &[Expr]) {
        for (i, a) in args.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.expr(a);
        }
    }

    /// Parenthesizes operands that would re-parse differently.
    fn binary_operand(&mut self, e: &Expr, parent: BinOp) {
        let needs_parens = match e {
            Expr::Binary { op, .. } => prec(*op) < prec(parent) || prec(*op) == prec(parent),
            Expr::Unary { .. } => false,
            _ => false,
        };
        if needs_parens {
            self.out.push('(');
            self.expr(e);
            self.out.push(')');
        } else {
            self.expr(e);
        }
    }

    /// Parenthesizes non-primary expressions used as postfix bases.
    fn postfix_operand(&mut self, e: &Expr) {
        let needs_parens = matches!(e, Expr::Binary { .. } | Expr::Unary { .. });
        if needs_parens {
            self.out.push('(');
            self.expr(e);
            self.out.push(')');
        } else {
            self.expr(e);
        }
    }
}

fn prec(op: BinOp) -> u8 {
    use BinOp::*;
    match op {
        Or => 0,
        And => 1,
        Eq | Ne | Lt | Le | Gt | Ge => 2,
        Add | Sub => 3,
        Mul | Div | Rem => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    #[test]
    fn round_trip_counter() {
        let src = r#"
            class Counter {
                int count;
                void inc() { this.count = this.count + 1; }
            }
            class Lib {
                Counter c;
                sync void update() { this.c.inc(); }
                sync void set(Counter x) { this.c = x; }
            }
            test t1 {
                var r = new Counter();
                var l = new Lib();
                l.set(r);
                l.update();
            }
        "#;
        let prog = compile(src).unwrap();
        let printed = program(&prog);
        // Printed output must itself compile, to an equivalent program.
        let reprog =
            compile(&printed).unwrap_or_else(|e| panic!("reparse failed:\n{e}\n{printed}"));
        assert_eq!(reprog.classes.len(), prog.classes.len());
        assert_eq!(reprog.tests.len(), prog.tests.len());
        let printed2 = program(&reprog);
        assert_eq!(printed, printed2, "pretty-print must be a fixpoint");
    }

    #[test]
    fn round_trip_control_flow_and_arrays() {
        let src = r#"
            class Buf {
                int[] data;
                int size;
                init(int cap) { this.data = new int[cap]; this.size = 0; }
                sync void push(int v) {
                    if (this.size < this.data.length) {
                        this.data[this.size] = v;
                        this.size = this.size + 1;
                    } else {
                        var bigger = new int[this.data.length * 2 + 1];
                        var i = 0;
                        while (i < this.size) {
                            bigger[i] = this.data[i];
                            i = i + 1;
                        }
                        this.data = bigger;
                    }
                }
            }
            test t { var b = new Buf(2); b.push(1); b.push(2); b.push(3); }
        "#;
        let prog = compile(src).unwrap();
        let printed = program(&prog);
        let reprog =
            compile(&printed).unwrap_or_else(|e| panic!("reparse failed:\n{e}\n{printed}"));
        assert_eq!(program(&reprog), printed);
    }

    #[test]
    fn precedence_preserved() {
        let src = "test t { var x = (1 + 2) * 3; var y = 1 + 2 * 3; }";
        let prog = compile(src).unwrap();
        let printed = program(&prog);
        assert!(printed.contains("(1 + 2) * 3"), "{printed}");
        assert!(printed.contains("1 + 2 * 3"), "{printed}");
    }

    #[test]
    fn static_call_printed_qualified() {
        let src = r#"
            class F { static F make() { return new F(); } }
            test t { var f = F.make(); }
        "#;
        let prog = compile(src).unwrap();
        let printed = program(&prog);
        assert!(printed.contains("F.make()"), "{printed}");
        compile(&printed).unwrap();
    }
}
