//! Token definitions for the MJ language.

use crate::span::Span;
use std::fmt;

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    // Literals and identifiers
    /// An integer literal, e.g. `42`.
    Int(i64),
    /// An identifier, e.g. `queue` or `Counter`.
    Ident(String),

    // Keywords
    /// `class`
    Class,
    /// `extends`
    Extends,
    /// `static`
    Static,
    /// `sync` — `synchronized` method modifier or block.
    Sync,
    /// `init` — constructor declaration.
    Init,
    /// `test` — sequential client test declaration.
    Test,
    /// `var`
    Var,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `return`
    Return,
    /// `assert`
    Assert,
    /// `new`
    New,
    /// `this`
    This,
    /// `null`
    Null,
    /// `true`
    True,
    /// `false`
    False,
    /// `int`
    IntTy,
    /// `bool`
    BoolTy,
    /// `void`
    Void,

    // Punctuation
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,

    // Operators
    /// `=`
    Eq,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `!`
    Bang,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the keyword token for `word`, if it is a keyword.
    pub fn keyword(word: &str) -> Option<TokenKind> {
        Some(match word {
            "class" => TokenKind::Class,
            "extends" => TokenKind::Extends,
            "static" => TokenKind::Static,
            "sync" => TokenKind::Sync,
            "init" => TokenKind::Init,
            "test" => TokenKind::Test,
            "var" => TokenKind::Var,
            "if" => TokenKind::If,
            "else" => TokenKind::Else,
            "while" => TokenKind::While,
            "return" => TokenKind::Return,
            "assert" => TokenKind::Assert,
            "new" => TokenKind::New,
            "this" => TokenKind::This,
            "null" => TokenKind::Null,
            "true" => TokenKind::True,
            "false" => TokenKind::False,
            "int" => TokenKind::IntTy,
            "bool" => TokenKind::BoolTy,
            "void" => TokenKind::Void,
            _ => return None,
        })
    }

    /// A short human-readable description used in parse errors.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Int(n) => format!("integer `{n}`"),
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{}`", other.symbol()),
        }
    }

    fn symbol(&self) -> &'static str {
        match self {
            TokenKind::Class => "class",
            TokenKind::Extends => "extends",
            TokenKind::Static => "static",
            TokenKind::Sync => "sync",
            TokenKind::Init => "init",
            TokenKind::Test => "test",
            TokenKind::Var => "var",
            TokenKind::If => "if",
            TokenKind::Else => "else",
            TokenKind::While => "while",
            TokenKind::Return => "return",
            TokenKind::Assert => "assert",
            TokenKind::New => "new",
            TokenKind::This => "this",
            TokenKind::Null => "null",
            TokenKind::True => "true",
            TokenKind::False => "false",
            TokenKind::IntTy => "int",
            TokenKind::BoolTy => "bool",
            TokenKind::Void => "void",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::Semi => ";",
            TokenKind::Comma => ",",
            TokenKind::Dot => ".",
            TokenKind::Eq => "=",
            TokenKind::EqEq => "==",
            TokenKind::NotEq => "!=",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::Bang => "!",
            TokenKind::AndAnd => "&&",
            TokenKind::OrOr => "||",
            TokenKind::Int(_) | TokenKind::Ident(_) | TokenKind::Eof => unreachable!(),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

/// A lexical token: a [`TokenKind`] plus the [`Span`] it was read from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where in the source it came from.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_round_trip() {
        for w in [
            "class", "extends", "static", "sync", "init", "test", "var", "if", "else", "while",
            "return", "assert", "new", "this", "null", "true", "false", "int", "bool", "void",
        ] {
            let k = TokenKind::keyword(w).unwrap_or_else(|| panic!("{w} should be a keyword"));
            assert_eq!(k.describe(), format!("`{w}`"));
        }
    }

    #[test]
    fn non_keywords_are_none() {
        assert_eq!(TokenKind::keyword("queue"), None);
        assert_eq!(TokenKind::keyword("classs"), None);
        assert_eq!(TokenKind::keyword(""), None);
    }

    #[test]
    fn describe_literals() {
        assert_eq!(TokenKind::Int(7).describe(), "integer `7`");
        assert_eq!(TokenKind::Ident("x".into()).describe(), "identifier `x`");
        assert_eq!(TokenKind::Eof.describe(), "end of input");
    }
}
