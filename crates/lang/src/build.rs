//! Generator-facing program builders: assemble well-formed MJ source
//! programmatically, then [`compile`](crate::compile) it into HIR.
//!
//! Corpus generators (`narada-difftest`) synthesize whole library classes
//! member by member. They need three things source strings alone don't
//! give them: (1) structural assembly — add a field here, a method there —
//! without fragile string splicing, (2) *removability* — a shrinker must
//! drop individual members and re-render a still-well-formed program, and
//! (3) a single canonical rendering so generated output is byte-stable
//! across runs. These builders provide exactly that surface; the result
//! always goes through the real front end, so every generated program is
//! parsed and type-checked like hand-written source.
//!
//! ```
//! use narada_lang::build::{ClassSrc, ProgramSrc, TestSrc};
//!
//! let prog = ProgramSrc::new()
//!     .class(
//!         ClassSrc::new("Counter")
//!             .field("int count;")
//!             .method("inc", "void inc() { this.count = this.count + 1; }"),
//!     )
//!     .test(TestSrc::new("seed").stmt("var c = new Counter();").stmt("c.inc();"));
//! let hir = prog.compile()?;
//! assert_eq!(hir.classes.len(), 1);
//! # Ok::<(), narada_lang::Diagnostics>(())
//! ```

use crate::hir::Program;
use crate::Diagnostics;

/// One method of a [`ClassSrc`]: the full declaration text plus the name
/// the shrinker and the seed-suite emitter address it by.
#[derive(Debug, Clone)]
pub struct MethodSrc {
    /// Bare method name (`inc`, not `Counter.inc`).
    pub name: String,
    /// The complete declaration, `void inc() { … }` — rendered verbatim
    /// (re-indented) inside the class body.
    pub decl: String,
}

/// A class under construction: fields, an optional constructor, and named
/// methods.
#[derive(Debug, Clone)]
pub struct ClassSrc {
    /// Class name.
    pub name: String,
    /// Superclass, when any.
    pub extends: Option<String>,
    /// Field declarations, rendered in insertion order.
    pub fields: Vec<String>,
    /// Constructor declaration (`init(…) { … }`), when any.
    pub ctor: Option<String>,
    /// Methods in insertion order.
    pub methods: Vec<MethodSrc>,
}

impl ClassSrc {
    /// Starts an empty class.
    pub fn new(name: impl Into<String>) -> ClassSrc {
        ClassSrc {
            name: name.into(),
            extends: None,
            fields: Vec::new(),
            ctor: None,
            methods: Vec::new(),
        }
    }

    /// Adds a field declaration (`int count;`).
    pub fn field(mut self, decl: impl Into<String>) -> ClassSrc {
        self.fields.push(decl.into());
        self
    }

    /// Sets the constructor declaration.
    pub fn ctor(mut self, decl: impl Into<String>) -> ClassSrc {
        self.ctor = Some(decl.into());
        self
    }

    /// Adds a named method.
    pub fn method(mut self, name: impl Into<String>, decl: impl Into<String>) -> ClassSrc {
        self.methods.push(MethodSrc {
            name: name.into(),
            decl: decl.into(),
        });
        self
    }

    /// Whether the class declares a method of this name.
    pub fn has_method(&self, name: &str) -> bool {
        self.methods.iter().any(|m| m.name == name)
    }

    /// A copy with only the methods `keep` admits — the shrinker's member
    /// subset operation. Fields and the constructor always survive.
    pub fn retain_methods(&self, keep: impl Fn(&MethodSrc) -> bool) -> ClassSrc {
        ClassSrc {
            name: self.name.clone(),
            extends: self.extends.clone(),
            fields: self.fields.clone(),
            ctor: self.ctor.clone(),
            methods: self.methods.iter().filter(|m| keep(m)).cloned().collect(),
        }
    }

    fn render(&self, out: &mut String) {
        out.push_str("class ");
        out.push_str(&self.name);
        if let Some(sup) = &self.extends {
            out.push_str(" extends ");
            out.push_str(sup);
        }
        out.push_str(" {\n");
        for f in &self.fields {
            render_indented(out, f);
        }
        if let Some(ctor) = &self.ctor {
            render_indented(out, ctor);
        }
        for m in &self.methods {
            render_indented(out, &m.decl);
        }
        out.push_str("}\n");
    }
}

/// A sequential client test under construction.
#[derive(Debug, Clone)]
pub struct TestSrc {
    /// Test name.
    pub name: String,
    /// Statements in order, one per entry.
    pub stmts: Vec<String>,
}

impl TestSrc {
    /// Starts an empty test.
    pub fn new(name: impl Into<String>) -> TestSrc {
        TestSrc {
            name: name.into(),
            stmts: Vec::new(),
        }
    }

    /// Appends one statement.
    pub fn stmt(mut self, stmt: impl Into<String>) -> TestSrc {
        self.stmts.push(stmt.into());
        self
    }

    fn render(&self, out: &mut String) {
        out.push_str("test ");
        out.push_str(&self.name);
        out.push_str(" {\n");
        for s in &self.stmts {
            render_indented(out, s);
        }
        out.push_str("}\n");
    }
}

/// A whole MJ program under construction: classes plus seed tests.
#[derive(Debug, Clone, Default)]
pub struct ProgramSrc {
    /// Classes in declaration order.
    pub classes: Vec<ClassSrc>,
    /// Tests in declaration order.
    pub tests: Vec<TestSrc>,
}

impl ProgramSrc {
    /// Starts an empty program.
    pub fn new() -> ProgramSrc {
        ProgramSrc::default()
    }

    /// Adds a class.
    pub fn class(mut self, class: ClassSrc) -> ProgramSrc {
        self.classes.push(class);
        self
    }

    /// Adds a test.
    pub fn test(mut self, test: TestSrc) -> ProgramSrc {
        self.tests.push(test);
        self
    }

    /// The class of the given name, when present.
    pub fn class_named(&self, name: &str) -> Option<&ClassSrc> {
        self.classes.iter().find(|c| c.name == name)
    }

    /// Mutable access to the class of the given name.
    pub fn class_named_mut(&mut self, name: &str) -> Option<&mut ClassSrc> {
        self.classes.iter_mut().find(|c| c.name == name)
    }

    /// Renders the canonical source text: classes, then tests, each
    /// member re-indented to one step per block level.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, c) in self.classes.iter().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            c.render(&mut out);
        }
        for t in &self.tests {
            out.push('\n');
            t.render(&mut out);
        }
        out
    }

    /// Renders and compiles the program through the full front end.
    ///
    /// # Errors
    ///
    /// Returns the front end's diagnostics when the assembled source does
    /// not parse or type-check — for a generator this indicates an emitter
    /// bug, so callers usually `expect` with the rendered source attached.
    pub fn compile(&self) -> Result<Program, Diagnostics> {
        crate::compile(&self.render())
    }
}

/// Writes a multi-line member declaration at one indent level, normalizing
/// the fragment's own leading whitespace so builders can use raw strings
/// with arbitrary margins.
fn render_indented(out: &mut String, decl: &str) {
    let lines: Vec<&str> = decl.lines().collect();
    // The common indent of all non-empty lines is stripped before
    // re-indenting, so nested braces keep their relative depth.
    let margin = lines
        .iter()
        .filter(|l| !l.trim().is_empty())
        .map(|l| l.len() - l.trim_start().len())
        .min()
        .unwrap_or(0);
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            out.push('\n');
            continue;
        }
        // The first line often carries no margin of its own (e.g. a
        // builder passing `"void f() {\n    …\n}"`), so it is stripped
        // fully rather than by the common margin.
        let body = if i == 0 {
            line.trim_start()
        } else {
            &line[margin.min(line.len() - line.trim_start().len())..]
        };
        out.push_str("    ");
        out.push_str(body);
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProgramSrc {
        ProgramSrc::new()
            .class(
                ClassSrc::new("Counter")
                    .field("int count;")
                    .ctor("init() { this.count = 0; }")
                    .method("inc", "void inc() { this.count = this.count + 1; }")
                    .method("get", "int get() { return this.count; }"),
            )
            .test(
                TestSrc::new("seed")
                    .stmt("var c = new Counter();")
                    .stmt("c.inc();")
                    .stmt("var n = c.get();"),
            )
    }

    #[test]
    fn renders_and_compiles() {
        let prog = sample().compile().expect("builder output compiles");
        assert_eq!(prog.classes.len(), 1);
        assert_eq!(prog.tests.len(), 1);
        // ctor + 2 methods
        assert_eq!(prog.methods.len(), 3);
    }

    #[test]
    fn rendering_is_stable() {
        assert_eq!(sample().render(), sample().render());
    }

    #[test]
    fn retain_methods_drops_decl_only() {
        let class = sample().classes[0].retain_methods(|m| m.name != "inc");
        assert!(!class.has_method("inc"));
        assert!(class.has_method("get"));
        assert!(class.ctor.is_some(), "ctor is pinned");
        let shrunk = ProgramSrc::new()
            .class(class)
            .test(TestSrc::new("seed").stmt("var c = new Counter();"));
        shrunk.compile().expect("shrunk program still compiles");
    }

    #[test]
    fn multiline_members_are_reindented() {
        let src = ProgramSrc::new()
            .class(ClassSrc::new("A").method(
                "f",
                "int f(int x) {\n    if (x > 0) {\n        return x;\n    }\n    return 0;\n}",
            ))
            .render();
        assert!(src.contains("    int f(int x) {\n"), "{src}");
        assert!(src.contains("        if (x > 0) {\n"), "{src}");
        crate::compile(&src).expect("re-indented member compiles");
    }
}
