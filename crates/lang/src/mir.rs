//! MIR — a flat, three-address instruction IR lowered from [`hir`].
//!
//! The VM executes MIR one instruction at a time, which makes threads
//! steppable (a scheduler can interleave at instruction granularity) and
//! makes execution traces exactly match the paper's trace grammar:
//! every heap operation is `x := y`, `x := y.f`, `x.f := y`, `lock(x)`,
//! `unlock(x)`, or `return(x)` over named variables.
//!
//! Lowering also inserts the paper's §3.2 *parameter-copy variables*: at
//! every method entry, fresh variables `I_this`, `I_p0`, … (kind
//! [`VarKind::ParamCopy`]) are assigned the receiver and each parameter, so
//! that the trace analysis can recover `src(x, H)` — which client-supplied
//! value a later access is rooted at — even after the original parameter
//! variables are reassigned.
//!
//! [`hir`]: crate::hir

use crate::ast::{BinOp, UnOp};
use crate::hir::{ClassId, FieldId, LocalId, MethodId, TestId, Ty};
use crate::span::Span;
use std::collections::HashMap;
use std::fmt;

/// A virtual register within one [`Body`]. Indices `0..num_locals` are the
/// source-level locals (same layout as [`crate::hir::Method::locals`]);
/// parameter copies and compiler temporaries follow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// Dense index of this register.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Which parameter slot a [`VarKind::ParamCopy`] variable mirrors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PSlot {
    /// The receiver (`this`).
    This,
    /// The i-th declared parameter (0-based).
    Param(usize),
}

impl fmt::Display for PSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PSlot::This => write!(f, "this"),
            PSlot::Param(i) => write!(f, "p{i}"),
        }
    }
}

/// Classification of a MIR variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VarKind {
    /// A source-level local (including `this` and parameters).
    Local,
    /// A parameter-copy variable `I_…` inserted at method entry (§3.2).
    ParamCopy(PSlot),
    /// A compiler temporary.
    Temp,
}

/// Metadata for one MIR variable.
#[derive(Debug, Clone)]
pub struct VarInfo {
    /// Display name (`x`, `I_this`, `$t3`, …).
    pub name: String,
    /// What the variable is.
    pub kind: VarKind,
}

/// A compile-time constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstVal {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// The null reference.
    Null,
}

impl fmt::Display for ConstVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstVal::Int(n) => write!(f, "{n}"),
            ConstVal::Bool(b) => write!(f, "{b}"),
            ConstVal::Null => write!(f, "null"),
        }
    }
}

/// One MIR instruction.
#[derive(Debug, Clone)]
pub struct Instr {
    /// The operation.
    pub kind: InstrKind,
    /// Source span, for diagnostics and race reports.
    pub span: Span,
}

/// MIR instruction kinds. `usize` operands of jumps are instruction indices
/// within the same body.
#[derive(Debug, Clone)]
pub enum InstrKind {
    /// `dst := const`
    Const {
        /// Destination register.
        dst: VarId,
        /// The constant.
        val: ConstVal,
    },
    /// `dst := src` (variable-to-variable copy; aliasing-relevant).
    Copy {
        /// Destination register.
        dst: VarId,
        /// Source register.
        src: VarId,
    },
    /// `dst := rand()` — an integer the client cannot control.
    Rand {
        /// Destination register.
        dst: VarId,
    },
    /// `dst := l op r`
    Binary {
        /// Destination register.
        dst: VarId,
        /// Operator (never `&&`/`||`; those are lowered to branches).
        op: BinOp,
        /// Left operand.
        l: VarId,
        /// Right operand.
        r: VarId,
    },
    /// `dst := op v`
    Unary {
        /// Destination register.
        dst: VarId,
        /// Operator.
        op: UnOp,
        /// Operand.
        v: VarId,
    },
    /// `dst := obj.field`
    ReadField {
        /// Destination register.
        dst: VarId,
        /// Object register.
        obj: VarId,
        /// Field read.
        field: FieldId,
    },
    /// `obj.field := src`
    WriteField {
        /// Object register.
        obj: VarId,
        /// Field written.
        field: FieldId,
        /// Source register.
        src: VarId,
    },
    /// `dst := arr[idx]`
    ReadIndex {
        /// Destination register.
        dst: VarId,
        /// Array register.
        arr: VarId,
        /// Index register.
        idx: VarId,
    },
    /// `arr[idx] := src`
    WriteIndex {
        /// Array register.
        arr: VarId,
        /// Index register.
        idx: VarId,
        /// Source register.
        src: VarId,
    },
    /// `dst := arr.length`
    ArrayLen {
        /// Destination register.
        dst: VarId,
        /// Array register.
        arr: VarId,
    },
    /// `dst := alloc C` — allocates an instance with default field values.
    /// Lowering of `new C(args)` emits `AllocObj`, then one [`CallInit`] per
    /// initialized field (parent-first), then a [`CallExact`] of the
    /// constructor; splitting keeps every instruction single-frame in the
    /// steppable VM.
    ///
    /// [`CallInit`]: InstrKind::CallInit
    /// [`CallExact`]: InstrKind::CallExact
    AllocObj {
        /// Destination register.
        dst: VarId,
        /// Allocated class.
        class: ClassId,
    },
    /// Run the field-initializer body of `field` with `this` bound to the
    /// object in `obj`.
    CallInit {
        /// Register holding the freshly allocated object.
        obj: VarId,
        /// Field whose initializer body runs.
        field: FieldId,
    },
    /// Exact (non-virtual) call; used for constructors.
    CallExact {
        /// Destination register.
        dst: Option<VarId>,
        /// Receiver register.
        recv: VarId,
        /// The exact method invoked (no vtable lookup).
        method: MethodId,
        /// Argument registers.
        args: Vec<VarId>,
    },
    /// `dst := new T[len]`
    NewArray {
        /// Destination register.
        dst: VarId,
        /// Element type.
        elem: Ty,
        /// Length register.
        len: VarId,
    },
    /// `dst := recv.m(args)` — dynamic dispatch by method name.
    Call {
        /// Destination register (`None` when the result is discarded or
        /// the method returns void).
        dst: Option<VarId>,
        /// Receiver register.
        recv: VarId,
        /// Statically resolved target; the VM re-dispatches by name on the
        /// receiver's runtime class.
        method: MethodId,
        /// Argument registers.
        args: Vec<VarId>,
    },
    /// `dst := C.m(args)` — static call.
    CallStatic {
        /// Destination register.
        dst: Option<VarId>,
        /// Target method.
        method: MethodId,
        /// Argument registers.
        args: Vec<VarId>,
    },
    /// Unconditional jump.
    Jump {
        /// Target instruction index.
        target: usize,
    },
    /// Conditional branch on a boolean register.
    Branch {
        /// Condition register.
        cond: VarId,
        /// Target when true.
        then_t: usize,
        /// Target when false.
        else_t: usize,
    },
    /// Acquire the monitor of the object in `var` (re-entrant).
    MonitorEnter {
        /// Lock object register.
        var: VarId,
    },
    /// Release the monitor of the object in `var`.
    MonitorExit {
        /// Lock object register.
        var: VarId,
    },
    /// Return from the body, releasing any monitors the frame still holds.
    Return {
        /// Optional value register.
        val: Option<VarId>,
    },
    /// `assert cond` — aborts the thread when false.
    Assert {
        /// Condition register.
        cond: VarId,
    },
    /// Fell off the end of a non-void method: a runtime error.
    MissingReturn,
}

/// Identifies a lowered body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BodyId {
    /// A method or constructor.
    Method(MethodId),
    /// A sequential test.
    Test(TestId),
    /// A field initializer (runs at allocation with `this` = var 0).
    FieldInit(FieldId),
}

impl fmt::Display for BodyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BodyId::Method(m) => write!(f, "method:{m}"),
            BodyId::Test(t) => write!(f, "test:{t}"),
            BodyId::FieldInit(fid) => write!(f, "init:{fid}"),
        }
    }
}

/// A lowered body: registers plus a flat instruction stream.
#[derive(Debug, Clone)]
pub struct Body {
    /// Which HIR item this body implements.
    pub id: BodyId,
    /// Register metadata; indices `0..num_locals` are source locals.
    pub vars: Vec<VarInfo>,
    /// Number of source-level locals at the start of `vars`.
    pub num_locals: usize,
    /// The instructions.
    pub instrs: Vec<Instr>,
}

impl Body {
    /// Register ids of all parameter-copy variables, in slot order.
    pub fn param_copies(&self) -> Vec<(PSlot, VarId)> {
        self.vars
            .iter()
            .enumerate()
            .filter_map(|(i, v)| match v.kind {
                VarKind::ParamCopy(slot) => Some((slot, VarId(i as u32))),
                _ => None,
            })
            .collect()
    }

    /// The parameter-copy register for a slot, if present.
    pub fn param_copy(&self, slot: PSlot) -> Option<VarId> {
        self.param_copies()
            .into_iter()
            .find(|(s, _)| *s == slot)
            .map(|(_, v)| v)
    }

    /// Variable name for display.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.index()].name
    }

    /// Monitor acquire/release sites of the body, in instruction order:
    /// `(instruction index, lock-object register, is_acquire)`. Static
    /// lockset analyses iterate these instead of re-matching
    /// [`InstrKind::MonitorEnter`]/[`InstrKind::MonitorExit`] themselves.
    pub fn lock_sites(&self) -> impl Iterator<Item = (usize, VarId, bool)> + '_ {
        self.instrs
            .iter()
            .enumerate()
            .filter_map(|(i, instr)| match instr.kind {
                InstrKind::MonitorEnter { var } => Some((i, var, true)),
                InstrKind::MonitorExit { var } => Some((i, var, false)),
                _ => None,
            })
    }

    /// Renders the body as readable MIR assembly (for debugging/goldens).
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "body {} ({} vars)", self.id, self.vars.len());
        for (i, instr) in self.instrs.iter().enumerate() {
            let _ = writeln!(out, "  {i:3}: {}", self.render(&instr.kind));
        }
        out
    }

    fn render(&self, k: &InstrKind) -> String {
        let n = |v: &VarId| self.var_name(*v).to_string();
        match k {
            InstrKind::Const { dst, val } => format!("{} := {val}", n(dst)),
            InstrKind::Copy { dst, src } => format!("{} := {}", n(dst), n(src)),
            InstrKind::Rand { dst } => format!("{} := rand()", n(dst)),
            InstrKind::Binary { dst, op, l, r } => {
                format!("{} := {} {op} {}", n(dst), n(l), n(r))
            }
            InstrKind::Unary { dst, op, v } => format!("{} := {op}{}", n(dst), n(v)),
            InstrKind::ReadField { dst, obj, field } => {
                format!("{} := {}.{field}", n(dst), n(obj))
            }
            InstrKind::WriteField { obj, field, src } => {
                format!("{}.{field} := {}", n(obj), n(src))
            }
            InstrKind::ReadIndex { dst, arr, idx } => {
                format!("{} := {}[{}]", n(dst), n(arr), n(idx))
            }
            InstrKind::WriteIndex { arr, idx, src } => {
                format!("{}[{}] := {}", n(arr), n(idx), n(src))
            }
            InstrKind::ArrayLen { dst, arr } => format!("{} := {}.length", n(dst), n(arr)),
            InstrKind::AllocObj { dst, class } => format!("{} := alloc {class}", n(dst)),
            InstrKind::CallInit { obj, field } => format!("init-field {}.{field}", n(obj)),
            InstrKind::CallExact {
                dst,
                recv,
                method,
                args,
            } => {
                let args: Vec<_> = args.iter().map(n).collect();
                let d = dst.map(|d| format!("{} := ", n(&d))).unwrap_or_default();
                format!("{d}callexact {}.{method}({})", n(recv), args.join(", "))
            }
            InstrKind::NewArray { dst, len, .. } => {
                format!("{} := new[]({})", n(dst), n(len))
            }
            InstrKind::Call {
                dst,
                recv,
                method,
                args,
                ..
            } => {
                let args: Vec<_> = args.iter().map(n).collect();
                let d = dst.map(|d| format!("{} := ", n(&d))).unwrap_or_default();
                format!("{d}call {}.{method}({})", n(recv), args.join(", "))
            }
            InstrKind::CallStatic { dst, method, args } => {
                let args: Vec<_> = args.iter().map(n).collect();
                let d = dst.map(|d| format!("{} := ", n(&d))).unwrap_or_default();
                format!("{d}callstatic {method}({})", args.join(", "))
            }
            InstrKind::Jump { target } => format!("jump {target}"),
            InstrKind::Branch {
                cond,
                then_t,
                else_t,
            } => {
                format!("branch {} ? {then_t} : {else_t}", n(cond))
            }
            InstrKind::MonitorEnter { var } => format!("lock({})", n(var)),
            InstrKind::MonitorExit { var } => format!("unlock({})", n(var)),
            InstrKind::Return { val } => match val {
                Some(v) => format!("return {}", n(v)),
                None => "return".to_string(),
            },
            InstrKind::Assert { cond } => format!("assert {}", n(cond)),
            InstrKind::MissingReturn => "missing-return".to_string(),
        }
    }
}

/// All lowered bodies of one program.
#[derive(Debug, Clone, Default)]
pub struct MirProgram {
    /// Method bodies, indexed by [`MethodId`].
    pub methods: Vec<Body>,
    /// Test bodies, indexed by [`TestId`].
    pub tests: Vec<Body>,
    /// Field-initializer bodies for fields with initializers.
    pub field_inits: HashMap<FieldId, Body>,
}

impl MirProgram {
    /// Looks up a body.
    pub fn body(&self, id: BodyId) -> &Body {
        match id {
            BodyId::Method(m) => &self.methods[m.index()],
            BodyId::Test(t) => &self.tests[t.index()],
            BodyId::FieldInit(f) => &self.field_inits[&f],
        }
    }

    /// Body for a method.
    pub fn method(&self, m: MethodId) -> &Body {
        &self.methods[m.index()]
    }

    /// Body for a test.
    pub fn test(&self, t: TestId) -> &Body {
        &self.tests[t.index()]
    }
}

/// Layout helper: the receiver local for instance bodies.
pub const THIS_VAR: VarId = VarId(0);

#[allow(unused_imports)]
use crate::hir::LocalId as _LocalIdDocOnly; // referenced in docs

/// Converts an HIR local slot to its MIR register (identity mapping).
pub fn local_var(l: LocalId) -> VarId {
    VarId(l.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use crate::hir::MethodId;
    use crate::lower::lower_program;

    #[test]
    fn lock_sites_lists_monitor_pairs_in_order() {
        let prog = compile(
            r#"
            class A {
                int x;
                sync void locked() { this.x = 1; }
                void bare() { this.x = 2; }
            }
        "#,
        )
        .expect("compiles");
        let mir = lower_program(&prog);

        let locked = mir.method(MethodId(0));
        let sites: Vec<_> = locked.lock_sites().collect();
        // A sync method wraps its body in exactly one enter/exit pair on
        // the receiver; sites come back in instruction order.
        assert!(sites.len() >= 2, "{}", locked.dump());
        assert_eq!((sites[0].1, sites[0].2), (THIS_VAR, true));
        assert!(sites.iter().skip(1).all(|&(_, v, _)| v == THIS_VAR));
        assert!(
            sites.iter().filter(|&&(_, _, acq)| !acq).count() >= 1,
            "at least one release"
        );
        let mut idxs: Vec<_> = sites.iter().map(|&(i, _, _)| i).collect();
        let sorted = idxs.clone();
        idxs.sort_unstable();
        assert_eq!(idxs, sorted, "sites are in instruction order");

        let bare = mir.method(MethodId(1));
        assert_eq!(
            bare.lock_sites().count(),
            0,
            "no monitors in a plain method"
        );
    }
}
