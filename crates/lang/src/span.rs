//! Source positions and spans.
//!
//! Every token and AST node carries a [`Span`] — a half-open byte range into
//! the original source text. [`SourceMap`] converts byte offsets back into
//! human-readable line/column pairs for diagnostics.

use std::fmt;

/// A half-open byte range `[start, end)` into a source string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `start > end`.
    pub fn new(start: u32, end: u32) -> Self {
        debug_assert!(start <= end, "span start {start} > end {end}");
        Span { start, end }
    }

    /// A zero-width span at offset 0, used for synthesized nodes.
    pub const DUMMY: Span = Span { start: 0, end: 0 };

    /// Smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Length of the span in bytes.
    pub fn len(self) -> usize {
        (self.end - self.start) as usize
    }

    /// True if the span covers no characters.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A line/column pair (both 1-based) produced by [`SourceMap::locate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column (in bytes, not grapheme clusters).
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Maps byte offsets of one source string to line/column positions.
#[derive(Debug, Clone)]
pub struct SourceMap {
    /// Byte offset at which each line starts; `line_starts[0] == 0`.
    line_starts: Vec<u32>,
    len: u32,
}

impl SourceMap {
    /// Builds a source map by scanning `src` for newlines.
    pub fn new(src: &str) -> Self {
        let mut line_starts = vec![0u32];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        SourceMap {
            line_starts,
            len: src.len() as u32,
        }
    }

    /// Number of lines in the source (at least 1, even for empty input).
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }

    /// Converts a byte offset to a 1-based line/column pair.
    ///
    /// Offsets past the end of the source clamp to the last position.
    pub fn locate(&self, offset: u32) -> LineCol {
        let offset = offset.min(self.len);
        let line_idx = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol {
            line: line_idx as u32 + 1,
            col: offset - self.line_starts[line_idx] + 1,
        }
    }

    /// Locates the start of a span.
    pub fn locate_span(&self, span: Span) -> LineCol {
        self.locate(span.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn locate_simple() {
        let sm = SourceMap::new("ab\ncd\nef");
        assert_eq!(sm.locate(0), LineCol { line: 1, col: 1 });
        assert_eq!(sm.locate(1), LineCol { line: 1, col: 2 });
        assert_eq!(sm.locate(3), LineCol { line: 2, col: 1 });
        assert_eq!(sm.locate(4), LineCol { line: 2, col: 2 });
        assert_eq!(sm.locate(6), LineCol { line: 3, col: 1 });
    }

    #[test]
    fn locate_clamps_past_end() {
        let sm = SourceMap::new("abc");
        assert_eq!(sm.locate(99), LineCol { line: 1, col: 4 });
    }

    #[test]
    fn locate_empty_source() {
        let sm = SourceMap::new("");
        assert_eq!(sm.line_count(), 1);
        assert_eq!(sm.locate(0), LineCol { line: 1, col: 1 });
    }

    #[test]
    fn locate_newline_boundary() {
        let sm = SourceMap::new("a\nb");
        // The newline itself belongs to line 1.
        assert_eq!(sm.locate(1), LineCol { line: 1, col: 2 });
        assert_eq!(sm.locate(2), LineCol { line: 2, col: 1 });
    }

    #[test]
    fn span_len_and_empty() {
        assert_eq!(Span::new(2, 5).len(), 3);
        assert!(Span::new(4, 4).is_empty());
        assert!(!Span::new(4, 5).is_empty());
    }
}
