//! Diagnostics for lexing, parsing, and type checking.

use crate::span::{SourceMap, Span};
use std::error::Error;
use std::fmt;

/// The phase of the front end that produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Lexical analysis.
    Lex,
    /// Parsing.
    Parse,
    /// Name resolution and type checking.
    Check,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Lex => write!(f, "lex"),
            Phase::Parse => write!(f, "parse"),
            Phase::Check => write!(f, "type"),
        }
    }
}

/// A front-end diagnostic with a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which phase produced this diagnostic.
    pub phase: Phase,
    /// Human-readable message (lowercase, no trailing punctuation).
    pub message: String,
    /// Source location the diagnostic points at.
    pub span: Span,
}

impl Diagnostic {
    /// Creates a new diagnostic.
    pub fn new(phase: Phase, message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            phase,
            message: message.into(),
            span,
        }
    }

    /// Renders the diagnostic with a line/column prefix resolved via `map`.
    pub fn render(&self, map: &SourceMap) -> String {
        format!(
            "{} error at {}: {}",
            self.phase,
            map.locate_span(self.span),
            self.message
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error at {}: {}", self.phase, self.span, self.message)
    }
}

impl Error for Diagnostic {}

/// An aggregate of one or more diagnostics, returned by the front end.
///
/// The parser and checker accumulate as many errors as they can before
/// giving up, so callers see everything wrong with a program at once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostics {
    errors: Vec<Diagnostic>,
}

impl Diagnostics {
    /// Wraps a non-empty list of diagnostics.
    ///
    /// # Panics
    ///
    /// Panics if `errors` is empty: an error value must describe an error.
    pub fn new(errors: Vec<Diagnostic>) -> Self {
        assert!(!errors.is_empty(), "Diagnostics must contain an error");
        Diagnostics { errors }
    }

    /// Wraps a single diagnostic.
    pub fn single(diag: Diagnostic) -> Self {
        Diagnostics { errors: vec![diag] }
    }

    /// The individual diagnostics, in source order.
    pub fn errors(&self) -> &[Diagnostic] {
        &self.errors
    }

    /// Number of diagnostics.
    pub fn len(&self) -> usize {
        self.errors.len()
    }

    /// Always false; kept for API symmetry with collections.
    pub fn is_empty(&self) -> bool {
        self.errors.is_empty()
    }

    /// Renders all diagnostics, one per line, with positions from `map`.
    pub fn render(&self, map: &SourceMap) -> String {
        self.errors
            .iter()
            .map(|e| e.render(map))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.errors.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

impl Error for Diagnostics {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_uses_line_col() {
        let map = SourceMap::new("class A {\n  junk\n}");
        let d = Diagnostic::new(Phase::Parse, "unexpected identifier", Span::new(12, 16));
        assert_eq!(d.render(&map), "parse error at 2:3: unexpected identifier");
    }

    #[test]
    fn diagnostics_display_joins_lines() {
        let ds = Diagnostics::new(vec![
            Diagnostic::new(Phase::Lex, "a", Span::new(0, 1)),
            Diagnostic::new(Phase::Check, "b", Span::new(2, 3)),
        ]);
        let s = ds.to_string();
        assert!(s.contains("lex error"));
        assert!(s.contains("type error"));
        assert_eq!(s.lines().count(), 2);
        assert_eq!(ds.len(), 2);
    }

    #[test]
    #[should_panic(expected = "must contain an error")]
    fn empty_diagnostics_panics() {
        let _ = Diagnostics::new(vec![]);
    }
}
