//! Lowering from [`hir`] to flat [`mir`].
//!
//! Responsibilities:
//!
//! * three-address conversion — every intermediate value lands in a named
//!   register, so execution traces name every heap access;
//! * insertion of the §3.2 parameter-copy variables (`I_this`, `I_p0`, …) at
//!   the top of every method;
//! * `sync` methods become `MonitorEnter(this) … MonitorExit(this)` around
//!   the body (monitors are also released on early `return` by the VM's
//!   frame unwind);
//! * structured control flow (`if`/`while`/`&&`/`||`) becomes jumps.
//!
//! [`hir`]: crate::hir
//! [`mir`]: crate::mir

use crate::ast::BinOp;
use crate::hir::{self, Program};
use crate::mir::*;
use crate::span::Span;

/// Lowers every method, test, and field initializer of `prog`.
pub fn lower_program(prog: &Program) -> MirProgram {
    let mut mir = MirProgram::default();
    for m in &prog.methods {
        mir.methods.push(lower_method(prog, m));
    }
    for t in &prog.tests {
        mir.tests.push(lower_test(prog, t));
    }
    for f in &prog.fields {
        if let Some(init) = &f.init {
            mir.field_inits
                .insert(f.id, lower_field_init(prog, f, init));
        }
    }
    mir
}

/// The MIR bodies belonging to one class: its methods (constructor
/// included) and its own fields' initializers — the unit an incremental
/// cache re-lowers. [`lower_program`] is the composition of every
/// class's bodies plus the tests; `tests/` asserts the two paths agree
/// body-for-body.
#[derive(Debug, Clone, Default)]
pub struct ClassBodies {
    /// `(id, body)` for every method declared by the class, in
    /// declaration (id) order.
    pub methods: Vec<(hir::MethodId, Body)>,
    /// `(id, body)` for every initialized field the class declares.
    pub inits: Vec<(hir::FieldId, Body)>,
}

/// Lowers exactly the bodies [`ClassBodies`] describes for `class`.
/// Output is byte-identical to the corresponding slices of
/// [`lower_program`]: each body depends only on its own HIR plus
/// referenced signatures, which is what `narada_lang::digest::class_unit`
/// keys on.
pub fn lower_class(prog: &Program, class: hir::ClassId) -> ClassBodies {
    let mut out = ClassBodies::default();
    for m in &prog.methods {
        if m.owner == class {
            out.methods.push((m.id, lower_method(prog, m)));
        }
    }
    for &f in &prog.class(class).own_fields {
        let fld = prog.field(f);
        if let Some(init) = &fld.init {
            out.inits.push((f, lower_field_init(prog, fld, init)));
        }
    }
    out
}

fn lower_method(prog: &Program, m: &hir::Method) -> Body {
    let mut cx = LowerCx::new(BodyId::Method(m.id), &m.locals);
    // Parameter copies first (paper Fig. 11: `I1 := this; I2 := y; lock…`).
    if let Some(this) = m.this_local() {
        let copy = cx.fresh_param_copy(PSlot::This);
        cx.emit(
            InstrKind::Copy {
                dst: copy,
                src: local_var(this),
            },
            m.span,
        );
    }
    for (i, p) in m.param_locals().into_iter().enumerate() {
        let copy = cx.fresh_param_copy(PSlot::Param(i));
        cx.emit(
            InstrKind::Copy {
                dst: copy,
                src: local_var(p),
            },
            m.span,
        );
    }
    if m.is_sync {
        cx.emit(InstrKind::MonitorEnter { var: THIS_VAR }, m.span);
    }
    cx.block(prog, &m.body);
    if m.is_sync {
        cx.emit(InstrKind::MonitorExit { var: THIS_VAR }, m.span);
    }
    if m.ret == hir::Ty::Void {
        cx.emit(InstrKind::Return { val: None }, m.span);
    } else {
        cx.emit(InstrKind::MissingReturn, m.span);
    }
    cx.finish()
}

/// Lowers a single test body. Public so callers that synthesize new HIR
/// tests against an existing program (e.g. the seed generator) can produce
/// matching MIR bodies without re-lowering the whole program.
pub fn lower_test(prog: &Program, t: &hir::Test) -> Body {
    let mut cx = LowerCx::new(BodyId::Test(t.id), &t.locals);
    cx.block(prog, &t.body);
    cx.emit(InstrKind::Return { val: None }, t.span);
    cx.finish()
}

fn lower_field_init(prog: &Program, f: &hir::Field, init: &hir::Expr) -> Body {
    // Body layout: var 0 is `this`; evaluate the initializer, store it.
    let this_local = hir::Local {
        name: "this".into(),
        ty: hir::Ty::Class(f.owner),
    };
    let locals = vec![this_local];
    let mut cx = LowerCx::new(BodyId::FieldInit(f.id), &locals);
    let src = cx.expr(prog, init);
    cx.emit(
        InstrKind::WriteField {
            obj: THIS_VAR,
            field: f.id,
            src,
        },
        f.span,
    );
    cx.emit(InstrKind::Return { val: None }, f.span);
    cx.finish()
}

struct LowerCx {
    id: BodyId,
    vars: Vec<VarInfo>,
    num_locals: usize,
    instrs: Vec<Instr>,
}

impl LowerCx {
    fn new(id: BodyId, locals: &[hir::Local]) -> Self {
        let vars: Vec<VarInfo> = locals
            .iter()
            .map(|l| VarInfo {
                name: l.name.clone(),
                kind: VarKind::Local,
            })
            .collect();
        LowerCx {
            id,
            num_locals: vars.len(),
            vars,
            instrs: Vec::new(),
        }
    }

    fn finish(self) -> Body {
        Body {
            id: self.id,
            vars: self.vars,
            num_locals: self.num_locals,
            instrs: self.instrs,
        }
    }

    fn emit(&mut self, kind: InstrKind, span: Span) -> usize {
        self.instrs.push(Instr { kind, span });
        self.instrs.len() - 1
    }

    fn fresh_temp(&mut self) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarInfo {
            name: format!("$t{}", self.vars.len()),
            kind: VarKind::Temp,
        });
        id
    }

    fn fresh_param_copy(&mut self, slot: PSlot) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarInfo {
            name: format!("I_{slot}"),
            kind: VarKind::ParamCopy(slot),
        });
        id
    }

    fn here(&self) -> usize {
        self.instrs.len()
    }

    fn patch_jump(&mut self, at: usize, target: usize) {
        match &mut self.instrs[at].kind {
            InstrKind::Jump { target: t } => *t = target,
            other => panic!("patch_jump on non-jump {other:?}"),
        }
    }

    fn patch_branch(&mut self, at: usize, then_t: Option<usize>, else_t: Option<usize>) {
        match &mut self.instrs[at].kind {
            InstrKind::Branch {
                then_t: t,
                else_t: e,
                ..
            } => {
                if let Some(v) = then_t {
                    *t = v;
                }
                if let Some(v) = else_t {
                    *e = v;
                }
            }
            other => panic!("patch_branch on non-branch {other:?}"),
        }
    }

    fn block(&mut self, prog: &Program, b: &hir::Block) {
        for s in &b.stmts {
            self.stmt(prog, s);
        }
    }

    fn stmt(&mut self, prog: &Program, s: &hir::Stmt) {
        match s {
            hir::Stmt::Let { local, init, span } => {
                let src = self.expr(prog, init);
                self.emit(
                    InstrKind::Copy {
                        dst: local_var(*local),
                        src,
                    },
                    *span,
                );
            }
            hir::Stmt::Assign { place, value, span } => match place {
                hir::Place::Local(l) => {
                    let src = self.expr(prog, value);
                    self.emit(
                        InstrKind::Copy {
                            dst: local_var(*l),
                            src,
                        },
                        *span,
                    );
                }
                hir::Place::Field { obj, field } => {
                    let obj = self.expr(prog, obj);
                    let src = self.expr(prog, value);
                    self.emit(
                        InstrKind::WriteField {
                            obj,
                            field: *field,
                            src,
                        },
                        *span,
                    );
                }
                hir::Place::Index { arr, idx } => {
                    let arr = self.expr(prog, arr);
                    let idx = self.expr(prog, idx);
                    let src = self.expr(prog, value);
                    self.emit(InstrKind::WriteIndex { arr, idx, src }, *span);
                }
            },
            hir::Stmt::If {
                cond,
                then_blk,
                else_blk,
                span,
            } => {
                let c = self.expr(prog, cond);
                let br = self.emit(
                    InstrKind::Branch {
                        cond: c,
                        then_t: 0,
                        else_t: 0,
                    },
                    *span,
                );
                let then_start = self.here();
                self.block(prog, then_blk);
                match else_blk {
                    Some(e) => {
                        let skip_else = self.emit(InstrKind::Jump { target: 0 }, *span);
                        let else_start = self.here();
                        self.block(prog, e);
                        let after = self.here();
                        self.patch_branch(br, Some(then_start), Some(else_start));
                        self.patch_jump(skip_else, after);
                    }
                    None => {
                        let after = self.here();
                        self.patch_branch(br, Some(then_start), Some(after));
                    }
                }
            }
            hir::Stmt::While { cond, body, span } => {
                let loop_start = self.here();
                let c = self.expr(prog, cond);
                let br = self.emit(
                    InstrKind::Branch {
                        cond: c,
                        then_t: 0,
                        else_t: 0,
                    },
                    *span,
                );
                let body_start = self.here();
                self.block(prog, body);
                self.emit(InstrKind::Jump { target: loop_start }, *span);
                let after = self.here();
                self.patch_branch(br, Some(body_start), Some(after));
            }
            hir::Stmt::Sync { lock, body, span } => {
                let l = self.expr(prog, lock);
                self.emit(InstrKind::MonitorEnter { var: l }, *span);
                self.block(prog, body);
                self.emit(InstrKind::MonitorExit { var: l }, *span);
            }
            hir::Stmt::Return { value, span } => {
                let val = value.as_ref().map(|v| self.expr(prog, v));
                self.emit(InstrKind::Return { val }, *span);
            }
            hir::Stmt::Assert { cond, span } => {
                let c = self.expr(prog, cond);
                self.emit(InstrKind::Assert { cond: c }, *span);
            }
            hir::Stmt::Expr(e) => {
                self.expr_for_effect(prog, e);
            }
        }
    }

    /// Lowers a call-like expression discarding its result.
    fn expr_for_effect(&mut self, prog: &Program, e: &hir::Expr) {
        match e {
            hir::Expr::Call {
                recv,
                method,
                args,
                span,
            } => {
                let recv = self.expr(prog, recv);
                let args = args.iter().map(|a| self.expr(prog, a)).collect();
                self.emit(
                    InstrKind::Call {
                        dst: None,
                        recv,
                        method: *method,
                        args,
                    },
                    *span,
                );
            }
            hir::Expr::StaticCall { method, args, span } => {
                let args = args.iter().map(|a| self.expr(prog, a)).collect();
                self.emit(
                    InstrKind::CallStatic {
                        dst: None,
                        method: *method,
                        args,
                    },
                    *span,
                );
            }
            other => {
                let _ = self.expr(prog, other);
            }
        }
    }

    /// Lowers an expression; the result register is returned.
    fn expr(&mut self, prog: &Program, e: &hir::Expr) -> VarId {
        match e {
            hir::Expr::Binary {
                op: op @ (BinOp::And | BinOp::Or),
                lhs,
                rhs,
                span,
            } => {
                // Short-circuit: result := lhs; branch; result := rhs.
                let result = self.fresh_temp();
                let l = self.expr(prog, lhs);
                self.emit(
                    InstrKind::Copy {
                        dst: result,
                        src: l,
                    },
                    *span,
                );
                let br = self.emit(
                    InstrKind::Branch {
                        cond: result,
                        then_t: 0,
                        else_t: 0,
                    },
                    *span,
                );
                let rhs_start = self.here();
                let r = self.expr(prog, rhs);
                self.emit(
                    InstrKind::Copy {
                        dst: result,
                        src: r,
                    },
                    *span,
                );
                let after = self.here();
                match op {
                    BinOp::And => self.patch_branch(br, Some(rhs_start), Some(after)),
                    BinOp::Or => self.patch_branch(br, Some(after), Some(rhs_start)),
                    _ => unreachable!(),
                }
                result
            }
            _ => self.expr_inner(prog, e),
        }
    }

    fn expr_inner(&mut self, prog: &Program, e: &hir::Expr) -> VarId {
        match e {
            hir::Expr::Int(n, span) => {
                let dst = self.fresh_temp();
                self.emit(
                    InstrKind::Const {
                        dst,
                        val: ConstVal::Int(*n),
                    },
                    *span,
                );
                dst
            }
            hir::Expr::Bool(b, span) => {
                let dst = self.fresh_temp();
                self.emit(
                    InstrKind::Const {
                        dst,
                        val: ConstVal::Bool(*b),
                    },
                    *span,
                );
                dst
            }
            hir::Expr::Null(span) => {
                let dst = self.fresh_temp();
                self.emit(
                    InstrKind::Const {
                        dst,
                        val: ConstVal::Null,
                    },
                    *span,
                );
                dst
            }
            hir::Expr::Local(l, _) => local_var(*l),
            hir::Expr::Rand(span) => {
                let dst = self.fresh_temp();
                self.emit(InstrKind::Rand { dst }, *span);
                dst
            }
            hir::Expr::GetField { obj, field, span } => {
                let obj = self.expr_inner(prog, obj);
                let dst = self.fresh_temp();
                self.emit(
                    InstrKind::ReadField {
                        dst,
                        obj,
                        field: *field,
                    },
                    *span,
                );
                dst
            }
            hir::Expr::Index { arr, idx, span } => {
                let arr = self.expr_inner(prog, arr);
                let idx = self.expr_inner(prog, idx);
                let dst = self.fresh_temp();
                self.emit(InstrKind::ReadIndex { dst, arr, idx }, *span);
                dst
            }
            hir::Expr::ArrayLen { arr, span } => {
                let arr = self.expr_inner(prog, arr);
                let dst = self.fresh_temp();
                self.emit(InstrKind::ArrayLen { dst, arr }, *span);
                dst
            }
            hir::Expr::New {
                class,
                args,
                ctor,
                span,
            } => {
                let args: Vec<VarId> = args.iter().map(|a| self.expr_inner(prog, a)).collect();
                let dst = self.fresh_temp();
                self.emit(InstrKind::AllocObj { dst, class: *class }, *span);
                // Field initializers, parent-first (all_fields order).
                for &f in prog.fields_of(*class) {
                    if prog.field(f).init.is_some() {
                        self.emit(InstrKind::CallInit { obj: dst, field: f }, *span);
                    }
                }
                if let Some(ctor) = ctor {
                    self.emit(
                        InstrKind::CallExact {
                            dst: None,
                            recv: dst,
                            method: *ctor,
                            args,
                        },
                        *span,
                    );
                }
                dst
            }
            hir::Expr::NewArray { elem, len, span } => {
                let len = self.expr_inner(prog, len);
                let dst = self.fresh_temp();
                self.emit(
                    InstrKind::NewArray {
                        dst,
                        elem: elem.clone(),
                        len,
                    },
                    *span,
                );
                dst
            }
            hir::Expr::Call {
                recv,
                method,
                args,
                span,
            } => {
                let recv = self.expr_inner(prog, recv);
                let args = args.iter().map(|a| self.expr_inner(prog, a)).collect();
                let dst = self.fresh_temp();
                self.emit(
                    InstrKind::Call {
                        dst: Some(dst),
                        recv,
                        method: *method,
                        args,
                    },
                    *span,
                );
                dst
            }
            hir::Expr::StaticCall { method, args, span } => {
                let args = args.iter().map(|a| self.expr_inner(prog, a)).collect();
                let dst = self.fresh_temp();
                self.emit(
                    InstrKind::CallStatic {
                        dst: Some(dst),
                        method: *method,
                        args,
                    },
                    *span,
                );
                dst
            }
            hir::Expr::Binary {
                op: op @ (BinOp::And | BinOp::Or),
                lhs,
                rhs,
                span,
            } => self.expr(
                prog,
                &hir::Expr::Binary {
                    op: *op,
                    lhs: lhs.clone(),
                    rhs: rhs.clone(),
                    span: *span,
                },
            ),
            hir::Expr::Binary { op, lhs, rhs, span } => {
                let l = self.expr_inner(prog, lhs);
                let r = self.expr_inner(prog, rhs);
                let dst = self.fresh_temp();
                self.emit(InstrKind::Binary { dst, op: *op, l, r }, *span);
                dst
            }
            hir::Expr::Unary { op, operand, span } => {
                let v = self.expr_inner(prog, operand);
                let dst = self.fresh_temp();
                self.emit(InstrKind::Unary { dst, op: *op, v }, *span);
                dst
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use crate::hir::{ClassId, LocalId, MethodId, TestId};

    fn mir_of(src: &str) -> (Program, MirProgram) {
        let prog = compile(src).unwrap_or_else(|e| panic!("compile failed:\n{e}"));
        let mir = lower_program(&prog);
        (prog, mir)
    }

    #[test]
    fn param_copies_inserted() {
        let (_, mir) = mir_of(
            r#"
            class A {
                int x;
                void foo(A y) { this.x = 1; }
            }
        "#,
        );
        let body = mir.method(MethodId(0));
        let copies = body.param_copies();
        assert_eq!(copies.len(), 2);
        assert_eq!(copies[0].0, PSlot::This);
        assert_eq!(copies[1].0, PSlot::Param(0));
        // First two instructions are the copies.
        assert!(matches!(body.instrs[0].kind, InstrKind::Copy { .. }));
        assert!(matches!(body.instrs[1].kind, InstrKind::Copy { .. }));
        assert!(body.var_name(copies[0].1).contains("I_this"));
    }

    #[test]
    fn sync_method_gets_monitor_pair() {
        let (_, mir) = mir_of("class A { sync void m() { } }");
        let body = mir.method(MethodId(0));
        let kinds: Vec<_> = body.instrs.iter().map(|i| &i.kind).collect();
        assert!(matches!(kinds[1], InstrKind::MonitorEnter { var } if *var == THIS_VAR));
        assert!(
            kinds
                .iter()
                .any(|k| matches!(k, InstrKind::MonitorExit { var } if *var == THIS_VAR)),
            "{}",
            body.dump()
        );
    }

    #[test]
    fn nonvoid_ends_with_missing_return_guard() {
        let (_, mir) = mir_of("class A { int m() { return 1; } }");
        let body = mir.method(MethodId(0));
        assert!(matches!(
            body.instrs.last().unwrap().kind,
            InstrKind::MissingReturn
        ));
    }

    #[test]
    fn while_loop_shape() {
        let (_, mir) = mir_of(
            r#"
            test t {
                var i = 0;
                while (i < 3) { i = i + 1; }
            }
        "#,
        );
        let body = mir.test(TestId(0));
        let branch = body
            .instrs
            .iter()
            .enumerate()
            .find_map(|(i, ins)| match ins.kind {
                InstrKind::Branch { then_t, else_t, .. } => Some((i, then_t, else_t)),
                _ => None,
            })
            .expect("loop branch");
        let (at, then_t, else_t) = branch;
        assert_eq!(then_t, at + 1, "then branch falls through to body");
        assert!(else_t > then_t, "else exits the loop");
        // Back-edge jumps before the branch.
        let back = body
            .instrs
            .iter()
            .find_map(|ins| match ins.kind {
                InstrKind::Jump { target } => Some(target),
                _ => None,
            })
            .expect("back edge");
        assert!(back < at);
    }

    #[test]
    fn short_circuit_and_branches() {
        let (_, mir) = mir_of("test t { var b = true && false; }");
        let body = mir.test(TestId(0));
        assert!(
            body.instrs
                .iter()
                .any(|i| matches!(i.kind, InstrKind::Branch { .. })),
            "{}",
            body.dump()
        );
        // No Binary instruction with And remains.
        assert!(!body.instrs.iter().any(|i| matches!(
            i.kind,
            InstrKind::Binary {
                op: BinOp::And | BinOp::Or,
                ..
            }
        )));
    }

    #[test]
    fn field_init_bodies_created() {
        let (prog, mir) = mir_of("class A { int x = 41 + 1; int y; }");
        let a = prog.class_by_name("A").unwrap();
        let x = prog.field_by_name(a, "x").unwrap();
        let y = prog.field_by_name(a, "y").unwrap();
        assert!(mir.field_inits.contains_key(&x));
        assert!(!mir.field_inits.contains_key(&y));
        let body = &mir.field_inits[&x];
        assert!(body
            .instrs
            .iter()
            .any(|i| matches!(i.kind, InstrKind::WriteField { .. })));
    }

    #[test]
    fn locals_keep_identity_mapping() {
        let (prog, mir) = mir_of("class A { int m(int a, int b) { return a + b; } }");
        let m = &prog.methods[0];
        let body = mir.method(m.id);
        for (i, l) in m.locals.iter().enumerate() {
            assert_eq!(body.var_name(local_var(LocalId(i as u32))), l.name);
        }
        assert_eq!(body.num_locals, m.locals.len());
    }

    #[test]
    fn sync_block_lowering() {
        let (_, mir) = mir_of(
            r#"
            class A {
                int x;
                void m(A other) { sync (other) { this.x = 1; } }
            }
        "#,
        );
        let body = mir.method(MethodId(0));
        let enter = body
            .instrs
            .iter()
            .position(|i| matches!(i.kind, InstrKind::MonitorEnter { .. }))
            .unwrap();
        let write = body
            .instrs
            .iter()
            .position(|i| matches!(i.kind, InstrKind::WriteField { .. }))
            .unwrap();
        let exit = body
            .instrs
            .iter()
            .position(|i| matches!(i.kind, InstrKind::MonitorExit { .. }))
            .unwrap();
        assert!(enter < write && write < exit);
    }

    #[test]
    fn dump_is_readable() {
        let (_, mir) = mir_of("class A { int x; void m() { this.x = rand(); } }");
        let s = mir.method(MethodId(0)).dump();
        assert!(s.contains("rand()"), "{s}");
        assert!(s.contains(":="), "{s}");
    }

    #[test]
    fn static_call_lowering() {
        let (_, mir) = mir_of(
            r#"
            class F { static F make() { return new F(); } }
            test t { var f = F.make(); }
        "#,
        );
        let body = mir.test(TestId(0));
        assert!(body
            .instrs
            .iter()
            .any(|i| matches!(i.kind, InstrKind::CallStatic { dst: Some(_), .. })));
    }

    #[test]
    fn call_stmt_discards_result() {
        let (_, mir) = mir_of(
            r#"
            class C { int m() { return 1; } }
            test t { var c = new C(); c.m(); }
        "#,
        );
        let body = mir.test(TestId(0));
        assert!(body
            .instrs
            .iter()
            .any(|i| matches!(i.kind, InstrKind::Call { dst: None, .. })));
    }

    #[test]
    fn lower_class_matches_whole_program_lowering() {
        let (prog, mir) = mir_of(
            r#"
            class A { int x = 1; void bump() { sync (this) { this.x = this.x + 1; } } }
            class B { A a = new A(); void go() { this.a.bump(); } }
            test t { var b = new B(); b.go(); }
        "#,
        );
        for class in 0..prog.classes.len() as u32 {
            let per = lower_class(&prog, ClassId(class));
            for (m, body) in &per.methods {
                assert_eq!(body.dump(), mir.method(*m).dump(), "method {m:?}");
            }
            for (f, body) in &per.inits {
                assert_eq!(body.dump(), mir.field_inits[f].dump(), "init {f:?}");
            }
        }
    }
}
