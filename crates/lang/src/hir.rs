//! Resolved, typed intermediate representation (HIR).
//!
//! Produced by the type checker from the parsed [`crate::ast`]; consumed by
//! the VM (`narada-vm`) and by the trace analysis (`narada-core`). All names
//! are resolved to dense ids ([`ClassId`], [`MethodId`], [`FieldId`],
//! [`LocalId`]) backed by arenas in [`Program`].

use crate::ast::{BinOp, UnOp};
use crate::span::Span;
use std::collections::HashMap;
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// The dense index of this id.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifies a class in [`Program::classes`].
    ClassId,
    "c"
);
define_id!(
    /// Identifies a method in [`Program::methods`].
    MethodId,
    "m"
);
define_id!(
    /// Identifies a field in [`Program::fields`].
    FieldId,
    "f"
);
define_id!(
    /// Identifies a local slot within one method or test body.
    LocalId,
    "l"
);
define_id!(
    /// Identifies a sequential test in [`Program::tests`].
    TestId,
    "t"
);

/// A resolved MJ type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Ty {
    /// 64-bit integer.
    Int,
    /// Boolean.
    Bool,
    /// No value (method returns only).
    Void,
    /// The type of `null` before it is unified with a reference type.
    Null,
    /// An instance of a class (or any subclass).
    Class(ClassId),
    /// An array with the given element type.
    Array(Box<Ty>),
}

impl Ty {
    /// True for types whose values are heap references (`Class`, `Array`,
    /// `Null`).
    pub fn is_reference(&self) -> bool {
        matches!(self, Ty::Class(_) | Ty::Array(_) | Ty::Null)
    }

    /// Renders the type using `prog` for class names.
    pub fn display<'p>(&'p self, prog: &'p Program) -> TyDisplay<'p> {
        TyDisplay { ty: self, prog }
    }
}

/// Helper returned by [`Ty::display`].
#[derive(Debug)]
pub struct TyDisplay<'p> {
    ty: &'p Ty,
    prog: &'p Program,
}

impl fmt::Display for TyDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.ty {
            Ty::Int => write!(f, "int"),
            Ty::Bool => write!(f, "bool"),
            Ty::Void => write!(f, "void"),
            Ty::Null => write!(f, "null"),
            Ty::Class(c) => write!(f, "{}", self.prog.class(*c).name),
            Ty::Array(e) => write!(f, "{}[]", e.display(self.prog)),
        }
    }
}

/// A resolved class.
#[derive(Debug, Clone)]
pub struct Class {
    /// This class's id.
    pub id: ClassId,
    /// Class name.
    pub name: String,
    /// Superclass, if any.
    pub parent: Option<ClassId>,
    /// Fields declared directly in this class.
    pub own_fields: Vec<FieldId>,
    /// All fields including inherited ones, supertype-first.
    pub all_fields: Vec<FieldId>,
    /// Methods declared directly in this class (excluding the constructor).
    pub own_methods: Vec<MethodId>,
    /// Dynamic-dispatch table: method name → most-derived implementation.
    pub vtable: HashMap<String, MethodId>,
    /// Constructor, if declared.
    pub ctor: Option<MethodId>,
    /// Source span of the declaration.
    pub span: Span,
}

/// A resolved field.
#[derive(Debug, Clone)]
pub struct Field {
    /// This field's id.
    pub id: FieldId,
    /// Field name.
    pub name: String,
    /// Declared type.
    pub ty: Ty,
    /// Declaring class.
    pub owner: ClassId,
    /// Optional initializer, evaluated at allocation with `this` in scope.
    pub init: Option<Expr>,
    /// Source span.
    pub span: Span,
}

/// A local variable slot (includes `this` and parameters).
#[derive(Debug, Clone)]
pub struct Local {
    /// Source-level name (`this` for the receiver slot).
    pub name: String,
    /// Static type.
    pub ty: Ty,
}

/// A resolved method or constructor.
#[derive(Debug, Clone)]
pub struct Method {
    /// This method's id.
    pub id: MethodId,
    /// Method name (`init` for constructors).
    pub name: String,
    /// Declaring class.
    pub owner: ClassId,
    /// `static` modifier.
    pub is_static: bool,
    /// `sync` modifier — the body runs holding the receiver's monitor.
    pub is_sync: bool,
    /// True for constructors.
    pub is_ctor: bool,
    /// Return type (`Ty::Void` when none).
    pub ret: Ty,
    /// Number of declared parameters (not counting `this`).
    pub num_params: usize,
    /// All local slots: slot 0 is `this` for instance methods, parameters
    /// follow, then `var`-introduced locals in declaration order.
    pub locals: Vec<Local>,
    /// The body.
    pub body: Block,
    /// Source span of the declaration.
    pub span: Span,
}

impl Method {
    /// Local slots holding the parameters, in order.
    pub fn param_locals(&self) -> Vec<LocalId> {
        let first = if self.is_static { 0 } else { 1 };
        (first..first + self.num_params)
            .map(|i| LocalId(i as u32))
            .collect()
    }

    /// The `this` slot, for instance methods.
    pub fn this_local(&self) -> Option<LocalId> {
        if self.is_static {
            None
        } else {
            Some(LocalId(0))
        }
    }

    /// Parameter types, in order.
    pub fn param_tys(&self) -> Vec<&Ty> {
        self.param_locals()
            .into_iter()
            .map(|l| &self.locals[l.index()].ty)
            .collect()
    }
}

/// A resolved sequential test.
#[derive(Debug, Clone)]
pub struct Test {
    /// This test's id.
    pub id: TestId,
    /// Test name.
    pub name: String,
    /// Local slots introduced in the body.
    pub locals: Vec<Local>,
    /// The body (client code).
    pub body: Block,
    /// Source span.
    pub span: Span,
}

/// A statement block.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

/// An assignment target.
#[derive(Debug, Clone)]
pub enum Place {
    /// A local slot.
    Local(LocalId),
    /// `obj.field`
    Field {
        /// Object whose field is written.
        obj: Expr,
        /// The field.
        field: FieldId,
    },
    /// `arr[idx]`
    Index {
        /// The array.
        arr: Expr,
        /// The element index.
        idx: Expr,
    },
}

/// A resolved statement.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// Initialize a fresh local slot.
    Let {
        /// Destination slot.
        local: LocalId,
        /// Initializer.
        init: Expr,
        /// Source span.
        span: Span,
    },
    /// Store into a place.
    Assign {
        /// Target place.
        place: Place,
        /// Value stored.
        value: Expr,
        /// Source span.
        span: Span,
    },
    /// Conditional.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_blk: Block,
        /// Else branch.
        else_blk: Option<Block>,
        /// Source span.
        span: Span,
    },
    /// Loop.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Block,
        /// Source span.
        span: Span,
    },
    /// Monitor-style critical section.
    Sync {
        /// Lock object expression.
        lock: Expr,
        /// Body run under the lock.
        body: Block,
        /// Source span.
        span: Span,
    },
    /// Return from the enclosing method.
    Return {
        /// Optional value.
        value: Option<Expr>,
        /// Source span.
        span: Span,
    },
    /// Assertion; failing aborts the executing thread.
    Assert {
        /// Condition.
        cond: Expr,
        /// Source span.
        span: Span,
    },
    /// Expression evaluated for effect.
    Expr(Expr),
}

/// A resolved expression.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Span),
    /// Boolean literal.
    Bool(bool, Span),
    /// `null`
    Null(Span),
    /// Read a local slot (`this` is slot 0 of instance methods).
    Local(LocalId, Span),
    /// `obj.field`
    GetField {
        /// Object read from.
        obj: Box<Expr>,
        /// The field.
        field: FieldId,
        /// Source span.
        span: Span,
    },
    /// `arr[idx]`
    Index {
        /// The array.
        arr: Box<Expr>,
        /// The element index.
        idx: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// `arr.length`
    ArrayLen {
        /// The array.
        arr: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// `new C(args)`
    New {
        /// Allocated class.
        class: ClassId,
        /// Constructor arguments (empty when no constructor declared).
        args: Vec<Expr>,
        /// Constructor to run, if the class declares one.
        ctor: Option<MethodId>,
        /// Source span.
        span: Span,
    },
    /// `new T[len]`
    NewArray {
        /// Element type.
        elem: Ty,
        /// Length.
        len: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// Instance call; dispatched dynamically by name at run time starting
    /// from the statically resolved `method`.
    Call {
        /// Receiver.
        recv: Box<Expr>,
        /// Statically resolved target (dispatch re-resolves by name).
        method: MethodId,
        /// Arguments.
        args: Vec<Expr>,
        /// Source span.
        span: Span,
    },
    /// `C.m(args)` static call.
    StaticCall {
        /// The target method.
        method: MethodId,
        /// Arguments.
        args: Vec<Expr>,
        /// Source span.
        span: Span,
    },
    /// The `rand()` builtin: an int the client cannot control.
    Rand(Span),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
        /// Source span.
        span: Span,
    },
}

impl Expr {
    /// Source span of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Int(_, s)
            | Expr::Bool(_, s)
            | Expr::Null(s)
            | Expr::Local(_, s)
            | Expr::Rand(s) => *s,
            Expr::GetField { span, .. }
            | Expr::Index { span, .. }
            | Expr::ArrayLen { span, .. }
            | Expr::New { span, .. }
            | Expr::NewArray { span, .. }
            | Expr::Call { span, .. }
            | Expr::StaticCall { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Unary { span, .. } => *span,
        }
    }
}

/// A fully resolved program: the unit the VM executes and the analysis reads.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// All classes, indexed by [`ClassId`].
    pub classes: Vec<Class>,
    /// All methods, indexed by [`MethodId`].
    pub methods: Vec<Method>,
    /// All fields, indexed by [`FieldId`].
    pub fields: Vec<Field>,
    /// All sequential tests, indexed by [`TestId`].
    pub tests: Vec<Test>,
    /// Class lookup by name.
    pub class_names: HashMap<String, ClassId>,
}

impl Program {
    /// The class with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (ids always come from this program).
    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id.index()]
    }

    /// The method with the given id.
    pub fn method(&self, id: MethodId) -> &Method {
        &self.methods[id.index()]
    }

    /// The field with the given id.
    pub fn field(&self, id: FieldId) -> &Field {
        &self.fields[id.index()]
    }

    /// The test with the given id.
    pub fn test(&self, id: TestId) -> &Test {
        &self.tests[id.index()]
    }

    /// Looks up a class by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.class_names.get(name).copied()
    }

    /// Looks up a test by name.
    pub fn test_by_name(&self, name: &str) -> Option<TestId> {
        self.tests.iter().find(|t| t.name == name).map(|t| t.id)
    }

    /// Resolves a method by name on `class` through the vtable (dynamic
    /// dispatch).
    pub fn dispatch(&self, class: ClassId, name: &str) -> Option<MethodId> {
        self.class(class).vtable.get(name).copied()
    }

    /// True iff `sub` is `sup` or a transitive subclass of it.
    pub fn is_subclass(&self, mut sub: ClassId, sup: ClassId) -> bool {
        loop {
            if sub == sup {
                return true;
            }
            match self.class(sub).parent {
                Some(p) => sub = p,
                None => return false,
            }
        }
    }

    /// Subtyping: reflexive; `Null <: ref`; class covariance via `extends`;
    /// arrays invariant.
    pub fn is_subtype(&self, sub: &Ty, sup: &Ty) -> bool {
        match (sub, sup) {
            (Ty::Null, t) if t.is_reference() => true,
            (Ty::Class(a), Ty::Class(b)) => self.is_subclass(*a, *b),
            (a, b) => a == b,
        }
    }

    /// True if two types are unifiable (either direction of subtyping);
    /// used by the `Q` rules of the context deriver to match setter types.
    pub fn tys_compatible(&self, a: &Ty, b: &Ty) -> bool {
        self.is_subtype(a, b) || self.is_subtype(b, a)
    }

    /// The constructor run by `new C(…)`: the class's own constructor, or
    /// the nearest ancestor's when it declares none (implicit super
    /// construction).
    pub fn ctor_for(&self, class: ClassId) -> Option<MethodId> {
        let mut cur = Some(class);
        while let Some(c) = cur {
            if let Some(ctor) = self.class(c).ctor {
                return Some(ctor);
            }
            cur = self.class(c).parent;
        }
        None
    }

    /// Finds a field by name on `class`, searching the inheritance chain.
    pub fn field_by_name(&self, class: ClassId, name: &str) -> Option<FieldId> {
        let mut cur = Some(class);
        while let Some(c) = cur {
            for &f in &self.class(c).own_fields {
                if self.field(f).name == name {
                    return Some(f);
                }
            }
            cur = self.class(c).parent;
        }
        None
    }

    /// All fields of `class`, including inherited ones.
    pub fn fields_of(&self, class: ClassId) -> &[FieldId] {
        &self.class(class).all_fields
    }

    /// Iterator over all non-constructor public entry points of `class`
    /// (its vtable), sorted by name for determinism.
    pub fn entry_points(&self, class: ClassId) -> Vec<MethodId> {
        let mut ms: Vec<MethodId> = self.class(class).vtable.values().copied().collect();
        ms.sort();
        ms
    }

    /// A stable, human-readable name like `SyncQueue.removeFirst`.
    pub fn qualified_name(&self, method: MethodId) -> String {
        let m = self.method(method);
        format!("{}.{}", self.class(m.owner).name, m.name)
    }

    /// A stable, human-readable field name like `SyncQueue.mutex`.
    pub fn qualified_field(&self, field: FieldId) -> String {
        let f = self.field(field);
        format!("{}.{}", self.class(f.owner).name, f.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_program() -> Program {
        // class A { }  class B extends A { }
        let mut prog = Program::default();
        prog.classes.push(Class {
            id: ClassId(0),
            name: "A".into(),
            parent: None,
            own_fields: vec![],
            all_fields: vec![],
            own_methods: vec![],
            vtable: HashMap::new(),
            ctor: None,
            span: Span::DUMMY,
        });
        prog.classes.push(Class {
            id: ClassId(1),
            name: "B".into(),
            parent: Some(ClassId(0)),
            own_fields: vec![],
            all_fields: vec![],
            own_methods: vec![],
            vtable: HashMap::new(),
            ctor: None,
            span: Span::DUMMY,
        });
        prog.class_names.insert("A".into(), ClassId(0));
        prog.class_names.insert("B".into(), ClassId(1));
        prog
    }

    #[test]
    fn subclass_chain() {
        let p = tiny_program();
        assert!(p.is_subclass(ClassId(1), ClassId(0)));
        assert!(p.is_subclass(ClassId(0), ClassId(0)));
        assert!(!p.is_subclass(ClassId(0), ClassId(1)));
    }

    #[test]
    fn subtyping_null_and_arrays() {
        let p = tiny_program();
        assert!(p.is_subtype(&Ty::Null, &Ty::Class(ClassId(0))));
        assert!(p.is_subtype(&Ty::Null, &Ty::Array(Box::new(Ty::Int))));
        assert!(!p.is_subtype(&Ty::Null, &Ty::Int));
        // Arrays are invariant.
        let arr_b = Ty::Array(Box::new(Ty::Class(ClassId(1))));
        let arr_a = Ty::Array(Box::new(Ty::Class(ClassId(0))));
        assert!(!p.is_subtype(&arr_b, &arr_a));
        assert!(p.is_subtype(&arr_b, &arr_b));
    }

    #[test]
    fn tys_compatible_is_symmetric() {
        let p = tiny_program();
        let a = Ty::Class(ClassId(0));
        let b = Ty::Class(ClassId(1));
        assert!(p.tys_compatible(&a, &b));
        assert!(p.tys_compatible(&b, &a));
        assert!(!p.tys_compatible(&Ty::Int, &a));
    }

    #[test]
    fn ty_display() {
        let p = tiny_program();
        let t = Ty::Array(Box::new(Ty::Class(ClassId(1))));
        assert_eq!(t.display(&p).to_string(), "B[]");
    }

    #[test]
    fn id_display() {
        assert_eq!(ClassId(3).to_string(), "c3");
        assert_eq!(MethodId(7).to_string(), "m7");
        assert_eq!(FieldId(1).to_string(), "f1");
    }
}
