//! Content-digest hooks over the HIR: what the incremental cache keys on.
//!
//! [`class_unit`] feeds a byte stream into a caller-supplied
//! [`DigestSink`] that covers **everything [`crate::lower`] reads to
//! produce one class's bodies** — its methods (constructor included) and
//! its own fields' initializers:
//!
//! * the class's own declarations in full: names, resolved ids, modifier
//!   flags, types, locals, and every statement and expression of every
//!   body, **including source spans** (spans are byte offsets into the
//!   submitted source and flow into MIR instructions, trace events, and
//!   race keys — reusing a body whose spans drifted would corrupt
//!   downstream reports, so span changes must miss the cache);
//! * the *interface* of every externally referenced symbol: method
//!   signatures, field signatures, and — because `new C(…)` lowers one
//!   `CallInit` per initialized field of `C` — the referenced class's
//!   full field layout with per-field initializer presence.
//!
//! Referenced bodies are deliberately *not* covered: lowering a call
//! emits only the callee's resolved id, so an edit inside another
//! class's method body leaves this unit's digest (and its cached MIR)
//! valid. That is exactly the "dirty cone" contract the serve cache
//! tests assert: a body-only edit re-lowers one class; a signature or
//! layout change also invalidates every referencing class; and because
//! resolved ids and spans are covered, id-shifting or offset-shifting
//! edits conservatively widen the cone rather than ever reusing a stale
//! body.
//!
//! The sink abstraction keeps this crate hasher-agnostic: the concrete
//! FNV-1a hasher lives in `narada-core` (`digest::Fnv1a`), which depends
//! on this crate and implements [`DigestSink`] for it.

use crate::ast::{BinOp, UnOp};
use crate::hir::{Block, Class, ClassId, Expr, FieldId, MethodId, Place, Program, Stmt, Ty};
use crate::span::Span;
use std::collections::BTreeSet;

/// A byte sink for content digests (implemented by `narada-core`'s
/// `Fnv1a`; any collision-reasonable 64-bit fold works).
pub trait DigestSink {
    /// Folds raw bytes into the digest state.
    fn write(&mut self, bytes: &[u8]);

    /// Folds a little-endian `u64`.
    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a string, length-prefixed to keep field boundaries
    /// unambiguous.
    fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }
}

/// Feeds the digest of one class unit into `sink` — see the module docs
/// for the exact coverage contract.
pub fn class_unit(prog: &Program, class: ClassId, sink: &mut dyn DigestSink) {
    let mut w = Walker {
        prog,
        sink,
        classes: BTreeSet::new(),
        methods: BTreeSet::new(),
        fields: BTreeSet::new(),
    };
    w.class_decl(prog.class(class));
    w.references();
}

struct Walker<'p, 's> {
    prog: &'p Program,
    sink: &'s mut dyn DigestSink,
    /// Classes referenced from the unit's own declarations.
    classes: BTreeSet<ClassId>,
    /// Methods referenced (call targets, constructors).
    methods: BTreeSet<MethodId>,
    /// Fields referenced (reads and writes).
    fields: BTreeSet<FieldId>,
}

impl Walker<'_, '_> {
    fn u64(&mut self, v: u64) {
        self.sink.write_u64(v);
    }

    fn tag(&mut self, t: u8) {
        self.sink.write(&[t]);
    }

    fn str(&mut self, s: &str) {
        self.sink.write_str(s);
    }

    fn span(&mut self, s: Span) {
        self.u64(s.start as u64);
        self.u64(s.end as u64);
    }

    /// The unit's own declarations, in full.
    fn class_decl(&mut self, c: &Class) {
        self.str("class");
        self.u64(c.id.0 as u64);
        self.str(&c.name);
        match c.parent {
            Some(p) => {
                self.tag(1);
                self.u64(p.0 as u64);
                self.classes.insert(p);
            }
            None => self.tag(0),
        }
        self.span(c.span);
        self.u64(c.own_fields.len() as u64);
        for &f in &c.own_fields {
            self.field_decl(f);
        }
        // Constructor first (it is not in `own_methods`), then methods.
        self.u64(c.ctor.map_or(0, |m| m.0 as u64 + 1));
        if let Some(ctor) = c.ctor {
            self.method_decl(ctor);
        }
        self.u64(c.own_methods.len() as u64);
        for &m in &c.own_methods {
            self.method_decl(m);
        }
    }

    fn field_decl(&mut self, id: FieldId) {
        let f = self.prog.field(id);
        self.str("field");
        self.u64(f.id.0 as u64);
        self.str(&f.name);
        self.ty(&f.ty);
        self.u64(f.owner.0 as u64);
        self.span(f.span);
        match &f.init {
            Some(e) => {
                self.tag(1);
                self.expr(e);
            }
            None => self.tag(0),
        }
    }

    fn method_decl(&mut self, id: MethodId) {
        let m = self.prog.method(id);
        self.str("method");
        self.u64(m.id.0 as u64);
        self.str(&m.name);
        self.u64(m.owner.0 as u64);
        self.tag(m.is_static as u8);
        self.tag(m.is_sync as u8);
        self.tag(m.is_ctor as u8);
        self.ty(&m.ret);
        self.u64(m.num_params as u64);
        self.u64(m.locals.len() as u64);
        for l in &m.locals {
            self.str(&l.name);
            self.ty(&l.ty);
        }
        self.span(m.span);
        self.block(&m.body);
    }

    fn ty(&mut self, t: &Ty) {
        match t {
            Ty::Int => self.tag(1),
            Ty::Bool => self.tag(2),
            Ty::Void => self.tag(3),
            Ty::Null => self.tag(4),
            Ty::Class(c) => {
                self.tag(5);
                self.u64(c.0 as u64);
                self.classes.insert(*c);
            }
            Ty::Array(e) => {
                self.tag(6);
                self.ty(e);
            }
        }
    }

    fn block(&mut self, b: &Block) {
        self.u64(b.stmts.len() as u64);
        for s in &b.stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Let { local, init, span } => {
                self.tag(10);
                self.u64(local.0 as u64);
                self.expr(init);
                self.span(*span);
            }
            Stmt::Assign { place, value, span } => {
                self.tag(11);
                self.place(place);
                self.expr(value);
                self.span(*span);
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                span,
            } => {
                self.tag(12);
                self.expr(cond);
                self.block(then_blk);
                match else_blk {
                    Some(b) => {
                        self.tag(1);
                        self.block(b);
                    }
                    None => self.tag(0),
                }
                self.span(*span);
            }
            Stmt::While { cond, body, span } => {
                self.tag(13);
                self.expr(cond);
                self.block(body);
                self.span(*span);
            }
            Stmt::Sync { lock, body, span } => {
                self.tag(14);
                self.expr(lock);
                self.block(body);
                self.span(*span);
            }
            Stmt::Return { value, span } => {
                self.tag(15);
                match value {
                    Some(e) => {
                        self.tag(1);
                        self.expr(e);
                    }
                    None => self.tag(0),
                }
                self.span(*span);
            }
            Stmt::Assert { cond, span } => {
                self.tag(16);
                self.expr(cond);
                self.span(*span);
            }
            Stmt::Expr(e) => {
                self.tag(17);
                self.expr(e);
            }
        }
    }

    fn place(&mut self, p: &Place) {
        match p {
            Place::Local(l) => {
                self.tag(1);
                self.u64(l.0 as u64);
            }
            Place::Field { obj, field } => {
                self.tag(2);
                self.expr(obj);
                self.u64(field.0 as u64);
                self.fields.insert(*field);
            }
            Place::Index { arr, idx } => {
                self.tag(3);
                self.expr(arr);
                self.expr(idx);
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Int(n, s) => {
                self.tag(30);
                self.u64(*n as u64);
                self.span(*s);
            }
            Expr::Bool(b, s) => {
                self.tag(31);
                self.tag(*b as u8);
                self.span(*s);
            }
            Expr::Null(s) => {
                self.tag(32);
                self.span(*s);
            }
            Expr::Local(l, s) => {
                self.tag(33);
                self.u64(l.0 as u64);
                self.span(*s);
            }
            Expr::GetField { obj, field, span } => {
                self.tag(34);
                self.expr(obj);
                self.u64(field.0 as u64);
                self.fields.insert(*field);
                self.span(*span);
            }
            Expr::Index { arr, idx, span } => {
                self.tag(35);
                self.expr(arr);
                self.expr(idx);
                self.span(*span);
            }
            Expr::ArrayLen { arr, span } => {
                self.tag(36);
                self.expr(arr);
                self.span(*span);
            }
            Expr::New {
                class,
                args,
                ctor,
                span,
            } => {
                self.tag(37);
                self.u64(class.0 as u64);
                self.classes.insert(*class);
                self.u64(args.len() as u64);
                for a in args {
                    self.expr(a);
                }
                self.u64(ctor.map_or(0, |m| m.0 as u64 + 1));
                if let Some(m) = ctor {
                    self.methods.insert(*m);
                }
                self.span(*span);
            }
            Expr::NewArray { elem, len, span } => {
                self.tag(38);
                self.ty(elem);
                self.expr(len);
                self.span(*span);
            }
            Expr::Call {
                recv,
                method,
                args,
                span,
            } => {
                self.tag(39);
                self.expr(recv);
                self.u64(method.0 as u64);
                self.methods.insert(*method);
                self.u64(args.len() as u64);
                for a in args {
                    self.expr(a);
                }
                self.span(*span);
            }
            Expr::StaticCall { method, args, span } => {
                self.tag(40);
                self.u64(method.0 as u64);
                self.methods.insert(*method);
                self.u64(args.len() as u64);
                for a in args {
                    self.expr(a);
                }
                self.span(*span);
            }
            Expr::Rand(s) => {
                self.tag(41);
                self.span(*s);
            }
            Expr::Binary { op, lhs, rhs, span } => {
                self.tag(42);
                self.tag(binop_tag(*op));
                self.expr(lhs);
                self.expr(rhs);
                self.span(*span);
            }
            Expr::Unary { op, operand, span } => {
                self.tag(43);
                self.tag(match op {
                    UnOp::Not => 1,
                    UnOp::Neg => 2,
                });
                self.expr(operand);
                self.span(*span);
            }
        }
    }

    /// Interface digests of everything referenced externally, in sorted
    /// id order so the stream is deterministic.
    fn references(&mut self) {
        let classes = std::mem::take(&mut self.classes);
        let methods = std::mem::take(&mut self.methods);
        let fields = std::mem::take(&mut self.fields);
        self.str("refs");
        self.u64(classes.len() as u64);
        for c in classes {
            self.class_interface(c);
        }
        self.u64(methods.len() as u64);
        for m in methods {
            self.method_signature(m);
        }
        self.u64(fields.len() as u64);
        for f in fields {
            self.field_signature(f);
        }
    }

    /// A referenced class's layout-relevant interface: identity, parent,
    /// and the full `all_fields` order with per-field type and
    /// initializer *presence* (`new C(…)` lowers one `CallInit` per
    /// initialized field, parent-first — the initializer *bodies* belong
    /// to their declaring class's unit).
    fn class_interface(&mut self, id: ClassId) {
        let c = self.prog.class(id);
        self.str("iface");
        self.u64(c.id.0 as u64);
        self.str(&c.name);
        self.u64(c.parent.map_or(0, |p| p.0 as u64 + 1));
        self.u64(c.ctor.map_or(0, |m| m.0 as u64 + 1));
        self.u64(c.all_fields.len() as u64);
        for &f in &c.all_fields {
            self.field_signature(f);
        }
    }

    fn method_signature(&mut self, id: MethodId) {
        let m = self.prog.method(id);
        self.str("msig");
        self.u64(m.id.0 as u64);
        self.str(&m.name);
        self.u64(m.owner.0 as u64);
        self.tag(m.is_static as u8);
        self.tag(m.is_sync as u8);
        self.tag(m.is_ctor as u8);
        let ret = m.ret.clone();
        self.ty_sig(&ret);
        self.u64(m.num_params as u64);
        for t in m.param_tys() {
            let t = t.clone();
            self.ty_sig(&t);
        }
    }

    fn field_signature(&mut self, id: FieldId) {
        let f = self.prog.field(id);
        self.str("fsig");
        self.u64(f.id.0 as u64);
        self.str(&f.name);
        let ty = f.ty.clone();
        self.ty_sig(&ty);
        self.u64(f.owner.0 as u64);
        self.tag(f.init.is_some() as u8);
    }

    /// Type digest for signatures: like [`Walker::ty`] but without
    /// collecting further references (signatures close the ref walk —
    /// transitive interfaces are reachable only through resolved ids,
    /// which shift on any declaration reshuffle and are covered here).
    fn ty_sig(&mut self, t: &Ty) {
        match t {
            Ty::Int => self.tag(1),
            Ty::Bool => self.tag(2),
            Ty::Void => self.tag(3),
            Ty::Null => self.tag(4),
            Ty::Class(c) => {
                self.tag(5);
                self.u64(c.0 as u64);
            }
            Ty::Array(e) => {
                self.tag(6);
                self.ty_sig(e);
            }
        }
    }
}

fn binop_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 1,
        BinOp::Sub => 2,
        BinOp::Mul => 3,
        BinOp::Div => 4,
        BinOp::Rem => 5,
        BinOp::Eq => 6,
        BinOp::Ne => 7,
        BinOp::Lt => 8,
        BinOp::Le => 9,
        BinOp::Gt => 10,
        BinOp::Ge => 11,
        BinOp::And => 12,
        BinOp::Or => 13,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    /// A sink good enough for unit tests: xor-rotate fold.
    #[derive(Default)]
    struct TestSink(u64);

    impl DigestSink for TestSink {
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 = self.0.rotate_left(9) ^ b as u64;
            }
        }
    }

    fn unit_digest(src: &str, class: &str) -> u64 {
        let prog = compile(src).expect("compiles");
        let id = prog.class_by_name(class).expect("class exists");
        let mut sink = TestSink::default();
        class_unit(&prog, id, &mut sink);
        sink.0
    }

    const TWO: &str = "
        class A { int x; void bump() { this.x = this.x + 1; } }
        class B { A a; void go() { this.a = new A(); this.a.bump(); } }
        test t { var b = new B(); b.go(); }
    ";

    #[test]
    fn deterministic() {
        assert_eq!(unit_digest(TWO, "A"), unit_digest(TWO, "A"));
        assert_ne!(unit_digest(TWO, "A"), unit_digest(TWO, "B"));
    }

    #[test]
    fn body_edit_dirties_only_its_class() {
        // Same-length edit inside A's body: A's unit changes, B's does
        // not (B references only A's interface).
        let edited = TWO.replace("this.x + 1", "this.x + 2");
        assert_ne!(unit_digest(TWO, "A"), unit_digest(&edited, "A"));
        assert_eq!(unit_digest(TWO, "B"), unit_digest(&edited, "B"));
    }

    #[test]
    fn signature_edit_dirties_referencing_class() {
        // Renaming A's method changes A's interface; B calls it, so both
        // units change. (Same byte length, so spans don't shift.)
        let edited = TWO.replace("bump", "bumq");
        assert_ne!(unit_digest(TWO, "A"), unit_digest(&edited, "A"));
        assert_ne!(unit_digest(TWO, "B"), unit_digest(&edited, "B"));
    }

    #[test]
    fn initializer_presence_dirties_new_sites() {
        // Giving A's field an initializer changes what `new A()` lowers
        // to inside B, so B's unit must change too.
        let edited = TWO.replace("int x;", "int x=7;");
        assert_ne!(unit_digest(TWO, "B"), unit_digest(&edited, "B"));
    }

    #[test]
    fn span_shift_dirties_suffix_classes() {
        // A length-changing edit before B shifts every span inside B;
        // cached bodies would carry stale offsets, so B must miss.
        let edited = TWO.replace("int x;", "int  x;");
        assert_ne!(unit_digest(TWO, "B"), unit_digest(&edited, "B"));
    }
}
