//! Name resolution and type checking: lowers the parsed [`ast`] into the
//! resolved [`hir`].
//!
//! Checking proceeds in three passes:
//!
//! 1. **collect** — assign [`ClassId`]s, resolve `extends` edges, reject
//!    duplicate and cyclic class hierarchies;
//! 2. **declare** — build field/method arenas, inherited field lists and
//!    vtables, checking duplicate members and override signatures;
//! 3. **check** — type-check every field initializer, method body, and test
//!    body, lowering them to HIR.
//!
//! [`ast`]: crate::ast
//! [`hir`]: crate::hir

use crate::ast;
use crate::ast::{BinOp, UnOp};
use crate::error::{Diagnostic, Diagnostics, Phase};
use crate::hir::*;
use crate::span::Span;
use std::collections::HashMap;

/// Type-checks a parsed program and lowers it to HIR.
///
/// # Errors
///
/// Returns every resolution/typing error found. Bodies containing errors are
/// still traversed as far as possible so that multiple errors are reported.
pub fn check(ast: &ast::Program) -> Result<Program, Diagnostics> {
    let mut cx = Checker {
        prog: Program::default(),
        errors: Vec::new(),
    };
    cx.collect_classes(ast);
    if cx.errors.is_empty() {
        cx.declare_members(ast);
    }
    if cx.errors.is_empty() {
        cx.check_bodies(ast);
    }
    if cx.errors.is_empty() {
        Ok(cx.prog)
    } else {
        Err(Diagnostics::new(cx.errors))
    }
}

struct Checker {
    prog: Program,
    errors: Vec<Diagnostic>,
}

impl Checker {
    fn error(&mut self, msg: impl Into<String>, span: Span) {
        self.errors.push(Diagnostic::new(Phase::Check, msg, span));
    }

    // ------------------------------------------------------------------
    // Pass 1: classes
    // ------------------------------------------------------------------

    fn collect_classes(&mut self, ast: &ast::Program) {
        for decl in &ast.classes {
            if self.prog.class_names.contains_key(&decl.name.name) {
                self.error(
                    format!("duplicate class `{}`", decl.name.name),
                    decl.name.span,
                );
                continue;
            }
            let id = ClassId(self.prog.classes.len() as u32);
            self.prog.class_names.insert(decl.name.name.clone(), id);
            self.prog.classes.push(Class {
                id,
                name: decl.name.name.clone(),
                parent: None,
                own_fields: Vec::new(),
                all_fields: Vec::new(),
                own_methods: Vec::new(),
                vtable: HashMap::new(),
                ctor: None,
                span: decl.span,
            });
        }
        // Resolve parents.
        for decl in &ast.classes {
            let Some(&id) = self.prog.class_names.get(&decl.name.name) else {
                continue;
            };
            if let Some(parent) = &decl.parent {
                match self.prog.class_names.get(&parent.name).copied() {
                    Some(pid) if pid == id => {
                        self.error(
                            format!("class `{}` extends itself", decl.name.name),
                            parent.span,
                        );
                    }
                    Some(pid) => self.prog.classes[id.index()].parent = Some(pid),
                    None => {
                        self.error(format!("unknown superclass `{}`", parent.name), parent.span)
                    }
                }
            }
        }
        // Reject cycles.
        for c in 0..self.prog.classes.len() {
            let start = ClassId(c as u32);
            let mut slow = start;
            let mut steps = 0usize;
            let mut cur = self.prog.class(start).parent;
            while let Some(p) = cur {
                if p == slow {
                    self.error(
                        format!(
                            "inheritance cycle involving `{}`",
                            self.prog.class(start).name
                        ),
                        self.prog.class(start).span,
                    );
                    // Break the cycle so later passes terminate.
                    self.prog.classes[c].parent = None;
                    break;
                }
                steps += 1;
                if steps.is_multiple_of(2) {
                    slow = self.prog.class(slow).parent.unwrap_or(slow);
                }
                cur = self.prog.class(p).parent;
            }
        }
    }

    // ------------------------------------------------------------------
    // Pass 2: members
    // ------------------------------------------------------------------

    fn resolve_ty(&mut self, t: &ast::TypeExpr) -> Ty {
        match t {
            ast::TypeExpr::Int(_) => Ty::Int,
            ast::TypeExpr::Bool(_) => Ty::Bool,
            ast::TypeExpr::Named(id) => match self.prog.class_names.get(&id.name) {
                Some(&c) => Ty::Class(c),
                None => {
                    self.error(format!("unknown type `{}`", id.name), id.span);
                    Ty::Int // recovery type
                }
            },
            ast::TypeExpr::Array(elem, _) => Ty::Array(Box::new(self.resolve_ty(elem))),
        }
    }

    fn declare_members(&mut self, ast: &ast::Program) {
        for decl in &ast.classes {
            let id = self.prog.class_names[&decl.name.name];
            for f in &decl.fields {
                let ty = self.resolve_ty(&f.ty);
                let dup = self.prog.classes[id.index()]
                    .own_fields
                    .iter()
                    .any(|&fid| self.prog.field(fid).name == f.name.name);
                if dup {
                    self.error(
                        format!(
                            "duplicate field `{}` in class `{}`",
                            f.name.name, decl.name.name
                        ),
                        f.name.span,
                    );
                    continue;
                }
                let fid = FieldId(self.prog.fields.len() as u32);
                self.prog.fields.push(Field {
                    id: fid,
                    name: f.name.name.clone(),
                    ty,
                    owner: id,
                    init: None, // filled in pass 3
                    span: f.span,
                });
                self.prog.classes[id.index()].own_fields.push(fid);
            }
            for m in &decl.methods {
                let ret = match (&m.ret, m.is_ctor) {
                    (_, true) | (None, _) => Ty::Void,
                    (Some(t), false) => self.resolve_ty(t),
                };
                let mut locals = Vec::new();
                if !m.is_static {
                    locals.push(Local {
                        name: "this".into(),
                        ty: Ty::Class(id),
                    });
                }
                let mut seen = HashMap::new();
                for p in &m.params {
                    let ty = self.resolve_ty(&p.ty);
                    if seen.insert(p.name.name.clone(), ()).is_some() {
                        self.error(
                            format!("duplicate parameter `{}`", p.name.name),
                            p.name.span,
                        );
                    }
                    locals.push(Local {
                        name: p.name.name.clone(),
                        ty,
                    });
                }
                let mid = MethodId(self.prog.methods.len() as u32);
                let dup = if m.is_ctor {
                    self.prog.classes[id.index()].ctor.is_some()
                } else {
                    self.prog.classes[id.index()]
                        .own_methods
                        .iter()
                        .any(|&om| self.prog.method(om).name == m.name.name)
                };
                if dup {
                    self.error(
                        format!(
                            "duplicate method `{}` in class `{}` (MJ has no overloading)",
                            m.name.name, decl.name.name
                        ),
                        m.name.span,
                    );
                    continue;
                }
                self.prog.methods.push(Method {
                    id: mid,
                    name: m.name.name.clone(),
                    owner: id,
                    is_static: m.is_static,
                    is_sync: m.is_sync,
                    is_ctor: m.is_ctor,
                    ret,
                    num_params: m.params.len(),
                    locals,
                    body: Block::default(),
                    span: m.span,
                });
                if m.is_ctor {
                    self.prog.classes[id.index()].ctor = Some(mid);
                } else {
                    self.prog.classes[id.index()].own_methods.push(mid);
                }
            }
        }
        if !self.errors.is_empty() {
            return;
        }
        self.build_inherited_tables();
    }

    /// Computes `all_fields` and `vtable` in topological (parent-first)
    /// order, checking field shadowing and override signatures.
    fn build_inherited_tables(&mut self) {
        let order = self.topo_order();
        for id in order {
            let parent = self.prog.class(id).parent;
            let (mut all_fields, mut vtable) = match parent {
                Some(p) => (
                    self.prog.class(p).all_fields.clone(),
                    self.prog.class(p).vtable.clone(),
                ),
                None => (Vec::new(), HashMap::new()),
            };
            for &f in &self.prog.class(id).own_fields.clone() {
                let fname = self.prog.field(f).name.clone();
                if let Some(&shadowed) = all_fields
                    .iter()
                    .find(|&&g| self.prog.field(g).name == fname)
                {
                    let span = self.prog.field(f).span;
                    self.error(
                        format!(
                            "field `{}` shadows inherited field of class `{}`",
                            fname,
                            self.prog.class(self.prog.field(shadowed).owner).name
                        ),
                        span,
                    );
                    continue;
                }
                all_fields.push(f);
            }
            for &m in &self.prog.class(id).own_methods.clone() {
                let mname = self.prog.method(m).name.clone();
                if let Some(&overridden) = vtable.get(&mname) {
                    let ov = self.prog.method(overridden);
                    let me = self.prog.method(m);
                    let sig_ok = ov.num_params == me.num_params
                        && ov.ret == me.ret
                        && ov.is_static == me.is_static
                        && ov
                            .param_tys()
                            .iter()
                            .zip(me.param_tys().iter())
                            .all(|(a, b)| a == b);
                    if !sig_ok {
                        let span = me.span;
                        self.error(
                            format!(
                                "method `{}` overrides `{}` with an incompatible signature",
                                mname,
                                self.prog.qualified_name(overridden)
                            ),
                            span,
                        );
                    }
                }
                vtable.insert(mname, m);
            }
            let class = &mut self.prog.classes[id.index()];
            class.all_fields = all_fields;
            class.vtable = vtable;
        }
    }

    /// Parent-first class ordering (cycles already broken in pass 1).
    fn topo_order(&self) -> Vec<ClassId> {
        let n = self.prog.classes.len();
        let mut order = Vec::with_capacity(n);
        let mut done = vec![false; n];
        fn visit(prog: &Program, id: ClassId, done: &mut [bool], order: &mut Vec<ClassId>) {
            if done[id.index()] {
                return;
            }
            done[id.index()] = true;
            if let Some(p) = prog.class(id).parent {
                visit(prog, p, done, order);
            }
            order.push(id);
        }
        for i in 0..n {
            visit(&self.prog, ClassId(i as u32), &mut done, &mut order);
        }
        order
    }

    // ------------------------------------------------------------------
    // Pass 3: bodies
    // ------------------------------------------------------------------

    fn check_bodies(&mut self, ast: &ast::Program) {
        // Field initializers.
        for decl in &ast.classes {
            let cid = self.prog.class_names[&decl.name.name];
            for f in &decl.fields {
                let Some(fid) = self.prog.field_by_name(cid, &f.name.name) else {
                    continue;
                };
                if self.prog.field(fid).owner != cid {
                    continue;
                }
                if let Some(init) = &f.init {
                    let mut body = BodyCx::for_field_init(self, cid);
                    let (expr, ty) = body.expr(init);
                    let want = body.cx.prog.field(fid).ty.clone();
                    body.require_assignable(&ty, &want, init.span());
                    self.prog.fields[fid.index()].init = Some(expr);
                }
            }
        }
        // Method bodies.
        for decl in &ast.classes {
            let cid = self.prog.class_names[&decl.name.name];
            for m in &decl.methods {
                let mid = if m.is_ctor {
                    self.prog.class(cid).ctor
                } else {
                    self.prog
                        .class(cid)
                        .own_methods
                        .iter()
                        .copied()
                        .find(|&om| self.prog.method(om).name == m.name.name)
                };
                let Some(mid) = mid else { continue };
                let mut body = BodyCx::for_method(self, mid);
                let blk = body.block(&m.body);
                let locals = std::mem::take(&mut body.locals);
                self.prog.methods[mid.index()].body = blk;
                self.prog.methods[mid.index()].locals = locals;
            }
        }
        // Tests.
        for t in &ast.tests {
            if self
                .prog
                .tests
                .iter()
                .any(|existing| existing.name == t.name.name)
            {
                self.error(format!("duplicate test `{}`", t.name.name), t.name.span);
                continue;
            }
            let id = TestId(self.prog.tests.len() as u32);
            let mut body = BodyCx::for_test(self);
            let blk = body.block(&t.body);
            let locals = std::mem::take(&mut body.locals);
            self.prog.tests.push(Test {
                id,
                name: t.name.name.clone(),
                locals,
                body: blk,
                span: t.span,
            });
        }
    }
}

/// Context for checking one body (method, test, or field initializer).
struct BodyCx<'a> {
    cx: &'a mut Checker,
    /// All local slots seen so far.
    locals: Vec<Local>,
    /// Lexical scopes: name → slot. Innermost last.
    scopes: Vec<HashMap<String, LocalId>>,
    /// Return type expected (`None` inside tests / field inits).
    ret: Option<Ty>,
    /// Whether `this` (slot 0) is available.
    has_this: bool,
}

impl<'a> BodyCx<'a> {
    fn for_method(cx: &'a mut Checker, mid: MethodId) -> Self {
        let m = cx.prog.method(mid);
        let locals = m.locals.clone();
        let ret = Some(m.ret.clone());
        let has_this = !m.is_static;
        let mut scope = HashMap::new();
        for (i, l) in locals.iter().enumerate() {
            scope.insert(l.name.clone(), LocalId(i as u32));
        }
        BodyCx {
            cx,
            locals,
            scopes: vec![scope],
            ret,
            has_this,
        }
    }

    fn for_test(cx: &'a mut Checker) -> Self {
        BodyCx {
            cx,
            locals: Vec::new(),
            scopes: vec![HashMap::new()],
            ret: None,
            has_this: false,
        }
    }

    fn for_field_init(cx: &'a mut Checker, owner: ClassId) -> Self {
        BodyCx {
            cx,
            locals: vec![Local {
                name: "this".into(),
                ty: Ty::Class(owner),
            }],
            scopes: vec![HashMap::from([("this".to_string(), LocalId(0))])],
            ret: None,
            has_this: true,
        }
    }

    fn lookup(&self, name: &str) -> Option<LocalId> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn declare(&mut self, name: &str, ty: Ty, span: Span) -> LocalId {
        if self
            .scopes
            .last()
            .expect("scope stack never empty")
            .contains_key(name)
        {
            self.cx
                .error(format!("`{name}` is already defined in this scope"), span);
        }
        let id = LocalId(self.locals.len() as u32);
        self.locals.push(Local {
            name: name.to_string(),
            ty,
        });
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), id);
        id
    }

    fn require_assignable(&mut self, found: &Ty, want: &Ty, span: Span) {
        if !self.cx.prog.is_subtype(found, want) {
            let found = found.display(&self.cx.prog).to_string();
            let want = want.display(&self.cx.prog).to_string();
            self.cx
                .error(format!("expected `{want}`, found `{found}`"), span);
        }
    }

    fn block(&mut self, blk: &ast::Block) -> Block {
        self.scopes.push(HashMap::new());
        let stmts = blk.stmts.iter().map(|s| self.stmt(s)).collect();
        self.scopes.pop();
        Block { stmts }
    }

    fn stmt(&mut self, stmt: &ast::Stmt) -> Stmt {
        match stmt {
            ast::Stmt::Let { name, init, span } => {
                let (init, ty) = self.expr(init);
                if ty == Ty::Void {
                    self.cx
                        .error("cannot bind a variable to a `void` value", *span);
                }
                let local = self.declare(&name.name, ty, name.span);
                Stmt::Let {
                    local,
                    init,
                    span: *span,
                }
            }
            ast::Stmt::Assign {
                target,
                value,
                span,
            } => {
                let (place, want) = self.place(target);
                let (value, found) = self.expr(value);
                self.require_assignable(&found, &want, *span);
                Stmt::Assign {
                    place,
                    value,
                    span: *span,
                }
            }
            ast::Stmt::If {
                cond,
                then_blk,
                else_blk,
                span,
            } => {
                let (cond, cty) = self.expr(cond);
                self.require_assignable(&cty, &Ty::Bool, cond.span());
                Stmt::If {
                    cond,
                    then_blk: self.block(then_blk),
                    else_blk: else_blk.as_ref().map(|b| self.block(b)),
                    span: *span,
                }
            }
            ast::Stmt::While { cond, body, span } => {
                let (cond, cty) = self.expr(cond);
                self.require_assignable(&cty, &Ty::Bool, cond.span());
                Stmt::While {
                    cond,
                    body: self.block(body),
                    span: *span,
                }
            }
            ast::Stmt::Sync { lock, body, span } => {
                let (lock, lty) = self.expr(lock);
                if !lty.is_reference() {
                    let lty = lty.display(&self.cx.prog).to_string();
                    self.cx.error(
                        format!("`sync` requires a reference type, found `{lty}`"),
                        *span,
                    );
                }
                Stmt::Sync {
                    lock,
                    body: self.block(body),
                    span: *span,
                }
            }
            ast::Stmt::Return { value, span } => {
                let ret = self.ret.clone();
                match (&ret, value) {
                    (None, _) if value.is_some() => {
                        self.cx.error("cannot `return` a value here", *span);
                        Stmt::Return {
                            value: None,
                            span: *span,
                        }
                    }
                    (_, None) => {
                        if let Some(r) = &ret {
                            if *r != Ty::Void {
                                self.cx
                                    .error("missing return value in non-void method", *span);
                            }
                        }
                        Stmt::Return {
                            value: None,
                            span: *span,
                        }
                    }
                    (Some(want), Some(v)) => {
                        let (v, found) = self.expr(v);
                        if *want == Ty::Void {
                            self.cx
                                .error("cannot return a value from a `void` method", *span);
                        } else {
                            self.require_assignable(&found, &want.clone(), v.span());
                        }
                        Stmt::Return {
                            value: Some(v),
                            span: *span,
                        }
                    }
                    (None, Some(_)) => unreachable!("covered above"),
                }
            }
            ast::Stmt::Assert { cond, span } => {
                let (cond, cty) = self.expr(cond);
                self.require_assignable(&cty, &Ty::Bool, cond.span());
                Stmt::Assert { cond, span: *span }
            }
            ast::Stmt::Expr(e) => {
                if !matches!(
                    e,
                    ast::Expr::Call { .. } | ast::Expr::BuiltinCall { .. } | ast::Expr::New { .. }
                ) {
                    self.cx.error(
                        "only calls and allocations can be used as statements",
                        e.span(),
                    );
                }
                let (e, _) = self.expr(e);
                Stmt::Expr(e)
            }
        }
    }

    fn place(&mut self, target: &ast::Expr) -> (Place, Ty) {
        match target {
            ast::Expr::Name(id) => match self.lookup(&id.name) {
                Some(local) => {
                    let ty = self.locals[local.index()].ty.clone();
                    (Place::Local(local), ty)
                }
                None => {
                    self.cx
                        .error(format!("unknown variable `{}`", id.name), id.span);
                    (
                        Place::Local(self.declare(&id.name, Ty::Int, id.span)),
                        Ty::Int,
                    )
                }
            },
            ast::Expr::This(span) => {
                self.cx.error("cannot assign to `this`", *span);
                (Place::Local(LocalId(0)), Ty::Int)
            }
            ast::Expr::Field { obj, field, span } => {
                let (obj, oty) = self.expr(obj);
                match oty {
                    Ty::Class(c) => match self.cx.prog.field_by_name(c, &field.name) {
                        Some(f) => {
                            let fty = self.cx.prog.field(f).ty.clone();
                            (Place::Field { obj, field: f }, fty)
                        }
                        None => {
                            self.cx.error(
                                format!(
                                    "class `{}` has no field `{}`",
                                    self.cx.prog.class(c).name,
                                    field.name
                                ),
                                field.span,
                            );
                            (Place::Local(LocalId(0)), Ty::Int)
                        }
                    },
                    Ty::Array(_) if field.name == "length" => {
                        self.cx.error("array `length` is read-only", *span);
                        (Place::Local(LocalId(0)), Ty::Int)
                    }
                    other => {
                        let other = other.display(&self.cx.prog).to_string();
                        self.cx
                            .error(format!("field access on non-object type `{other}`"), *span);
                        (Place::Local(LocalId(0)), Ty::Int)
                    }
                }
            }
            ast::Expr::Index { arr, idx, span } => {
                let (arr, aty) = self.expr(arr);
                let (idx, ity) = self.expr(idx);
                self.require_assignable(&ity, &Ty::Int, idx.span());
                match aty {
                    Ty::Array(elem) => (Place::Index { arr, idx }, *elem),
                    other => {
                        let other = other.display(&self.cx.prog).to_string();
                        self.cx
                            .error(format!("indexing non-array type `{other}`"), *span);
                        (Place::Local(LocalId(0)), Ty::Int)
                    }
                }
            }
            other => {
                self.cx.error("invalid assignment target", other.span());
                (Place::Local(LocalId(0)), Ty::Int)
            }
        }
    }

    /// Checks an expression and returns its lowering plus its static type.
    fn expr(&mut self, e: &ast::Expr) -> (Expr, Ty) {
        match e {
            ast::Expr::Int(n, s) => (Expr::Int(*n, *s), Ty::Int),
            ast::Expr::Bool(b, s) => (Expr::Bool(*b, *s), Ty::Bool),
            ast::Expr::Null(s) => (Expr::Null(*s), Ty::Null),
            ast::Expr::This(s) => {
                if !self.has_this {
                    self.cx
                        .error("`this` is not available in a static context", *s);
                    return (Expr::Int(0, *s), Ty::Int);
                }
                let ty = self.locals[0].ty.clone();
                (Expr::Local(LocalId(0), *s), ty)
            }
            ast::Expr::Name(id) => match self.lookup(&id.name) {
                Some(local) => {
                    let ty = self.locals[local.index()].ty.clone();
                    (Expr::Local(local, id.span), ty)
                }
                None => {
                    self.cx
                        .error(format!("unknown variable `{}`", id.name), id.span);
                    (Expr::Int(0, id.span), Ty::Int)
                }
            },
            ast::Expr::Field { obj, field, span } => {
                // Class-qualified static access is only legal in call
                // position, handled under `Call` below.
                let (obj, oty) = self.expr(obj);
                match oty {
                    Ty::Class(c) => match self.cx.prog.field_by_name(c, &field.name) {
                        Some(f) => {
                            let ty = self.cx.prog.field(f).ty.clone();
                            (
                                Expr::GetField {
                                    obj: Box::new(obj),
                                    field: f,
                                    span: *span,
                                },
                                ty,
                            )
                        }
                        None => {
                            self.cx.error(
                                format!(
                                    "class `{}` has no field `{}`",
                                    self.cx.prog.class(c).name,
                                    field.name
                                ),
                                field.span,
                            );
                            (Expr::Int(0, *span), Ty::Int)
                        }
                    },
                    Ty::Array(_) if field.name == "length" => (
                        Expr::ArrayLen {
                            arr: Box::new(obj),
                            span: *span,
                        },
                        Ty::Int,
                    ),
                    other => {
                        let other = other.display(&self.cx.prog).to_string();
                        self.cx
                            .error(format!("field access on non-object type `{other}`"), *span);
                        (Expr::Int(0, *span), Ty::Int)
                    }
                }
            }
            ast::Expr::Index { arr, idx, span } => {
                let (arr, aty) = self.expr(arr);
                let (idx, ity) = self.expr(idx);
                self.require_assignable(&ity, &Ty::Int, idx.span());
                match aty {
                    Ty::Array(elem) => (
                        Expr::Index {
                            arr: Box::new(arr),
                            idx: Box::new(idx),
                            span: *span,
                        },
                        *elem,
                    ),
                    other => {
                        let other = other.display(&self.cx.prog).to_string();
                        self.cx
                            .error(format!("indexing non-array type `{other}`"), *span);
                        (Expr::Int(0, *span), Ty::Int)
                    }
                }
            }
            ast::Expr::Call {
                recv,
                method,
                args,
                span,
            } => self.call(recv, method, args, *span),
            ast::Expr::BuiltinCall { name, args, span } => {
                if name.name == "rand" {
                    if !args.is_empty() {
                        self.cx.error("`rand()` takes no arguments", *span);
                    }
                    (Expr::Rand(*span), Ty::Int)
                } else {
                    self.cx.error(
                        format!(
                            "unknown function `{}` (only `rand()` and method calls exist)",
                            name.name
                        ),
                        name.span,
                    );
                    (Expr::Int(0, *span), Ty::Int)
                }
            }
            ast::Expr::New { class, args, span } => {
                let Some(&cid) = self.cx.prog.class_names.get(&class.name) else {
                    self.cx
                        .error(format!("unknown class `{}`", class.name), class.span);
                    return (Expr::Int(0, *span), Ty::Int);
                };
                let ctor = self.cx.prog.ctor_for(cid);
                let args = self.check_args_against(ctor, args, *span, &class.name);
                (
                    Expr::New {
                        class: cid,
                        args,
                        ctor,
                        span: *span,
                    },
                    Ty::Class(cid),
                )
            }
            ast::Expr::NewArray { elem, len, span } => {
                let elem = self.cx.resolve_ty(elem);
                let (len, lty) = self.expr(len);
                self.require_assignable(&lty, &Ty::Int, len.span());
                (
                    Expr::NewArray {
                        elem: elem.clone(),
                        len: Box::new(len),
                        span: *span,
                    },
                    Ty::Array(Box::new(elem)),
                )
            }
            ast::Expr::Binary { op, lhs, rhs, span } => {
                let (lhs, lt) = self.expr(lhs);
                let (rhs, rt) = self.expr(rhs);
                let ty = self.binary_ty(*op, &lt, &rt, *span);
                (
                    Expr::Binary {
                        op: *op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                        span: *span,
                    },
                    ty,
                )
            }
            ast::Expr::Unary { op, operand, span } => {
                let (operand, ot) = self.expr(operand);
                let want = match op {
                    UnOp::Not => Ty::Bool,
                    UnOp::Neg => Ty::Int,
                };
                self.require_assignable(&ot, &want, *span);
                (
                    Expr::Unary {
                        op: *op,
                        operand: Box::new(operand),
                        span: *span,
                    },
                    want,
                )
            }
        }
    }

    fn binary_ty(&mut self, op: BinOp, lt: &Ty, rt: &Ty, span: Span) -> Ty {
        use BinOp::*;
        match op {
            Add | Sub | Mul | Div | Rem => {
                self.require_assignable(lt, &Ty::Int, span);
                self.require_assignable(rt, &Ty::Int, span);
                Ty::Int
            }
            Lt | Le | Gt | Ge => {
                self.require_assignable(lt, &Ty::Int, span);
                self.require_assignable(rt, &Ty::Int, span);
                Ty::Bool
            }
            And | Or => {
                self.require_assignable(lt, &Ty::Bool, span);
                self.require_assignable(rt, &Ty::Bool, span);
                Ty::Bool
            }
            Eq | Ne => {
                let ok =
                    self.cx.prog.tys_compatible(lt, rt) || (lt.is_reference() && rt.is_reference());
                if !ok {
                    let l = lt.display(&self.cx.prog).to_string();
                    let r = rt.display(&self.cx.prog).to_string();
                    self.cx
                        .error(format!("cannot compare `{l}` with `{r}`"), span);
                }
                Ty::Bool
            }
        }
    }

    fn call(
        &mut self,
        recv: &ast::Expr,
        method: &ast::Ident,
        args: &[ast::Expr],
        span: Span,
    ) -> (Expr, Ty) {
        // `C.m(args)` — static call when `C` names a class and is not a local.
        if let ast::Expr::Name(id) = recv {
            if self.lookup(&id.name).is_none() {
                if let Some(&cid) = self.cx.prog.class_names.get(&id.name) {
                    return self.static_call(cid, method, args, span);
                }
                self.cx
                    .error(format!("unknown variable `{}`", id.name), id.span);
                return (Expr::Int(0, span), Ty::Int);
            }
        }
        let (recv, rty) = self.expr(recv);
        let Ty::Class(c) = rty else {
            let rty = rty.display(&self.cx.prog).to_string();
            self.cx
                .error(format!("method call on non-object type `{rty}`"), span);
            return (Expr::Int(0, span), Ty::Int);
        };
        let Some(mid) = self.cx.prog.dispatch(c, &method.name) else {
            self.cx.error(
                format!(
                    "class `{}` has no method `{}`",
                    self.cx.prog.class(c).name,
                    method.name
                ),
                method.span,
            );
            return (Expr::Int(0, span), Ty::Int);
        };
        if self.cx.prog.method(mid).is_static {
            self.cx.error(
                format!(
                    "`{}` is static; call it as `{}(…)`",
                    method.name,
                    self.cx.prog.qualified_name(mid)
                ),
                method.span,
            );
        }
        let ret = self.cx.prog.method(mid).ret.clone();
        let args = self.check_args_against(Some(mid), args, span, &method.name);
        (
            Expr::Call {
                recv: Box::new(recv),
                method: mid,
                args,
                span,
            },
            ret,
        )
    }

    fn static_call(
        &mut self,
        cid: ClassId,
        method: &ast::Ident,
        args: &[ast::Expr],
        span: Span,
    ) -> (Expr, Ty) {
        let target = self
            .cx
            .prog
            .class(cid)
            .own_methods
            .iter()
            .copied()
            .find(|&m| self.cx.prog.method(m).name == method.name);
        let Some(mid) = target else {
            self.cx.error(
                format!(
                    "class `{}` has no static method `{}`",
                    self.cx.prog.class(cid).name,
                    method.name
                ),
                method.span,
            );
            return (Expr::Int(0, span), Ty::Int);
        };
        if !self.cx.prog.method(mid).is_static {
            self.cx.error(
                format!(
                    "`{}` is an instance method; call it on an object",
                    self.cx.prog.qualified_name(mid)
                ),
                method.span,
            );
        }
        let ret = self.cx.prog.method(mid).ret.clone();
        let args = self.check_args_against(Some(mid), args, span, &method.name);
        (
            Expr::StaticCall {
                method: mid,
                args,
                span,
            },
            ret,
        )
    }

    fn check_args_against(
        &mut self,
        target: Option<MethodId>,
        args: &[ast::Expr],
        span: Span,
        name: &str,
    ) -> Vec<Expr> {
        let want: Vec<Ty> = match target {
            Some(m) => self
                .cx
                .prog
                .method(m)
                .param_tys()
                .into_iter()
                .cloned()
                .collect(),
            None => Vec::new(),
        };
        if args.len() != want.len() {
            self.cx.error(
                format!(
                    "`{name}` expects {} argument(s), got {}",
                    want.len(),
                    args.len()
                ),
                span,
            );
        }
        let mut out = Vec::with_capacity(args.len());
        for (i, a) in args.iter().enumerate() {
            let (a, ty) = self.expr(a);
            if let Some(w) = want.get(i) {
                self.require_assignable(&ty, &w.clone(), a.span());
            }
            out.push(a);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn compile(src: &str) -> Program {
        let ast = parse(src).unwrap_or_else(|e| panic!("parse failed:\n{e}"));
        check(&ast).unwrap_or_else(|e| panic!("check failed:\n{e}"))
    }

    fn compile_err(src: &str) -> String {
        let ast = parse(src).expect("parse should succeed");
        check(&ast).expect_err("check should fail").to_string()
    }

    #[test]
    fn checks_counter_lib() {
        let p = compile(
            r#"
            class Counter {
                int count;
                void inc() { this.count = this.count + 1; }
            }
            class Lib {
                Counter c;
                sync void update() { this.c.inc(); }
                sync void set(Counter x) { this.c = x; }
            }
            test t1 {
                var r = new Counter();
                var l = new Lib();
                l.set(r);
                l.update();
            }
        "#,
        );
        assert_eq!(p.classes.len(), 2);
        assert_eq!(p.tests.len(), 1);
        let lib = p.class_by_name("Lib").unwrap();
        assert!(p.dispatch(lib, "update").is_some());
        assert!(p.dispatch(lib, "missing").is_none());
    }

    #[test]
    fn inheritance_and_vtable_override() {
        let p = compile(
            r#"
            class Base {
                int v;
                int get() { return this.v; }
            }
            class Derived extends Base {
                int get() { return this.v + 1; }
                int both() { return this.get(); }
            }
        "#,
        );
        let base = p.class_by_name("Base").unwrap();
        let derived = p.class_by_name("Derived").unwrap();
        let base_get = p.dispatch(base, "get").unwrap();
        let derived_get = p.dispatch(derived, "get").unwrap();
        assert_ne!(base_get, derived_get);
        assert_eq!(p.method(derived_get).owner, derived);
        // Inherited field visible.
        assert!(p.field_by_name(derived, "v").is_some());
        assert_eq!(p.fields_of(derived).len(), 1);
    }

    #[test]
    fn ctor_resolution() {
        let p = compile(
            r#"
            class Box {
                int v;
                init(int v) { this.v = v; }
            }
            test t { var b = new Box(42); }
        "#,
        );
        let b = p.class_by_name("Box").unwrap();
        assert!(p.class(b).ctor.is_some());
    }

    #[test]
    fn static_factory_call() {
        let p = compile(
            r#"
            class Queues {
                static Queues create() { return new Queues(); }
            }
            test t { var q = Queues.create(); }
        "#,
        );
        let Stmt::Let { init, .. } = &p.tests[0].body.stmts[0] else {
            panic!()
        };
        assert!(matches!(init, Expr::StaticCall { .. }));
    }

    #[test]
    fn local_shadows_class_name() {
        // A local named like a class is preferred for `x.m()`.
        let p = compile(
            r#"
            class Helper { void go() { return; } }
            test t {
                var Helper = new Helper();
                Helper.go();
            }
        "#,
        );
        let Stmt::Expr(Expr::Call { .. }) = &p.tests[0].body.stmts[1] else {
            panic!("expected instance call");
        };
    }

    #[test]
    fn array_length_lowering() {
        let p = compile(
            r#"
            class C {
                int len(int[] a) { return a.length; }
            }
        "#,
        );
        let m = &p.methods[0];
        let Stmt::Return { value: Some(v), .. } = &m.body.stmts[0] else {
            panic!()
        };
        assert!(matches!(v, Expr::ArrayLen { .. }));
    }

    #[test]
    fn err_unknown_variable() {
        let msg = compile_err("test t { x = 1; }");
        assert!(msg.contains("unknown variable `x`"), "{msg}");
    }

    #[test]
    fn err_type_mismatch_assignment() {
        let msg = compile_err(
            r#"
            class A { int x; }
            test t { var a = new A(); a.x = true; }
        "#,
        );
        assert!(msg.contains("expected `int`, found `bool`"), "{msg}");
    }

    #[test]
    fn err_subtype_violation() {
        let msg = compile_err(
            r#"
            class A { }
            class B extends A { }
            class H { B b; void set(A a) { this.b = a; } }
        "#,
        );
        assert!(msg.contains("expected `B`, found `A`"), "{msg}");
    }

    #[test]
    fn ok_upcast_assignment() {
        compile(
            r#"
            class A { }
            class B extends A { }
            class H { A a; void set(B b) { this.a = b; } }
        "#,
        );
    }

    #[test]
    fn err_this_in_test() {
        let msg = compile_err("test t { var x = this; }");
        assert!(msg.contains("static context"), "{msg}");
    }

    #[test]
    fn err_this_in_static() {
        let msg = compile_err("class C { static void m() { var x = this; } }");
        assert!(msg.contains("static context"), "{msg}");
    }

    #[test]
    fn err_duplicate_class() {
        let msg = compile_err("class A { } class A { }");
        assert!(msg.contains("duplicate class"), "{msg}");
    }

    #[test]
    fn err_inheritance_cycle() {
        let msg = compile_err("class A extends B { } class B extends A { }");
        assert!(msg.contains("cycle"), "{msg}");
    }

    #[test]
    fn err_self_extends() {
        let msg = compile_err("class A extends A { }");
        assert!(msg.contains("extends itself"), "{msg}");
    }

    #[test]
    fn err_field_shadowing() {
        let msg = compile_err(
            r#"
            class A { int x; }
            class B extends A { int x; }
        "#,
        );
        assert!(msg.contains("shadows"), "{msg}");
    }

    #[test]
    fn err_override_signature() {
        let msg = compile_err(
            r#"
            class A { int m() { return 1; } }
            class B extends A { bool m() { return true; } }
        "#,
        );
        assert!(msg.contains("incompatible signature"), "{msg}");
    }

    #[test]
    fn err_sync_on_int() {
        let msg = compile_err("class C { void m(int x) { sync (x) { } } }");
        assert!(msg.contains("reference type"), "{msg}");
    }

    #[test]
    fn err_arity() {
        let msg = compile_err(
            r#"
            class C { void m(int a, int b) { } }
            test t { var c = new C(); c.m(1); }
        "#,
        );
        assert!(msg.contains("expects 2 argument(s), got 1"), "{msg}");
    }

    #[test]
    fn err_return_value_from_void() {
        let msg = compile_err("class C { void m() { return 1; } }");
        assert!(msg.contains("void"), "{msg}");
    }

    #[test]
    fn err_call_on_int() {
        let msg = compile_err("test t { var x = 1; x.m(); }");
        assert!(msg.contains("non-object"), "{msg}");
    }

    #[test]
    fn err_duplicate_local() {
        let msg = compile_err("test t { var x = 1; var x = 2; }");
        assert!(msg.contains("already defined"), "{msg}");
    }

    #[test]
    fn nested_scope_shadowing_ok() {
        compile("test t { var x = 1; if (true) { var x = 2; } }");
    }

    #[test]
    fn null_assignable_to_reference() {
        compile(
            r#"
            class A { A next; void clear() { this.next = null; } }
        "#,
        );
    }

    #[test]
    fn err_null_assignable_to_int() {
        let msg = compile_err("class A { int x; void m() { this.x = null; } }");
        assert!(msg.contains("found `null`"), "{msg}");
    }

    #[test]
    fn field_initializer_checked() {
        let p = compile("class A { int x = 1 + 2; A self = null; }");
        let a = p.class_by_name("A").unwrap();
        let x = p.field_by_name(a, "x").unwrap();
        assert!(p.field(x).init.is_some());
    }

    #[test]
    fn err_field_initializer_type() {
        let msg = compile_err("class A { int x = true; }");
        assert!(msg.contains("expected `int`"), "{msg}");
    }

    #[test]
    fn err_void_let() {
        let msg = compile_err(
            r#"
            class C { void m() { } }
            test t { var c = new C(); var x = c.m(); }
        "#,
        );
        assert!(msg.contains("void"), "{msg}");
    }

    #[test]
    fn reference_equality_allowed_across_hierarchy() {
        compile(
            r#"
            class A { }
            class B { }
            test t {
                var a = new A();
                var b = new B();
                assert a != null;
                var same = a == null || b == null;
            }
        "#,
        );
    }

    #[test]
    fn err_compare_int_with_bool() {
        let msg = compile_err("test t { var x = 1 == true; }");
        assert!(msg.contains("cannot compare"), "{msg}");
    }

    #[test]
    fn rand_builtin() {
        let p = compile("class C { int m() { return rand(); } }");
        let Stmt::Return { value: Some(v), .. } = &p.methods[0].body.stmts[0] else {
            panic!()
        };
        assert!(matches!(v, Expr::Rand(_)));
    }

    #[test]
    fn err_unknown_builtin() {
        let msg = compile_err("test t { foo(); }");
        assert!(msg.contains("unknown function `foo`"), "{msg}");
    }

    #[test]
    fn param_locals_layout() {
        let p = compile("class C { int m(int a, bool b) { return a; } }");
        let m = &p.methods[0];
        assert_eq!(m.locals[0].name, "this");
        assert_eq!(m.locals[1].name, "a");
        assert_eq!(m.locals[2].name, "b");
        assert_eq!(m.param_locals(), vec![LocalId(1), LocalId(2)]);
        assert_eq!(m.this_local(), Some(LocalId(0)));
    }

    #[test]
    fn static_method_has_no_this_slot() {
        let p = compile("class C { static int m(int a) { return a; } }");
        let m = &p.methods[0];
        assert_eq!(m.locals[0].name, "a");
        assert_eq!(m.param_locals(), vec![LocalId(0)]);
        assert_eq!(m.this_local(), None);
    }
}
