//! Hand-rolled lexer for the MJ language.
//!
//! Produces a flat [`Token`] vector in one pass. Comments (`// …` to end of
//! line and `/* … */` block comments) and ASCII whitespace are skipped.

use crate::error::{Diagnostic, Diagnostics, Phase};
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Lexes `src` into tokens, ending with a single [`TokenKind::Eof`] token.
///
/// # Errors
///
/// Returns all lexical errors found (unknown characters, unterminated block
/// comments, integer overflow) rather than stopping at the first.
pub fn lex(src: &str) -> Result<Vec<Token>, Diagnostics> {
    let mut lexer = Lexer {
        src: src.as_bytes(),
        pos: 0,
        tokens: Vec::new(),
        errors: Vec::new(),
    };
    lexer.run();
    if lexer.errors.is_empty() {
        Ok(lexer.tokens)
    } else {
        Err(Diagnostics::new(lexer.errors))
    }
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    tokens: Vec<Token>,
    errors: Vec<Diagnostic>,
}

impl<'s> Lexer<'s> {
    fn run(&mut self) {
        while self.pos < self.src.len() {
            let start = self.pos;
            let b = self.src[self.pos];
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => {
                    while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.block_comment(start);
                }
                b'0'..=b'9' => self.number(start),
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(start),
                _ => self.punct(start),
            }
        }
        let end = self.src.len() as u32;
        self.tokens.push(Token {
            kind: TokenKind::Eof,
            span: Span::new(end, end),
        });
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn block_comment(&mut self, start: usize) {
        self.pos += 2; // consume `/*`
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.src[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.src[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.pos += 1;
            }
        }
        if depth > 0 {
            self.errors.push(Diagnostic::new(
                Phase::Lex,
                "unterminated block comment",
                Span::new(start as u32, self.src.len() as u32),
            ));
        }
    }

    fn number(&mut self, start: usize) {
        while self
            .peek(0)
            .is_some_and(|b| b.is_ascii_digit() || b == b'_')
        {
            self.pos += 1;
        }
        let text: String = std::str::from_utf8(&self.src[start..self.pos])
            .expect("digits are valid utf-8")
            .chars()
            .filter(|&c| c != '_')
            .collect();
        let span = Span::new(start as u32, self.pos as u32);
        match text.parse::<i64>() {
            Ok(n) => self.push(TokenKind::Int(n), span),
            Err(_) => self.errors.push(Diagnostic::new(
                Phase::Lex,
                format!("integer literal `{text}` does not fit in 64 bits"),
                span,
            )),
        }
    }

    fn ident(&mut self, start: usize) {
        while self
            .peek(0)
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ident is valid utf-8");
        let span = Span::new(start as u32, self.pos as u32);
        match TokenKind::keyword(text) {
            Some(kw) => self.push(kw, span),
            None => self.push(TokenKind::Ident(text.to_string()), span),
        }
    }

    fn punct(&mut self, start: usize) {
        use TokenKind::*;
        let b = self.src[self.pos];
        let two = self.peek(1);
        let (kind, len) = match (b, two) {
            (b'=', Some(b'=')) => (EqEq, 2),
            (b'!', Some(b'=')) => (NotEq, 2),
            (b'<', Some(b'=')) => (Le, 2),
            (b'>', Some(b'=')) => (Ge, 2),
            (b'&', Some(b'&')) => (AndAnd, 2),
            (b'|', Some(b'|')) => (OrOr, 2),
            (b'=', _) => (Eq, 1),
            (b'!', _) => (Bang, 1),
            (b'<', _) => (Lt, 1),
            (b'>', _) => (Gt, 1),
            (b'+', _) => (Plus, 1),
            (b'-', _) => (Minus, 1),
            (b'*', _) => (Star, 1),
            (b'/', _) => (Slash, 1),
            (b'%', _) => (Percent, 1),
            (b'(', _) => (LParen, 1),
            (b')', _) => (RParen, 1),
            (b'{', _) => (LBrace, 1),
            (b'}', _) => (RBrace, 1),
            (b'[', _) => (LBracket, 1),
            (b']', _) => (RBracket, 1),
            (b';', _) => (Semi, 1),
            (b',', _) => (Comma, 1),
            (b'.', _) => (Dot, 1),
            _ => {
                self.errors.push(Diagnostic::new(
                    Phase::Lex,
                    format!("unexpected character `{}`", b as char),
                    Span::new(start as u32, start as u32 + 1),
                ));
                self.pos += 1;
                return;
            }
        };
        self.pos += len;
        self.push(kind, Span::new(start as u32, self.pos as u32));
    }

    fn push(&mut self, kind: TokenKind, span: Span) {
        self.tokens.push(Token { kind, span });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind as K;

    fn kinds(src: &str) -> Vec<K> {
        lex(src)
            .expect("lex ok")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lex_simple_class() {
        let ks = kinds("class A { int x; }");
        assert_eq!(
            ks,
            vec![
                K::Class,
                K::Ident("A".into()),
                K::LBrace,
                K::IntTy,
                K::Ident("x".into()),
                K::Semi,
                K::RBrace,
                K::Eof
            ]
        );
    }

    #[test]
    fn lex_operators() {
        let ks = kinds("== != <= >= && || = ! < > + - * / %");
        assert_eq!(
            ks,
            vec![
                K::EqEq,
                K::NotEq,
                K::Le,
                K::Ge,
                K::AndAnd,
                K::OrOr,
                K::Eq,
                K::Bang,
                K::Lt,
                K::Gt,
                K::Plus,
                K::Minus,
                K::Star,
                K::Slash,
                K::Percent,
                K::Eof
            ]
        );
    }

    #[test]
    fn lex_numbers_with_underscores() {
        assert_eq!(kinds("1_000"), vec![K::Int(1000), K::Eof]);
        assert_eq!(kinds("0"), vec![K::Int(0), K::Eof]);
    }

    #[test]
    fn lex_line_comment() {
        assert_eq!(
            kinds("1 // two three\n2"),
            vec![K::Int(1), K::Int(2), K::Eof]
        );
    }

    #[test]
    fn lex_block_comment_nested() {
        assert_eq!(
            kinds("1 /* a /* b */ c */ 2"),
            vec![K::Int(1), K::Int(2), K::Eof]
        );
    }

    #[test]
    fn lex_unterminated_block_comment_errors() {
        let err = lex("/* oops").unwrap_err();
        assert!(err.errors()[0].message.contains("unterminated"));
    }

    #[test]
    fn lex_unknown_char_errors() {
        let err = lex("a # b").unwrap_err();
        assert_eq!(err.len(), 1);
        assert!(err.errors()[0].message.contains('#'));
    }

    #[test]
    fn lex_huge_int_errors() {
        let err = lex("99999999999999999999999").unwrap_err();
        assert!(err.errors()[0].message.contains("64 bits"));
    }

    #[test]
    fn spans_are_accurate() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 5));
        assert_eq!(toks[2].span, Span::new(5, 5)); // EOF
    }

    #[test]
    fn keywords_vs_idents() {
        assert_eq!(kinds("classy"), vec![K::Ident("classy".into()), K::Eof]);
        assert_eq!(kinds("class"), vec![K::Class, K::Eof]);
    }
}
