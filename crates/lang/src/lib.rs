//! # narada-lang — the MJ object language
//!
//! MJ is a small Java-like object language used as the substrate for the
//! Narada racy-test-synthesis pipeline. It has exactly the semantic
//! ingredients the PLDI 2015 technique needs:
//!
//! * classes with mutable fields, single inheritance and dynamic dispatch,
//! * a shared heap with reference aliasing,
//! * monitor-style locking (`sync` methods and `sync (e) { … }` blocks),
//! * `int`/`bool` scalars and arrays,
//! * sequential client tests (`test name { … }`) that act as the *seed
//!   test-suite*.
//!
//! ## Quick example
//!
//! ```
//! use narada_lang::compile;
//!
//! let program = compile(r#"
//!     class Counter {
//!         int count;
//!         void inc() { this.count = this.count + 1; }
//!     }
//!     class Lib {
//!         Counter c;
//!         sync void update() { this.c.inc(); }
//!         sync void set(Counter x) { this.c = x; }
//!     }
//!     test seed {
//!         var r = new Counter();
//!         var p = new Lib();
//!         p.set(r);
//!         p.update();
//!     }
//! "#)?;
//! assert_eq!(program.classes.len(), 2);
//! assert_eq!(program.tests.len(), 1);
//! # Ok::<(), narada_lang::Diagnostics>(())
//! ```
//!
//! The resolved [`hir::Program`] is executed by `narada-vm` and analyzed by
//! `narada-core`.
//!
//! ## Language reference
//!
//! ```text
//! program  := (class | test)*
//! class    := "class" NAME ("extends" NAME)? "{" (field | method)* "}"
//! field    := type NAME ("=" expr)? ";"           // initializer runs at `new`
//! method   := "static"? "sync"? ("void" | type) NAME "(" params ")" block
//!           | "sync"? "init" "(" params ")" block  // constructor
//! test     := "test" NAME block                    // sequential client code
//! type     := "int" | "bool" | NAME | type "[]"
//! stmt     := "var" NAME "=" expr ";" | lvalue "=" expr ";" | expr ";"
//!           | "if" "(" expr ")" block ("else" block)?
//!           | "while" "(" expr ")" block
//!           | "sync" "(" expr ")" block            // monitor section
//!           | "return" expr? ";" | "assert" expr ";"
//! expr     := literals, `this`, `null`, `new C(args)`, `new T[n]`,
//!             `e.f`, `e.m(args)`, `C.m(args)`, `a[i]`, `a.length`,
//!             `rand()`, arithmetic/comparison/logic operators
//! ```
//!
//! `sync` on a method is sugar for wrapping the body in
//! `sync (this) { … }`; `rand()` returns an integer the client cannot
//! control (the analysis treats it as *not controllable*, paper §3.1.1).

#![warn(missing_docs)]

pub mod ast;
pub mod build;
pub mod digest;
pub mod error;
pub mod hir;
pub mod lexer;
pub mod lower;
pub mod mir;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod token;
mod typeck;

pub use error::{Diagnostic, Diagnostics, Phase};
pub use span::{LineCol, SourceMap, Span};

/// Parses MJ source into an untyped AST.
///
/// # Errors
///
/// Returns all lexical and syntax errors found in `src`.
pub fn parse(src: &str) -> Result<ast::Program, Diagnostics> {
    parser::parse(src)
}

/// Parses and type-checks MJ source, producing the resolved [`hir::Program`].
///
/// This is the usual entry point; see the crate docs for an example.
///
/// # Errors
///
/// Returns all lexical, syntax, and type errors found in `src`.
pub fn compile(src: &str) -> Result<hir::Program, Diagnostics> {
    let ast = parse(src)?;
    typeck::check(&ast)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_reports_parse_errors() {
        assert!(compile("class {").is_err());
    }

    #[test]
    fn compile_reports_type_errors() {
        assert!(compile("test t { var x = 1 + true; }").is_err());
    }

    #[test]
    fn compile_empty_program() {
        let p = compile("").unwrap();
        assert!(p.classes.is_empty());
        assert!(p.tests.is_empty());
    }
}
