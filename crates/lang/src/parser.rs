//! Recursive-descent parser for MJ.
//!
//! Grammar sketch (see the crate docs for the full language reference):
//!
//! ```text
//! program   := (class | test)*
//! class     := "class" IDENT ("extends" IDENT)? "{" member* "}"
//! member    := field | method | ctor
//! field     := type IDENT ("=" expr)? ";"
//! method    := "static"? "sync"? (type | "void") IDENT "(" params ")" block
//! ctor      := "sync"? "init" "(" params ")" block
//! test      := "test" IDENT block
//! stmt      := "var" IDENT "=" expr ";" | "if" …| "while" … | "sync" (e) block
//!            | "return" expr? ";" | "assert" expr ";" | expr ("=" expr)? ";"
//! expr      := precedence climbing over || && == != < <= > >= + - * / % ! -
//!              with postfix `.f`, `.m(args)`, `[i]`
//! ```

use crate::ast::*;
use crate::error::{Diagnostic, Diagnostics, Phase};
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parses a complete MJ program.
///
/// # Errors
///
/// Returns accumulated lexical and syntax errors. The parser recovers at
/// declaration boundaries so multiple errors can be reported at once.
pub fn parse(src: &str) -> Result<Program, Diagnostics> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        errors: Vec::new(),
    };
    let program = p.program();
    if p.errors.is_empty() {
        Ok(program)
    } else {
        Err(Diagnostics::new(p.errors))
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    errors: Vec<Diagnostic>,
}

/// Signals that the current declaration could not be parsed; the caller
/// skips ahead to a synchronization point.
struct Bail;

type PResult<T> = Result<T, Bail>;

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, ahead: usize) -> &TokenKind {
        let i = (self.pos + ahead).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> PResult<Token> {
        if self.peek() == &kind {
            Ok(self.bump())
        } else {
            self.error_here(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().describe()
            ));
            Err(Bail)
        }
    }

    fn expect_ident(&mut self) -> PResult<Ident> {
        if let TokenKind::Ident(name) = self.peek().clone() {
            let t = self.bump();
            Ok(Ident::new(name, t.span))
        } else {
            self.error_here(format!(
                "expected identifier, found {}",
                self.peek().describe()
            ));
            Err(Bail)
        }
    }

    fn error_here(&mut self, msg: String) {
        let span = self.span();
        self.errors.push(Diagnostic::new(Phase::Parse, msg, span));
    }

    /// Skips tokens until the next likely declaration start.
    fn recover_to_decl(&mut self) {
        let mut depth = 0usize;
        loop {
            match self.peek() {
                TokenKind::Eof => return,
                TokenKind::LBrace => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::RBrace => {
                    self.bump();
                    if depth == 0 {
                        return;
                    }
                    depth -= 1;
                    if depth == 0 {
                        return;
                    }
                }
                TokenKind::Class | TokenKind::Test if depth == 0 => return,
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn program(&mut self) -> Program {
        let mut program = Program::default();
        loop {
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::Class => match self.class_decl() {
                    Ok(c) => program.classes.push(c),
                    Err(Bail) => self.recover_to_decl(),
                },
                TokenKind::Test => match self.test_decl() {
                    Ok(t) => program.tests.push(t),
                    Err(Bail) => self.recover_to_decl(),
                },
                _ => {
                    self.error_here(format!(
                        "expected `class` or `test`, found {}",
                        self.peek().describe()
                    ));
                    self.bump();
                    self.recover_to_decl();
                }
            }
        }
        program
    }

    fn class_decl(&mut self) -> PResult<ClassDecl> {
        let start = self.span();
        self.expect(TokenKind::Class)?;
        let name = self.expect_ident()?;
        let parent = if self.eat(&TokenKind::Extends) {
            Some(self.expect_ident()?)
        } else {
            None
        };
        self.expect(TokenKind::LBrace)?;
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            if self.peek() == &TokenKind::Eof {
                self.error_here("unclosed class body".into());
                return Err(Bail);
            }
            self.member(&mut fields, &mut methods)?;
        }
        Ok(ClassDecl {
            name,
            parent,
            fields,
            methods,
            span: start.merge(self.prev_span()),
        })
    }

    fn member(
        &mut self,
        fields: &mut Vec<FieldDecl>,
        methods: &mut Vec<MethodDecl>,
    ) -> PResult<()> {
        let start = self.span();
        let is_static = self.eat(&TokenKind::Static);
        let is_sync = self.eat(&TokenKind::Sync);

        // Constructor: `init ( … ) { … }`
        if self.peek() == &TokenKind::Init {
            let name_tok = self.bump();
            if is_static {
                self.errors.push(Diagnostic::new(
                    Phase::Parse,
                    "constructors cannot be static",
                    name_tok.span,
                ));
            }
            let params = self.params()?;
            let body = self.block()?;
            methods.push(MethodDecl {
                is_static: false,
                is_sync,
                is_ctor: true,
                ret: None,
                name: Ident::new("init", name_tok.span),
                params,
                body,
                span: start.merge(self.prev_span()),
            });
            return Ok(());
        }

        // `void m(…) {…}` or `T m(…) {…}` or field `T f (= e)? ;`
        let ret = if self.eat(&TokenKind::Void) {
            None
        } else {
            Some(self.type_expr()?)
        };
        let name = self.expect_ident()?;
        if self.peek() == &TokenKind::LParen {
            let params = self.params()?;
            let body = self.block()?;
            methods.push(MethodDecl {
                is_static,
                is_sync,
                is_ctor: false,
                ret,
                name,
                params,
                body,
                span: start.merge(self.prev_span()),
            });
        } else {
            if is_static || is_sync {
                self.errors.push(Diagnostic::new(
                    Phase::Parse,
                    "field declarations cannot be `static` or `sync`",
                    start,
                ));
            }
            let Some(ty) = ret else {
                self.error_here("fields cannot have type `void`".into());
                return Err(Bail);
            };
            let init = if self.eat(&TokenKind::Eq) {
                Some(self.expr()?)
            } else {
                None
            };
            self.expect(TokenKind::Semi)?;
            fields.push(FieldDecl {
                ty,
                name,
                init,
                span: start.merge(self.prev_span()),
            });
        }
        Ok(())
    }

    fn params(&mut self) -> PResult<Vec<Param>> {
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                let ty = self.type_expr()?;
                let name = self.expect_ident()?;
                params.push(Param { ty, name });
                if self.eat(&TokenKind::RParen) {
                    break;
                }
                self.expect(TokenKind::Comma)?;
            }
        }
        Ok(params)
    }

    fn test_decl(&mut self) -> PResult<TestDecl> {
        let start = self.span();
        self.expect(TokenKind::Test)?;
        let name = self.expect_ident()?;
        let body = self.block()?;
        Ok(TestDecl {
            name,
            body,
            span: start.merge(self.prev_span()),
        })
    }

    fn type_expr(&mut self) -> PResult<TypeExpr> {
        let base = match self.peek().clone() {
            TokenKind::IntTy => {
                let t = self.bump();
                TypeExpr::Int(t.span)
            }
            TokenKind::BoolTy => {
                let t = self.bump();
                TypeExpr::Bool(t.span)
            }
            TokenKind::Ident(name) => {
                let t = self.bump();
                TypeExpr::Named(Ident::new(name, t.span))
            }
            other => {
                self.error_here(format!("expected a type, found {}", other.describe()));
                return Err(Bail);
            }
        };
        let mut ty = base;
        while self.peek() == &TokenKind::LBracket && self.peek_at(1) == &TokenKind::RBracket {
            let l = self.bump();
            let r = self.bump();
            ty = TypeExpr::Array(Box::new(ty), l.span.merge(r.span));
        }
        Ok(ty)
    }

    fn block(&mut self) -> PResult<Block> {
        let start = self.span();
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            if self.peek() == &TokenKind::Eof {
                self.error_here("unclosed block".into());
                return Err(Bail);
            }
            stmts.push(self.stmt()?);
        }
        Ok(Block {
            stmts,
            span: start.merge(self.prev_span()),
        })
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        let start = self.span();
        match self.peek() {
            TokenKind::Var => {
                self.bump();
                let name = self.expect_ident()?;
                self.expect(TokenKind::Eq)?;
                let init = self.expr()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Let {
                    name,
                    init,
                    span: start.merge(self.prev_span()),
                })
            }
            TokenKind::If => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let then_blk = self.block()?;
                let else_blk = if self.eat(&TokenKind::Else) {
                    if self.peek() == &TokenKind::If {
                        // `else if` sugar: wrap the nested if in a block.
                        let nested = self.stmt()?;
                        let span = nested.span();
                        Some(Block {
                            stmts: vec![nested],
                            span,
                        })
                    } else {
                        Some(self.block()?)
                    }
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then_blk,
                    else_blk,
                    span: start.merge(self.prev_span()),
                })
            }
            TokenKind::While => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While {
                    cond,
                    body,
                    span: start.merge(self.prev_span()),
                })
            }
            TokenKind::Sync => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let lock = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let body = self.block()?;
                Ok(Stmt::Sync {
                    lock,
                    body,
                    span: start.merge(self.prev_span()),
                })
            }
            TokenKind::Return => {
                self.bump();
                let value = if self.peek() == &TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Return {
                    value,
                    span: start.merge(self.prev_span()),
                })
            }
            TokenKind::Assert => {
                self.bump();
                let cond = self.expr()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Assert {
                    cond,
                    span: start.merge(self.prev_span()),
                })
            }
            _ => {
                let e = self.expr()?;
                if self.eat(&TokenKind::Eq) {
                    let value = self.expr()?;
                    self.expect(TokenKind::Semi)?;
                    Ok(Stmt::Assign {
                        target: e,
                        value,
                        span: start.merge(self.prev_span()),
                    })
                } else {
                    self.expect(TokenKind::Semi)?;
                    Ok(Stmt::Expr(e))
                }
            }
        }
    }

    fn expr(&mut self) -> PResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat(&TokenKind::OrOr) {
            let rhs = self.and_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&TokenKind::AndAnd) {
            let rhs = self.cmp_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> PResult<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::EqEq => BinOp::Eq,
            TokenKind::NotEq => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        let span = lhs.span().merge(rhs.span());
        Ok(Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
            span,
        })
    }

    fn add_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> PResult<Expr> {
        let start = self.span();
        if self.eat(&TokenKind::Bang) {
            let operand = self.unary_expr()?;
            let span = start.merge(operand.span());
            return Ok(Expr::Unary {
                op: UnOp::Not,
                operand: Box::new(operand),
                span,
            });
        }
        if self.eat(&TokenKind::Minus) {
            let operand = self.unary_expr()?;
            let span = start.merge(operand.span());
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                operand: Box::new(operand),
                span,
            });
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> PResult<Expr> {
        let mut e = self.primary_expr()?;
        loop {
            if self.eat(&TokenKind::Dot) {
                let name = self.expect_ident()?;
                if self.peek() == &TokenKind::LParen {
                    let args = self.args()?;
                    let span = e.span().merge(self.prev_span());
                    e = Expr::Call {
                        recv: Box::new(e),
                        method: name,
                        args,
                        span,
                    };
                } else {
                    let span = e.span().merge(name.span);
                    e = Expr::Field {
                        obj: Box::new(e),
                        field: name,
                        span,
                    };
                }
            } else if self.peek() == &TokenKind::LBracket {
                self.bump();
                let idx = self.expr()?;
                self.expect(TokenKind::RBracket)?;
                let span = e.span().merge(self.prev_span());
                e = Expr::Index {
                    arr: Box::new(e),
                    idx: Box::new(idx),
                    span,
                };
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn args(&mut self) -> PResult<Vec<Expr>> {
        self.expect(TokenKind::LParen)?;
        let mut args = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                args.push(self.expr()?);
                if self.eat(&TokenKind::RParen) {
                    break;
                }
                self.expect(TokenKind::Comma)?;
            }
        }
        Ok(args)
    }

    fn primary_expr(&mut self) -> PResult<Expr> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::Int(n) => {
                self.bump();
                Ok(Expr::Int(n, start))
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr::Bool(true, start))
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr::Bool(false, start))
            }
            TokenKind::Null => {
                self.bump();
                Ok(Expr::Null(start))
            }
            TokenKind::This => {
                self.bump();
                Ok(Expr::This(start))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::New => {
                self.bump();
                // `new int[len]`, `new bool[len]`, `new C(args)`, `new C[len]`
                match self.peek().clone() {
                    TokenKind::IntTy | TokenKind::BoolTy => {
                        let elem = self.type_expr_no_array()?;
                        self.expect(TokenKind::LBracket)?;
                        let len = self.expr()?;
                        self.expect(TokenKind::RBracket)?;
                        Ok(Expr::NewArray {
                            elem,
                            len: Box::new(len),
                            span: start.merge(self.prev_span()),
                        })
                    }
                    TokenKind::Ident(_) => {
                        let class = self.expect_ident()?;
                        if self.peek() == &TokenKind::LBracket {
                            self.bump();
                            let len = self.expr()?;
                            self.expect(TokenKind::RBracket)?;
                            Ok(Expr::NewArray {
                                elem: TypeExpr::Named(class),
                                len: Box::new(len),
                                span: start.merge(self.prev_span()),
                            })
                        } else {
                            let args = self.args()?;
                            Ok(Expr::New {
                                class,
                                args,
                                span: start.merge(self.prev_span()),
                            })
                        }
                    }
                    other => {
                        self.error_here(format!(
                            "expected a type after `new`, found {}",
                            other.describe()
                        ));
                        Err(Bail)
                    }
                }
            }
            TokenKind::Ident(name) => {
                let t = self.bump();
                let id = Ident::new(name, t.span);
                if self.peek() == &TokenKind::LParen {
                    let args = self.args()?;
                    Ok(Expr::BuiltinCall {
                        name: id,
                        args,
                        span: start.merge(self.prev_span()),
                    })
                } else {
                    Ok(Expr::Name(id))
                }
            }
            other => {
                self.error_here(format!(
                    "expected an expression, found {}",
                    other.describe()
                ));
                Err(Bail)
            }
        }
    }

    fn type_expr_no_array(&mut self) -> PResult<TypeExpr> {
        match self.peek().clone() {
            TokenKind::IntTy => {
                let t = self.bump();
                Ok(TypeExpr::Int(t.span))
            }
            TokenKind::BoolTy => {
                let t = self.bump();
                Ok(TypeExpr::Bool(t.span))
            }
            other => {
                self.error_here(format!("expected a type, found {}", other.describe()));
                Err(Bail)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(src: &str) -> Program {
        parse(src).unwrap_or_else(|e| panic!("parse failed:\n{e}"))
    }

    #[test]
    fn parse_counter_lib() {
        let p = ok(r#"
            class Counter {
                int count;
                void inc() { this.count = this.count + 1; }
            }
            class Lib {
                Counter c;
                sync void update() { this.c.inc(); }
                sync void set(Counter x) { this.c = x; }
            }
            test t1 {
                var r = new Counter();
                var p = new Lib();
                p.set(r);
                p.update();
            }
        "#);
        assert_eq!(p.classes.len(), 2);
        assert_eq!(p.tests.len(), 1);
        assert_eq!(p.classes[0].name.name, "Counter");
        assert_eq!(p.classes[0].fields.len(), 1);
        assert_eq!(p.classes[1].methods.len(), 2);
        assert!(p.classes[1].methods[0].is_sync);
        assert_eq!(p.tests[0].body.stmts.len(), 4);
    }

    #[test]
    fn parse_extends_and_ctor() {
        let p = ok(r#"
            class Base { int x; }
            class Derived extends Base {
                init(int v) { this.x = v; }
            }
        "#);
        assert_eq!(p.classes[1].parent.as_ref().unwrap().name, "Base");
        assert!(p.classes[1].methods[0].is_ctor);
    }

    #[test]
    fn parse_static_method() {
        let p = ok(r#"
            class Factory {
                static Factory create() { return new Factory(); }
            }
        "#);
        assert!(p.classes[0].methods[0].is_static);
    }

    #[test]
    fn parse_arrays() {
        let p = ok(r#"
            class Buf {
                int[] data;
                init(int n) { this.data = new int[n]; }
                int get(int i) { return this.data[i]; }
                void put(int i, int v) { this.data[i] = v; }
            }
        "#);
        let m = &p.classes[0].methods[2];
        assert!(matches!(m.body.stmts[0], Stmt::Assign { .. }));
    }

    #[test]
    fn parse_control_flow() {
        let p = ok(r#"
            class C {
                int m(int n) {
                    var s = 0;
                    var i = 0;
                    while (i < n) {
                        if (i % 2 == 0) { s = s + i; } else if (i > 10) { s = s - 1; } else { s = s + 1; }
                        i = i + 1;
                    }
                    return s;
                }
            }
        "#);
        let m = &p.classes[0].methods[0];
        assert_eq!(m.body.stmts.len(), 4);
    }

    #[test]
    fn parse_sync_block() {
        let p = ok(r#"
            class C {
                int x;
                void m(C other) { sync (other) { this.x = 1; } }
            }
        "#);
        assert!(matches!(
            p.classes[0].methods[0].body.stmts[0],
            Stmt::Sync { .. }
        ));
    }

    #[test]
    fn parse_builtin_call() {
        let p = ok("class C { int m() { return rand(); } }");
        let Stmt::Return { value: Some(e), .. } = &p.classes[0].methods[0].body.stmts[0] else {
            panic!("expected return");
        };
        assert!(matches!(e, Expr::BuiltinCall { .. }));
    }

    #[test]
    fn parse_static_call_shape() {
        // `Factory.create()` parses as a Call on Name("Factory"); the checker
        // disambiguates.
        let p = ok("test t { var f = Factory.create(); }");
        let Stmt::Let { init, .. } = &p.tests[0].body.stmts[0] else {
            panic!()
        };
        let Expr::Call { recv, method, .. } = init else {
            panic!("expected call, got {init:?}")
        };
        assert!(matches!(**recv, Expr::Name(_)));
        assert_eq!(method.name, "create");
    }

    #[test]
    fn precedence_mul_before_add() {
        let p = ok("test t { var x = 1 + 2 * 3; }");
        let Stmt::Let { init, .. } = &p.tests[0].body.stmts[0] else {
            panic!()
        };
        let Expr::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = init
        else {
            panic!("expected +, got {init:?}")
        };
        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn precedence_cmp_below_logic() {
        let p = ok("test t { var x = 1 < 2 && 3 >= 4 || true; }");
        let Stmt::Let { init, .. } = &p.tests[0].body.stmts[0] else {
            panic!()
        };
        assert!(matches!(init, Expr::Binary { op: BinOp::Or, .. }));
    }

    #[test]
    fn error_recovery_reports_multiple() {
        let err = parse("class A { int ; } class B { void m() { return 1 } }").unwrap_err();
        assert!(err.len() >= 2, "expected >=2 errors, got: {err}");
    }

    #[test]
    fn error_missing_semi() {
        let err = parse("test t { var x = 1 }").unwrap_err();
        assert!(err.to_string().contains("expected `;`"), "{err}");
    }

    #[test]
    fn chained_postfix() {
        let p = ok("test t { a.b.c.m(1, 2)[3] = 4; }");
        let Stmt::Assign { target, .. } = &p.tests[0].body.stmts[0] else {
            panic!()
        };
        assert!(matches!(target, Expr::Index { .. }));
    }

    #[test]
    fn unary_chains() {
        let p = ok("test t { var x = !!true; var y = --1; }");
        assert_eq!(p.tests[0].body.stmts.len(), 2);
    }

    #[test]
    fn field_initializer() {
        let p = ok("class C { int x = 5; C next = null; }");
        assert!(p.classes[0].fields[0].init.is_some());
        assert!(matches!(p.classes[0].fields[1].init, Some(Expr::Null(_))));
    }

    #[test]
    fn new_array_of_class() {
        let p = ok("test t { var a = new Task[10]; }");
        let Stmt::Let { init, .. } = &p.tests[0].body.stmts[0] else {
            panic!()
        };
        assert!(matches!(init, Expr::NewArray { .. }));
    }

    #[test]
    fn return_without_value() {
        let p = ok("class C { void m() { return; } }");
        assert!(matches!(
            p.classes[0].methods[0].body.stmts[0],
            Stmt::Return { value: None, .. }
        ));
    }
}
