//! # narada-contege — the random-search baseline
//!
//! A ConTeGe-style generator (Pradel & Gross, *Fully Automatic and Precise
//! Detection of Thread Safety Violations*, PLDI 2012): concurrent tests are
//! produced by **random search** — a random sequential *prefix* builds an
//! object pool, then two random call *suffixes* run concurrently against a
//! shared receiver. A test exposes a thread-safety violation when the
//! concurrent execution crashes or deadlocks while each linearization of
//! the same calls runs cleanly.
//!
//! Because nothing directs the search toward racy states (no trace
//! analysis, no object-sharing constraints), ConTeGe needs orders of
//! magnitude more tests than Narada's synthesis — the paper's §5
//! comparison, which this crate regenerates.

#![warn(missing_docs)]

use narada_lang::hir::{ClassId, MethodId, Program, Ty};
use narada_lang::mir::MirProgram;
use narada_vm::rng::SplitMix64;
use narada_vm::{
    Engine, Machine, MachineOptions, NullSink, ObjId, PendingInvoke, RandomScheduler, RunOutcome,
    SerialScheduler, ThreadStatus, Value,
};

/// Generator options.
#[derive(Debug, Clone)]
pub struct ContegeOptions {
    /// Maximum number of generated tests.
    pub max_tests: usize,
    /// Number of calls in the sequential prefix.
    pub prefix_len: usize,
    /// Number of calls per concurrent suffix.
    pub suffix_len: usize,
    /// RNG seed.
    pub seed: u64,
    /// Step budget per concurrent execution.
    pub budget: u64,
    /// Number of interleavings tried per generated test.
    pub schedules_per_test: usize,
    /// Stop at the first violation (paper counts tests-to-first-violation).
    pub stop_at_first: bool,
    /// Execution engine for every generated-test run (trace-equivalent
    /// to tree-walk; a throughput knob).
    pub engine: Engine,
}

impl Default for ContegeOptions {
    fn default() -> Self {
        ContegeOptions {
            max_tests: 2_000,
            prefix_len: 4,
            suffix_len: 3,
            seed: 0xc0ffee,
            budget: 400_000,
            schedules_per_test: 3,
            stop_at_first: true,
            engine: Engine::TreeWalk,
        }
    }
}

/// How a violation manifested.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// A thread crashed concurrently but not in either linearization.
    Crash,
    /// The concurrent execution deadlocked.
    Deadlock,
}

/// A detected thread-safety violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// 1-based index of the generated test that exposed it.
    pub test_index: usize,
    /// Crash or deadlock.
    pub kind: ViolationKind,
    /// Rendered failure message.
    pub message: String,
}

/// Result of a generation campaign.
#[derive(Debug, Default)]
pub struct ContegeResult {
    /// Number of tests generated and executed.
    pub tests_generated: usize,
    /// Violations found.
    pub violations: Vec<Violation>,
}

impl ContegeResult {
    /// Index of the first violating test, if any.
    pub fn first_violation_at(&self) -> Option<usize> {
        self.violations.first().map(|v| v.test_index)
    }
}

/// One randomly generated concurrent test.
#[derive(Debug, Clone)]
struct GeneratedTest {
    prefix: Vec<CallTemplate>,
    suffixes: [Vec<CallTemplate>; 2],
}

#[derive(Debug, Clone)]
struct CallTemplate {
    method: MethodId,
    /// Pool index of the receiver (`None` = static).
    recv: Option<usize>,
    /// Argument templates.
    args: Vec<ArgTemplate>,
}

#[derive(Debug, Clone)]
enum ArgTemplate {
    Int(i64),
    Bool(bool),
    /// Pool index of an object argument (rare: random search shares
    /// sub-objects only by luck, as in the original ConTeGe).
    Pool(usize),
    /// A freshly constructed argument object (the common case).
    Fresh(ClassId),
    Null,
}

/// Runs the ConTeGe-style campaign against the library classes of `prog`.
pub fn run_contege(prog: &Program, mir: &MirProgram, opts: &ContegeOptions) -> ContegeResult {
    let mut rng = SplitMix64::seed_from_u64(opts.seed);
    let gen = Generator::new(prog);
    let mut result = ContegeResult::default();
    if gen.constructible.is_empty() {
        return result;
    }
    for test_index in 1..=opts.max_tests {
        result.tests_generated = test_index;
        let Some(test) = gen.generate(&mut rng, opts) else {
            continue;
        };
        if let Some(violation) = execute_test(prog, mir, &test, test_index, opts, &mut rng) {
            result.violations.push(violation);
            if opts.stop_at_first {
                break;
            }
        }
    }
    result
}

struct Generator<'p> {
    prog: &'p Program,
    /// Classes we can instantiate with synthesizable arguments.
    constructible: Vec<ClassId>,
}

impl<'p> Generator<'p> {
    fn new(prog: &'p Program) -> Self {
        let constructible = prog
            .classes
            .iter()
            .filter(|c| {
                match prog.ctor_for(c.id) {
                    // Constructor args must be scalars or other classes.
                    Some(ctor) => prog
                        .method(ctor)
                        .param_tys()
                        .iter()
                        .all(|t| matches!(t, Ty::Int | Ty::Bool | Ty::Class(_) | Ty::Array(_))),
                    None => true,
                }
            })
            .map(|c| c.id)
            .collect();
        Generator {
            prog,
            constructible,
        }
    }

    fn generate(&self, rng: &mut SplitMix64, opts: &ContegeOptions) -> Option<GeneratedTest> {
        // The pool: indices 0..N of objects created at setup. Object 0 is
        // the "class under test" instance both suffixes share.
        let pool_size = 1 + rng.gen_range(1..4usize);
        let mut prefix = Vec::new();
        for _ in 0..opts.prefix_len {
            if let Some(c) = self.random_call(rng, pool_size) {
                prefix.push(c);
            }
        }
        let mut suffixes = [Vec::new(), Vec::new()];
        for suffix in &mut suffixes {
            for _ in 0..opts.suffix_len {
                if let Some(c) = self.random_call(rng, pool_size) {
                    suffix.push(c);
                }
            }
            if suffix.is_empty() {
                return None;
            }
        }
        Some(GeneratedTest { prefix, suffixes })
    }

    fn random_call(&self, rng: &mut SplitMix64, pool: usize) -> Option<CallTemplate> {
        // Pick a random instance method of a random constructible class.
        for _ in 0..16 {
            let class = self.constructible[rng.gen_range(0..self.constructible.len())];
            let methods = self.prog.entry_points(class);
            if methods.is_empty() {
                continue;
            }
            let method = methods[rng.gen_range(0..methods.len())];
            let m = self.prog.method(method);
            if m.is_ctor {
                continue;
            }
            let mut args = Vec::new();
            let mut ok = true;
            for ty in m.param_tys() {
                match ty {
                    Ty::Int => args.push(ArgTemplate::Int(rng.gen_range(0..10))),
                    Ty::Bool => args.push(ArgTemplate::Bool(rng.gen_bool(0.5))),
                    Ty::Class(c) => {
                        // ConTeGe constructs fresh argument objects; pool
                        // sharing (the thing Narada *engineers*) happens
                        // only by luck.
                        let roll = rng.gen_range(0..100);
                        if roll < 10 {
                            args.push(ArgTemplate::Null);
                        } else if roll < 25 {
                            args.push(ArgTemplate::Pool(rng.gen_range(0..pool)));
                        } else {
                            args.push(ArgTemplate::Fresh(*c));
                        }
                    }
                    Ty::Array(_) => {
                        ok = false;
                        break;
                    }
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            let recv = if m.is_static {
                None
            } else {
                Some(rng.gen_range(0..pool))
            };
            return Some(CallTemplate { method, recv, args });
        }
        None
    }
}

/// Builds the object pool for one execution: one instance per pool slot,
/// round-robin over constructible classes, preferring the receiver class
/// of the first suffix call for slot 0.
fn build_pool(
    prog: &Program,
    machine: &mut Machine<'_>,
    test: &GeneratedTest,
    pool_size: usize,
) -> Option<Vec<ObjId>> {
    // Slot class choice: the class that owns the method of the first
    // suffix call, then others.
    let preferred = test.suffixes[0]
        .first()
        .map(|c| prog.method(c.method).owner)?;
    let mut pool = Vec::with_capacity(pool_size);
    for i in 0..pool_size {
        let class = if i == 0 {
            preferred
        } else {
            // Cycle deterministically through classes.
            narada_lang::hir::ClassId(((preferred.0 as usize + i) % prog.classes.len()) as u32)
        };
        let obj = instantiate(prog, machine, class, 0)?;
        pool.push(obj);
    }
    Some(pool)
}

/// Instantiates `class`, synthesizing constructor arguments (fresh nested
/// objects for class-typed parameters, small defaults for scalars).
fn instantiate(
    prog: &Program,
    machine: &mut Machine<'_>,
    class: ClassId,
    depth: usize,
) -> Option<ObjId> {
    if depth > 3 {
        return None;
    }
    let obj = machine.heap.alloc_instance(prog, class);
    if let Some(ctor) = prog.ctor_for(class) {
        let mut args = Vec::new();
        for ty in prog.method(ctor).param_tys() {
            let v = match ty {
                Ty::Int => Value::Int(4),
                Ty::Bool => Value::Bool(false),
                Ty::Class(c) => {
                    let nested = instantiate(prog, machine, *c, depth + 1)?;
                    Value::Ref(nested)
                }
                Ty::Array(elem) => {
                    let arr = machine.heap.alloc_array((**elem).clone(), 8);
                    Value::Ref(arr)
                }
                _ => return None,
            };
            args.push(v);
        }
        machine
            .invoke(ctor, Some(Value::Ref(obj)), args, &mut NullSink)
            .ok()?;
    }
    Some(obj)
}

/// Picks a pool object compatible with `want`, preferring the indexed
/// slot, then scanning; `None` when the pool has no instance of the class.
fn compatible_pool_obj(
    prog: &Program,
    machine: &Machine<'_>,
    pool: &[ObjId],
    idx: usize,
    want: ClassId,
) -> Option<ObjId> {
    let fits = |o: ObjId| {
        machine
            .heap
            .class_of(o)
            .map(|c| prog.is_subclass(c, want))
            .unwrap_or(false)
    };
    let preferred = pool[idx % pool.len()];
    if fits(preferred) {
        return Some(preferred);
    }
    pool.iter().copied().find(|&o| fits(o))
}

/// Materializes a call template against the pool; `None` when no
/// type-compatible receiver/argument exists (the call is skipped — random
/// search wastes effort, as it should).
fn materialize(
    prog: &Program,
    machine: &mut Machine<'_>,
    call: &CallTemplate,
    pool: &[ObjId],
) -> Option<PendingInvoke> {
    let m = prog.method(call.method);
    let recv = match call.recv {
        None => None,
        Some(i) => Some(Value::Ref(compatible_pool_obj(
            prog, machine, pool, i, m.owner,
        )?)),
    };
    let mut args = Vec::with_capacity(call.args.len());
    for (slot, a) in call.args.iter().enumerate() {
        let v = match a {
            ArgTemplate::Int(n) => Value::Int(*n),
            ArgTemplate::Bool(b) => Value::Bool(*b),
            ArgTemplate::Null => Value::Null,
            ArgTemplate::Pool(i) => {
                let want = match m.param_tys().get(slot) {
                    Some(Ty::Class(c)) => *c,
                    _ => return None,
                };
                match compatible_pool_obj(prog, machine, pool, *i, want) {
                    Some(o) => Value::Ref(o),
                    None => Value::Null,
                }
            }
            ArgTemplate::Fresh(c) => match instantiate(prog, machine, *c, 0) {
                Some(o) => Value::Ref(o),
                None => Value::Null,
            },
        };
        args.push(v);
    }
    Some(PendingInvoke {
        method: call.method,
        recv,
        args,
    })
}

/// Runs one generated test: concurrent executions under random schedules;
/// on failure, both linearizations re-run — a violation is reported only
/// when the failure is concurrency-specific (the ConTeGe oracle).
fn execute_test(
    prog: &Program,
    mir: &MirProgram,
    test: &GeneratedTest,
    test_index: usize,
    opts: &ContegeOptions,
    rng: &mut SplitMix64,
) -> Option<Violation> {
    let pool_size = 4;
    for _ in 0..opts.schedules_per_test {
        let schedule_seed = rng.next_u64();
        let concurrent = run_once(prog, mir, test, pool_size, opts, Some(schedule_seed))?;
        match concurrent {
            Outcome::Clean => continue,
            Outcome::Deadlock => {
                return Some(Violation {
                    test_index,
                    kind: ViolationKind::Deadlock,
                    message: "concurrent execution deadlocked".into(),
                });
            }
            Outcome::Crash(msg) => {
                // Both serial orders must be clean for a true violation.
                let serial = run_once(prog, mir, test, pool_size, opts, None)?;
                if matches!(serial, Outcome::Clean) {
                    return Some(Violation {
                        test_index,
                        kind: ViolationKind::Crash,
                        message: msg,
                    });
                }
            }
        }
    }
    None
}

enum Outcome {
    Clean,
    Crash(String),
    Deadlock,
}

fn run_once(
    prog: &Program,
    mir: &MirProgram,
    test: &GeneratedTest,
    pool_size: usize,
    opts: &ContegeOptions,
    schedule_seed: Option<u64>,
) -> Option<Outcome> {
    let mut machine = Machine::new(
        prog,
        mir,
        MachineOptions {
            seed: opts.seed,
            max_steps: opts.budget,
            engine: opts.engine,
            ..MachineOptions::default()
        },
    );
    let pool = build_pool(prog, &mut machine, test, pool_size)?;
    // Prefix runs sequentially; its failures are setup noise, not
    // violations.
    for call in &test.prefix {
        if let Some(inv) = materialize(prog, &mut machine, call, &pool) {
            let _ = machine.invoke(inv.method, inv.recv, inv.args, &mut NullSink);
        }
    }
    let mut tids = Vec::new();
    for suffix in &test.suffixes {
        let calls: Vec<PendingInvoke> = suffix
            .iter()
            .filter_map(|c| materialize(prog, &mut machine, c, &pool))
            .collect();
        if calls.is_empty() {
            continue;
        }
        let tid = machine.spawn_invoke_seq(calls, &mut NullSink).ok()?;
        tids.push(tid);
    }
    if tids.len() < 2 {
        return Some(Outcome::Clean);
    }
    let outcome = match schedule_seed {
        Some(seed) => {
            let mut sched = RandomScheduler::with_stickiness(seed, 60);
            machine.run_threads(&mut sched, &mut NullSink, opts.budget)
        }
        None => {
            let mut sched = SerialScheduler::new();
            machine.run_threads(&mut sched, &mut NullSink, opts.budget)
        }
    };
    Some(match outcome {
        RunOutcome::Deadlock { .. } => Outcome::Deadlock,
        RunOutcome::StepLimit => Outcome::Clean,
        RunOutcome::Completed => {
            let crash = tids.iter().find_map(|&t| match machine.thread_status(t) {
                ThreadStatus::Failed(e) => Some(e.to_string()),
                _ => None,
            });
            match crash {
                Some(msg) => Outcome::Crash(msg),
                None => Outcome::Clean,
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use narada_lang::lower::lower_program;

    fn build(src: &str) -> (Program, MirProgram) {
        let prog = narada_lang::compile(src).unwrap();
        let mir = lower_program(&prog);
        (prog, mir)
    }

    #[test]
    fn finds_crash_in_cracked_reader() {
        // close() nulls buf without a lock: read()||close() crashes
        // concurrently but both serial orders are clean (read checks count
        // first).
        let (prog, mir) = build(
            r#"
            class Reader {
                int[] buf;
                int count;
                int pos;
                init() { this.buf = new int[4]; this.count = 4; this.pos = 0; }
                int read() {
                    if (this.pos < this.count) {
                        var c = this.buf[this.pos];
                        this.pos = this.pos + 1;
                        return c;
                    }
                    return 0 - 1;
                }
                void close() { this.count = 0; this.buf = null; }
            }
            "#,
        );
        let opts = ContegeOptions {
            max_tests: 600,
            seed: 7,
            ..Default::default()
        };
        let result = run_contege(&prog, &mir, &opts);
        assert!(
            !result.violations.is_empty(),
            "random search should eventually crash read||close ({} tests)",
            result.tests_generated
        );
    }

    #[test]
    fn clean_class_produces_no_violations() {
        let (prog, mir) = build(
            r#"
            class Safe {
                int v;
                sync void set(int x) { this.v = x; }
                sync int get() { return this.v; }
            }
            "#,
        );
        let opts = ContegeOptions {
            max_tests: 150,
            ..Default::default()
        };
        let result = run_contege(&prog, &mir, &opts);
        assert!(result.violations.is_empty());
        assert_eq!(result.tests_generated, 150);
    }

    #[test]
    fn deterministic_given_seed() {
        let (prog, mir) = build(
            r#"
            class C {
                int[] a;
                init() { this.a = new int[2]; }
                void w(int i) { this.a[i % 2] = i; }
                void kill() { this.a = null; }
            }
            "#,
        );
        let opts = ContegeOptions {
            max_tests: 300,
            seed: 11,
            ..Default::default()
        };
        let r1 = run_contege(&prog, &mir, &opts);
        let r2 = run_contege(&prog, &mir, &opts);
        assert_eq!(r1.tests_generated, r2.tests_generated);
        assert_eq!(r1.first_violation_at(), r2.first_violation_at());
    }

    #[test]
    fn empty_program_yields_nothing() {
        let (prog, mir) = build("");
        let result = run_contege(&prog, &mir, &ContegeOptions::default());
        assert_eq!(result.tests_generated, 0);
    }
}
