//! Criterion benchmark for the synthesis pipeline (Table 4's "Time"
//! column, measured rigorously): full trace → analysis → pairs → contexts
//! → deduplicated suite, per corpus class.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use narada_core::{synthesize, SynthesisOptions};
use narada_lang::lower::lower_program;

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis");
    for entry in narada_corpus::all() {
        let prog = entry.compile().expect("corpus compiles");
        let mir = lower_program(&prog);
        group.bench_with_input(
            BenchmarkId::from_parameter(entry.id),
            &(&prog, &mir),
            |b, (prog, mir)| {
                let opts = SynthesisOptions::default();
                b.iter(|| {
                    let out = synthesize(prog, mir, &opts);
                    std::hint::black_box(out.test_count())
                });
            },
        );
    }
    group.finish();
}

fn bench_stages(c: &mut Criterion) {
    // Stage split on C5 (largest pair count): tracing vs analysis vs
    // pairing — useful for spotting pipeline regressions.
    let entry = narada_corpus::c5();
    let prog = entry.compile().unwrap();
    let mir = lower_program(&prog);

    c.bench_function("stage/trace_c5", |b| {
        b.iter(|| {
            let mut machine = narada_vm::Machine::with_defaults(&prog, &mir);
            let mut sink = narada_vm::VecSink::new();
            for t in &prog.tests {
                machine.run_test(t.id, &mut sink).unwrap();
            }
            std::hint::black_box(sink.events.len())
        });
    });

    let mut machine = narada_vm::Machine::with_defaults(&prog, &mir);
    let mut sink = narada_vm::VecSink::new();
    for t in &prog.tests {
        machine.run_test(t.id, &mut sink).unwrap();
    }
    let events = sink.events;
    c.bench_function("stage/analyze_c5", |b| {
        b.iter(|| {
            let a = narada_core::analyze(&prog, &events);
            std::hint::black_box(a.accesses.len())
        });
    });

    let analysis = narada_core::analyze(&prog, &events);
    c.bench_function("stage/pairs_c5", |b| {
        let opts = SynthesisOptions::default();
        b.iter(|| {
            let p = narada_core::generate_pairs(&prog, &analysis, &opts);
            std::hint::black_box(p.pairs.len())
        });
    });
}

criterion_group!(benches, bench_synthesis, bench_stages);
criterion_main!(benches);
