//! Micro-benchmark for the synthesis pipeline (Table 4's "Time" column,
//! measured rigorously): full trace → analysis → pairs → contexts →
//! deduplicated suite, per corpus class.

use narada_bench::harness::bench_function;
use narada_core::{synthesize, SynthesisOptions};
use narada_lang::lower::lower_program;

fn bench_synthesis() {
    for entry in narada_corpus::all() {
        let prog = entry.compile().expect("corpus compiles");
        let mir = lower_program(&prog);
        let opts = SynthesisOptions::default();
        bench_function(&format!("synthesis/{}", entry.id), || {
            synthesize(&prog, &mir, &opts).test_count()
        });
    }
}

fn bench_stages() {
    // Stage split on C5 (largest pair count): tracing vs analysis vs
    // pairing — useful for spotting pipeline regressions.
    let entry = narada_corpus::c5();
    let prog = entry.compile().unwrap();
    let mir = lower_program(&prog);

    bench_function("stage/trace_c5", || {
        let mut machine = narada_vm::Machine::with_defaults(&prog, &mir);
        let mut sink = narada_vm::VecSink::new();
        for t in &prog.tests {
            machine.run_test(t.id, &mut sink).unwrap();
        }
        sink.events.len()
    });

    let mut machine = narada_vm::Machine::with_defaults(&prog, &mir);
    let mut sink = narada_vm::VecSink::new();
    for t in &prog.tests {
        machine.run_test(t.id, &mut sink).unwrap();
    }
    let events = sink.events;
    bench_function("stage/analyze_c5", || {
        narada_core::analyze(&prog, &events).accesses.len()
    });

    let analysis = narada_core::analyze(&prog, &events);
    let opts = SynthesisOptions::default();
    bench_function("stage/pairs_c5", || {
        narada_core::generate_pairs(&prog, &analysis, &opts)
            .pairs
            .len()
    });
}

fn main() {
    bench_synthesis();
    bench_stages();
}
