//! Micro-benchmark for the MJ virtual machine itself: sequential
//! interpretation throughput (instructions/second), tracing overhead, and
//! concurrent scheduling overhead.

use narada_bench::harness::bench_function;
use narada_lang::lower::lower_program;
use narada_vm::{Machine, NullSink, RandomScheduler, Value, VecSink};

const HOT_LOOP: &str = r#"
    class Work {
        int acc;
        void spin(int n) {
            var i = 0;
            while (i < n) {
                this.acc = this.acc + i * 3 % 7;
                i = i + 1;
            }
        }
    }
    test seed {
        var w = new Work();
        w.spin(10000);
    }
"#;

fn bench_sequential() {
    let prog = narada_lang::compile(HOT_LOOP).unwrap();
    let mir = lower_program(&prog);

    bench_function("vm/sequential_untraced", || {
        let mut m = Machine::with_defaults(&prog, &mir);
        m.run_test(prog.tests[0].id, &mut NullSink).unwrap();
        m.heap.len()
    });

    bench_function("vm/sequential_traced", || {
        let mut m = Machine::with_defaults(&prog, &mir);
        let mut sink = VecSink::new();
        m.run_test(prog.tests[0].id, &mut sink).unwrap();
        sink.events.len()
    });
}

fn bench_concurrent() {
    let prog = narada_lang::compile(
        r#"
        class Work {
            int acc;
            sync void spin(int n) {
                var i = 0;
                while (i < n) {
                    this.acc = this.acc + 1;
                    i = i + 1;
                }
            }
        }
        test seed { var w = new Work(); w.spin(1); }
        "#,
    )
    .unwrap();
    let mir = lower_program(&prog);
    let spin = prog.methods.iter().find(|m| m.name == "spin").unwrap().id;
    let work = prog.class_by_name("Work").unwrap();

    bench_function("vm/concurrent_4_threads", || {
        let mut m = Machine::with_defaults(&prog, &mir);
        let obj = m.heap.alloc_instance(&prog, work);
        for _ in 0..4 {
            m.spawn_invoke(
                spin,
                Some(Value::Ref(obj)),
                vec![Value::Int(2000)],
                &mut NullSink,
            )
            .unwrap();
        }
        let mut sched = RandomScheduler::new(7);
        m.run_threads(&mut sched, &mut NullSink, 10_000_000)
    });
}

fn main() {
    bench_sequential();
    bench_concurrent();
}
