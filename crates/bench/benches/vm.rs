//! Criterion benchmark for the MJ virtual machine itself: sequential
//! interpretation throughput (instructions/second), tracing overhead, and
//! concurrent scheduling overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use narada_lang::lower::lower_program;
use narada_vm::{Machine, NullSink, RandomScheduler, Value, VecSink};

const HOT_LOOP: &str = r#"
    class Work {
        int acc;
        void spin(int n) {
            var i = 0;
            while (i < n) {
                this.acc = this.acc + i * 3 % 7;
                i = i + 1;
            }
        }
    }
    test seed {
        var w = new Work();
        w.spin(10000);
    }
"#;

fn bench_sequential(c: &mut Criterion) {
    let prog = narada_lang::compile(HOT_LOOP).unwrap();
    let mir = lower_program(&prog);

    c.bench_function("vm/sequential_untraced", |b| {
        b.iter(|| {
            let mut m = Machine::with_defaults(&prog, &mir);
            m.run_test(prog.tests[0].id, &mut NullSink).unwrap();
            std::hint::black_box(m.heap.len())
        });
    });

    c.bench_function("vm/sequential_traced", |b| {
        b.iter(|| {
            let mut m = Machine::with_defaults(&prog, &mir);
            let mut sink = VecSink::new();
            m.run_test(prog.tests[0].id, &mut sink).unwrap();
            std::hint::black_box(sink.events.len())
        });
    });
}

fn bench_concurrent(c: &mut Criterion) {
    let prog = narada_lang::compile(
        r#"
        class Work {
            int acc;
            sync void spin(int n) {
                var i = 0;
                while (i < n) {
                    this.acc = this.acc + 1;
                    i = i + 1;
                }
            }
        }
        test seed { var w = new Work(); w.spin(1); }
        "#,
    )
    .unwrap();
    let mir = lower_program(&prog);
    let spin = prog.methods.iter().find(|m| m.name == "spin").unwrap().id;
    let work = prog.class_by_name("Work").unwrap();

    c.bench_function("vm/concurrent_4_threads", |b| {
        b.iter(|| {
            let mut m = Machine::with_defaults(&prog, &mir);
            let obj = m.heap.alloc_instance(&prog, work);
            for _ in 0..4 {
                m.spawn_invoke(spin, Some(Value::Ref(obj)), vec![Value::Int(2000)], &mut NullSink)
                    .unwrap();
            }
            let mut sched = RandomScheduler::new(7);
            let out = m.run_threads(&mut sched, &mut NullSink, 10_000_000);
            std::hint::black_box(out)
        });
    });
}

criterion_group!(benches, bench_sequential, bench_concurrent);
criterion_main!(benches);
