//! Micro-benchmark for the dynamic race detectors: events/second of the
//! Eraser lockset and FastTrack happens-before sinks on a recorded
//! concurrent trace, plus RaceFuzzer confirmation latency.

use narada_bench::harness::{bench_function, bench_throughput};
use narada_core::{execute_plan, synthesize, SynthesisOptions};
use narada_detect::{DjitDetector, FastTrackDetector, LocksetDetector, RaceFuzzerScheduler};
use narada_lang::lower::lower_program;
use narada_vm::{EventSink, Machine, RandomScheduler, VecSink};

/// Records one concurrent execution of C1's first race-expecting test.
fn record_trace() -> (
    narada_lang::hir::Program,
    narada_lang::mir::MirProgram,
    Vec<narada_vm::Event>,
    narada_core::TestPlan,
) {
    let entry = narada_corpus::c1();
    let prog = entry.compile().unwrap();
    let mir = lower_program(&prog);
    let out = synthesize(&prog, &mir, &SynthesisOptions::default());
    let plan = out
        .tests
        .iter()
        .find(|t| t.plan.expects_race)
        .expect("race-expecting plan")
        .plan
        .clone();
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
    let mut machine = Machine::with_defaults(&prog, &mir);
    let mut sink = VecSink::new();
    let mut sched = RandomScheduler::new(3);
    execute_plan(
        &mut machine,
        &seeds,
        &plan,
        &mut sched,
        &mut sink,
        2_000_000,
    )
    .unwrap();
    (prog, mir, sink.events, plan)
}

fn bench_detectors() {
    let (_prog, _mir, events, _plan) = record_trace();
    let n = events.len() as u64;

    bench_throughput("detectors/lockset", n, || {
        let mut d = LocksetDetector::new();
        for ev in &events {
            d.event(ev);
        }
        d.races().len()
    });

    bench_throughput("detectors/fasttrack", n, || {
        let mut d = FastTrackDetector::new();
        for ev in &events {
            d.event(ev);
        }
        d.races().len()
    });

    // The FastTrack-paper comparison: epochs vs full vector clocks.
    bench_throughput("detectors/djit_plus", n, || {
        let mut d = DjitDetector::new();
        for ev in &events {
            d.event(ev);
        }
        d.races().len()
    });
}

fn bench_confirmation() {
    let (prog, mir, events, plan) = record_trace();
    // Find a race target from a lockset pass.
    let mut d = LocksetDetector::new();
    for ev in &events {
        d.event(ev);
    }
    let Some(first) = d.races().first() else {
        return;
    };
    let key = first.static_key();
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();

    bench_function("racefuzzer/confirm_c1", || {
        let mut machine = Machine::with_defaults(&prog, &mir);
        let mut sched = RaceFuzzerScheduler::new(key, 1);
        let mut sink = narada_vm::NullSink;
        execute_plan(
            &mut machine,
            &seeds,
            &plan,
            &mut sched,
            &mut sink,
            2_000_000,
        )
        .unwrap();
        sched.confirmed.len()
    });
}

fn main() {
    bench_detectors();
    bench_confirmation();
}
