//! Criterion benchmark for the dynamic race detectors: events/second of
//! the Eraser lockset and FastTrack happens-before sinks on a recorded
//! concurrent trace, plus RaceFuzzer confirmation latency.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use narada_core::{execute_plan, synthesize, SynthesisOptions};
use narada_detect::{DjitDetector, FastTrackDetector, LocksetDetector, RaceFuzzerScheduler};
use narada_lang::lower::lower_program;
use narada_vm::{EventSink, Machine, RandomScheduler, VecSink};

/// Records one concurrent execution of C1's first race-expecting test.
fn record_trace() -> (
    narada_lang::hir::Program,
    narada_lang::mir::MirProgram,
    Vec<narada_vm::Event>,
    narada_core::TestPlan,
) {
    let entry = narada_corpus::c1();
    let prog = entry.compile().unwrap();
    let mir = lower_program(&prog);
    let out = synthesize(&prog, &mir, &SynthesisOptions::default());
    let plan = out
        .tests
        .iter()
        .find(|t| t.plan.expects_race)
        .expect("race-expecting plan")
        .plan
        .clone();
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
    let mut machine = Machine::with_defaults(&prog, &mir);
    let mut sink = VecSink::new();
    let mut sched = RandomScheduler::new(3);
    execute_plan(&mut machine, &seeds, &plan, &mut sched, &mut sink, 2_000_000).unwrap();
    (prog, mir, sink.events, plan)
}

fn bench_detectors(c: &mut Criterion) {
    let (_prog, _mir, events, _plan) = record_trace();
    let mut group = c.benchmark_group("detectors");
    group.throughput(Throughput::Elements(events.len() as u64));

    group.bench_function("lockset", |b| {
        b.iter(|| {
            let mut d = LocksetDetector::new();
            for ev in &events {
                d.event(ev);
            }
            std::hint::black_box(d.races().len())
        });
    });

    group.bench_function("fasttrack", |b| {
        b.iter(|| {
            let mut d = FastTrackDetector::new();
            for ev in &events {
                d.event(ev);
            }
            std::hint::black_box(d.races().len())
        });
    });

    // The FastTrack-paper comparison: epochs vs full vector clocks.
    group.bench_function("djit_plus", |b| {
        b.iter(|| {
            let mut d = DjitDetector::new();
            for ev in &events {
                d.event(ev);
            }
            std::hint::black_box(d.races().len())
        });
    });
    group.finish();
}

fn bench_confirmation(c: &mut Criterion) {
    let (prog, mir, events, plan) = record_trace();
    // Find a race target from a lockset pass.
    let mut d = LocksetDetector::new();
    for ev in &events {
        d.event(ev);
    }
    let Some(first) = d.races().first() else {
        return;
    };
    let key = first.static_key();
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();

    c.bench_function("racefuzzer/confirm_c1", |b| {
        b.iter(|| {
            let mut machine = Machine::with_defaults(&prog, &mir);
            let mut sched = RaceFuzzerScheduler::new(key, 1);
            let mut sink = narada_vm::NullSink;
            execute_plan(&mut machine, &seeds, &plan, &mut sched, &mut sink, 2_000_000).unwrap();
            std::hint::black_box(sched.confirmed.len())
        });
    });
}

criterion_group!(benches, bench_detectors, bench_confirmation);
criterion_main!(benches);
