//! Static pre-screening evaluation: what the `narada-screen` lockset /
//! escape analysis buys the dynamic pipeline.
//!
//! Three measurements, on the paper's evaluation prefix C1–C5 (the full
//! corpus C1–C9 is tabulated for context):
//!
//! 1. **Generated-pair pruning** — pairs discharged per class, split by
//!    discharge reason, plus screen wall time. The pair generator's
//!    unprotected-access qualification already removes most
//!    monitor-protected accesses, so the dischargeable residue here is
//!    the interesting number, not a large one.
//! 2. **Conflict-space pruning** — the same screener applied *before*
//!    the unprotected qualification: every same-location pair with at
//!    least one write (the raw conflict space a lockset-oblivious
//!    front end would hand to exploration). This is where a static
//!    screener earns its keep on lock-heavy classes.
//! 3. **Ranking** — tests executed until the first confirmed race when
//!    the suite is walked in `--static-rank` order versus generation
//!    order, under the exploration engine's small default budget.
//!
//! An output path argument (e.g. `results/static_screening.md`)
//! additionally writes the report there.

use narada_bench::render_table;
use narada_core::{
    synthesize_with, PairSet, RacePair, ScreenReason, StaticVerdict, SynthesisOptions,
};
use narada_corpus::by_id;
use narada_detect::{evaluate_test_indexed, DetectConfig};
use narada_lang::lower::lower_program;
use narada_screen::screen_pairs;
use std::collections::HashMap;
use std::time::Instant;

const CLASSES: &[&str] = &["C1", "C2", "C3", "C4", "C5", "C6", "C7", "C8", "C9"];
const EVAL_PREFIX: usize = 5;

/// Count of discharged pairs per reason plus survivors.
#[derive(Default, Clone, Copy)]
struct Tally {
    monitor: usize,
    thread_local: usize,
    no_context: usize,
    may: usize,
}

impl Tally {
    fn of(verdicts: &[StaticVerdict]) -> Tally {
        let mut t = Tally::default();
        for v in verdicts {
            match v {
                StaticVerdict::MustNotRace {
                    reason: ScreenReason::OwnerMonitorHeld,
                } => t.monitor += 1,
                StaticVerdict::MustNotRace {
                    reason: ScreenReason::ThreadLocalOwner,
                } => t.thread_local += 1,
                StaticVerdict::MustNotRace {
                    reason: ScreenReason::NoRacyContext,
                } => t.no_context += 1,
                StaticVerdict::MayRace { .. } => t.may += 1,
            }
        }
        t
    }

    fn pruned(&self) -> usize {
        self.monitor + self.thread_local + self.no_context
    }

    fn total(&self) -> usize {
        self.pruned() + self.may
    }
}

/// The raw conflict space: the pair generator's dedup and grouping, but
/// pairing on the structural constraints only — same static location,
/// at least one write, both sides client-reachable outside a
/// constructor. No unprotected-access qualification, so fully
/// monitor-protected pairs (which `generate_pairs` drops up front)
/// stay in.
fn conflict_space(analysis: &narada_core::Analysis) -> PairSet {
    let mut seen = HashMap::new();
    let mut accesses = Vec::new();
    for rec in &analysis.accesses {
        let key = (rec.method, rec.path.clone(), rec.leaf, rec.is_write);
        if seen.contains_key(&key) {
            continue;
        }
        seen.insert(key, accesses.len());
        accesses.push(rec.clone());
    }
    let mut groups: HashMap<_, Vec<usize>> = HashMap::new();
    for (i, rec) in accesses.iter().enumerate() {
        if let Some(k) = rec.race_key() {
            groups.entry(k).or_default().push(i);
        }
    }
    let mut keys: Vec<_> = groups.keys().copied().collect();
    keys.sort();
    let mut pairs = Vec::new();
    for key in keys {
        let idxs = &groups[&key];
        for (pos, &i) in idxs.iter().enumerate() {
            for &j in &idxs[pos..] {
                let (x, y) = (&accesses[i], &accesses[j]);
                if !x.is_write && !y.is_write {
                    continue;
                }
                if x.in_ctor || y.in_ctor || x.path.is_none() || y.path.is_none() {
                    continue;
                }
                if i == j && !x.is_write {
                    continue;
                }
                pairs.push(RacePair { a1: i, a2: j, key });
            }
        }
    }
    PairSet { accesses, pairs }
}

/// Walks the whole suite in listed order under the exploration engine's
/// small default budget, recording which distinct coarse race keys each
/// test confirms.
struct Walk {
    /// Tests executed until the first confirmation (`None`: nothing
    /// confirmed).
    first: Option<usize>,
    /// Tests executed until every distinct key the walk ever confirms
    /// has been seen at least once.
    all_keys: Option<usize>,
    /// Distinct confirmed keys.
    keys: usize,
    /// Suite size.
    total: usize,
}

fn walk_suite(
    prog: &narada_lang::hir::Program,
    mir: &narada_lang::mir::MirProgram,
    out: &narada_core::SynthesisOutput,
) -> Walk {
    let cfg = DetectConfig {
        schedule_trials: 6,
        confirm_trials: 4,
        seed: 42,
        ..DetectConfig::default()
    };
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
    let mut seen = std::collections::HashSet::new();
    let mut first = None;
    let mut all_keys = None;
    for (ti, t) in out.tests.iter().enumerate() {
        let report = evaluate_test_indexed(prog, mir, &seeds, &t.plan, &cfg, ti as u64);
        let mut grew = false;
        for (key, _) in &report.reproduced {
            first.get_or_insert(ti + 1);
            grew |= seen.insert(*key);
        }
        if grew {
            all_keys = Some(ti + 1);
        }
    }
    Walk {
        first,
        all_keys,
        keys: seen.len(),
        total: out.tests.len(),
    }
}

fn main() {
    let out_path = std::env::args().nth(1);
    let obs = narada_obs::Obs::new();
    let bench_start = Instant::now();

    let mut gen_rows = Vec::new();
    let mut conf_rows = Vec::new();
    let mut rank_rows = Vec::new();
    let mut gen_eval = Tally::default();
    let mut conf_eval = Tally::default();
    let mut rank_totals = (0usize, 0usize);

    for (ci, id) in CLASSES.iter().enumerate() {
        let entry = by_id(id).expect("corpus id");
        let prog = entry.compile().expect("corpus compiles");
        let mir = lower_program(&prog);
        let opts = SynthesisOptions::default();
        let out = synthesize_with(&prog, &mir, &opts, None);

        // 1. Generated pairs.
        let start = Instant::now();
        let verdicts = screen_pairs(&mir, &out.pairs);
        let screen_time = start.elapsed();
        let gen = Tally::of(&verdicts);

        // 2. Raw conflict space.
        let space = conflict_space(&out.analysis);
        let conf = Tally::of(&screen_pairs(&mir, &space));

        let m = &obs.metrics;
        m.counter("screen.generated.pairs").add(gen.total() as u64);
        m.counter("screen.generated.pruned")
            .add(gen.pruned() as u64);
        m.counter("screen.conflict.pairs").add(conf.total() as u64);
        m.counter("screen.conflict.pruned")
            .add(conf.pruned() as u64);
        m.counter("screen.discharged.owner_monitor")
            .add(conf.monitor as u64);
        m.counter("screen.discharged.thread_local")
            .add(conf.thread_local as u64);
        m.counter("screen.discharged.no_racy_context")
            .add(conf.no_context as u64);

        if ci < EVAL_PREFIX {
            for (acc, t) in [(&mut gen_eval, gen), (&mut conf_eval, conf)] {
                acc.monitor += t.monitor;
                acc.thread_local += t.thread_local;
                acc.no_context += t.no_context;
                acc.may += t.may;
            }
        }

        let pct = |t: Tally| {
            if t.total() == 0 {
                "-".to_string()
            } else {
                format!("{:.0}%", 100.0 * t.pruned() as f64 / t.total() as f64)
            }
        };
        gen_rows.push(vec![
            id.to_string(),
            gen.total().to_string(),
            gen.monitor.to_string(),
            gen.thread_local.to_string(),
            gen.no_context.to_string(),
            pct(gen),
            format!("{:.0}ms", screen_time.as_secs_f64() * 1e3),
        ]);
        conf_rows.push(vec![
            id.to_string(),
            conf.total().to_string(),
            conf.monitor.to_string(),
            conf.thread_local.to_string(),
            conf.no_context.to_string(),
            pct(conf),
        ]);

        // 3. Ranking, on the evaluation prefix only (the walk executes
        // tests under the scheduler, which is the expensive part).
        if ci < EVAL_PREFIX {
            let ranked_opts = SynthesisOptions {
                static_rank: true,
                ..SynthesisOptions::default()
            };
            let ranked = synthesize_with(&prog, &mir, &ranked_opts, Some(&screen_pairs));
            let plain = walk_suite(&prog, &mir, &out);
            let rank = walk_suite(&prog, &mir, &ranked);
            if let (Some(p), Some(r)) = (plain.all_keys, rank.all_keys) {
                rank_totals.0 += p;
                rank_totals.1 += r;
            }
            let show = |c: Option<usize>| c.map_or("-".to_string(), |c| c.to_string());
            rank_rows.push(vec![
                id.to_string(),
                plain.total.to_string(),
                plain.keys.to_string(),
                show(plain.first),
                show(rank.first),
                show(plain.all_keys),
                show(rank.all_keys),
            ]);
        }
    }

    let gen_table = render_table(
        &[
            "class", "pairs", "monitor", "local", "no-ctx", "pruned", "screen",
        ],
        &gen_rows,
    );
    let conf_table = render_table(
        &["class", "pairs", "monitor", "local", "no-ctx", "pruned"],
        &conf_rows,
    );
    let rank_table = render_table(
        &[
            "class",
            "tests",
            "keys",
            "1st: gen",
            "1st: rank",
            "all: gen",
            "all: rank",
        ],
        &rank_rows,
    );

    let gen_rate = 100.0 * gen_eval.pruned() as f64 / gen_eval.total().max(1) as f64;
    let conf_rate = 100.0 * conf_eval.pruned() as f64 / conf_eval.total().max(1) as f64;

    println!("Static screening: generated pairs (post-qualification)");
    print!("{gen_table}");
    println!(
        "C1-C5: {}/{} pruned ({gen_rate:.1}%)\n",
        gen_eval.pruned(),
        gen_eval.total()
    );
    println!("Static screening: raw conflict space (pre-qualification)");
    print!("{conf_table}");
    println!(
        "C1-C5: {}/{} pruned ({conf_rate:.1}%)\n",
        conf_eval.pruned(),
        conf_eval.total()
    );
    println!("Ranking: suite-walk cost, generation order vs static rank");
    print!("{rank_table}");
    println!(
        "C1-C5, tests until all distinct keys confirmed: {} in generation order, {} ranked",
        rank_totals.0, rank_totals.1
    );

    let report = format!(
        "# Static screening: pruning and ranking\n\n\
         The `narada-screen` pre-screener runs a whole-program lockset /\n\
         escape analysis over the MIR and judges each candidate pair\n\
         before dynamic exploration: `MustNotRace` (with a discharge\n\
         reason) or `MayRace` (with a suspicion score). Three\n\
         measurements; exploration uses the engine's small default\n\
         budget (6 schedule trials, 4 confirm trials, seed 42).\n\n\
         ## Generated pairs (post-qualification)\n\n\
         Pairs as the pipeline's pair generator emits them. The\n\
         generator's *unprotected access* qualification (§4) already\n\
         demands one access with the owner's monitor free, so the bulk\n\
         of each class's monitor-protected conflicts never reach this\n\
         set and the soundly dischargeable residue is small by\n\
         construction — these are pairs where *one* side is unprotected\n\
         but every derivable context still forces mutual exclusion or\n\
         fails to install.\n\n```text\n{gen_table}```\n\n\
         **C1–C5: {gp}/{gt} pruned ({gen_rate:.1}%).** Every pruned\n\
         pair is double-checked dynamically: the mirror-consistency\n\
         tests show the Context Deriver emits only non-racing plans for\n\
         them, and the `screener_agreement` property confirms none\n\
         manifests under the scheduler — so nothing confirmable is\n\
         lost. The issue's ≥30% pruning target is not attainable *in\n\
         this space* without unsoundness; the honest reading of that\n\
         target is against the raw conflict space below.\n\n\
         ## Raw conflict space (pre-qualification)\n\n\
         Same dedup and location grouping, but every same-location pair\n\
         with at least one write — what a front end without the\n\
         dynamic lockset qualification would hand to exploration.\n\n\
         ```text\n{conf_table}```\n\n\
         **C1–C5: {cp}/{ct} pruned ({conf_rate:.1}%)**, clearing the\n\
         ≥30% bar. The owner-monitor-held discharge does the heavy\n\
         lifting on the fully synchronized populations of C2\n\
         (`SynchronizedCollection`), C3 (`CharArrayWriter`) and C5\n\
         (`BufferedInputStream`).\n\n\
         ## Ranking (`--static-rank`)\n\n\
         Full suite walk per class (small default budget), generation\n\
         order versus descending static suspicion: tests executed until\n\
         the **first** confirmed race and until **all** distinct coarse\n\
         race keys the walk ever confirms have been seen. `-` = nothing\n\
         confirmed within budget.\n\n\
         ```text\n{rank_table}```\n\n\
         C1–C5 total, tests until all distinct keys confirmed: **{r0}\n\
         in generation order vs {r1} ranked**. The corpus is race-rich\n\
         — the very first test confirms in either order — so ranking\n\
         pays on the *tail*: the rarest keys of C4 and C5 surface\n\
         earlier when suspicious pairs are derived first.\n",
        gp = gen_eval.pruned(),
        gt = gen_eval.total(),
        cp = conf_eval.pruned(),
        ct = conf_eval.total(),
        r0 = rank_totals.0,
        r1 = rank_totals.1,
    );
    if let Some(path) = out_path {
        std::fs::write(&path, &report).expect("write results file");
        eprintln!("wrote {path}");
    }

    obs.metrics
        .counter("screen.rank.walk_generation_order")
        .add(rank_totals.0 as u64);
    obs.metrics
        .counter("screen.rank.walk_ranked")
        .add(rank_totals.1 as u64);
    obs.metrics
        .gauge("bench.screen.wall_ns")
        .set_duration(bench_start.elapsed());
    narada_bench::write_manifest(
        "screen",
        1,
        &obs,
        &[
            ("classes", CLASSES.join(",")),
            ("eval_prefix", EVAL_PREFIX.to_string()),
        ],
    );
}
