//! Fork-vs-rerun explorer shootout: **executed prefix steps** and wall
//! clock on C1's narrow-window plans (the paper's motivating benchmark).
//!
//! Both explorers run the *same* detection workload — the narrow-window
//! racy plans of C1, screened exactly as the schedule-exploration
//! shootout screens them (reachable under random scouting, but
//! manifesting on under half of the scouts) — and must produce
//! byte-identical verdicts; the bench asserts it. What differs is the
//! work: the re-execution explorer runs the sequential prefix once per
//! trial, the fork explorer runs it once per test and probes suffixes
//! from copy-on-write snapshot forks. The headline metric is the ratio
//! of prefix steps the two modes execute (`fork.prefix_step_ratio_x100`,
//! gated by the trend baseline at ≥ 3×), with wall clock reported
//! alongside.
//!
//! Knobs: `NARADA_REPS` (wall-clock repetitions, default 5),
//! `NARADA_MAX_PLANS` (default 12), `NARADA_THREADS`. An output path
//! argument (e.g. `results/fork_exploration.md`) additionally writes the
//! report there.

use narada_bench::render_table;
use narada_core::{execute_plan, synthesize, SynthesisOptions, TestPlan};
use narada_corpus::by_id;
use narada_detect::{evaluate_suite_full, ClassDetection, DetectConfig, ExploreMode, TestReport};
use narada_explore::prepare_fork_point;
use narada_lang::hir::{Program, TestId};
use narada_lang::lower::lower_program;
use narada_lang::mir::MirProgram;
use narada_obs::{MetricValue, Obs};
use narada_vm::rng::derive_seed;
use narada_vm::{
    Machine, MachineOptions, NullSink, ObjectData, RecordingScheduler, ScheduleStrategy, Scheduler,
    SegmentScheduler, SerialScheduler, ThreadId, Value,
};

const BASE_SEED: u64 = 0xf0_4cbe;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Allocation-order-insensitive digest of the final heap (multiset of
/// per-object value summaries) — the same serializability oracle the
/// schedule-exploration shootout uses.
fn mix64(h: u64, v: u64) -> u64 {
    let mut state = h ^ v;
    narada_vm::rng::splitmix64(&mut state)
}

fn heap_digest(machine: &Machine<'_>) -> u64 {
    let mut per_object: Vec<u64> = (0..machine.heap.len())
        .map(|i| {
            let obj = machine.heap.object(narada_vm::ObjId(i as u32));
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            let mut mix = |v: u64| h = mix64(h, v);
            let scalar = |v: &Value| match v {
                Value::Int(n) => *n as u64 ^ 0x1000_0000,
                Value::Bool(b) => *b as u64 ^ 0x2000_0000,
                Value::Null => 3,
                Value::Ref(_) => 4,
            };
            match &obj.data {
                ObjectData::Instance { class, fields } => {
                    mix(class.index() as u64);
                    for f in fields {
                        mix(scalar(f));
                    }
                }
                ObjectData::Array { data, .. } => {
                    mix(0x5eed ^ data.len() as u64);
                    for e in data {
                        mix(scalar(e));
                    }
                }
            }
            h
        })
        .collect();
    per_object.sort_unstable();
    per_object.into_iter().fold(0x9e37_79b9_7f4a_7c15u64, mix64)
}

fn run_once(
    prog: &Program,
    mir: &MirProgram,
    seeds: &[TestId],
    plan: &TestPlan,
    scheduler: &mut dyn Scheduler,
    machine_seed: u64,
) -> Option<(u64, bool, [ThreadId; 2])> {
    let mut machine = Machine::new(
        prog,
        mir,
        MachineOptions {
            seed: machine_seed,
            ..MachineOptions::default()
        },
    );
    let report = execute_plan(
        &mut machine,
        seeds,
        plan,
        scheduler,
        &mut NullSink,
        2_000_000,
    )
    .ok()?;
    Some((
        heap_digest(&machine),
        !report.failures.is_empty(),
        report.threads,
    ))
}

/// Outcomes of the two serial orders of the racy calls: a scouting run
/// whose (digest, crashed) matches neither is non-serializable.
fn serial_outcomes(
    prog: &Program,
    mir: &MirProgram,
    seeds: &[TestId],
    plan: &TestPlan,
    machine_seed: u64,
) -> Option<Vec<(u64, bool)>> {
    let mut rec = RecordingScheduler::new(SerialScheduler::new());
    let (d1, c1, [a, b]) = run_once(prog, mir, seeds, plan, &mut rec, machine_seed)?;
    let big = rec.choices.len() as u64 + 1_000;
    let mut ba = SegmentScheduler::new(vec![(b, big), (a, big)]);
    let (d2, c2, _) = run_once(prog, mir, seeds, plan, &mut ba, machine_seed)?;
    let mut allowed = vec![(d1, c1)];
    if (d2, c2) != (d1, c1) {
        allowed.push((d2, c2));
    }
    Some(allowed)
}

/// One explorer mode's observable output as a byte string (wall clock
/// excluded), mirroring the fork differential suite's renderer.
fn render_verdicts(reports: &[TestReport], agg: &ClassDetection) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for (i, r) in reports.iter().enumerate() {
        let _ = writeln!(
            out,
            "test {i}: detected={:?} reproduced={:?} errors={:?}",
            r.detected, r.reproduced, r.setup_errors
        );
    }
    let _ = writeln!(
        out,
        "agg: detected={} harmful={} benign={} unreproduced={}",
        agg.races_detected, agg.harmful, agg.benign, agg.unreproduced
    );
    out
}

fn main() {
    let reps = env_usize("NARADA_REPS", 5);
    let max_plans = env_usize("NARADA_MAX_PLANS", 12);
    let threads = narada_bench::env_threads();
    let out_path = std::env::args().nth(1);
    let obs = Obs::new();
    let bench_start = std::time::Instant::now();

    let entry = by_id("C1").expect("C1 in corpus");
    let prog = entry.compile().expect("C1 compiles");
    let mir = lower_program(&prog);
    let out = synthesize(&prog, &mir, &SynthesisOptions::default());
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();

    // Screen: narrow-window racy plans — reachable (some random scout
    // goes non-serializable) but under half the scouts manifest.
    let scout = 16u64;
    let mut screened: Vec<&TestPlan> = Vec::new();
    for (i, t) in out.tests.iter().enumerate() {
        if !t.plan.expects_race {
            continue;
        }
        let ms = derive_seed(BASE_SEED, &[1, i as u64]);
        let Some(allowed) = serial_outcomes(&prog, &mir, &seeds, &t.plan, ms) else {
            continue;
        };
        let hits = (0..scout)
            .filter(|&k| {
                let ss = derive_seed(BASE_SEED, &[2, i as u64, k]);
                let mut sched = ScheduleStrategy::Random.build(ss, 1_000);
                run_once(&prog, &mir, &seeds, &t.plan, &mut *sched, ms)
                    .map(|(d, c, _)| !allowed.contains(&(d, c)))
                    .unwrap_or(false)
            })
            .count();
        if hits > 0 && hits < scout as usize / 2 {
            screened.push(&t.plan);
        }
    }
    if screened.is_empty() {
        screened = out
            .tests
            .iter()
            .filter(|t| t.plan.expects_race)
            .map(|t| &t.plan)
            .collect();
    }
    screened.truncate(max_plans);
    eprintln!("C1: {} narrow-window plans under bench", screened.len());

    let cfg = |explore: ExploreMode| DetectConfig {
        schedule_trials: 6,
        confirm_trials: 4,
        seed: 42,
        budget: 2_000_000,
        threads,
        strategy: ScheduleStrategy::Pct { depth: 3 },
        explore,
        ..DetectConfig::default()
    };

    // One timed detection sweep per mode per repetition; the first
    // repetition's Obs carries the (deterministic) metric story.
    let run_mode = |mode: ExploreMode| {
        let mut walls = Vec::new();
        let mut kept: Option<(String, Obs)> = None;
        for _ in 0..reps {
            let rep_obs = Obs::new();
            let start = std::time::Instant::now();
            let (reports, agg) =
                evaluate_suite_full(&prog, &mir, &seeds, &screened, &cfg(mode), &rep_obs);
            walls.push(start.elapsed());
            if kept.is_none() {
                kept = Some((render_verdicts(&reports, &agg), rep_obs));
            }
        }
        let (verdicts, first_obs) = kept.expect("at least one repetition");
        (verdicts, first_obs, walls)
    };
    let (rerun_verdicts, _, rerun_walls) = run_mode(ExploreMode::Rerun);
    let (fork_verdicts, fork_obs, fork_walls) = run_mode(ExploreMode::Fork);
    assert_eq!(
        fork_verdicts, rerun_verdicts,
        "fork explorer diverged from rerun — the shootout compares nothing"
    );

    // Prefix-step accounting. The fork explorer executed each forked
    // test's prefix exactly once; re-measuring the fork points gives the
    // exact step count. Rerun executed those same prefixes once per
    // probe: saved + executed.
    let counter = |name: &str| match fork_obs.metrics.value(name) {
        Some(MetricValue::Counter(v)) => v,
        _ => 0,
    };
    let saved = counter("explore.prefix_steps_saved");
    let forks = counter("explore.forks");
    let probes = counter("explore.probes");
    let fork_prefix_steps: u64 = screened
        .iter()
        .filter_map(|plan| {
            let mut m = Machine::new(
                &prog,
                &mir,
                MachineOptions {
                    seed: derive_seed(42, &[1, 0, 0]),
                    ..MachineOptions::default()
                },
            );
            prepare_fork_point(&mut m, &seeds, plan).map(|fp| fp.prefix_steps())
        })
        .sum();
    let rerun_prefix_steps = saved + fork_prefix_steps;
    assert!(forks > 0, "no plan ever forked — nothing was measured");
    let ratio = rerun_prefix_steps as f64 / fork_prefix_steps.max(1) as f64;
    assert!(
        ratio >= 3.0,
        "fork mode must execute >=3x fewer prefix steps, got {ratio:.2}x"
    );

    let min_s = |w: &[std::time::Duration]| w.iter().min().map(|d| d.as_secs_f64()).unwrap_or(0.0);
    let mean_s = |w: &[std::time::Duration]| {
        w.iter().map(|d| d.as_secs_f64()).sum::<f64>() / w.len().max(1) as f64
    };
    let rows = vec![
        vec![
            "rerun".to_string(),
            rerun_prefix_steps.to_string(),
            format!("{:.3}", min_s(&rerun_walls)),
            format!("{:.3}", mean_s(&rerun_walls)),
        ],
        vec![
            "fork".to_string(),
            fork_prefix_steps.to_string(),
            format!("{:.3}", min_s(&fork_walls)),
            format!("{:.3}", mean_s(&fork_walls)),
        ],
    ];
    let table = render_table(
        &[
            "explorer",
            "prefix steps executed",
            "min wall (s)",
            "mean wall (s)",
        ],
        &rows,
    );
    println!("Fork-vs-rerun explorer shootout (C1 narrow-window plans)");
    print!("{table}");
    println!(
        "prefix-step ratio {ratio:.1}x  (forks {forks}, probes {probes}, steps saved {saved})"
    );

    obs.metrics.counter("fork.plans").add(screened.len() as u64);
    obs.metrics.counter("fork.forks").add(forks);
    obs.metrics.counter("fork.probes").add(probes);
    obs.metrics
        .counter("fork.prefix_steps_rerun")
        .add(rerun_prefix_steps);
    obs.metrics
        .counter("fork.prefix_steps_fork")
        .add(fork_prefix_steps);
    obs.metrics.counter("fork.prefix_steps_saved").add(saved);
    obs.metrics
        .counter("fork.prefix_step_ratio_x100")
        .add((ratio * 100.0) as u64);
    obs.metrics
        .gauge("bench.fork.rerun_wall_ns")
        .set((min_s(&rerun_walls) * 1e9) as u64);
    obs.metrics
        .gauge("bench.fork.fork_wall_ns")
        .set((min_s(&fork_walls) * 1e9) as u64);

    if let Some(path) = out_path {
        let report = format!(
            "# Snapshot-forking exploration: fork vs rerun (C1)\n\n\
             Both explorers run the same detection workload over C1's\n\
             narrow-window racy plans (screened as in\n\
             `schedule_exploration.md`: reachable under random scouting but\n\
             manifesting on under half the scouts) with schedules 6,\n\
             confirms 4, PCT depth 3 — and the bench asserts their verdicts\n\
             are byte-identical before comparing cost. The re-execution\n\
             explorer runs each test's sequential prefix once per trial;\n\
             the fork explorer runs it once per test, snapshots the machine\n\
             (copy-on-write heap marks), and probes every suffix from\n\
             restored forks.\n\n\
             - plans: {} (narrow-window racy plans of C1)\n\
             - wall repetitions: {reps} (min and mean reported)\n\n\
             ```text\n{table}```\n\n\
             The fork explorer executed {ratio:.1}x fewer prefix steps\n\
             ({fork_prefix_steps} vs {rerun_prefix_steps}; {forks} forks\n\
             serving {probes} probes, {saved} steps saved), which the\n\
             wall-clock column reflects directly — the prefix dominates\n\
             C1's per-trial cost, so skipping its re-execution is the whole\n\
             win. `BENCH_fork.json` gates the step accounting (and the\n\
             >=3x ratio) in CI; wall clock stays informational.\n",
            screened.len(),
        );
        std::fs::write(&path, &report).expect("write results file");
        eprintln!("wrote {path}");
    }

    obs.metrics
        .gauge("bench.fork.wall_ns")
        .set_duration(bench_start.elapsed());
    narada_bench::write_manifest(
        "fork",
        1,
        &obs,
        &[
            ("reps", reps.to_string()),
            ("max_plans", max_plans.to_string()),
            ("base_seed", format!("{BASE_SEED:#x}")),
        ],
    );
}
