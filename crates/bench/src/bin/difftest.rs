//! Differential corpus sweep: generate a fixed-seed lattice of MJ
//! library classes and cross-check the static screener against the full
//! dynamic pipeline on every one (see `narada-difftest`).
//!
//! The sweep size defaults to 64 classes (just under two passes over
//! the 36-point lattice, so every point is hit at least once and most
//! twice with different member noise); override with
//! `NARADA_DIFFTEST_COUNT`. Worker count comes from `NARADA_THREADS`
//! (the digest is thread-count independent by construction — CI
//! verifies this separately through the `narada difftest` CLI).
//!
//! An output path argument (e.g. `results/differential_testing.md`)
//! additionally writes the report there. Exits nonzero on any screener
//! soundness disagreement.

use narada_bench::{env_threads, render_table};
use narada_difftest::{run_sweep, DiffConfig, Discipline, Outcome, GENERATOR_VERSION};
use std::time::Instant;

fn main() {
    let out_path = std::env::args().nth(1);
    let obs = narada_obs::Obs::new();
    let threads = env_threads();
    let count: usize = std::env::var("NARADA_DIFFTEST_COUNT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let cfg = DiffConfig {
        count,
        threads,
        ..DiffConfig::default()
    };

    let start = Instant::now();
    let sweep = run_sweep(&cfg, &obs);
    let wall = start.elapsed();

    // Per-discipline tally: the interesting split, since the discipline
    // axis decides whether races are expected to manifest at all.
    let mut rows = Vec::new();
    for d in Discipline::ALL {
        let in_bucket: Vec<_> = sweep
            .reports
            .iter()
            .filter(|r| r.spec.discipline == d)
            .collect();
        let sum = |f: fn(&narada_difftest::ClassReport) -> usize| -> usize {
            in_bucket.iter().map(|r| f(r)).sum()
        };
        let misses = in_bucket
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::PrecisionMiss))
            .count();
        rows.push(vec![
            d.tag().to_string(),
            in_bucket.len().to_string(),
            sum(|r| r.pairs).to_string(),
            sum(|r| r.discharged).to_string(),
            sum(|r| r.survivors).to_string(),
            sum(|r| r.confirmed).to_string(),
            misses.to_string(),
        ]);
    }
    let table = render_table(
        &[
            "discipline",
            "classes",
            "pairs",
            "discharged",
            "survivors",
            "confirmed",
            "miss",
        ],
        &rows,
    );

    println!(
        "Differential corpus sweep (seed {:#x}, v{GENERATOR_VERSION})",
        cfg.seed
    );
    print!("{table}");
    println!("{}", sweep.summary());
    println!("wall: {:.1}s", wall.as_secs_f64());

    let report = format!(
        "# Differential corpus testing\n\n\
         `narada difftest` synthesizes complete MJ library classes across\n\
         the field-kind × locking-discipline × sharing-shape lattice and\n\
         runs each through both the static screener and the dynamic\n\
         pipeline as each other's oracle (DESIGN.md §8). Fixed sweep:\n\
         seed `{seed:#x}`, generator v{GENERATOR_VERSION}, {count}\n\
         classes, digest `{digest:016x}`.\n\n\
         Per locking discipline:\n\n```text\n{table}```\n\n\
         {summary}\n\n\
         A *soundness* disagreement (screener `MustNotRace` on a\n\
         dynamically confirmed race) fails the run; a *precision miss*\n\
         (no race confirmed on a class whose discipline should manifest\n\
         one) is logged as a datapoint. The `guarded` bucket is the\n\
         negative control: its leaf accesses are fully monitor-protected,\n\
         so its confirmations come only from the deliberately unguarded\n\
         sharing-installation fields.\n",
        seed = cfg.seed,
        count = cfg.count,
        digest = sweep.digest,
        summary = sweep.summary(),
    );
    if let Some(path) = out_path {
        std::fs::write(&path, &report).expect("write results file");
        eprintln!("wrote {path}");
    }

    obs.metrics
        .gauge("bench.difftest.wall_ns")
        .set_duration(wall);
    narada_bench::write_manifest(
        "difftest",
        threads,
        &obs,
        &[
            ("seed", format!("{:#x}", cfg.seed)),
            ("count", cfg.count.to_string()),
            ("generator_version", GENERATOR_VERSION.to_string()),
            ("digest", format!("{:016x}", sweep.digest)),
        ],
    );

    let sound = sweep.soundness();
    if !sound.is_empty() {
        for r in sound {
            eprintln!("SOUNDNESS {}", r.summary());
        }
        std::process::exit(1);
    }
}
