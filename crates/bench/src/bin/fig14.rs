//! Regenerates **Figure 14 — Distribution of tests w.r.t. the number of
//! detected races**: for every class, the percentage of synthesized tests
//! that detect 0, 1, 2, 3–5, 5–10, or >10 races, printed as an ASCII bar
//! chart plus the raw series.
//!
//! Environment knobs as in `table5` (`NARADA_SCHEDULES`,
//! `NARADA_CONFIRMS`, `NARADA_MAX_TESTS`).

use narada_bench::{
    env_threads, fig14_distribution, render_table, synthesize_corpus_observed, write_manifest,
    FIG14_BUCKETS,
};
use narada_core::SynthesisOptions;
use narada_detect::{evaluate_suite_observed, DetectConfig};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let threads = env_threads();
    let cfg = DetectConfig {
        schedule_trials: env_usize("NARADA_SCHEDULES", 4),
        confirm_trials: env_usize("NARADA_CONFIRMS", 1),
        seed: 0xf1614,
        budget: 2_000_000,
        threads,
        ..DetectConfig::default()
    };
    let max_tests = env_usize("NARADA_MAX_TESTS", usize::MAX);
    let obs = narada_obs::Obs::new();
    let wall = std::time::Instant::now();
    let runs = synthesize_corpus_observed(
        &SynthesisOptions {
            threads,
            ..SynthesisOptions::default()
        },
        threads,
        &obs,
    );
    let mut rows = Vec::new();
    let mut all_dists = Vec::new();
    for r in &runs {
        let seeds: Vec<_> = r.prog.tests.iter().map(|t| t.id).collect();
        let plans: Vec<_> = r
            .out
            .tests
            .iter()
            .take(max_tests)
            .map(|t| &t.plan)
            .collect();
        let agg = evaluate_suite_observed(&r.prog, &r.mir, &seeds, &plans, &cfg, &obs);
        let dist = fig14_distribution(&agg.per_test_races);
        let mut row = vec![r.entry.id.to_string()];
        for pct in dist {
            row.push(format!("{pct:.0}%"));
        }
        rows.push(row);
        all_dists.push((r.entry.id, dist));
    }
    println!("Figure 14: distribution of tests w.r.t. the number of detected races");
    let headers: Vec<&str> = std::iter::once("Class")
        .chain(FIG14_BUCKETS.iter().copied())
        .collect();
    print!("{}", render_table(&headers, &rows));

    // ASCII stacked bars, one per class (each █ ≈ 5%).
    println!("\nraces per test:   0 '.'  1 '1'  2 '2'  3-5 '3'  5-10 '5'  >10 '+'");
    for (id, dist) in all_dists {
        let symbols = ['.', '1', '2', '3', '5', '+'];
        let mut bar = String::new();
        for (i, pct) in dist.iter().enumerate() {
            let blocks = (pct / 5.0).round() as usize;
            bar.extend(std::iter::repeat_n(symbols[i], blocks));
        }
        println!("{id:>3} |{bar}");
    }
    obs.metrics
        .gauge("bench.fig14.wall_ns")
        .set_duration(wall.elapsed());
    write_manifest(
        "fig14",
        threads,
        &obs,
        &[
            ("schedules", cfg.schedule_trials.to_string()),
            ("confirms", cfg.confirm_trials.to_string()),
            ("seed", format!("{:#x}", cfg.seed)),
        ],
    );
}
