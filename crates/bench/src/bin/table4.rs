//! Regenerates **Table 4 — Synthesized test count and synthesis time**:
//! per class, the number of methods, LoC, racing pairs, synthesized tests,
//! and wall-clock synthesis time, with the paper's values alongside.
//!
//! Absolute counts differ from the paper (different substrate); the shape
//! to check: pairs ≫ tests, C2/C5/C6 dominating the pair counts, and total
//! synthesis time far under the paper's four minutes.

use narada_bench::{env_threads, render_table, secs, synthesize_corpus_observed, write_manifest};
use narada_core::SynthesisOptions;

fn main() {
    let threads = env_threads();
    let obs = narada_obs::Obs::new();
    let wall = std::time::Instant::now();
    let runs = synthesize_corpus_observed(
        &SynthesisOptions {
            threads,
            ..SynthesisOptions::default()
        },
        threads,
        &obs,
    );
    let wall = wall.elapsed();
    let mut rows = Vec::new();
    let mut total_pairs = 0usize;
    let mut total_tests = 0usize;
    let mut total_time = std::time::Duration::ZERO;
    for r in &runs {
        total_pairs += r.out.pair_count();
        total_tests += r.out.test_count();
        total_time += r.out.elapsed;
        rows.push(vec![
            r.entry.id.to_string(),
            r.entry.method_count(&r.prog).to_string(),
            r.entry.loc().to_string(),
            format!("{} ({})", r.out.pair_count(), r.entry.paper.race_pairs),
            format!("{} ({})", r.out.test_count(), r.entry.paper.tests),
            format!("{} ({})", secs(r.out.elapsed), r.entry.paper.time_secs),
        ]);
    }
    rows.push(vec![
        "Total".into(),
        String::new(),
        String::new(),
        format!("{total_pairs} (466)"),
        format!("{total_tests} (101)"),
        format!("{} (201.3)", secs(total_time)),
    ]);
    println!("Table 4: Synthesized test count and synthesis time");
    println!("measured (paper) per cell");
    println!(
        "threads = {} (NARADA_THREADS), wall-clock {}s",
        narada_core::effective_threads(threads),
        secs(wall)
    );
    print!(
        "{}",
        render_table(
            &["Class", "Methods", "LoC", "Race Pairs", "Tests", "Time (s)"],
            &rows
        )
    );
    obs.metrics.gauge("bench.table4.wall_ns").set_duration(wall);
    write_manifest("table4", threads, &obs, &[("classes", "C1-C9".into())]);
}
