//! Regenerates the **§5 ConTeGe comparison**: for every corpus class, how
//! many randomly generated concurrent tests the ConTeGe-style baseline
//! needs before its crash/deadlock oracle fires — versus Narada's directed
//! synthesis, which needs only its (small) synthesized suite.
//!
//! The paper: ConTeGe found violations only in C5 (2, after 2.9K tests)
//! and C6 (1, after 105 tests); elsewhere it generated 1K–70K tests and
//! found nothing. Expected shape here: the baseline needs orders of
//! magnitude more tests than Narada synthesizes, and finds violations only
//! where crashes (not just races) are reachable.
//!
//! `NARADA_CONTEGE_BUDGET` caps generated tests per class (default 1500).

use narada_bench::{render_table, synthesize_corpus_observed, write_manifest};
use narada_contege::{run_contege, ContegeOptions};
use narada_core::SynthesisOptions;

fn main() {
    let budget: usize = std::env::var("NARADA_CONTEGE_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1500);
    let obs = narada_obs::Obs::new();
    let wall = std::time::Instant::now();
    let runs = synthesize_corpus_observed(&SynthesisOptions::default(), 1, &obs);
    let mut rows = Vec::new();
    for r in &runs {
        let opts = ContegeOptions {
            max_tests: budget,
            seed: 0xc0de ^ r.entry.id.len() as u64 ^ (r.entry.id.as_bytes()[1] as u64),
            stop_at_first: true,
            ..Default::default()
        };
        let result = run_contege(&r.prog, &r.mir, &opts);
        obs.metrics
            .counter("contege.tests_generated")
            .add(result.tests_generated as u64);
        obs.metrics
            .counter("contege.violations")
            .add(result.violations.len() as u64);
        rows.push(vec![
            r.entry.id.to_string(),
            r.out.test_count().to_string(),
            result.tests_generated.to_string(),
            result
                .first_violation_at()
                .map(|n| n.to_string())
                .unwrap_or_else(|| "-".into()),
            result.violations.len().to_string(),
            result
                .violations
                .first()
                .map(|v| format!("{:?}", v.kind))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("ConTeGe comparison (paper §5): random search vs directed synthesis");
    println!("(paper: ConTeGe found 2 violations in C5 after 2.9K tests, 1 in C6 after 105;");
    println!(" elsewhere 1K-70K tests, none found)");
    print!(
        "{}",
        render_table(
            &[
                "Class",
                "Narada tests",
                "ConTeGe tests",
                "First violation",
                "Violations",
                "Kind",
            ],
            &rows
        )
    );
    obs.metrics
        .gauge("bench.contege.wall_ns")
        .set_duration(wall.elapsed());
    write_manifest("contege", 1, &obs, &[("budget", budget.to_string())]);
}
