//! Engine shootout: tree-walk vs bytecode on identical workloads.
//!
//! Runs each workload on both engines (same seeds, same sinks), checks
//! that the observable results agree, and reports the wall-clock speedup.
//! Workloads cover the paths the pipeline actually spends time in:
//!
//! * `field-loop` — a tight shared-field update loop, untraced: the
//!   shape corpus methods actually have (counter increments and
//!   read-modify-write on instance state), and the headline number;
//! * `hot-loop` — the same loop with more arithmetic per field access;
//! * `traced-loop` — into a `VecSink`: event construction bounds the win;
//! * `corpus-suites` — the benchmark classes' full seed suites,
//!   untraced: realistic instruction mix including per-machine compile;
//! * `concurrent` — two racing threads under a seeded random scheduler,
//!   untraced: the per-step (non-burst) dispatch path.
//!
//! Metrics land in `BENCH_vm.json` via the shared manifest writer
//! (`vm.shootout.*`); an output path argument additionally writes the
//! markdown report (e.g. `results/vm_speedup.md`).

use narada_bench::render_table;
use narada_corpus::all;
use narada_lang::hir::Program;
use narada_lang::lower::lower_program;
use narada_lang::mir::MirProgram;
use narada_vm::{
    trace_digest, Engine, Machine, MachineOptions, NullSink, RandomScheduler, Value, VecSink,
};
use std::time::{Duration, Instant};

const HOT_LOOP: &str = r#"
    class Work {
        int acc;
        void spin(int n) {
            var i = 0;
            while (i < n) {
                this.acc = this.acc + i * 3 % 7;
                i = i + 1;
            }
        }
    }
    test seed {
        var w = new Work();
        w.spin(200000);
    }
"#;

const FIELD_LOOP: &str = r#"
    class Work {
        int a;
        int b;
        void spin(int n) {
            var i = 0;
            while (i < n) {
                this.a = this.a + 1;
                this.b = this.b + this.a;
                i = i + 1;
            }
        }
    }
    test seed {
        var w = new Work();
        w.spin(200000);
    }
"#;

const CONTENDED: &str = r#"
    class Counter {
        int count;
        int guarded;
        void inc() { this.count = this.count + 1; }
        sync void sinc() { this.guarded = this.guarded + 1; }
        int mix(int n) {
            var i = 0;
            while (i < n) {
                this.inc();
                this.sinc();
                i = i + 1;
            }
            return this.count + this.guarded;
        }
    }
    test seed { var c = new Counter(); c.mix(1); }
"#;

fn build(src: &str) -> (Program, MirProgram) {
    let prog = narada_lang::compile(src).expect("bench program compiles");
    let mir = lower_program(&prog);
    (prog, mir)
}

fn opts(engine: Engine) -> MachineOptions {
    MachineOptions {
        seed: 0xbe9c,
        max_steps: 50_000_000,
        engine,
        ..MachineOptions::default()
    }
}

/// Repetitions per (workload, engine); the minimum is reported.
fn reps() -> u32 {
    std::env::var("NARADA_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5)
}

/// Times `f` (already warmed once by the equality check) and returns the
/// best of `reps()` runs.
fn time_best(mut f: impl FnMut() -> u64) -> (Duration, u64) {
    let mut best = Duration::MAX;
    let mut result = 0u64;
    for _ in 0..reps() {
        let t = Instant::now();
        result = std::hint::black_box(f());
        best = best.min(t.elapsed());
    }
    (best, result)
}

struct Shot {
    name: &'static str,
    tree: Duration,
    bytecode: Duration,
}

impl Shot {
    fn speedup(&self) -> f64 {
        self.tree.as_secs_f64() / self.bytecode.as_secs_f64()
    }
}

/// Runs one workload on both engines, asserting the engine-independent
/// result value agrees before trusting the timings.
fn shootout(name: &'static str, mut run: impl FnMut(Engine) -> u64) -> Shot {
    let (tree, tree_result) = time_best(|| run(Engine::TreeWalk));
    let (bytecode, bc_result) = time_best(|| run(Engine::Bytecode));
    assert_eq!(
        tree_result, bc_result,
        "{name}: engines disagree — timings are meaningless"
    );
    Shot {
        name,
        tree,
        bytecode,
    }
}

fn main() {
    let out_path = std::env::args().nth(1);
    let obs = narada_obs::Obs::new();

    let (hot_prog, hot_mir) = build(HOT_LOOP);
    let hot = shootout("hot-loop", |engine| {
        let mut m = Machine::new(&hot_prog, &hot_mir, opts(engine));
        m.run_test(hot_prog.tests[0].id, &mut NullSink).unwrap();
        let work = hot_prog.class_by_name("Work").unwrap();
        let acc = hot_prog.field_by_name(work, "acc").unwrap();
        match m.heap.get_field(narada_vm::ObjId(0), acc) {
            Value::Int(n) => n as u64,
            other => panic!("unexpected acc value {other:?}"),
        }
    });

    let (field_prog, field_mir) = build(FIELD_LOOP);
    let field = shootout("field-loop", |engine| {
        let mut m = Machine::new(&field_prog, &field_mir, opts(engine));
        m.run_test(field_prog.tests[0].id, &mut NullSink).unwrap();
        let work = field_prog.class_by_name("Work").unwrap();
        let b = field_prog.field_by_name(work, "b").unwrap();
        match m.heap.get_field(narada_vm::ObjId(0), b) {
            Value::Int(n) => n as u64,
            other => panic!("unexpected b value {other:?}"),
        }
    });

    let traced = shootout("traced-loop", |engine| {
        let mut m = Machine::new(&hot_prog, &hot_mir, opts(engine));
        let mut sink = VecSink::new();
        m.run_test(hot_prog.tests[0].id, &mut sink).unwrap();
        trace_digest(&sink.events)
    });

    let corpus: Vec<(Program, MirProgram)> = all()
        .into_iter()
        .map(|e| {
            let prog = e.compile().expect("corpus compiles");
            let mir = lower_program(&prog);
            (prog, mir)
        })
        .collect();
    let suites = shootout("corpus-suites", |engine| {
        let mut failures = 0u64;
        for (prog, mir) in &corpus {
            let mut m = Machine::new(prog, mir, opts(engine));
            for t in &prog.tests {
                failures += m.run_test(t.id, &mut NullSink).is_err() as u64;
            }
        }
        failures
    });

    let (con_prog, con_mir) = build(CONTENDED);
    let counter = con_prog.class_by_name("Counter").unwrap();
    let mix = con_prog.dispatch(counter, "mix").unwrap();
    let count = con_prog.field_by_name(counter, "count").unwrap();
    let concurrent = shootout("concurrent", |engine| {
        let mut m = Machine::new(&con_prog, &con_mir, opts(engine));
        let obj = m.heap.alloc_instance(&con_prog, counter);
        for _ in 0..2 {
            m.spawn_invoke(
                mix,
                Some(Value::Ref(obj)),
                vec![Value::Int(20_000)],
                &mut NullSink,
            )
            .unwrap();
        }
        let mut sched = RandomScheduler::new(7);
        m.run_threads(&mut sched, &mut NullSink, 10_000_000);
        match m.heap.get_field(obj, count) {
            Value::Int(n) => n as u64,
            other => panic!("unexpected count value {other:?}"),
        }
    });

    let shots = [field, hot, traced, suites, concurrent];
    let rows: Vec<Vec<String>> = shots
        .iter()
        .map(|s| {
            vec![
                s.name.to_string(),
                format!("{:.2}ms", s.tree.as_secs_f64() * 1e3),
                format!("{:.2}ms", s.bytecode.as_secs_f64() * 1e3),
                format!("{:.2}x", s.speedup()),
            ]
        })
        .collect();
    let table = render_table(&["workload", "tree", "bytecode", "speedup"], &rows);
    println!(
        "Engine shootout: tree-walk vs bytecode (best of {} runs)",
        reps()
    );
    print!("{table}");

    for s in &shots {
        let key = |engine: &str| format!("vm.shootout.{}.{engine}_ns", s.name);
        obs.metrics
            .gauge(&key("tree"))
            .set(s.tree.as_nanos() as u64);
        obs.metrics
            .gauge(&key("bytecode"))
            .set(s.bytecode.as_nanos() as u64);
        obs.metrics
            .gauge(&format!("vm.shootout.{}.speedup_pct", s.name))
            .set((s.speedup() * 100.0) as u64);
    }

    if let Some(path) = out_path {
        let mut md = String::from(
            "# Engine shootout: tree-walk vs bytecode\n\n\
             Identical workloads on both execution engines (same seeds,\n\
             same sinks; per-workload result equality asserted before\n\
             timing — see DESIGN.md §9). `field-loop` is the headline\n\
             interpreter-bound number: a shared-field update loop, the\n\
             shape corpus methods actually have. `traced-loop` bounds\n\
             the win by event construction; `corpus-suites` is the\n\
             realistic mix (including per-machine compile cost);\n\
             `concurrent` exercises the per-step scheduling path.\n\n",
        );
        md.push_str(&table);
        md.push_str(&format!(
            "\nbest of {} runs per cell; regenerate with \
             `cargo run --release -p narada-bench --bin vm -- {path}`\n",
            reps()
        ));
        std::fs::write(&path, md).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("wrote {path}");
    }

    narada_bench::write_manifest(
        "vm",
        1,
        &obs,
        &[
            ("reps", reps().to_string()),
            (
                "workloads",
                shots.iter().map(|s| s.name).collect::<Vec<_>>().join(","),
            ),
        ],
    );
}
