//! Regenerates **Table 5 — Analysis of synthesized tests by RaceFuzzer**:
//! per class, the distinct races detected, the reproduced races triaged
//! harmful/benign, and the detected-but-unreproduced remainder (the
//! paper's manually-triaged column).
//!
//! Environment knobs: `NARADA_SCHEDULES` (random schedules per test,
//! default 4), `NARADA_CONFIRMS` (directed attempts per race, default 3),
//! `NARADA_MAX_TESTS` (cap on tests evaluated per class, default
//! unlimited).

use narada_bench::{env_threads, render_table, synthesize_corpus_observed, write_manifest};
use narada_core::SynthesisOptions;
use narada_detect::{evaluate_suite_observed, DetectConfig};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let threads = env_threads();
    let wall = std::time::Instant::now();
    let cfg = DetectConfig {
        schedule_trials: env_usize("NARADA_SCHEDULES", 4),
        confirm_trials: env_usize("NARADA_CONFIRMS", 3),
        seed: 0x7ab1e5,
        budget: 2_000_000,
        threads,
        ..DetectConfig::default()
    };
    let max_tests = env_usize("NARADA_MAX_TESTS", usize::MAX);
    let obs = narada_obs::Obs::new();
    let runs = synthesize_corpus_observed(
        &SynthesisOptions {
            threads,
            ..SynthesisOptions::default()
        },
        threads,
        &obs,
    );
    let mut rows = Vec::new();
    let mut totals = (0usize, 0usize, 0usize, 0usize);
    for r in &runs {
        let seeds: Vec<_> = r.prog.tests.iter().map(|t| t.id).collect();
        let plans: Vec<_> = r
            .out
            .tests
            .iter()
            .take(max_tests)
            .map(|t| &t.plan)
            .collect();
        let agg = evaluate_suite_observed(&r.prog, &r.mir, &seeds, &plans, &cfg, &obs);
        totals.0 += agg.races_detected;
        totals.1 += agg.harmful;
        totals.2 += agg.benign;
        totals.3 += agg.unreproduced;
        let p = &r.entry.paper;
        rows.push(vec![
            r.entry.id.to_string(),
            format!("{} ({})", agg.races_detected, p.races_detected),
            format!("{} ({})", agg.harmful, p.harmful),
            format!("{} ({})", agg.benign, p.benign),
            format!("{} ({})", agg.unreproduced, p.manual_tp + p.manual_fp),
        ]);
    }
    rows.push(vec![
        "Total".into(),
        format!("{} (307)", totals.0),
        format!("{} (187)", totals.1),
        format!("{} (72)", totals.2),
        format!("{} (48)", totals.3),
    ]);
    println!("Table 5: Analysis of synthesized tests by the RaceFuzzer-style detector");
    println!("measured (paper) per cell; 'Unreproduced' = detected - reproduced");
    println!(
        "threads = {} (NARADA_THREADS), wall-clock {:.3}s",
        narada_core::effective_threads(threads),
        wall.elapsed().as_secs_f64()
    );
    print!(
        "{}",
        render_table(
            &[
                "Class",
                "Races Detected",
                "Harmful",
                "Benign",
                "Unreproduced"
            ],
            &rows
        )
    );
    obs.metrics
        .gauge("bench.table5.wall_ns")
        .set_duration(wall.elapsed());
    write_manifest(
        "table5",
        threads,
        &obs,
        &[
            ("schedules", cfg.schedule_trials.to_string()),
            ("confirms", cfg.confirm_trials.to_string()),
            ("seed", format!("{:#x}", cfg.seed)),
        ],
    );
}
