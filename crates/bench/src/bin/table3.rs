//! Regenerates **Table 3 — Benchmark Information**: benchmark, version,
//! analyzed class, plus the MJ port's size for reference.

use narada_bench::{render_table, write_manifest};

fn main() {
    let obs = narada_obs::Obs::new();
    let wall = std::time::Instant::now();
    let rows: Vec<Vec<String>> = narada_corpus::all()
        .iter()
        .map(|e| {
            let prog = e.compile().expect("corpus compiles");
            obs.metrics.counter("corpus.classes").add(1);
            obs.metrics
                .counter("corpus.methods")
                .add(e.method_count(&prog) as u64);
            obs.metrics.counter("corpus.loc").add(e.loc() as u64);
            vec![
                e.id.to_string(),
                e.benchmark.to_string(),
                e.version.to_string(),
                e.class_name.to_string(),
                e.paper.loc.to_string(),
                e.loc().to_string(),
                e.method_count(&prog).to_string(),
            ]
        })
        .collect();
    println!("Table 3: Benchmark Information (paper LoC = original Java class)");
    print!(
        "{}",
        render_table(
            &[
                "Class",
                "Benchmark",
                "Version",
                "Class name",
                "LoC (paper)",
                "LoC (MJ port)",
                "Methods",
            ],
            &rows
        )
    );
    obs.metrics
        .gauge("bench.table3.wall_ns")
        .set_duration(wall.elapsed());
    write_manifest("table3", 1, &obs, &[("classes", "C1-C9".to_string())]);
}
