//! Regenerates **Table 3 — Benchmark Information**: benchmark, version,
//! analyzed class, plus the MJ port's size for reference.

use narada_bench::render_table;

fn main() {
    let rows: Vec<Vec<String>> = narada_corpus::all()
        .iter()
        .map(|e| {
            let prog = e.compile().expect("corpus compiles");
            vec![
                e.id.to_string(),
                e.benchmark.to_string(),
                e.version.to_string(),
                e.class_name.to_string(),
                e.paper.loc.to_string(),
                e.loc().to_string(),
                e.method_count(&prog).to_string(),
            ]
        })
        .collect();
    println!("Table 3: Benchmark Information (paper LoC = original Java class)");
    print!(
        "{}",
        render_table(
            &[
                "Class",
                "Benchmark",
                "Version",
                "Class name",
                "LoC (paper)",
                "LoC (MJ port)",
                "Methods",
            ],
            &rows
        )
    );
}
