//! Corpus-wide synthesis benchmark: runs the full pipeline on all nine
//! corpus classes and writes the run manifest (`BENCH_synth.json`) that
//! records the perf trajectory PR-over-PR — pairs generated, tests
//! synthesized, per-stage wall-clock, and every other registry metric.
//!
//! Knobs: `NARADA_THREADS` (worker count, 0/unset = one per core),
//! `NARADA_MANIFEST_DIR` (manifest output directory, default `.`).

use narada_bench::{env_threads, render_table, secs, synthesize_corpus_observed, write_manifest};
use narada_core::SynthesisOptions;
use narada_obs::Obs;
use std::time::Instant;

fn main() {
    let threads = env_threads();
    let opts = SynthesisOptions {
        threads,
        ..SynthesisOptions::default()
    };
    let obs = Obs::new();
    let start = Instant::now();
    let runs = synthesize_corpus_observed(&opts, threads, &obs);
    obs.metrics
        .gauge("bench.synth.wall_ns")
        .set_duration(start.elapsed());

    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.entry.id.to_string(),
                r.out.pair_count().to_string(),
                r.out.test_count().to_string(),
                secs(r.out.elapsed),
            ]
        })
        .collect();
    println!("Corpus synthesis (all classes)");
    print!(
        "{}",
        render_table(&["class", "pairs", "tests", "time (s)"], &rows)
    );

    write_manifest("synth", threads, &obs, &[("classes", "C1-C9".to_string())]);
}
