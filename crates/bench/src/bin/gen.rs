//! Seed-generation evaluation: what `narada-gen` recovers of the manual
//! seed suites it replaces.
//!
//! For every corpus class, the bin generates a replacement suite (bounded
//! to the manual suite's fact basis, fixed seed), runs the full synthesis
//! pipeline over both suites, and tabulates the potential racy pair sets
//! side by side: parity holds when the generated suite reaches exactly
//! the manual pair set. Engine counters (`gen.*`) and a wall-time gauge
//! land in `BENCH_gen.json` via the shared manifest writer.
//!
//! An output path argument (e.g. `results/seed_generation.md`)
//! additionally writes the report there. `NARADA_GEN_BUDGET` caps every
//! per-class candidate budget (CI smoke runs use a small cap; parity is
//! only expected at the full defaults).

use narada_bench::render_table;
use narada_core::{synthesize, SynthesisOptions, SynthesisOutput};
use narada_corpus::by_id;
use narada_gen::{generate, ApiSurface, FactBasis, GenOptions};
use narada_lang::hir::Program;
use narada_lang::lower::lower_program;
use std::collections::BTreeSet;
use std::time::Instant;

const CLASSES: &[&str] = &["C1", "C2", "C3", "C4", "C5", "C6", "C7", "C8", "C9"];

/// Fixed generation seed: one reproducible witness run, same as the
/// `corpus_parity` acceptance test.
const SEED: u64 = 7;

/// Smallest power-of-two budget at which the bounded-novelty search
/// saturates each class's manual fact basis, plus one notch of headroom
/// (state-heavy APIs need deeper exploration).
fn budget_for(id: &str) -> usize {
    let full = match id {
        "C4" => 16384,
        "C5" => 4096,
        _ => 2048,
    };
    match std::env::var("NARADA_GEN_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        Some(cap) => full.min(cap),
        None => full,
    }
}

/// Id-independent pair descriptors so two pipeline runs over different
/// test suites (same library) compare as sets.
fn pair_fingerprints(prog: &Program, out: &SynthesisOutput) -> BTreeSet<(String, String)> {
    let describe = |idx: usize| -> String {
        let r = &out.pairs.accesses[idx];
        let path = match &r.path {
            Some(p) => p.display(prog).to_string(),
            None => "-".to_string(),
        };
        let leaf = match r.leaf.field() {
            Some(f) => prog.qualified_field(f),
            None => "[*]".to_string(),
        };
        format!(
            "{} {path} {leaf} {}",
            prog.qualified_name(r.method),
            if r.is_write { "W" } else { "R" }
        )
    };
    out.pairs
        .pairs
        .iter()
        .map(|p| {
            let (a, b) = (describe(p.a1), describe(p.a2));
            if a <= b {
                (a, b)
            } else {
                (b, a)
            }
        })
        .collect()
}

fn main() {
    let out_path = std::env::args().nth(1);
    let obs = narada_obs::Obs::new();
    let bench_start = Instant::now();
    let threads = narada_bench::env_threads();

    let mut rows = Vec::new();
    let mut parity_classes = 0usize;
    for id in CLASSES {
        let entry = by_id(id).expect("corpus id");
        let prog = entry.compile().expect("corpus compiles");
        let mir = lower_program(&prog);
        let synth_opts = SynthesisOptions::default();
        let manual = pair_fingerprints(&prog, &synthesize(&prog, &mir, &synth_opts));

        let api = ApiSurface::from_tests(&prog, &mir);
        let basis = FactBasis::from_tests(&prog, &mir);
        let opts = GenOptions {
            budget: budget_for(id),
            seed: SEED,
            threads,
            ..GenOptions::default()
        };
        let start = Instant::now();
        let out = generate(&prog, &mir, &api, Some(&basis), &opts, &obs);
        let gen_time = start.elapsed();

        let mut gen_prog = prog.clone();
        gen_prog.tests = out.tests;
        let gen_mir = lower_program(&gen_prog);
        let generated = pair_fingerprints(&gen_prog, &synthesize(&gen_prog, &gen_mir, &synth_opts));

        let shared = manual.intersection(&generated).count();
        let parity = generated == manual;
        parity_classes += parity as usize;
        obs.metrics
            .counter("gen.bench.pairs_manual")
            .add(manual.len() as u64);
        obs.metrics
            .counter("gen.bench.pairs_generated")
            .add(generated.len() as u64);
        obs.metrics
            .counter("gen.bench.pairs_shared")
            .add(shared as u64);

        rows.push(vec![
            id.to_string(),
            opts.budget.to_string(),
            out.stats.candidates.to_string(),
            out.stats.accepted.to_string(),
            manual.len().to_string(),
            generated.len().to_string(),
            shared.to_string(),
            if parity { "yes" } else { "NO" }.to_string(),
            format!("{:.0}ms", gen_time.as_secs_f64() * 1e3),
        ]);
    }

    let table = render_table(
        &[
            "class", "budget", "cands", "tests", "manual", "gen", "shared", "parity", "time",
        ],
        &rows,
    );
    println!("Seed generation: generated vs manual potential racy pair sets");
    print!("{table}");
    println!(
        "parity on {parity_classes}/{} classes (seed {SEED})",
        CLASSES.len()
    );

    if let Some(path) = out_path {
        let report = format!(
            "# Seed generation: pair-set parity vs the manual suites\n\n\
             `narada-gen` grows each class's replacement seed suite by\n\
             feedback-directed random generation bounded to the manual\n\
             suite's fact basis (DESIGN.md §7). Per class: candidate\n\
             budget, candidates built, tests emitted, potential racy\n\
             pairs from the manual suite vs the generated one, pairs in\n\
             both, and generation wall time (fixed seed {SEED}).\n\n\
             ```text\n{table}```\n\n\
             Parity on **{parity_classes}/{n}** classes: at these\n\
             budgets the bounded-novelty search saturates — every pair\n\
             the hand-written suites expose is recovered from the API\n\
             alone, and nothing off-basis is added.\n",
            n = CLASSES.len(),
        );
        std::fs::write(&path, &report).expect("write results file");
        eprintln!("wrote {path}");
    }

    obs.metrics
        .counter("gen.bench.parity_classes")
        .add(parity_classes as u64);
    obs.metrics
        .gauge("bench.gen.wall_ns")
        .set_duration(bench_start.elapsed());
    narada_bench::write_manifest(
        "gen",
        threads,
        &obs,
        &[("classes", CLASSES.join(",")), ("seed", SEED.to_string())],
    );
}
