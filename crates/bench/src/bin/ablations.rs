//! Ablation sweep over the design choices DESIGN.md calls out:
//!
//! * **A1 — strict unprotectedness** (§4): treating lock-correlated
//!   accesses as protected drops racing pairs (and with them, real races);
//! * **A2 — prefix-sharing fallback** (§4): disabling removes the
//!   zero-race fallback tests of Fig. 14;
//! * **A3 — lockset-aware sharing** (§3.3): disabling lets the deriver
//!   share receivers that hold a common lock, producing plans that cannot
//!   manifest their race.
//!
//! Printed per configuration: racing pairs, synthesized tests, and how
//! many plans expect to manifest a race.

use narada_bench::{env_threads, render_table, synthesize_corpus_observed, write_manifest};
use narada_core::SynthesisOptions;

fn main() {
    let threads = env_threads();
    let obs = narada_obs::Obs::new();
    let wall = std::time::Instant::now();
    let base = SynthesisOptions {
        threads,
        ..SynthesisOptions::default()
    };
    let configs: Vec<(&str, SynthesisOptions)> = vec![
        ("baseline (paper)", base.clone()),
        (
            "A1 strict unprotected",
            SynthesisOptions {
                strict_unprotected: true,
                ..base.clone()
            },
        ),
        (
            "A2 no prefix fallback",
            SynthesisOptions {
                prefix_fallback: false,
                ..base.clone()
            },
        ),
        (
            "A3 lockset-blind sharing",
            SynthesisOptions {
                lockset_aware: false,
                ..base
            },
        ),
    ];
    let mut rows = Vec::new();
    for (name, opts) in &configs {
        let runs = synthesize_corpus_observed(opts, threads, &obs);
        let pairs: usize = runs.iter().map(|r| r.out.pair_count()).sum();
        let tests: usize = runs.iter().map(|r| r.out.test_count()).sum();
        let expecting: usize = runs
            .iter()
            .flat_map(|r| &r.out.tests)
            .filter(|t| t.plan.expects_race)
            .count();
        rows.push(vec![
            name.to_string(),
            pairs.to_string(),
            tests.to_string(),
            expecting.to_string(),
        ]);
    }
    println!("Ablations over the full corpus (A1-A3, DESIGN.md §14)");
    print!(
        "{}",
        render_table(
            &[
                "Configuration",
                "Race pairs",
                "Tests",
                "Race-expecting tests"
            ],
            &rows
        )
    );
    obs.metrics
        .gauge("bench.ablations.wall_ns")
        .set_duration(wall.elapsed());
    let names: Vec<&str> = configs.iter().map(|(n, _)| *n).collect();
    write_manifest("ablations", threads, &obs, &[("configs", names.join("; "))]);
}
