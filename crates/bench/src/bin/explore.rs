//! Schedule-exploration shootout: **trials to first manifestation** on the
//! paper's motivating benchmark (C1, the hazelcast write-behind queue).
//!
//! For each synthesized racy test of C1 a *trial* executes the plan once
//! under a candidate strategy (fresh scheduler seed per trial, machine
//! seed fixed per repetition so every strategy faces the same inputs). A
//! trial *manifests* when its outcome is **non-serializable**: the final
//! heap observables (or a crash) match neither serial execution order of
//! the two racy calls. Unlike a detector verdict — which for C1's
//! distinct-lock defect fires on any schedule — this genuinely depends on
//! the interleaving hitting the race window.
//!
//! PCT's change points are sampled over a per-plan horizon calibrated
//! from the serial run's decision count, as the PCT paper calibrates `k`
//! from prior runs.
//!
//! Knobs: `NARADA_REPS` (default 30), `NARADA_MAX_TRIALS` (cap per
//! repetition, default 60), `NARADA_MAX_PLANS` (default 12). An output
//! path argument (e.g. `results/schedule_exploration.md`) additionally
//! writes the report there.

use narada_bench::render_table;
use narada_core::{execute_plan, synthesize, SynthesisOptions, TestPlan};
use narada_corpus::by_id;
use narada_lang::hir::{Program, TestId};
use narada_lang::lower::lower_program;
use narada_lang::mir::MirProgram;
use narada_vm::rng::derive_seed;
use narada_vm::{
    Machine, MachineOptions, NullSink, ObjectData, RecordingScheduler, ScheduleStrategy, Scheduler,
    SegmentScheduler, SerialScheduler, ThreadId, Value,
};

const BASE_SEED: u64 = 0xe8_910e;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Observable outcome of one execution: did a racy thread crash, plus an
/// allocation-order-insensitive digest of the final heap (multiset of
/// per-object value summaries, so two runs allocating the same objects in
/// different orders compare equal).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Outcome {
    crashed: bool,
    heap: u64,
}

/// FNV-1a-style mixing via the workspace's own finalizer.
fn mix64(h: u64, v: u64) -> u64 {
    let mut state = h ^ v;
    narada_vm::rng::splitmix64(&mut state)
}

fn heap_digest(machine: &Machine<'_>) -> u64 {
    let mut per_object: Vec<u64> = (0..machine.heap.len())
        .map(|i| {
            let obj = machine.heap.object(narada_vm::ObjId(i as u32));
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            let mut mix = |v: u64| h = mix64(h, v);
            let scalar = |v: &Value| match v {
                Value::Int(n) => *n as u64 ^ 0x1000_0000,
                Value::Bool(b) => *b as u64 ^ 0x2000_0000,
                Value::Null => 3,
                // Object identities are allocation-order-dependent;
                // references only contribute their presence.
                Value::Ref(_) => 4,
            };
            match &obj.data {
                ObjectData::Instance { class, fields } => {
                    mix(class.index() as u64);
                    for f in fields {
                        mix(scalar(f));
                    }
                }
                ObjectData::Array { data, .. } => {
                    mix(0x5eed ^ data.len() as u64);
                    for e in data {
                        mix(scalar(e));
                    }
                }
            }
            h
        })
        .collect();
    per_object.sort_unstable();
    per_object.into_iter().fold(0x9e37_79b9_7f4a_7c15u64, mix64)
}

/// Runs `plan` once under `scheduler`; `None` when context setup fails.
fn run_once(
    prog: &Program,
    mir: &MirProgram,
    seeds: &[TestId],
    plan: &TestPlan,
    scheduler: &mut dyn Scheduler,
    machine_seed: u64,
) -> Option<(Outcome, [ThreadId; 2])> {
    let mut machine = Machine::new(
        prog,
        mir,
        MachineOptions {
            seed: machine_seed,
            ..MachineOptions::default()
        },
    );
    let report = execute_plan(
        &mut machine,
        seeds,
        plan,
        scheduler,
        &mut NullSink,
        2_000_000,
    )
    .ok()?;
    Some((
        Outcome {
            crashed: !report.failures.is_empty(),
            heap: heap_digest(&machine),
        },
        report.threads,
    ))
}

/// The serializability oracle for one (plan, machine seed): the outcomes
/// of the two serial orders of the racy calls, plus the decision count of
/// the serial run (PCT's horizon estimate).
struct SerialOracle {
    allowed: Vec<Outcome>,
    horizon: u64,
}

fn serial_oracle(
    prog: &Program,
    mir: &MirProgram,
    seeds: &[TestId],
    plan: &TestPlan,
    machine_seed: u64,
) -> Option<SerialOracle> {
    // Order A;B — SerialScheduler runs the first-spawned thread to
    // completion first. Record it to learn the run length and thread ids.
    let mut rec = RecordingScheduler::new(SerialScheduler::new());
    let (first, [a, b]) = run_once(prog, mir, seeds, plan, &mut rec, machine_seed)?;
    let horizon = rec.choices.len().max(1) as u64;
    // Order B;A via a segment schedule that exhausts B before A.
    let big = horizon + 1_000;
    let mut ba = SegmentScheduler::new(vec![(b, big), (a, big)]);
    let (second, _) = run_once(prog, mir, seeds, plan, &mut ba, machine_seed)?;
    let mut allowed = vec![first];
    if second != first {
        allowed.push(second);
    }
    Some(SerialOracle { allowed, horizon })
}

fn main() {
    let reps = env_usize("NARADA_REPS", 30);
    let max_trials = env_usize("NARADA_MAX_TRIALS", 60);
    let max_plans = env_usize("NARADA_MAX_PLANS", 12);
    let out_path = std::env::args().nth(1);
    let obs = narada_obs::Obs::new();
    let bench_start = std::time::Instant::now();

    let strategies: Vec<ScheduleStrategy> = vec![
        ScheduleStrategy::Random,
        ScheduleStrategy::Sticky { stay_percent: 90 },
        ScheduleStrategy::Pct { depth: 2 },
        ScheduleStrategy::Pct { depth: 3 },
        ScheduleStrategy::Pct { depth: 5 },
        ScheduleStrategy::RoundRobin,
    ];

    let entry = by_id("C1").expect("C1 in corpus");
    let prog = entry.compile().expect("C1 compiles");
    let mir = lower_program(&prog);
    let out = synthesize(&prog, &mir, &SynthesisOptions::default());
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();

    // Screen: keep racy plans whose race window is *narrow* — reachable
    // (some scouting trial goes non-serializable) but not manifesting on
    // essentially every schedule, where every strategy trivially needs
    // one trial and the comparison measures nothing.
    let mut screened: Vec<(usize, &TestPlan, f64)> = Vec::new();
    for (i, t) in out.tests.iter().enumerate() {
        if !t.plan.expects_race {
            continue;
        }
        let ms = derive_seed(BASE_SEED, &[1, i as u64]);
        let Some(oracle) = serial_oracle(&prog, &mir, &seeds, &t.plan, ms) else {
            continue;
        };
        let scout = 16u64;
        let scout_hits = |strat: &ScheduleStrategy, tag: u64| {
            (0..scout)
                .filter(|&k| {
                    let ss = derive_seed(BASE_SEED, &[2, tag, i as u64, k]);
                    let mut sched = strat.build(ss, oracle.horizon);
                    run_once(&prog, &mir, &seeds, &t.plan, &mut *sched, ms)
                        .map(|(o, _)| !oracle.allowed.contains(&o))
                        .unwrap_or(false)
                })
                .count()
        };
        let random_hits = scout_hits(&ScheduleStrategy::Random, 0);
        let reachable = random_hits > 0 || scout_hits(&ScheduleStrategy::Pct { depth: 3 }, 1) > 0;
        if reachable && random_hits < scout as usize / 2 {
            screened.push((i, &t.plan, random_hits as f64 / scout as f64));
        }
    }
    screened.truncate(max_plans);
    eprintln!(
        "C1: {} racy plans, {} with a narrow non-serializable window",
        out.tests.iter().filter(|t| t.plan.expects_race).count(),
        screened.len()
    );

    // Per strategy × plan: trials-to-first over `reps` repetitions. A
    // repetition that never manifests within the cap is *censored*: it
    // contributes `max_trials` to the mean (an underestimate of the true
    // cost, penalizing strategies that miss).
    let trials_hist = obs.metrics.histogram(
        "explore.trials_to_first_manifest",
        narada_obs::TRIAL_BUCKETS,
    );
    let mut per_plan: Vec<Vec<f64>> = vec![Vec::new(); strategies.len()];
    let mut rows = Vec::new();
    for (si, strat) in strategies.iter().enumerate() {
        let mut trials_sum = 0u64;
        let mut hits = 0usize;
        let mut total = 0usize;
        for &(i, plan, _) in &screened {
            let mut plan_sum = 0u64;
            let mut plan_total = 0usize;
            for rep in 0..reps as u64 {
                let ms = derive_seed(BASE_SEED, &[3, i as u64, rep]);
                let Some(oracle) = serial_oracle(&prog, &mir, &seeds, plan, ms) else {
                    continue;
                };
                total += 1;
                plan_total += 1;
                let found = (1..=max_trials as u64).find(|&t| {
                    let ss = derive_seed(BASE_SEED, &[4, i as u64, rep, t, si as u64]);
                    let mut sched = strat.build(ss, oracle.horizon);
                    run_once(&prog, &mir, &seeds, plan, &mut *sched, ms)
                        .map(|(o, _)| !oracle.allowed.contains(&o))
                        .unwrap_or(false)
                });
                let cost = match found {
                    Some(t) => {
                        hits += 1;
                        trials_hist.observe(t);
                        t
                    }
                    None => {
                        obs.metrics.counter("explore.censored").inc();
                        max_trials as u64
                    }
                };
                obs.metrics.counter("explore.trials").add(cost);
                trials_sum += cost;
                plan_sum += cost;
            }
            per_plan[si].push(plan_sum as f64 / plan_total.max(1) as f64);
        }
        obs.metrics.counter("explore.repetitions").add(total as u64);
        obs.metrics.counter("explore.manifested").add(hits as u64);
        let mean = trials_sum as f64 / total.max(1) as f64;
        let rate = 100.0 * hits as f64 / total.max(1) as f64;
        rows.push(vec![
            strat.label(),
            format!("{mean:.2}"),
            format!("{rate:.0}%"),
        ]);
    }
    obs.metrics
        .counter("explore.plans")
        .add(screened.len() as u64);

    // Per-plan breakdown (plan index × strategy mean).
    let mut plan_rows = Vec::new();
    for (pi, &(i, _, scout_rate)) in screened.iter().enumerate() {
        let mut row = vec![format!("p{i}"), format!("{:.0}%", scout_rate * 100.0)];
        for col in per_plan.iter() {
            row.push(format!("{:.1}", col[pi]));
        }
        plan_rows.push(row);
    }
    let mut plan_headers: Vec<String> = vec!["plan".into(), "scout".into()];
    plan_headers.extend(strategies.iter().map(|s| s.label()));
    let plan_table = render_table(
        &plan_headers.iter().map(String::as_str).collect::<Vec<_>>(),
        &plan_rows,
    );

    let table = render_table(
        &[
            "strategy",
            "mean trials to 1st manifestation",
            "manifest rate",
        ],
        &rows,
    );
    println!("Schedule exploration shootout (C1, non-serializable outcomes)");
    print!("{table}");
    println!("\nper-plan mean trials (censored at cap):");
    print!("{plan_table}");

    let mut report = String::from(
        "# Schedule exploration: trials to first manifestation (C1)\n\n\
         One trial = one execution of a synthesized C1 racy test under the\n\
         strategy with a fresh scheduler seed; a repetition counts trials\n\
         until the first **non-serializable outcome** — final heap\n\
         observables (or a crash) matching neither serial order of the two\n\
         racy calls (lost updates, stale-`size` corruption, out-of-bounds\n\
         crashes). Machine seeds are shared across strategies, so every\n\
         strategy faces identical inputs; PCT horizons are calibrated from\n\
         the serial run's decision count. Plans whose window is hit by\n\
         over half of random scouting runs are excluded — there every\n\
         strategy needs one trial and the comparison measures nothing.\n\n",
    );
    report.push_str(&format!(
        "- plans: {} (narrow-window racy plans of C1)\n\
         - repetitions per plan: {reps}\n\
         - trial cap per repetition: {max_trials}\n\n```text\n{table}```\n\n\
         Per plan (`scout` = fraction of 16 random scouting runs that\n\
         manifested; mean trials censored at the cap):\n\n```text\n{plan_table}```\n\n\
         Uniform per-decision random is strong on shallow windows (p53)\n\
         but cannot hold a thread *off* the scheduler long enough for\n\
         corruptions that need one targeted preemption followed by an\n\
         uninterrupted stretch (p3, p4, p15, p59 — it misses most\n\
         repetitions entirely). PCT demotes the favoured thread at a few\n\
         sampled change points and otherwise never preempts, which is\n\
         exactly that shape; depth 3 is the best overall and the\n\
         exploration engine's default.\n",
        screened.len()
    ));
    if let Some(path) = out_path {
        std::fs::write(&path, &report).expect("write results file");
        eprintln!("wrote {path}");
    }

    obs.metrics
        .gauge("bench.explore.wall_ns")
        .set_duration(bench_start.elapsed());
    narada_bench::write_manifest(
        "explore",
        1,
        &obs,
        &[
            ("reps", reps.to_string()),
            ("max_trials", max_trials.to_string()),
            ("max_plans", max_plans.to_string()),
            ("base_seed", format!("{BASE_SEED:#x}")),
        ],
    );
}
