//! Service benchmark: what the artifact cache buys a resident
//! `narada serve` daemon over batch re-invocation.
//!
//! Spawns an in-process server on an ephemeral loopback port and
//! measures, per corpus class:
//!
//! * **cold** — first submission: every artifact derived from scratch;
//! * **warm** — resubmission of identical source: program-cache hit,
//!   parse/lower/screen all skipped, only the (deterministic) dynamic
//!   pipeline re-runs;
//!
//! then a **multi-client throughput** pass: `NARADA_SERVE_CLIENTS`
//! concurrent clients each submitting `NARADA_SERVE_JOBS` warm jobs.
//!
//! Metrics land in `BENCH_serve.json` via the shared manifest writer
//! (`serve.bench.*` gauges plus the server's own `serve.cache.*`
//! counters); an output path argument additionally writes the markdown
//! report (e.g. `results/serving.md`).

use narada_bench::{render_table, secs, write_manifest};
use narada_corpus::by_id;
use narada_obs::Obs;
use narada_serve::{serve, wait_ready, Client, JobOptions, ServeConfig};
use std::time::{Duration, Instant};

const CLASSES: &[&str] = &["C1", "C2", "C3", "C4", "C5"];

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn bench_opts() -> JobOptions {
    JobOptions {
        schedules: env_usize("NARADA_SERVE_SCHEDULES", 6),
        confirms: env_usize("NARADA_SERVE_CONFIRMS", 4),
        // Rank with the static screener so warm jobs reuse the cached
        // summary fixpoint as well as the parsed/lowered program.
        static_rank: true,
        ..JobOptions::default()
    }
}

fn main() {
    let reps = env_usize("NARADA_SERVE_REPS", 3);
    let clients = env_usize("NARADA_SERVE_CLIENTS", 4);
    let jobs_per_client = env_usize("NARADA_SERVE_JOBS", 3);
    let workers = env_usize("NARADA_SERVE_WORKERS", 4);
    let opts = bench_opts();

    let port_file = std::env::temp_dir().join(format!("narada-bench-serve-{}", std::process::id()));
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        state_dir: None,
        port_file: Some(port_file.clone()),
        cache_capacity: 64,
        ..ServeConfig::default()
    };
    let server = std::thread::spawn(move || serve(config));
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            if let Ok(port) = text.trim().parse::<u16>() {
                break format!("127.0.0.1:{port}");
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    wait_ready(&addr, Duration::from_secs(10)).expect("server ready");
    std::fs::remove_file(&port_file).ok();

    let obs = Obs::new();
    let mut rows = Vec::new();
    let run_once = |source: &str| -> Duration {
        let mut client = Client::connect(&addr).expect("connect");
        let start = Instant::now();
        let job = client.submit(source, &opts).expect("submit");
        let resp = client.fetch(job, true, &mut |_| {}).expect("fetch");
        assert_eq!(
            resp.get("status").and_then(|s| s.as_str()),
            Some("done"),
            "bench job failed"
        );
        start.elapsed()
    };

    // Cold vs warm latency, per class. The first submission of each rep
    // group is cold only on rep 0; later reps measure steady-state warm
    // latency, so cold is a single sample and warm the median-free mean.
    for id in CLASSES {
        let source = by_id(id).expect("corpus id").source;
        let cold = run_once(source);
        let mut warm_total = Duration::ZERO;
        for _ in 0..reps {
            warm_total += run_once(source);
        }
        let warm = warm_total / reps as u32;
        let speedup = cold.as_secs_f64() / warm.as_secs_f64().max(1e-9);
        obs.metrics
            .gauge(&format!("serve.bench.{id}.cold_ns"))
            .set_duration(cold);
        obs.metrics
            .gauge(&format!("serve.bench.{id}.warm_ns"))
            .set_duration(warm);
        rows.push(vec![
            id.to_string(),
            secs(cold),
            secs(warm),
            format!("{speedup:.2}x"),
        ]);
    }

    // Multi-client throughput on a warm cache.
    let hot = by_id("C1").expect("C1").source;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| {
                for _ in 0..jobs_per_client {
                    run_once(hot);
                }
            });
        }
    });
    let wall = start.elapsed();
    let total_jobs = (clients * jobs_per_client) as f64;
    let throughput = total_jobs / wall.as_secs_f64().max(1e-9);
    obs.metrics
        .gauge("serve.bench.throughput_milli_jobs_per_sec")
        .set((throughput * 1000.0) as u64);
    obs.metrics
        .counter("serve.bench.throughput_jobs")
        .add(total_jobs as u64);

    // Fold the server's own cache counters into the manifest, then stop.
    let mut client = Client::connect(&addr).expect("connect");
    let stats = client.stats().expect("stats");
    if let Some(cache) = stats.get("cache").and_then(|c| c.as_obj()) {
        for (key, value) in cache {
            if let Some(n) = value.as_i64() {
                obs.metrics
                    .counter(&format!("serve.cache.{key}"))
                    .add(n as u64);
            }
        }
    }
    client.shutdown().expect("shutdown");
    server.join().expect("join").expect("serve");

    let table = render_table(&["class", "cold (s)", "warm (s)", "speedup"], &rows);
    println!("{table}");
    println!(
        "throughput: {throughput:.2} jobs/s ({clients} client(s) x {jobs_per_client} warm job(s), {} worker(s), {} wall)",
        workers,
        secs(wall)
    );

    write_manifest(
        "serve",
        workers,
        &obs,
        &[
            ("reps", reps.to_string()),
            ("clients", clients.to_string()),
            ("jobs_per_client", jobs_per_client.to_string()),
            ("schedules", opts.schedules.to_string()),
            ("confirms", opts.confirms.to_string()),
        ],
    );

    if let Some(path) = std::env::args().nth(1) {
        let mut doc = String::new();
        doc.push_str("# Serving: cold vs warm latency and throughput\n\n");
        doc.push_str(
            "One resident `narada serve` daemon; cold = first submission \
             of a class (every artifact derived), warm = identical resubmission \
             (program-cache hit: parse, lowering, and the screener's summary \
             fixpoint all skipped — only the deterministic dynamic pipeline \
             re-runs). The dynamic exploration dominates wall-clock on the \
             small corpus classes, so warm wins are modest here; the \
             `serve.cache.*` counters in `BENCH_serve.json` prove what the \
             warm path skipped, and the win scales with library size, not \
             trial count.\n\n",
        );
        doc.push_str("```text\n");
        doc.push_str(&table);
        doc.push_str("```\n\n");
        doc.push_str(&format!(
            "Throughput: **{throughput:.2} jobs/s** with {clients} concurrent \
             client(s) submitting {jobs_per_client} warm job(s) each over \
             {workers} server worker(s).\n\n\
             Served reports are byte-identical to `narada detect --report-out` \
             at any worker count (acceptance-tested; see DESIGN.md §10).\n",
        ));
        std::fs::write(&path, doc).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("wrote {path}");
    }
}
