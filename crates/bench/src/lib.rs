//! # narada-bench — regenerating every table and figure of the paper
//!
//! One module per experiment; each binary prints the same rows/series the
//! paper reports (paper values alongside measured values):
//!
//! | Target | Paper artifact |
//! |--------|----------------|
//! | `table3` | Table 3 — benchmark inventory |
//! | `table4` | Table 4 — racing pairs, synthesized tests, synthesis time |
//! | `table5` | Table 5 — races detected / reproduced (harmful, benign) |
//! | `fig14`  | Figure 14 — distribution of tests w.r.t. detected races |
//! | `contege_compare` | §5 — ConTeGe random-search comparison |
//! | `ablations` | DESIGN.md A1–A3 design-choice ablations |

#![warn(missing_docs)]

pub mod harness;

use narada_core::{synthesize_observed, SynthesisOptions, SynthesisOutput};
use narada_corpus::CorpusEntry;
use narada_detect::{evaluate_suite_observed, ClassDetection, DetectConfig};
use narada_lang::hir::Program;
use narada_lang::lower::lower_program;
use narada_lang::mir::MirProgram;
use narada_obs::{Obs, RunManifest};
use std::path::PathBuf;
use std::time::Duration;

/// A compiled corpus entry plus its synthesis output.
pub struct ClassRun {
    /// The corpus entry.
    pub entry: CorpusEntry,
    /// The compiled program.
    pub prog: Program,
    /// Its MIR.
    pub mir: MirProgram,
    /// Pipeline output.
    pub out: SynthesisOutput,
}

impl ClassRun {
    /// Runs synthesis for one corpus entry.
    pub fn synthesize(entry: CorpusEntry, opts: &SynthesisOptions) -> ClassRun {
        ClassRun::synthesize_observed(entry, opts, &Obs::new())
    }

    /// [`ClassRun::synthesize`] recording through `obs` (shared across
    /// classes; every recorded count is a commutative sum).
    pub fn synthesize_observed(entry: CorpusEntry, opts: &SynthesisOptions, obs: &Obs) -> ClassRun {
        let prog = entry
            .compile()
            .unwrap_or_else(|e| panic!("{} failed to compile:\n{e}", entry.id));
        let mir = lower_program(&prog);
        let out = synthesize_observed(&prog, &mir, opts, Some(&narada_screen::screen_pairs), obs);
        ClassRun {
            entry,
            prog,
            mir,
            out,
        }
    }

    /// Runs the detection protocol over this class's synthesized suite.
    pub fn detect(&self, cfg: &DetectConfig) -> ClassDetection {
        self.detect_observed(cfg, &Obs::new())
    }

    /// [`ClassRun::detect`] recording through `obs`.
    pub fn detect_observed(&self, cfg: &DetectConfig, obs: &Obs) -> ClassDetection {
        let seeds: Vec<_> = self.prog.tests.iter().map(|t| t.id).collect();
        let plans: Vec<_> = self.out.tests.iter().map(|t| &t.plan).collect();
        evaluate_suite_observed(&self.prog, &self.mir, &seeds, &plans, cfg, obs)
    }
}

/// Synthesizes all nine corpus classes, fanning the classes out across
/// the worker pool (`threads` = 0 means one worker per core).
///
/// Each class is one job on the outer pool; the per-class pipeline then
/// runs its own sharded stages sequentially (inner `threads = 1` whenever
/// the outer pool is parallel) so the machine is never oversubscribed.
/// Output is identical at any thread count: per-class synthesis is a pure
/// function of `(entry, opts)` and the result vector preserves corpus
/// order.
pub fn synthesize_corpus(opts: &SynthesisOptions, threads: usize) -> Vec<ClassRun> {
    synthesize_corpus_observed(opts, threads, &Obs::new())
}

/// [`synthesize_corpus`] recording every class's pipeline through a
/// shared `obs` — counters merge commutatively, so the registry snapshot
/// is identical at any `threads` value.
pub fn synthesize_corpus_observed(
    opts: &SynthesisOptions,
    threads: usize,
    obs: &Obs,
) -> Vec<ClassRun> {
    let outer = narada_core::effective_threads(threads);
    let inner_opts = SynthesisOptions {
        threads: if outer > 1 { 1 } else { opts.threads },
        ..opts.clone()
    };
    let entries = narada_corpus::all();
    narada_core::parallel_map(threads, &entries, |_, entry| {
        ClassRun::synthesize_observed(*entry, &inner_opts, obs)
    })
}

/// Synthesizes all nine corpus classes. Thread count comes from
/// `opts.threads` (the bench bins plumb `NARADA_THREADS` through here).
pub fn run_all(opts: &SynthesisOptions) -> Vec<ClassRun> {
    synthesize_corpus(opts, opts.threads)
}

/// Writes one bench bin's run manifest as `BENCH_<name>.json` under
/// `$NARADA_MANIFEST_DIR` (default: the current directory), stamping the
/// effective thread count, git revision, host core count, and the given
/// config entries. Returns the written path.
pub fn write_manifest(name: &str, threads: usize, obs: &Obs, config: &[(&str, String)]) -> PathBuf {
    let mut m = RunManifest::from_obs(name, narada_core::effective_threads(threads) as u64, obs);
    for (k, v) in config {
        m.set_config(k, v);
    }
    let dir = std::env::var("NARADA_MANIFEST_DIR").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&dir).join(format!("BENCH_{name}.json"));
    std::fs::write(&path, m.to_pretty())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    eprintln!("wrote {}", path.display());
    path
}

/// Reads the shared `NARADA_THREADS` knob for the bench bins (`0` /
/// unset = one worker per core).
pub fn env_threads() -> usize {
    std::env::var("NARADA_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Formats a duration as fractional seconds.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Renders an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    for (i, h) in headers.iter().enumerate() {
        out.push_str(&format!("| {:w$} ", h, w = widths[i]));
    }
    out.push_str("|\n");
    sep(&mut out);
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(&format!("| {:w$} ", cell, w = widths[i]));
        }
        out.push_str("|\n");
    }
    sep(&mut out);
    out
}

/// Figure 14's bucket labels.
pub const FIG14_BUCKETS: [&str; 6] = ["0", "1", "2", "3-5", "5-10", ">10"];

/// Buckets a per-test race count the way Figure 14 does.
pub fn fig14_bucket(races: usize) -> usize {
    match races {
        0 => 0,
        1 => 1,
        2 => 2,
        3..=5 => 3,
        6..=10 => 4,
        _ => 5,
    }
}

/// Computes the Figure 14 percentage distribution for one class.
pub fn fig14_distribution(per_test_races: &[usize]) -> [f64; 6] {
    let mut counts = [0usize; 6];
    for &r in per_test_races {
        counts[fig14_bucket(r)] += 1;
    }
    let total = per_test_races.len().max(1) as f64;
    let mut pct = [0.0; 6];
    for (i, &c) in counts.iter().enumerate() {
        pct[i] = 100.0 * c as f64 / total;
    }
    pct
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig14_bucketing() {
        assert_eq!(fig14_bucket(0), 0);
        assert_eq!(fig14_bucket(1), 1);
        assert_eq!(fig14_bucket(2), 2);
        assert_eq!(fig14_bucket(3), 3);
        assert_eq!(fig14_bucket(5), 3);
        assert_eq!(fig14_bucket(6), 4);
        assert_eq!(fig14_bucket(10), 4);
        assert_eq!(fig14_bucket(11), 5);
    }

    #[test]
    fn fig14_distribution_sums_to_100() {
        let d = fig14_distribution(&[0, 1, 1, 4, 12]);
        let sum: f64 = d.iter().sum();
        assert!((sum - 100.0).abs() < 1e-9);
        assert_eq!(d[1], 40.0);
    }

    #[test]
    fn render_table_aligns() {
        let t = render_table(
            &["Class", "Pairs"],
            &[
                vec!["C1".into(), "65".into()],
                vec!["C2".into(), "131".into()],
            ],
        );
        let widths: Vec<usize> = t.lines().map(str::len).collect();
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "ragged table:\n{t}"
        );
    }
}
