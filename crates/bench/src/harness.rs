//! Minimal self-contained micro-benchmark harness (criterion-style output,
//! zero dependencies — the container has no network access to fetch one).
//!
//! Each measurement warms up, then runs timed batches until either the
//! time budget (`NARADA_BENCH_MS`, default 300 ms per benchmark) or the
//! iteration cap is reached, reporting mean and best-of-batch times.

use std::time::{Duration, Instant};

/// Per-benchmark time budget in milliseconds.
fn budget() -> Duration {
    let ms = std::env::var("NARADA_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300u64);
    Duration::from_millis(ms)
}

/// Times `f`, printing a `name  mean  min  iters` line.
pub fn bench_function<R>(name: &str, mut f: impl FnMut() -> R) {
    // Warm-up: run at least once, keep going briefly to fill caches.
    let warm_start = Instant::now();
    loop {
        std::hint::black_box(f());
        if warm_start.elapsed() > Duration::from_millis(50) {
            break;
        }
    }
    let budget = budget();
    let mut iters = 0u64;
    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    while total < budget && iters < 1_000_000 {
        let t = Instant::now();
        std::hint::black_box(f());
        let d = t.elapsed();
        total += d;
        best = best.min(d);
        iters += 1;
    }
    let mean = total / iters.max(1) as u32;
    println!(
        "{name:<40} mean {:>12}  min {:>12}  ({iters} iters)",
        fmt_duration(mean),
        fmt_duration(best),
    );
}

/// Like [`bench_function`], but also prints a throughput figure computed
/// from `elements` processed per iteration.
pub fn bench_throughput<R>(name: &str, elements: u64, mut f: impl FnMut() -> R) {
    let warm_start = Instant::now();
    loop {
        std::hint::black_box(f());
        if warm_start.elapsed() > Duration::from_millis(50) {
            break;
        }
    }
    let budget = budget();
    let mut iters = 0u64;
    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    while total < budget && iters < 1_000_000 {
        let t = Instant::now();
        std::hint::black_box(f());
        let d = t.elapsed();
        total += d;
        best = best.min(d);
        iters += 1;
    }
    let mean = total / iters.max(1) as u32;
    let rate = elements as f64 / mean.as_secs_f64();
    println!(
        "{name:<40} mean {:>12}  min {:>12}  {:>14}  ({iters} iters)",
        fmt_duration(mean),
        fmt_duration(best),
        fmt_rate(rate),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn fmt_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} Gelem/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} Melem/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} Kelem/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} elem/s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_scale() {
        assert!(fmt_duration(Duration::from_nanos(10)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(10)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(10)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(10)).ends_with(" s"));
        assert!(fmt_rate(5e6).ends_with("Melem/s"));
    }
}
