//! FastTrack-style happens-before race detection (Flanagan & Freund,
//! PLDI 2009).
//!
//! Thread clocks advance on lock releases and forks; locks carry the
//! release clock; every location keeps its last-write *epoch* (the
//! FastTrack compression: a totally ordered write history needs one
//! `(thread, clock)` pair, not a full vector) plus per-thread read entries.
//! Unlike the original, read entries always carry the access span so that
//! race reports name both source sites — the space optimization FastTrack
//! applies to read sets is irrelevant at our trace sizes.

use crate::race::{RaceAccess, RaceReport, StaticRaceKey};
use crate::vclock::{Epoch, VectorClock};
use narada_lang::Span;
use narada_vm::{Event, EventKind, EventSink, FieldKey, ObjId, ThreadId};
use std::collections::{HashMap, HashSet};

#[derive(Debug, Default, Clone)]
struct VarState {
    /// Last write, as an epoch plus its source site.
    write: Option<(Epoch, Span)>,
    /// Reads since the last write that "covers" them: per thread the read
    /// clock and site.
    reads: HashMap<ThreadId, (u32, Span)>,
}

/// The happens-before detector; feed it a concurrent execution.
#[derive(Debug, Default, Clone)]
pub struct FastTrackDetector {
    threads: HashMap<ThreadId, VectorClock>,
    locks: HashMap<ObjId, VectorClock>,
    vars: HashMap<(ObjId, FieldKey), VarState>,
    races: Vec<RaceReport>,
    seen: HashSet<StaticRaceKey>,
}

impl FastTrackDetector {
    /// Creates an empty detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The distinct races detected so far.
    pub fn races(&self) -> &[RaceReport] {
        &self.races
    }

    /// Consumes the detector, returning its races.
    pub fn into_races(self) -> Vec<RaceReport> {
        self.races
    }

    fn clock(&mut self, tid: ThreadId) -> &mut VectorClock {
        self.threads.entry(tid).or_insert_with(|| {
            let mut vc = VectorClock::new();
            vc.set(tid, 1);
            vc
        })
    }

    fn report(&mut self, obj: ObjId, field: FieldKey, first: RaceAccess, second: RaceAccess) {
        let r = RaceReport {
            obj,
            field,
            first,
            second,
            provenance: None,
            static_verdict: None,
        };
        if self.seen.insert(r.static_key()) {
            self.races.push(r);
        }
    }

    fn on_read(&mut self, tid: ThreadId, obj: ObjId, field: FieldKey, span: Span) {
        let ct = self.clock(tid).clone();
        let state = self.vars.entry((obj, field)).or_default();
        // Write-read race: last write not ordered before this read. The
        // read is recorded either way (FastTrack reports and continues),
        // so later writes race against the most recent read.
        let mut race = None;
        if let Some((w, wspan)) = state.write {
            if w.tid != tid && !w.leq(&ct) {
                race = Some((
                    RaceAccess {
                        tid: w.tid,
                        is_write: true,
                        span: wspan,
                    },
                    RaceAccess {
                        tid,
                        is_write: false,
                        span,
                    },
                ));
            }
        }
        state.reads.insert(tid, (ct.get(tid), span));
        if let Some((first, second)) = race {
            self.report(obj, field, first, second);
        }
    }

    fn on_write(&mut self, tid: ThreadId, obj: ObjId, field: FieldKey, span: Span) {
        let ct = self.clock(tid).clone();
        let me = Epoch::of(tid, &ct);
        let state = self.vars.entry((obj, field)).or_default();
        // FastTrack fast path: same epoch as the last write. The stored
        // site still moves to the newest write so that race reports name
        // the access a later conflicting thread actually races with.
        if let Some((w, stored)) = &mut state.write {
            if *w == me {
                *stored = span;
                return;
            }
        }
        let mut found: Vec<(RaceAccess, RaceAccess)> = Vec::new();
        if let Some((w, wspan)) = state.write {
            if w.tid != tid && !w.leq(&ct) {
                found.push((
                    RaceAccess {
                        tid: w.tid,
                        is_write: true,
                        span: wspan,
                    },
                    RaceAccess {
                        tid,
                        is_write: true,
                        span,
                    },
                ));
            }
        }
        for (&u, &(c, rspan)) in &state.reads {
            if u != tid && c > ct.get(u) {
                found.push((
                    RaceAccess {
                        tid: u,
                        is_write: false,
                        span: rspan,
                    },
                    RaceAccess {
                        tid,
                        is_write: true,
                        span,
                    },
                ));
            }
        }
        state.write = Some((me, span));
        state
            .reads
            .retain(|&u, &mut (c, _)| c > ct.get(u) && u != tid);
        for (first, second) in found {
            self.report(obj, field, first, second);
        }
    }
}

impl EventSink for FastTrackDetector {
    fn event(&mut self, ev: &Event) {
        match &ev.kind {
            EventKind::Lock { obj, .. } => {
                let lvc = self.locks.get(obj).cloned().unwrap_or_default();
                self.clock(ev.tid).join(&lvc);
            }
            EventKind::Unlock { obj, .. } => {
                let ct = self.clock(ev.tid).clone();
                self.locks.insert(*obj, ct);
                self.clock(ev.tid).tick(ev.tid);
            }
            EventKind::ThreadSpawn { child } => {
                let parent = self.clock(ev.tid).clone();
                self.clock(*child).join(&parent);
                self.clock(ev.tid).tick(ev.tid);
            }
            EventKind::Read { obj, field, .. } => {
                self.on_read(ev.tid, *obj, *field, ev.span);
            }
            EventKind::Write { obj, field, .. } => {
                self.on_write(ev.tid, *obj, *field, ev.span);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use narada_lang::mir::VarId;
    use narada_vm::{InvId, Label, Value};

    fn ev(label: u64, tid: u32, kind: EventKind) -> Event {
        Event {
            label: Label(label),
            tid: ThreadId(tid),
            span: Span::new(label as u32 * 10, label as u32 * 10 + 1),
            kind,
        }
    }

    fn write(label: u64, tid: u32, obj: u32) -> Event {
        ev(
            label,
            tid,
            EventKind::Write {
                inv: InvId(0),
                obj_var: VarId(0),
                obj: ObjId(obj),
                field: FieldKey::Elem(0),
                src_var: VarId(1),
                value: Value::Int(0),
            },
        )
    }

    fn read(label: u64, tid: u32, obj: u32) -> Event {
        ev(
            label,
            tid,
            EventKind::Read {
                inv: InvId(0),
                dst: VarId(0),
                obj_var: VarId(0),
                obj: ObjId(obj),
                field: FieldKey::Elem(0),
                value: Value::Int(0),
            },
        )
    }

    fn lock(label: u64, tid: u32, obj: u32) -> Event {
        ev(
            label,
            tid,
            EventKind::Lock {
                inv: InvId(0),
                var: None,
                obj: ObjId(obj),
            },
        )
    }

    fn unlock(label: u64, tid: u32, obj: u32) -> Event {
        ev(
            label,
            tid,
            EventKind::Unlock {
                inv: InvId(0),
                obj: ObjId(obj),
            },
        )
    }

    fn spawn(label: u64, parent: u32, child: u32) -> Event {
        ev(
            label,
            parent,
            EventKind::ThreadSpawn {
                child: ThreadId(child),
            },
        )
    }

    #[test]
    fn concurrent_writes_race() {
        let mut d = FastTrackDetector::new();
        d.event(&write(0, 1, 5));
        d.event(&write(1, 2, 5));
        assert_eq!(d.races().len(), 1);
    }

    #[test]
    fn lock_ordered_writes_do_not_race() {
        let mut d = FastTrackDetector::new();
        d.event(&lock(0, 1, 9));
        d.event(&write(1, 1, 5));
        d.event(&unlock(2, 1, 9));
        d.event(&lock(3, 2, 9));
        d.event(&write(4, 2, 5));
        d.event(&unlock(5, 2, 9));
        assert!(d.races().is_empty(), "release→acquire orders the writes");
    }

    #[test]
    fn fork_orders_parent_before_child() {
        let mut d = FastTrackDetector::new();
        d.event(&write(0, 0, 5)); // parent writes
        d.event(&spawn(1, 0, 1));
        d.event(&write(2, 1, 5)); // child writes after fork
        assert!(d.races().is_empty(), "fork edge orders the accesses");
    }

    #[test]
    fn sibling_threads_race() {
        let mut d = FastTrackDetector::new();
        d.event(&spawn(0, 0, 1));
        d.event(&spawn(1, 0, 2));
        d.event(&write(2, 1, 5));
        d.event(&write(3, 2, 5));
        assert_eq!(d.races().len(), 1);
    }

    #[test]
    fn read_write_race() {
        let mut d = FastTrackDetector::new();
        d.event(&read(0, 1, 5));
        d.event(&write(1, 2, 5));
        assert_eq!(d.races().len(), 1);
        let r = &d.races()[0];
        assert!(!r.first.is_write && r.second.is_write);
    }

    #[test]
    fn write_read_race() {
        let mut d = FastTrackDetector::new();
        d.event(&write(0, 1, 5));
        d.event(&read(1, 2, 5));
        assert_eq!(d.races().len(), 1);
    }

    #[test]
    fn disjoint_locks_still_race() {
        // Eraser and HB agree here: different locks do not order accesses.
        let mut d = FastTrackDetector::new();
        d.event(&lock(0, 1, 8));
        d.event(&write(1, 1, 5));
        d.event(&unlock(2, 1, 8));
        d.event(&lock(3, 2, 9));
        d.event(&write(4, 2, 5));
        d.event(&unlock(5, 2, 9));
        assert_eq!(d.races().len(), 1);
    }

    #[test]
    fn same_epoch_write_fast_path() {
        let mut d = FastTrackDetector::new();
        d.event(&write(0, 1, 5));
        d.event(&write(1, 1, 5)); // same thread, same epoch
        assert!(d.races().is_empty());
    }

    #[test]
    fn release_acquire_covers_earlier_read() {
        // t1's unlocked read is still ordered before t2's write by the
        // release→acquire edge, so happens-before reports nothing (this is
        // exactly the scheduling sensitivity that makes HB detectors need
        // racy schedules — and why the paper pairs with RaceFuzzer).
        let mut d = FastTrackDetector::new();
        d.event(&read(0, 1, 5));
        d.event(&lock(1, 1, 9));
        d.event(&unlock(2, 1, 9));
        d.event(&lock(3, 2, 9));
        d.event(&read(4, 2, 5));
        d.event(&write(5, 2, 5));
        assert!(d.races().is_empty());
    }
}
