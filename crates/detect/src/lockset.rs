//! Eraser-style lockset race detection (Savage et al., TOCS 1997),
//! adapted to report *both* accesses of each race so that the
//! RaceFuzzer-style confirmer has concrete target sites.
//!
//! For every memory location we keep a bounded history of access summaries
//! `(thread, is_write, lockset, site)`; a new access races with a recorded
//! one when the threads differ, at least one side writes, and the held
//! locksets are disjoint — exactly the lockset discipline Narada inverts to
//! *generate* tests (paper §1: "while Eraser uses this property to detect
//! races, we apply the same property to generate race inducing tests").

use crate::race::{RaceAccess, RaceReport, StaticRaceKey};
use narada_lang::Span;
use narada_vm::{Event, EventKind, EventSink, FieldKey, Label, ObjId, ThreadId};
use std::collections::{HashMap, HashSet};

/// Bounded per-location access history.
const MAX_HISTORY: usize = 64;

#[derive(Debug, Clone, PartialEq, Eq)]
struct AccessSummary {
    tid: ThreadId,
    is_write: bool,
    locks: Vec<ObjId>,
    span: Span,
    label: Label,
}

/// The Eraser-style detector; implement [`EventSink`] and feed it a
/// concurrent execution.
#[derive(Debug, Default, Clone)]
pub struct LocksetDetector {
    /// Locks currently held, per thread.
    held: HashMap<ThreadId, Vec<ObjId>>,
    /// Access history per location.
    history: HashMap<(ObjId, FieldKey), Vec<AccessSummary>>,
    /// Trace label at which each thread was spawned: accesses by the
    /// spawner before this point happen-before everything in the child
    /// (fork awareness — Eraser's exclusive-state analogue).
    spawned_at: HashMap<ThreadId, (ThreadId, Label)>,
    /// Distinct races found (deduplicated by static key).
    races: Vec<RaceReport>,
    seen: HashSet<StaticRaceKey>,
}

impl LocksetDetector {
    /// Creates an empty detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The distinct races detected so far.
    pub fn races(&self) -> &[RaceReport] {
        &self.races
    }

    /// Consumes the detector, returning its races.
    pub fn into_races(self) -> Vec<RaceReport> {
        self.races
    }

    /// `a` happens-before `b` through a fork edge.
    fn fork_ordered(&self, a: &AccessSummary, b_tid: ThreadId) -> bool {
        match self.spawned_at.get(&b_tid) {
            Some(&(spawner, at)) => a.tid == spawner && a.label < at,
            None => false,
        }
    }

    fn on_access(
        &mut self,
        tid: ThreadId,
        obj: ObjId,
        field: FieldKey,
        is_write: bool,
        span: Span,
        label: Label,
    ) {
        let locks = self.held.get(&tid).cloned().unwrap_or_default();
        let candidates: Vec<AccessSummary> = self
            .history
            .get(&(obj, field))
            .map(|h| h.to_vec())
            .unwrap_or_default();
        for prev in &candidates {
            if prev.tid == tid {
                continue;
            }
            if !prev.is_write && !is_write {
                continue;
            }
            if prev.locks.iter().any(|l| locks.contains(l)) {
                continue; // common lock
            }
            if self.fork_ordered(prev, tid) {
                continue; // ordered by thread creation
            }
            let report = RaceReport {
                obj,
                field,
                first: RaceAccess {
                    tid: prev.tid,
                    is_write: prev.is_write,
                    span: prev.span,
                },
                second: RaceAccess {
                    tid,
                    is_write,
                    span,
                },
                provenance: None,
                static_verdict: None,
            };
            if self.seen.insert(report.static_key()) {
                self.races.push(report);
            }
        }
        let summary = AccessSummary {
            tid,
            is_write,
            locks,
            span,
            label,
        };
        let history = self.history.entry((obj, field)).or_default();
        let dup = history.iter().any(|h| {
            (h.tid, h.is_write, &h.locks, h.span) == (tid, is_write, &summary.locks, span)
        });
        if !dup && history.len() < MAX_HISTORY {
            history.push(summary);
        }
    }
}

impl EventSink for LocksetDetector {
    fn event(&mut self, ev: &Event) {
        match &ev.kind {
            EventKind::Lock { obj, .. } => {
                self.held.entry(ev.tid).or_default().push(*obj);
            }
            EventKind::Unlock { obj, .. } => {
                if let Some(held) = self.held.get_mut(&ev.tid) {
                    if let Some(pos) = held.iter().rposition(|l| l == obj) {
                        held.remove(pos);
                    }
                }
            }
            EventKind::Read { obj, field, .. } => {
                self.on_access(ev.tid, *obj, *field, false, ev.span, ev.label);
            }
            EventKind::Write { obj, field, .. } => {
                self.on_access(ev.tid, *obj, *field, true, ev.span, ev.label);
            }
            EventKind::ThreadSpawn { child } => {
                self.spawned_at.insert(*child, (ev.tid, ev.label));
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use narada_lang::mir::VarId;
    use narada_vm::{InvId, Label, Value};

    fn ev(label: u64, tid: u32, kind: EventKind) -> Event {
        Event {
            label: Label(label),
            tid: ThreadId(tid),
            span: Span::new(label as u32, label as u32 + 1),
            kind,
        }
    }

    fn write(label: u64, tid: u32, obj: u32) -> Event {
        ev(
            label,
            tid,
            EventKind::Write {
                inv: InvId(0),
                obj_var: VarId(0),
                obj: ObjId(obj),
                field: FieldKey::Elem(0),
                src_var: VarId(1),
                value: Value::Int(0),
            },
        )
    }

    fn read(label: u64, tid: u32, obj: u32) -> Event {
        ev(
            label,
            tid,
            EventKind::Read {
                inv: InvId(0),
                dst: VarId(0),
                obj_var: VarId(0),
                obj: ObjId(obj),
                field: FieldKey::Elem(0),
                value: Value::Int(0),
            },
        )
    }

    fn lock(label: u64, tid: u32, obj: u32) -> Event {
        ev(
            label,
            tid,
            EventKind::Lock {
                inv: InvId(0),
                var: None,
                obj: ObjId(obj),
            },
        )
    }

    fn unlock(label: u64, tid: u32, obj: u32) -> Event {
        ev(
            label,
            tid,
            EventKind::Unlock {
                inv: InvId(0),
                obj: ObjId(obj),
            },
        )
    }

    #[test]
    fn unlocked_write_write_races() {
        let mut d = LocksetDetector::new();
        d.event(&write(0, 1, 5));
        d.event(&write(1, 2, 5));
        assert_eq!(d.races().len(), 1);
        assert!(d.races()[0].first.is_write && d.races()[0].second.is_write);
    }

    #[test]
    fn read_read_is_no_race() {
        let mut d = LocksetDetector::new();
        d.event(&read(0, 1, 5));
        d.event(&read(1, 2, 5));
        assert!(d.races().is_empty());
    }

    #[test]
    fn common_lock_suppresses() {
        let mut d = LocksetDetector::new();
        d.event(&lock(0, 1, 9));
        d.event(&write(1, 1, 5));
        d.event(&unlock(2, 1, 9));
        d.event(&lock(3, 2, 9));
        d.event(&write(4, 2, 5));
        d.event(&unlock(5, 2, 9));
        assert!(d.races().is_empty());
    }

    #[test]
    fn different_locks_race() {
        let mut d = LocksetDetector::new();
        d.event(&lock(0, 1, 8));
        d.event(&write(1, 1, 5));
        d.event(&unlock(2, 1, 8));
        d.event(&lock(3, 2, 9));
        d.event(&write(4, 2, 5));
        d.event(&unlock(5, 2, 9));
        assert_eq!(d.races().len(), 1, "disjoint locksets do not protect");
    }

    #[test]
    fn same_thread_never_races() {
        let mut d = LocksetDetector::new();
        d.event(&write(0, 1, 5));
        d.event(&write(1, 1, 5));
        assert!(d.races().is_empty());
    }

    #[test]
    fn different_objects_never_race() {
        let mut d = LocksetDetector::new();
        d.event(&write(0, 1, 5));
        d.event(&write(1, 2, 6));
        assert!(d.races().is_empty());
    }

    #[test]
    fn duplicate_dynamic_races_dedup() {
        let mut d = LocksetDetector::new();
        // Same static pair executed repeatedly.
        for i in 0..10 {
            let mut e1 = write(0, 1, 5);
            e1.label = Label(i * 2);
            let mut e2 = write(1, 2, 5);
            e2.label = Label(i * 2 + 1);
            d.event(&e1);
            d.event(&e2);
        }
        assert_eq!(d.races().len(), 1);
    }

    #[test]
    fn fork_ordered_setup_does_not_race() {
        let mut d = LocksetDetector::new();
        // Main writes during setup, then spawns T2 which writes.
        d.event(&write(0, 0, 5));
        d.event(&ev(1, 0, EventKind::ThreadSpawn { child: ThreadId(2) }));
        d.event(&write(2, 2, 5));
        assert!(d.races().is_empty(), "spawn orders setup before child");
        // But a main write AFTER the spawn does race.
        d.event(&write(3, 0, 5));
        assert_eq!(d.races().len(), 1);
    }

    #[test]
    fn reentrant_acquire_still_held_after_one_release() {
        // MJ monitors are reentrant: lock(m); lock(m); unlock(m) leaves m
        // held (the multiset holds one remaining entry), so an access here
        // is still protected against a properly locked peer.
        let mut d = LocksetDetector::new();
        d.event(&lock(0, 1, 9));
        d.event(&lock(1, 1, 9));
        d.event(&unlock(2, 1, 9));
        d.event(&write(3, 1, 5));
        d.event(&unlock(4, 1, 9));
        d.event(&lock(5, 2, 9));
        d.event(&write(6, 2, 5));
        d.event(&unlock(7, 2, 9));
        assert!(
            d.races().is_empty(),
            "one release of a reentrant acquire keeps the lock"
        );
    }

    #[test]
    fn reentrant_acquire_fully_released_races() {
        // After matching releases for every acquire, the lock is truly gone.
        let mut d = LocksetDetector::new();
        d.event(&lock(0, 1, 9));
        d.event(&lock(1, 1, 9));
        d.event(&unlock(2, 1, 9));
        d.event(&unlock(3, 1, 9));
        d.event(&write(4, 1, 5));
        d.event(&lock(5, 2, 9));
        d.event(&write(6, 2, 5));
        d.event(&unlock(7, 2, 9));
        assert_eq!(d.races().len(), 1, "balanced releases drop the lock");
    }

    #[test]
    fn nested_distinct_locks_protect_while_held() {
        // lock(a); lock(b); access; unlock(b): the access holds {a, b} and
        // a peer holding either one is excluded.
        let mut d = LocksetDetector::new();
        d.event(&lock(0, 1, 8));
        d.event(&lock(1, 1, 9));
        d.event(&write(2, 1, 5));
        d.event(&unlock(3, 1, 9));
        d.event(&unlock(4, 1, 8));
        // Peer under only the inner lock: common lock, no race.
        d.event(&lock(5, 2, 9));
        d.event(&write(6, 2, 5));
        d.event(&unlock(7, 2, 9));
        assert!(d.races().is_empty(), "inner lock is common");
        // Peer under an unrelated lock: disjoint with both prior accesses
        // (T1 held {a, b}, T2 held {b}), so two distinct races appear.
        d.event(&lock(8, 3, 7));
        d.event(&write(9, 3, 5));
        d.event(&unlock(10, 3, 7));
        assert_eq!(d.races().len(), 2, "unrelated lock does not protect");
    }

    #[test]
    fn out_of_order_release_removes_innermost_matching_entry() {
        // lock(a); lock(b); unlock(a): only b remains held — an access
        // after the out-of-order release is unprotected w.r.t. a.
        let mut d = LocksetDetector::new();
        d.event(&lock(0, 1, 8));
        d.event(&lock(1, 1, 9));
        d.event(&unlock(2, 1, 8));
        d.event(&write(3, 1, 5));
        d.event(&unlock(4, 1, 9));
        d.event(&lock(5, 2, 8));
        d.event(&write(6, 2, 5));
        d.event(&unlock(7, 2, 8));
        assert_eq!(d.races().len(), 1, "a was already released at the access");
    }

    #[test]
    fn unmatched_release_is_ignored() {
        // A release of a lock the thread never acquired must not corrupt
        // the held multiset (the VM would reject it; the detector is
        // defensive about replayed partial traces).
        let mut d = LocksetDetector::new();
        d.event(&unlock(0, 1, 9));
        d.event(&lock(1, 1, 9));
        d.event(&write(2, 1, 5));
        d.event(&unlock(3, 1, 9));
        d.event(&lock(4, 2, 9));
        d.event(&write(5, 2, 5));
        d.event(&unlock(6, 2, 9));
        assert!(
            d.races().is_empty(),
            "spurious unlock must not unbalance holds"
        );
    }

    #[test]
    fn write_read_races_both_directions() {
        let mut d = LocksetDetector::new();
        d.event(&write(0, 1, 5));
        d.event(&read(1, 2, 5));
        assert_eq!(d.races().len(), 1);

        let mut d = LocksetDetector::new();
        d.event(&read(3, 2, 5));
        d.event(&write(4, 1, 5));
        assert_eq!(d.races().len(), 1);
    }
}
