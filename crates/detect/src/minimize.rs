//! ddmin schedule minimization and fixture replay (exploration engine,
//! part 3).
//!
//! A schedule that manifests a race usually contains thousands of
//! scheduling decisions, almost all irrelevant: the race needs only the
//! few preemptions that put the two conflicting accesses back to back.
//! [`minimize_schedule`] shrinks a manifesting schedule to a (1-)minimal
//! set of *segments* — maximal runs of a single thread — using
//! Zeller/Hildebrandt delta debugging (ddmin) with the passive detectors
//! as the oracle: a candidate passes iff re-executing under it still makes
//! the Eraser-lockset ∪ FastTrack pass report the target [`StaticRaceKey`].
//!
//! Candidates are probed with [`SegmentScheduler`], which tolerates
//! infeasible prefixes (a segment whose thread is blocked or finished is
//! skipped; exhausted schedules fall back to serial execution), so every
//! subset of segments yields *some* complete run. The winning candidate is
//! then re-recorded so the committed `.sched` fixture is an exact,
//! [`ReplayScheduler`]-replayable decision sequence, not a segment sketch.

use crate::fasttrack::FastTrackDetector;
use crate::lockset::LocksetDetector;
use crate::race::StaticRaceKey;
use narada_core::synth::execute_plan;
use narada_core::TestPlan;
use narada_lang::hir::{Program, TestId};
use narada_lang::mir::MirProgram;
use narada_vm::{
    trace_digest, Engine, Machine, MachineOptions, RecordingScheduler, ReplayScheduler, Schedule,
    SegmentScheduler, TeeSink, ThreadId, VecSink,
};

/// Hard cap on oracle executions per minimization, so a pathological
/// schedule cannot stall the pipeline (each probe is a full test run).
const MAX_PROBES: usize = 256;

/// Result of minimizing one manifesting schedule.
#[derive(Debug, Clone)]
pub struct MinimizeOutcome {
    /// The minimized schedule, re-recorded as exact decisions (replayable
    /// with [`ReplayScheduler`] against the same machine seed).
    pub schedule: Schedule,
    /// Oracle executions spent.
    pub probes: usize,
    /// Thread-switch count of the input schedule.
    pub initial_preemptions: usize,
    /// Thread-switch count of the minimized schedule.
    pub final_preemptions: usize,
}

/// One re-execution of a plan under a given scheduler with the passive
/// detectors attached: did the target race manifest, and what exact
/// decision sequence ran?
struct Probe {
    manifested: bool,
    recorded: Vec<ThreadId>,
}

#[allow(clippy::too_many_arguments)]
fn probe(
    prog: &Program,
    mir: &MirProgram,
    seeds: &[TestId],
    plan: &TestPlan,
    machine_seed: u64,
    budget: u64,
    target: &StaticRaceKey,
    segments: &[(ThreadId, u64)],
    engine: Engine,
) -> Option<Probe> {
    let mut machine = Machine::new(
        prog,
        mir,
        MachineOptions {
            seed: machine_seed,
            engine,
            ..MachineOptions::default()
        },
    );
    let mut lockset = LocksetDetector::new();
    let mut hb = FastTrackDetector::new();
    let mut sink = TeeSink {
        a: &mut lockset,
        b: &mut hb,
    };
    let mut rec = RecordingScheduler::new(SegmentScheduler::new(segments.to_vec()));
    execute_plan(&mut machine, seeds, plan, &mut rec, &mut sink, budget).ok()?;
    let manifested = lockset
        .races()
        .iter()
        .chain(hb.races())
        .any(|r| r.static_key() == *target);
    Some(Probe {
        manifested,
        recorded: rec.into_schedule(),
    })
}

/// Merges adjacent segments of the same thread (arises when ddmin removes
/// the segment between them).
fn coalesce(segments: &[(ThreadId, u64)]) -> Vec<(ThreadId, u64)> {
    let mut out: Vec<(ThreadId, u64)> = Vec::with_capacity(segments.len());
    for &(tid, n) in segments {
        match out.last_mut() {
            Some((last, count)) if *last == tid => *count += n,
            _ => out.push((tid, n)),
        }
    }
    out
}

/// Shrinks `schedule` to a 1-minimal set of segments that still manifests
/// `target`, then re-records the winning run as an exact decision sequence.
///
/// Returns `None` when the input schedule does not manifest the race in
/// the first place (stale recording, wrong machine seed) — the caller
/// should keep the unminimized schedule in that case.
#[allow(clippy::too_many_arguments)]
pub fn minimize_schedule(
    prog: &Program,
    mir: &MirProgram,
    seeds: &[TestId],
    plan: &TestPlan,
    budget: u64,
    target: &StaticRaceKey,
    schedule: &Schedule,
    engine: Engine,
) -> Option<MinimizeOutcome> {
    let machine_seed = schedule.seed;
    let probes = std::cell::Cell::new(0usize);
    let run = |segments: &[(ThreadId, u64)]| -> Option<Probe> {
        probes.set(probes.get() + 1);
        probe(
            prog,
            mir,
            seeds,
            plan,
            machine_seed,
            budget,
            target,
            segments,
            engine,
        )
    };

    // The input must manifest under its own segment rendering, otherwise
    // there is nothing sound to minimize.
    let mut segments = coalesce(&schedule.runs());
    let mut best = run(&segments)?;
    if !best.manifested {
        return None;
    }
    let initial_preemptions = schedule.preemptions();

    // ddmin (Zeller & Hildebrandt 2002) over the segment list: try
    // removing ever-finer chunks; keep any candidate that still manifests.
    let mut n = 2usize;
    while segments.len() >= 2 && probes.get() < MAX_PROBES {
        let chunk = segments.len().div_ceil(n);
        let mut reduced = None;
        for i in 0..n {
            let (lo, hi) = (i * chunk, ((i + 1) * chunk).min(segments.len()));
            if lo >= hi {
                continue;
            }
            // Complement: everything except chunk i.
            let candidate: Vec<(ThreadId, u64)> = segments[..lo]
                .iter()
                .chain(&segments[hi..])
                .copied()
                .collect();
            let candidate = coalesce(&candidate);
            if candidate.is_empty() {
                continue;
            }
            if let Some(p) = run(&candidate) {
                if p.manifested {
                    reduced = Some((candidate, p));
                    break;
                }
            }
            if probes.get() >= MAX_PROBES {
                break;
            }
        }
        match reduced {
            Some((candidate, p)) => {
                segments = candidate;
                best = p;
                n = 2.max(n - 1);
            }
            None => {
                if n >= segments.len() {
                    break;
                }
                n = (n * 2).min(segments.len());
            }
        }
    }

    // Canonicalize: the committed schedule is the *executed* decision
    // sequence of the winning probe, so replay needs no segment semantics.
    let mut minimized = Schedule::new("ddmin", machine_seed, best.recorded);
    for (k, v) in &schedule.meta {
        minimized.set_meta(k, v);
    }
    let final_preemptions = minimized.preemptions();
    Some(MinimizeOutcome {
        schedule: minimized,
        probes: probes.get(),
        initial_preemptions,
        final_preemptions,
    })
}

/// Result of replaying a committed schedule.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Static keys of every race the passive detectors reported.
    pub keys: Vec<StaticRaceKey>,
    /// Decisions where the recorded thread was not runnable (a faithful
    /// replay reports 0).
    pub divergences: usize,
    /// Order-sensitive digest of the full event trace — byte-identity
    /// oracle for the regression suite.
    pub trace_digest: u64,
    /// Scheduling decisions consumed.
    pub decisions: usize,
}

impl ReplayOutcome {
    /// Whether the replay manifested the given race.
    pub fn manifests(&self, target: &StaticRaceKey) -> bool {
        self.keys.contains(target)
    }
}

/// Re-executes a plan under a recorded schedule (machine seeded from
/// [`Schedule::seed`]) with the passive detectors attached.
///
/// # Errors
///
/// Returns the setup error message when the plan cannot be materialized
/// (capture miss etc.) — a committed fixture failing here means the
/// synthesizer output drifted from the recording.
pub fn replay_schedule(
    prog: &Program,
    mir: &MirProgram,
    seeds: &[TestId],
    plan: &TestPlan,
    budget: u64,
    schedule: &Schedule,
    engine: Engine,
) -> Result<ReplayOutcome, String> {
    let mut machine = Machine::new(
        prog,
        mir,
        MachineOptions {
            seed: schedule.seed,
            engine,
            ..MachineOptions::default()
        },
    );
    let mut lockset = LocksetDetector::new();
    let mut hb = FastTrackDetector::new();
    let mut trace = VecSink::new();
    let mut detectors = TeeSink {
        a: &mut lockset,
        b: &mut hb,
    };
    let mut sink = TeeSink {
        a: &mut detectors,
        b: &mut trace,
    };
    let mut replay = ReplayScheduler::from_schedule(schedule);
    execute_plan(&mut machine, seeds, plan, &mut replay, &mut sink, budget)
        .map_err(|e| e.to_string())?;
    let mut keys: Vec<StaticRaceKey> = lockset
        .races()
        .iter()
        .chain(hb.races())
        .map(|r| r.static_key())
        .collect();
    keys.sort_unstable();
    keys.dedup();
    Ok(ReplayOutcome {
        keys,
        divergences: replay.divergences(),
        trace_digest: trace_digest(&trace.events),
        decisions: schedule.len(),
    })
}
