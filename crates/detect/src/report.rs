//! Top-level evaluation harness: run a synthesized test under the
//! detectors exactly like the paper's §5 evaluation.
//!
//! For each synthesized test:
//!
//! 1. run it under several random schedules with the Eraser lockset and
//!    FastTrack detectors attached → the *detected* races, counted at the
//!    paper's granularity (unordered method pair × field, see
//!    [`CoarseRaceKey`]);
//! 2. for each detected race, re-execute under the RaceFuzzer-style
//!    directed scheduler targeting its concrete source sites → the
//!    *reproduced* races, triaged into harmful/benign.

use crate::fasttrack::FastTrackDetector;
use crate::lockset::LocksetDetector;
use crate::race::{CoarseRaceKey, MethodIndex, RaceReport, StaticRaceKey};
use crate::racefuzzer::{ConfirmedRace, RaceFuzzerScheduler};
use narada_core::synth::execute_plan;
use narada_core::TestPlan;
use narada_lang::hir::{Program, TestId};
use narada_lang::mir::MirProgram;
use narada_vm::{Machine, MachineOptions, RandomScheduler, TeeSink};
use std::collections::{BTreeMap, BTreeSet};

/// Detection configuration.
#[derive(Debug, Clone)]
pub struct DetectConfig {
    /// Number of random schedules per test in the detection pass.
    pub schedule_trials: usize,
    /// Number of directed attempts per potential race in the confirmation
    /// pass.
    pub confirm_trials: usize,
    /// Base RNG seed (each trial derives its own).
    pub seed: u64,
    /// Step budget for each concurrent run.
    pub budget: u64,
}

impl Default for DetectConfig {
    fn default() -> Self {
        DetectConfig {
            schedule_trials: 10,
            confirm_trials: 5,
            seed: 0xdecaf,
            budget: 2_000_000,
        }
    }
}

/// Detection results for one synthesized test (one row's worth of Table 5
/// contributions).
#[derive(Debug, Default)]
pub struct TestReport {
    /// Distinct races detected by the lockset/HB pass (coarse keys).
    pub detected: Vec<CoarseRaceKey>,
    /// Races reproduced (confirmed) by the directed scheduler.
    pub reproduced: Vec<(CoarseRaceKey, ConfirmedRace)>,
    /// Setup problems (capture misses etc.); the test counts as executed
    /// but found nothing.
    pub setup_errors: Vec<String>,
}

impl TestReport {
    /// Number of reproduced harmful races.
    pub fn harmful(&self) -> usize {
        self.reproduced.iter().filter(|(_, r)| !r.benign).count()
    }

    /// Number of reproduced benign races.
    pub fn benign(&self) -> usize {
        self.reproduced.iter().filter(|(_, r)| r.benign).count()
    }
}

/// Runs the full detection protocol on one synthesized test plan.
pub fn evaluate_test(
    prog: &Program,
    mir: &MirProgram,
    seeds: &[TestId],
    plan: &TestPlan,
    cfg: &DetectConfig,
) -> TestReport {
    let index = MethodIndex::new(prog);
    let mut report = TestReport::default();
    // Coarse race → the fine site pairs witnessing it (confirmation
    // targets).
    let mut detected: BTreeMap<CoarseRaceKey, Vec<StaticRaceKey>> = BTreeMap::new();
    let mut seen_fine: BTreeSet<StaticRaceKey> = BTreeSet::new();

    // Pass 1: random schedules with passive detectors.
    for trial in 0..cfg.schedule_trials {
        let mut machine = Machine::new(
            prog,
            mir,
            MachineOptions {
                seed: cfg.seed ^ (trial as u64),
                ..MachineOptions::default()
            },
        );
        let mut lockset = LocksetDetector::new();
        let mut hb = FastTrackDetector::new();
        let mut sink = TeeSink {
            a: &mut lockset,
            b: &mut hb,
        };
        let mut sched = RandomScheduler::new(cfg.seed.wrapping_add(trial as u64 * 977));
        match execute_plan(&mut machine, seeds, plan, &mut sched, &mut sink, cfg.budget) {
            Ok(_) => {}
            Err(e) => {
                report.setup_errors.push(e.to_string());
                return report;
            }
        }
        let reports: Vec<RaceReport> = lockset
            .races()
            .iter()
            .chain(hb.races())
            .cloned()
            .collect();
        for r in reports {
            let fine = r.static_key();
            if seen_fine.insert(fine) {
                detected.entry(index.coarsen(&r)).or_default().push(fine);
            }
        }
    }

    // Pass 2: directed confirmation per coarse race, targeting each of its
    // witnessing site pairs in turn.
    for (coarse, fine_keys) in &detected {
        'confirm: for fine in fine_keys {
            for trial in 0..cfg.confirm_trials {
                let mut machine = Machine::new(
                    prog,
                    mir,
                    MachineOptions {
                        seed: cfg.seed ^ 0x5eed ^ (trial as u64),
                        ..MachineOptions::default()
                    },
                );
                let mut sched =
                    RaceFuzzerScheduler::new(*fine, cfg.seed.wrapping_add(31 * trial as u64));
                let mut sink = narada_vm::NullSink;
                if execute_plan(&mut machine, seeds, plan, &mut sched, &mut sink, cfg.budget)
                    .is_err()
                {
                    continue;
                }
                if let Some(c) = sched.confirmed.into_iter().find(|c| c.key == *fine) {
                    report.reproduced.push((*coarse, c));
                    break 'confirm;
                }
            }
        }
    }

    report.detected = detected.into_keys().collect();
    report
}

/// Aggregated per-class detection numbers (one Table 5 row).
#[derive(Debug, Default, Clone)]
pub struct ClassDetection {
    /// Distinct races detected across all tests.
    pub races_detected: usize,
    /// Races reproduced and judged harmful.
    pub harmful: usize,
    /// Races reproduced and judged benign.
    pub benign: usize,
    /// Detected but not reproduced (the paper's manually-triaged column).
    pub unreproduced: usize,
    /// Per-test detected-race counts (Fig. 14's distribution input).
    pub per_test_races: Vec<usize>,
}

/// Evaluates a whole synthesized suite and aggregates per-class numbers.
pub fn evaluate_suite(
    prog: &Program,
    mir: &MirProgram,
    seeds: &[TestId],
    plans: &[&TestPlan],
    cfg: &DetectConfig,
) -> ClassDetection {
    let mut all_detected: BTreeSet<CoarseRaceKey> = BTreeSet::new();
    let mut all_reproduced: BTreeSet<CoarseRaceKey> = BTreeSet::new();
    let mut harmful = 0usize;
    let mut benign = 0usize;
    let mut per_test = Vec::with_capacity(plans.len());
    for plan in plans {
        let rep = evaluate_test(prog, mir, seeds, plan, cfg);
        per_test.push(rep.detected.len());
        for k in &rep.detected {
            all_detected.insert(*k);
        }
        for (k, c) in &rep.reproduced {
            if all_reproduced.insert(*k) {
                if c.benign {
                    benign += 1;
                } else {
                    harmful += 1;
                }
            }
        }
    }
    ClassDetection {
        races_detected: all_detected.len(),
        harmful,
        benign,
        unreproduced: all_detected.len().saturating_sub(all_reproduced.len()),
        per_test_races: per_test,
    }
}
