//! Top-level evaluation harness: run a synthesized test under the
//! detectors exactly like the paper's §5 evaluation.
//!
//! For each synthesized test:
//!
//! 1. run it under several random schedules with the Eraser lockset and
//!    FastTrack detectors attached → the *detected* races, counted at the
//!    paper's granularity (unordered method pair × field, see
//!    [`CoarseRaceKey`]);
//! 2. for each detected race, re-execute under the RaceFuzzer-style
//!    directed scheduler targeting its concrete source sites → the
//!    *reproduced* races, triaged into harmful/benign.
//!
//! ## Parallel trial runner
//!
//! Every schedule trial (and every confirmation target) is an independent
//! job: it builds its own [`Machine`], detectors, and scheduler, and its
//! randomness comes from a seed derived from *job identity* —
//! `derive_seed(cfg.seed, &[stage, test, trial])` — never from a shared
//! generator. Jobs are sharded over the worker pool with
//! [`narada_core::parallel::parallel_map`] and merged in job order, so
//! detection output is byte-identical at any `threads` value.

use crate::fasttrack::FastTrackDetector;
use crate::lockset::LocksetDetector;
use crate::minimize::minimize_schedule;
use crate::race::{CoarseRaceKey, MethodIndex, RaceReport, SchedProvenance, StaticRaceKey};
use crate::racefuzzer::{ConfirmedRace, RaceFuzzerScheduler};
use narada_core::parallel::parallel_map;
use narada_core::synth::{execute_plan, execute_plan_suffix};
use narada_core::TestPlan;
use narada_explore::{fork_map, prepare_fork_point, ExploreMode, ForkPoint};
use narada_lang::hir::{Program, TestId};
use narada_lang::mir::MirProgram;
use narada_obs::{span, Obs, TRIAL_BUCKETS};
use narada_vm::rng::derive_seed;
use narada_vm::{
    Engine, EventSink, Machine, MachineMark, MachineOptions, ObservedScheduler, RecordingScheduler,
    ScheduleStrategy, TeeSink,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Seed-derivation stage tags (arbitrary distinct constants; changing one
/// re-rolls every schedule of that stage).
const STAGE_DETECT_MACHINE: u64 = 1;
const STAGE_DETECT_SCHED: u64 = 2;
const STAGE_CONFIRM_MACHINE: u64 = 3;
const STAGE_CONFIRM_SCHED: u64 = 4;

/// Detection configuration.
#[derive(Debug, Clone)]
pub struct DetectConfig {
    /// Number of random schedules per test in the detection pass.
    pub schedule_trials: usize,
    /// Number of directed attempts per potential race in the confirmation
    /// pass.
    pub confirm_trials: usize,
    /// Base RNG seed (each trial derives its own from `(seed, stage,
    /// test, trial)` — see the module docs).
    pub seed: u64,
    /// Step budget for each concurrent run.
    pub budget: u64,
    /// Worker threads for the trial runner (`0` = one per core). Purely a
    /// throughput knob: results are identical at any value.
    pub threads: usize,
    /// Scheduler family for the detection pass (the CLI's `--strategy`).
    /// The default, [`ScheduleStrategy::Random`], reproduces the seed
    /// behavior decision-for-decision.
    pub strategy: ScheduleStrategy,
    /// Change-point sampling horizon for PCT (expected scheduling
    /// decisions per run; irrelevant for other strategies).
    pub pct_horizon: u64,
    /// Run ddmin on each confirming schedule before attaching it to the
    /// [`ConfirmedRace`] — used when committing `.sched` fixtures; costs
    /// one full re-execution per probe.
    pub minimize: bool,
    /// Execution engine for every trial, confirmation, and minimization
    /// machine. Trace-equivalent to tree-walk (see the engine
    /// differential suite), so detection output is byte-identical across
    /// engines; this is purely a throughput knob (the CLI's `--engine`).
    pub engine: Engine,
    /// Pre-compiled bytecode for the program under test — an
    /// artifact-cache hand-off (`narada serve`): when set and `engine`
    /// is [`Engine::Bytecode`], every trial and confirmation machine
    /// shares this compilation instead of recompiling per trial. Must
    /// have been compiled from exactly the `(Program, MirProgram)`
    /// passed to the evaluation entry points. Ignored under
    /// [`Engine::TreeWalk`]; purely a throughput knob (compilation is
    /// deterministic, so output is byte-identical either way).
    pub code: Option<std::sync::Arc<narada_vm::BcProgram>>,
    /// How trials explore schedule suffixes (the CLI's `--explore`):
    /// re-execute each trial from `main()`, or run the shared prefix once
    /// and probe suffixes from copy-on-write forks. Verdicts, trace
    /// digests, and schedules are byte-identical across modes (the
    /// fork-vs-rerun differential suite); manifests differ only in the
    /// fork-only `explore.*` counters
    /// ([`narada_explore::FORK_ONLY_METRICS`]).
    pub explore: ExploreMode,
}

impl Default for DetectConfig {
    fn default() -> Self {
        DetectConfig {
            schedule_trials: 10,
            confirm_trials: 5,
            seed: 0xdecaf,
            budget: 2_000_000,
            threads: 0,
            strategy: ScheduleStrategy::Random,
            pct_horizon: 1_000,
            minimize: false,
            engine: Engine::TreeWalk,
            code: None,
            explore: ExploreMode::Rerun,
        }
    }
}

/// Builds one trial machine, sharing the pre-compiled bytecode when the
/// config carries it (see [`DetectConfig::code`]).
fn trial_machine<'p>(
    prog: &'p Program,
    mir: &'p MirProgram,
    cfg: &DetectConfig,
    seed: u64,
) -> Machine<'p> {
    let opts = MachineOptions {
        seed,
        engine: cfg.engine,
        ..MachineOptions::default()
    };
    match &cfg.code {
        Some(code) if cfg.engine == Engine::Bytecode => {
            Machine::with_code(prog, mir, opts, std::sync::Arc::clone(code))
        }
        _ => Machine::new(prog, mir, opts),
    }
}

/// Detection results for one synthesized test (one row's worth of Table 5
/// contributions).
#[derive(Debug, Default)]
pub struct TestReport {
    /// Distinct races detected by the lockset/HB pass (coarse keys).
    pub detected: Vec<CoarseRaceKey>,
    /// Races reproduced (confirmed) by the directed scheduler.
    pub reproduced: Vec<(CoarseRaceKey, ConfirmedRace)>,
    /// Setup problems (capture misses etc.); the test counts as executed
    /// but found nothing.
    pub setup_errors: Vec<String>,
}

impl TestReport {
    /// Number of reproduced harmful races.
    pub fn harmful(&self) -> usize {
        self.reproduced.iter().filter(|(_, r)| !r.benign).count()
    }

    /// Number of reproduced benign races.
    pub fn benign(&self) -> usize {
        self.reproduced.iter().filter(|(_, r)| r.benign).count()
    }
}

/// One detection-pass trial: a fresh machine + detectors under a random
/// schedule derived from `(base_seed, test, trial)`. Pure function of its
/// arguments — the unit of work the parallel runner shards. Returns the
/// trial's race reports plus the manifested schedule's digest (the
/// novelty-telemetry input).
#[allow(clippy::too_many_arguments)]
fn detection_trial(
    prog: &Program,
    mir: &MirProgram,
    seeds: &[TestId],
    plan: &TestPlan,
    cfg: &DetectConfig,
    test_idx: u64,
    trial: u64,
    obs: &Obs,
) -> Result<(Vec<RaceReport>, u64), String> {
    let machine_seed = derive_seed(cfg.seed, &[STAGE_DETECT_MACHINE, test_idx, trial]);
    let sched_seed = derive_seed(cfg.seed, &[STAGE_DETECT_SCHED, test_idx, trial]);
    let mut machine = trial_machine(prog, mir, cfg, machine_seed);
    let mut lockset = LocksetDetector::new();
    let mut hb = FastTrackDetector::new();
    let mut sink = TeeSink {
        a: &mut lockset,
        b: &mut hb,
    };
    let mut inner = cfg.strategy.build(sched_seed, cfg.pct_horizon);
    let mut observed = ObservedScheduler::new(&mut *inner, &obs.metrics);
    let mut sched = RecordingScheduler::new(&mut observed);
    execute_plan(&mut machine, seeds, plan, &mut sched, &mut sink, cfg.budget)
        .map_err(|e| e.to_string())?;
    // Stamp every report with the manifesting run's identity so rendered
    // races name their replayable schedule.
    let schedule = sched.to_schedule(machine_seed);
    // The recording/observing wrappers released the inner scheduler above
    // (last use was `to_schedule`); directed strategies report how many
    // priority-change points this run actually consumed. `add(0)` still
    // registers the counter, so undirected runs surface an explicit 0.
    obs.metrics
        .counter("explore.change_points_probed")
        .add(inner.change_points_probed());
    let schedule_id = schedule.id();
    let provenance = SchedProvenance {
        scheduler: schedule.scheduler.clone(),
        machine_seed,
        sched_seed,
        schedule_id,
    };
    let races = lockset
        .races()
        .iter()
        .chain(hb.races())
        .cloned()
        .map(|mut r| {
            r.provenance = Some(provenance.clone());
            r
        })
        .collect();
    Ok((races, schedule_id))
}

/// [`detection_trial`]'s fork-explorer twin. The worker's machine is
/// rewound to the shared fork point and reseeded with this trial's
/// machine seed (prefix is seed-independent — zero RNG draws, checked at
/// fork-point prep — so this reproduces exactly the state a rerun trial
/// reaches there); detectors are clones of prototypes that already
/// observed the prefix trace. Only the concurrent suffix executes. Every
/// step below the rewind mirrors [`detection_trial`] line for line —
/// schedules record suffix-only decisions in both modes — which the
/// fork-vs-rerun differential suite locks in.
#[allow(clippy::too_many_arguments)]
fn detection_trial_fork(
    machine: &mut Machine<'_>,
    mark: &MachineMark,
    plan: &TestPlan,
    fp: &ForkPoint,
    protos: &(LocksetDetector, FastTrackDetector),
    cfg: &DetectConfig,
    test_idx: u64,
    trial: u64,
    obs: &Obs,
) -> Result<(Vec<RaceReport>, u64), String> {
    let machine_seed = derive_seed(cfg.seed, &[STAGE_DETECT_MACHINE, test_idx, trial]);
    let sched_seed = derive_seed(cfg.seed, &[STAGE_DETECT_SCHED, test_idx, trial]);
    machine.rewind(mark);
    machine.reseed(machine_seed);
    let (mut lockset, mut hb) = protos.clone();
    let mut sink = TeeSink {
        a: &mut lockset,
        b: &mut hb,
    };
    let mut inner = cfg.strategy.build(sched_seed, cfg.pct_horizon);
    let mut observed = ObservedScheduler::new(&mut *inner, &obs.metrics);
    let mut sched = RecordingScheduler::new(&mut observed);
    execute_plan_suffix(machine, plan, &fp.prefix, &mut sched, &mut sink, cfg.budget)
        .map_err(|e| e.to_string())?;
    let schedule = sched.to_schedule(machine_seed);
    obs.metrics
        .counter("explore.change_points_probed")
        .add(inner.change_points_probed());
    let schedule_id = schedule.id();
    let provenance = SchedProvenance {
        scheduler: schedule.scheduler.clone(),
        machine_seed,
        sched_seed,
        schedule_id,
    };
    let races = lockset
        .races()
        .iter()
        .chain(hb.races())
        .cloned()
        .map(|mut r| {
            r.provenance = Some(provenance.clone());
            r
        })
        .collect();
    Ok((races, schedule_id))
}

/// One confirmation job: directed re-execution attempts targeting each
/// witnessing site pair of a single coarse race, first confirmation wins.
#[allow(clippy::too_many_arguments)]
fn confirm_race(
    prog: &Program,
    mir: &MirProgram,
    seeds: &[TestId],
    plan: &TestPlan,
    cfg: &DetectConfig,
    test_idx: u64,
    fine_keys: &[StaticRaceKey],
    obs: &Obs,
) -> Option<ConfirmedRace> {
    let mut attempts = 0u64;
    for fine in fine_keys {
        for trial in 0..cfg.confirm_trials as u64 {
            attempts += 1;
            let machine_seed = derive_seed(cfg.seed, &[STAGE_CONFIRM_MACHINE, test_idx, trial]);
            let mut machine = trial_machine(prog, mir, cfg, machine_seed);
            let mut sched = RaceFuzzerScheduler::new(
                *fine,
                derive_seed(cfg.seed, &[STAGE_CONFIRM_SCHED, test_idx, trial]),
            );
            let mut observed = ObservedScheduler::new(&mut sched, &obs.metrics);
            let mut rec = RecordingScheduler::new(&mut observed);
            let mut sink = narada_vm::NullSink;
            let run = execute_plan(&mut machine, seeds, plan, &mut rec, &mut sink, cfg.budget);
            let schedule = rec.to_schedule(machine_seed);
            obs.metrics.counter("detect.confirm_trials").inc();
            obs.metrics
                .counter("racefuzzer.gave_up")
                .add(sched.gave_up as u64);
            // Mirrored under the detect.* namespace so run manifests that
            // filter on the stage prefix still surface give-ups.
            obs.metrics
                .counter("detect.gave_up")
                .add(sched.gave_up as u64);
            if run.is_err() {
                continue;
            }
            if let Some(mut c) = sched.confirmed.into_iter().find(|c| c.key == *fine) {
                obs.metrics
                    .histogram("detect.trials_to_first_confirm", TRIAL_BUCKETS)
                    .observe(attempts);
                // Attach the replayable interleaving; shrink it first when
                // fixtures are being committed.
                c.schedule = Some(match cfg.minimize {
                    true => {
                        match minimize_schedule(
                            prog, mir, seeds, plan, cfg.budget, fine, &schedule, cfg.engine,
                        ) {
                            Some(m) => {
                                obs.metrics.counter("minimize.probes").add(m.probes as u64);
                                m.schedule
                            }
                            None => schedule,
                        }
                    }
                    false => schedule,
                });
                return Some(c);
            }
        }
    }
    None
}

/// [`confirm_race`]'s fork-explorer twin: each directed attempt rewinds
/// the job's machine to the fork point and reseeds it with the attempt's
/// machine seed instead of re-executing the prefix. Also returns how many
/// probes actually ran (attempts until first confirmation — a
/// deterministic count, so `explore.probes` stays thread-invariant).
/// Every step mirrors [`confirm_race`] line for line; minimization, when
/// enabled, reuses the shared full-re-execution `minimize_schedule`
/// (schedules are suffix-only in both modes, so it replays them
/// unchanged).
#[allow(clippy::too_many_arguments)]
fn confirm_race_fork(
    machine: &mut Machine<'_>,
    mark: &MachineMark,
    prog: &Program,
    mir: &MirProgram,
    seeds: &[TestId],
    plan: &TestPlan,
    fp: &ForkPoint,
    cfg: &DetectConfig,
    test_idx: u64,
    fine_keys: &[StaticRaceKey],
    obs: &Obs,
) -> (Option<ConfirmedRace>, u64) {
    let mut attempts = 0u64;
    for fine in fine_keys {
        for trial in 0..cfg.confirm_trials as u64 {
            attempts += 1;
            let machine_seed = derive_seed(cfg.seed, &[STAGE_CONFIRM_MACHINE, test_idx, trial]);
            machine.rewind(mark);
            machine.reseed(machine_seed);
            let mut sched = RaceFuzzerScheduler::new(
                *fine,
                derive_seed(cfg.seed, &[STAGE_CONFIRM_SCHED, test_idx, trial]),
            );
            let mut observed = ObservedScheduler::new(&mut sched, &obs.metrics);
            let mut rec = RecordingScheduler::new(&mut observed);
            let mut sink = narada_vm::NullSink;
            let run =
                execute_plan_suffix(machine, plan, &fp.prefix, &mut rec, &mut sink, cfg.budget);
            let schedule = rec.to_schedule(machine_seed);
            obs.metrics.counter("detect.confirm_trials").inc();
            obs.metrics
                .counter("racefuzzer.gave_up")
                .add(sched.gave_up as u64);
            obs.metrics
                .counter("detect.gave_up")
                .add(sched.gave_up as u64);
            if run.is_err() {
                continue;
            }
            if let Some(mut c) = sched.confirmed.into_iter().find(|c| c.key == *fine) {
                obs.metrics
                    .histogram("detect.trials_to_first_confirm", TRIAL_BUCKETS)
                    .observe(attempts);
                c.schedule = Some(match cfg.minimize {
                    true => {
                        match minimize_schedule(
                            prog, mir, seeds, plan, cfg.budget, fine, &schedule, cfg.engine,
                        ) {
                            Some(m) => {
                                obs.metrics.counter("minimize.probes").add(m.probes as u64);
                                m.schedule
                            }
                            None => schedule,
                        }
                    }
                    false => schedule,
                });
                return (Some(c), attempts);
            }
        }
    }
    (None, attempts)
}

/// Runs the full detection protocol on one synthesized test plan.
///
/// `test_idx` salts the trial seeds so distinct tests explore distinct
/// schedules; [`evaluate_suite`] passes each plan's index, direct callers
/// can pass `0`.
pub fn evaluate_test_indexed(
    prog: &Program,
    mir: &MirProgram,
    seeds: &[TestId],
    plan: &TestPlan,
    cfg: &DetectConfig,
    test_idx: u64,
) -> TestReport {
    evaluate_test_observed(prog, mir, seeds, plan, cfg, test_idx, &Obs::new())
}

/// [`evaluate_test_indexed`] recording trial and confirmation activity
/// into `obs`: `detect.trials`, `detect.races_detected`,
/// `detect.confirmed`, `detect.setup_errors`, the
/// `detect.trials_to_first_confirm` histogram, scheduler decision
/// counters, and `racefuzzer.gave_up` (mirrored as `detect.gave_up` for
/// stage-prefixed manifest consumers). Exploration coverage lands here
/// too: `explore.change_points_probed` (PCT change points actually
/// consumed across trials) and `explore.schedule_novelty` (distinct
/// manifested schedule digests, summed per test). Every count is a
/// commutative sum over work whose extent is independent of the worker
/// count, so snapshots are byte-identical at any `cfg.threads`.
pub fn evaluate_test_observed(
    prog: &Program,
    mir: &MirProgram,
    seeds: &[TestId],
    plan: &TestPlan,
    cfg: &DetectConfig,
    test_idx: u64,
    obs: &Obs,
) -> TestReport {
    let index = MethodIndex::new(prog);
    let mut report = TestReport::default();
    // Coarse race → the fine site pairs witnessing it (confirmation
    // targets).
    let mut detected: BTreeMap<CoarseRaceKey, Vec<StaticRaceKey>> = BTreeMap::new();
    let mut seen_fine: BTreeSet<StaticRaceKey> = BTreeSet::new();
    // Distinct schedule digests this test's trials manifested — the
    // exploration-diversity signal (`explore.schedule_novelty`).
    let mut sched_ids: BTreeSet<u64> = BTreeSet::new();

    // Fork-mode prefix sharing: materialize the fork point once per test.
    // `None` — prefix failed or consumed RNG draws — falls back to the
    // rerun path wholesale, whose trial/error semantics are the
    // byte-compat reference. The attempt itself touches no shared
    // telemetry (fork-only fallback counter aside), so fallback manifests
    // match plain rerun manifests exactly.
    let fork: Option<Arc<ForkPoint>> = match cfg.explore {
        ExploreMode::Rerun => None,
        ExploreMode::Fork => {
            let seed0 = derive_seed(cfg.seed, &[STAGE_DETECT_MACHINE, test_idx, 0]);
            let mut m = trial_machine(prog, mir, cfg, seed0);
            match prepare_fork_point(&mut m, seeds, plan) {
                Some(fp) => Some(Arc::new(fp)),
                None => {
                    obs.metrics.counter("explore.prefix_rng_fallbacks").inc();
                    None
                }
            }
        }
    };
    if let Some(fp) = &fork {
        obs.metrics.counter("explore.forks").inc();
        obs.metrics
            .counter("explore.snapshot_bytes")
            .add(fp.snapshot.approx_bytes());
    }

    // Pass 1: random schedules with passive detectors, sharded per trial;
    // the merge below consumes results in trial order.
    let detect_span = span!(obs.tracer, "detect.test", test = test_idx);
    let detect_span_id = detect_span.id();
    let trials: Vec<u64> = (0..cfg.schedule_trials as u64).collect();
    let trial_results = match &fork {
        None => parallel_map(cfg.threads, &trials, |_, &trial| {
            let mut s = obs.tracer.span_under("detect.trial", detect_span_id);
            s.attr("trial", &trial);
            detection_trial(prog, mir, seeds, plan, cfg, test_idx, trial, obs)
        }),
        Some(fp) => {
            // Prototype detectors observe the prefix trace once; each
            // probe clones them instead of re-feeding (the detectors are
            // deterministic event-stream state machines, so a clone is
            // observationally a re-feed).
            let mut protos = (LocksetDetector::new(), FastTrackDetector::new());
            for ev in &fp.prefix_events {
                protos.0.event(ev);
                protos.1.event(ev);
            }
            let results = fork_map(
                cfg.threads,
                &trials,
                || {
                    // One materialization per worker that claims work;
                    // probes rewind it in place.
                    let mut m = trial_machine(prog, mir, cfg, cfg.seed);
                    m.restore(&fp.snapshot);
                    let mark = m.mark();
                    (m, mark)
                },
                |(m, mark), _, &trial| {
                    let mut s = obs.tracer.span_under("detect.trial", detect_span_id);
                    s.attr("trial", &trial);
                    detection_trial_fork(m, mark, plan, fp, &protos, cfg, test_idx, trial, obs)
                },
            );
            obs.metrics
                .counter("explore.probes")
                .add(trials.len() as u64);
            // Rerun would have executed the prefix once per trial; fork
            // executed it once per test.
            obs.metrics
                .counter("explore.prefix_steps_saved")
                .add(fp.prefix_steps() * (trials.len() as u64).saturating_sub(1));
            results
        }
    };
    obs.metrics
        .counter("detect.trials")
        .add(trials.len() as u64);
    for result in trial_results {
        match result {
            Ok((reports, schedule_id)) => {
                sched_ids.insert(schedule_id);
                for r in reports {
                    let fine = r.static_key();
                    if seen_fine.insert(fine) {
                        detected.entry(index.coarsen(&r)).or_default().push(fine);
                    }
                }
            }
            Err(e) => {
                obs.metrics.counter("detect.setup_errors").inc();
                report.setup_errors.push(e);
                // Trials merged before the failure still count toward
                // novelty (the merge order is trial order, so this is
                // thread-invariant).
                obs.metrics
                    .counter("explore.schedule_novelty")
                    .add(sched_ids.len() as u64);
                return report;
            }
        }
    }
    obs.metrics
        .counter("explore.schedule_novelty")
        .add(sched_ids.len() as u64);

    // Pass 2: directed confirmation, one job per coarse race, merged in
    // key order.
    let targets: Vec<(CoarseRaceKey, Vec<StaticRaceKey>)> = detected.into_iter().collect();
    let confirmations = match &fork {
        None => parallel_map(cfg.threads, &targets, |_, (_, fine_keys)| {
            let _s = obs.tracer.span_under("detect.confirm", detect_span_id);
            confirm_race(prog, mir, seeds, plan, cfg, test_idx, fine_keys, obs)
        }),
        Some(fp) => {
            // Each confirmation job is its own fork-tree leaf: one
            // materialization, then rewind-per-attempt.
            let results = parallel_map(cfg.threads, &targets, |_, (_, fine_keys)| {
                let _s = obs.tracer.span_under("detect.confirm", detect_span_id);
                let mut m = trial_machine(prog, mir, cfg, cfg.seed);
                m.restore(&fp.snapshot);
                let mark = m.mark();
                confirm_race_fork(
                    &mut m, &mark, prog, mir, seeds, plan, fp, cfg, test_idx, fine_keys, obs,
                )
            });
            let mut confirmed = Vec::with_capacity(results.len());
            let mut attempts_total = 0u64;
            for (c, attempts) in results {
                attempts_total += attempts;
                confirmed.push(c);
            }
            obs.metrics.counter("explore.probes").add(attempts_total);
            obs.metrics
                .counter("explore.prefix_steps_saved")
                .add(fp.prefix_steps() * attempts_total);
            confirmed
        }
    };
    for ((coarse, _), confirmed) in targets.iter().zip(confirmations) {
        if let Some(c) = confirmed {
            report.reproduced.push((*coarse, c));
        }
    }

    obs.metrics
        .counter("detect.races_detected")
        .add(targets.len() as u64);
    obs.metrics
        .counter("detect.confirmed")
        .add(report.reproduced.len() as u64);
    report.detected = targets.into_iter().map(|(k, _)| k).collect();
    report
}

/// Runs the full detection protocol on one synthesized test plan (trial
/// seeds salted with test index 0; see [`evaluate_test_indexed`]).
pub fn evaluate_test(
    prog: &Program,
    mir: &MirProgram,
    seeds: &[TestId],
    plan: &TestPlan,
    cfg: &DetectConfig,
) -> TestReport {
    evaluate_test_indexed(prog, mir, seeds, plan, cfg, 0)
}

/// Aggregated per-class detection numbers (one Table 5 row).
#[derive(Debug, Default, Clone)]
pub struct ClassDetection {
    /// Distinct races detected across all tests.
    pub races_detected: usize,
    /// Races reproduced and judged harmful.
    pub harmful: usize,
    /// Races reproduced and judged benign.
    pub benign: usize,
    /// Detected but not reproduced (the paper's manually-triaged column).
    pub unreproduced: usize,
    /// Per-test detected-race counts (Fig. 14's distribution input).
    pub per_test_races: Vec<usize>,
    /// Wall-clock of the whole evaluation.
    pub elapsed: Duration,
    /// Trial jobs executed (schedule trials + confirmation targets),
    /// the denominator of the detect-stage jobs/sec figure.
    pub jobs: usize,
}

/// Evaluates a whole synthesized suite and aggregates per-class numbers.
///
/// Plans are fanned out across the worker pool (each plan's trials then
/// run inline, so the pool is never oversubscribed); the aggregation
/// walks the reports in plan order, keeping the totals identical at any
/// thread count.
pub fn evaluate_suite(
    prog: &Program,
    mir: &MirProgram,
    seeds: &[TestId],
    plans: &[&TestPlan],
    cfg: &DetectConfig,
) -> ClassDetection {
    evaluate_suite_observed(prog, mir, seeds, plans, cfg, &Obs::new())
}

/// [`evaluate_suite`] recording per-trial telemetry (see
/// [`evaluate_test_observed`]) plus the stage-level `stage.detect.wall_ns`
/// gauge and `detect.jobs` counter into `obs`.
pub fn evaluate_suite_observed(
    prog: &Program,
    mir: &MirProgram,
    seeds: &[TestId],
    plans: &[&TestPlan],
    cfg: &DetectConfig,
    obs: &Obs,
) -> ClassDetection {
    evaluate_suite_full(prog, mir, seeds, plans, cfg, obs).1
}

/// [`evaluate_suite_observed`] that also hands back the per-test
/// [`TestReport`]s the aggregation consumed — the raw material for
/// canonical report rendering (`narada detect --report-out`, `narada
/// serve`). The aggregate is computed from exactly these reports, so the
/// two views can never disagree.
pub fn evaluate_suite_full(
    prog: &Program,
    mir: &MirProgram,
    seeds: &[TestId],
    plans: &[&TestPlan],
    cfg: &DetectConfig,
    obs: &Obs,
) -> (Vec<TestReport>, ClassDetection) {
    let start = Instant::now();
    let stage_span = span!(obs.tracer, "stage.detect", plans = plans.len());
    // Outer fan-out over plans; inner trial runner forced sequential so
    // worker count stays bounded by `threads`.
    let inner_cfg = DetectConfig {
        threads: 1,
        ..cfg.clone()
    };
    let reports = parallel_map(cfg.threads, plans, |i, plan| {
        evaluate_test_observed(prog, mir, seeds, plan, &inner_cfg, i as u64, obs)
    });
    drop(stage_span);

    let mut all_detected: BTreeSet<CoarseRaceKey> = BTreeSet::new();
    let mut all_reproduced: BTreeSet<CoarseRaceKey> = BTreeSet::new();
    let mut harmful = 0usize;
    let mut benign = 0usize;
    let mut per_test = Vec::with_capacity(plans.len());
    let mut jobs = 0usize;
    for rep in &reports {
        per_test.push(rep.detected.len());
        jobs += cfg.schedule_trials + rep.detected.len();
        for k in &rep.detected {
            all_detected.insert(*k);
        }
        for (k, c) in &rep.reproduced {
            if all_reproduced.insert(*k) {
                if c.benign {
                    benign += 1;
                } else {
                    harmful += 1;
                }
            }
        }
    }
    obs.metrics.counter("detect.jobs").add(jobs as u64);
    obs.metrics
        .gauge("stage.detect.wall_ns")
        .set_duration(start.elapsed());
    let agg = ClassDetection {
        races_detected: all_detected.len(),
        harmful,
        benign,
        unreproduced: all_detected.len().saturating_sub(all_reproduced.len()),
        per_test_races: per_test,
        elapsed: start.elapsed(),
        jobs,
    };
    (reports, agg)
}
