//! Vector clocks and epochs, the timestamps behind the happens-before
//! detectors (Djit⁺/FastTrack style).

use narada_vm::ThreadId;
use std::cmp::Ordering;
use std::fmt;

/// A vector clock: one logical clock per thread.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VectorClock {
    clocks: Vec<u32>,
}

impl VectorClock {
    /// The zero clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// The component for one thread.
    pub fn get(&self, tid: ThreadId) -> u32 {
        self.clocks.get(tid.index()).copied().unwrap_or(0)
    }

    /// Sets the component for one thread.
    pub fn set(&mut self, tid: ThreadId, value: u32) {
        if self.clocks.len() <= tid.index() {
            self.clocks.resize(tid.index() + 1, 0);
        }
        self.clocks[tid.index()] = value;
    }

    /// Increments one component.
    pub fn tick(&mut self, tid: ThreadId) {
        let v = self.get(tid);
        self.set(tid, v + 1);
    }

    /// Pointwise maximum (join).
    pub fn join(&mut self, other: &VectorClock) {
        if self.clocks.len() < other.clocks.len() {
            self.clocks.resize(other.clocks.len(), 0);
        }
        for (i, &c) in other.clocks.iter().enumerate() {
            if self.clocks[i] < c {
                self.clocks[i] = c;
            }
        }
    }

    /// True when `self ⊑ other` pointwise (self happens-before-or-equals
    /// other).
    pub fn leq(&self, other: &VectorClock) -> bool {
        self.clocks
            .iter()
            .enumerate()
            .all(|(i, &c)| c <= other.clocks.get(i).copied().unwrap_or(0))
    }

    /// Partial order comparison.
    pub fn partial_cmp_vc(&self, other: &VectorClock) -> Option<Ordering> {
        let le = self.leq(other);
        let ge = other.leq(self);
        match (le, ge) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (false, false) => None,
        }
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, c) in self.clocks.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "⟩")
    }
}

/// A FastTrack epoch: one `(thread, clock)` pair — the compressed
/// representation for totally ordered access histories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Epoch {
    /// Owning thread.
    pub tid: ThreadId,
    /// Clock value.
    pub clock: u32,
}

impl Epoch {
    /// The current epoch of `tid` in `vc`.
    pub fn of(tid: ThreadId, vc: &VectorClock) -> Epoch {
        Epoch {
            tid,
            clock: vc.get(tid),
        }
    }

    /// `self ⪯ vc` — the epoch happens-before (or equals) the clock.
    pub fn leq(self, vc: &VectorClock) -> bool {
        self.clock <= vc.get(self.tid)
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.clock, self.tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId(i)
    }

    #[test]
    fn tick_and_get() {
        let mut vc = VectorClock::new();
        assert_eq!(vc.get(t(3)), 0);
        vc.tick(t(3));
        vc.tick(t(3));
        assert_eq!(vc.get(t(3)), 2);
        assert_eq!(vc.get(t(0)), 0);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VectorClock::new();
        a.set(t(0), 5);
        a.set(t(1), 1);
        let mut b = VectorClock::new();
        b.set(t(1), 7);
        a.join(&b);
        assert_eq!(a.get(t(0)), 5);
        assert_eq!(a.get(t(1)), 7);
    }

    #[test]
    fn leq_and_concurrent() {
        let mut a = VectorClock::new();
        a.set(t(0), 1);
        let mut b = VectorClock::new();
        b.set(t(0), 2);
        assert!(a.leq(&b));
        assert!(!b.leq(&a));
        let mut c = VectorClock::new();
        c.set(t(1), 1);
        assert_eq!(a.partial_cmp_vc(&c), None, "concurrent clocks");
        assert_eq!(a.partial_cmp_vc(&b), Some(Ordering::Less));
        assert_eq!(a.partial_cmp_vc(&a.clone()), Some(Ordering::Equal));
    }

    #[test]
    fn epoch_leq() {
        let mut vc = VectorClock::new();
        vc.set(t(2), 4);
        let e = Epoch {
            tid: t(2),
            clock: 3,
        };
        assert!(e.leq(&vc));
        let e2 = Epoch {
            tid: t(2),
            clock: 5,
        };
        assert!(!e2.leq(&vc));
        let e3 = Epoch {
            tid: t(1),
            clock: 1,
        };
        assert!(!e3.leq(&vc), "different thread with clock 0");
    }
}
