//! RaceFuzzer-style active race confirmation (Sen, PLDI 2008).
//!
//! Given a *potential* race — a pair of static access sites from a lockset
//! pre-pass (or straight from the Narada pair generator) — the directed
//! scheduler re-executes the test randomly, but when a thread is about to
//! perform one of the target accesses it is *postponed* until some other
//! thread reaches the matching access on the same concrete location. The
//! two accesses then execute back-to-back: the race is real ("reproduced"),
//! and the racing pair's values classify it as harmful or benign.

use crate::race::StaticRaceKey;
use narada_lang::Span;
use narada_vm::rng::SplitMix64;
use narada_vm::{FieldKey, Machine, ObjId, Schedule, Scheduler, ThreadId, Value};
use std::collections::HashSet;

/// Default number of scheduling decisions a thread may stay postponed
/// before the scheduler gives up on pairing it (prevents livelock when the
/// partner access never comes). Override per scheduler with
/// [`RaceFuzzerScheduler::with_postpone_budget`].
pub const DEFAULT_POSTPONE_BUDGET: u32 = 50_000;

/// A race confirmed by adjacent scheduling of its two accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfirmedRace {
    /// Static identity (source-site pair).
    pub key: StaticRaceKey,
    /// The concrete object raced on.
    pub obj: ObjId,
    /// The concrete location.
    pub field: FieldKey,
    /// Whether the triage judged the race benign (both orders leave the
    /// same observable value — e.g. two `reset`-style writes of identical
    /// values, the paper's C6 case).
    pub benign: bool,
    /// Kinds of the two accesses (`is_write` for postponed/partner).
    pub kinds: (bool, bool),
    /// Machine seed of the confirming run (stamped at confirmation time
    /// from the live machine).
    pub machine_seed: u64,
    /// Seed the directed scheduler was built with.
    pub sched_seed: u64,
    /// The replayable schedule of the confirming run. The scheduler itself
    /// cannot see its own recording wrapper, so this is `None` until the
    /// trial runner stamps it from the [`RecordingScheduler`].
    ///
    /// [`RecordingScheduler`]: narada_vm::RecordingScheduler
    pub schedule: Option<Schedule>,
    /// The static pre-screener's verdict on the synthesized pair, when a
    /// screener ran. The scheduler reports `None`; the CLI stamps it from
    /// `SynthesisOutput::verdicts`.
    pub static_verdict: Option<narada_core::StaticVerdict>,
}

#[derive(Debug, Clone, Copy)]
struct Postponed {
    tid: ThreadId,
    obj: ObjId,
    field: FieldKey,
    is_write: bool,
    span: Span,
    value: Option<Value>,
    age: u32,
}

/// The directed scheduler. Plug into [`Machine::run_threads`]; confirmed
/// races accumulate in [`RaceFuzzerScheduler::confirmed`].
#[derive(Debug)]
pub struct RaceFuzzerScheduler {
    /// Target source sites (both sides of the potential race).
    targets: HashSet<Span>,
    rng: SplitMix64,
    seed: u64,
    postponed: Option<Postponed>,
    postpone_budget: u32,
    /// Decisions where a postponement was abandoned because its budget ran
    /// out — the give-up path taken when the partner access never arrives.
    pub gave_up: usize,
    /// Races confirmed during the run.
    pub confirmed: Vec<ConfirmedRace>,
}

impl RaceFuzzerScheduler {
    /// Creates a scheduler targeting the given potential race.
    pub fn new(target: StaticRaceKey, seed: u64) -> Self {
        Self::with_targets(std::slice::from_ref(&target), seed)
    }

    /// Creates a scheduler targeting several potential races at once.
    pub fn with_targets(keys: &[StaticRaceKey], seed: u64) -> Self {
        let mut targets = HashSet::new();
        for k in keys {
            targets.insert(k.span_a);
            targets.insert(k.span_b);
        }
        RaceFuzzerScheduler {
            targets,
            rng: SplitMix64::seed_from_u64(seed),
            seed,
            postponed: None,
            postpone_budget: DEFAULT_POSTPONE_BUDGET,
            gave_up: 0,
            confirmed: Vec::new(),
        }
    }

    /// Overrides the postponement wait budget (scheduling decisions a
    /// thread may stay suspended waiting for its partner access).
    #[must_use]
    pub fn with_postpone_budget(mut self, budget: u32) -> Self {
        self.postpone_budget = budget;
        self
    }

    /// The configured postponement wait budget.
    pub fn postpone_budget(&self) -> u32 {
        self.postpone_budget
    }

    fn classify(
        machine: &Machine<'_>,
        obj: ObjId,
        field: FieldKey,
        a_write: bool,
        a_value: Option<Value>,
        b_write: bool,
        b_value: Option<Value>,
    ) -> bool {
        // benign ⇔ the conflicting values are indistinguishable.
        let current = match field {
            FieldKey::Field(f) => Some(machine.heap.get_field(obj, f)),
            FieldKey::Elem(i) => machine.heap.get_elem(obj, i),
        };
        match (a_write, b_write) {
            (true, true) => match (a_value, b_value) {
                (Some(x), Some(y)) => x.same(y),
                _ => false,
            },
            (true, false) => a_value
                .zip(current)
                .map(|(w, c)| w.same(c))
                .unwrap_or(false),
            (false, true) => b_value
                .zip(current)
                .map(|(w, c)| w.same(c))
                .unwrap_or(false),
            (false, false) => true, // cannot happen (no read-read races)
        }
    }
}

impl Scheduler for RaceFuzzerScheduler {
    fn choose(&mut self, machine: &Machine<'_>, runnable: &[ThreadId]) -> ThreadId {
        // Drop a postponement whose thread finished some other way.
        if let Some(p) = self.postponed {
            if !runnable.contains(&p.tid) {
                self.postponed = None;
            }
        }
        // Age out stale postponements.
        if let Some(p) = &mut self.postponed {
            p.age += 1;
            if p.age > self.postpone_budget {
                let tid = p.tid;
                self.postponed = None;
                self.gave_up += 1;
                return tid;
            }
        }

        // Find threads whose next step is a targeted access.
        for &t in runnable {
            let Some((preview, span)) = machine.preview_detail(t) else {
                continue;
            };
            if !self.targets.contains(&span) {
                continue;
            }
            let Some((obj, field, is_write)) = preview.access() else {
                continue;
            };
            match self.postponed {
                None => {
                    // Postpone unless it is the only runnable thread.
                    if runnable.len() > 1 {
                        self.postponed = Some(Postponed {
                            tid: t,
                            obj,
                            field,
                            is_write,
                            span,
                            value: preview.written_value(),
                            age: 0,
                        });
                    } else {
                        return t;
                    }
                }
                Some(p) => {
                    if p.tid != t && p.obj == obj && p.field == field && (p.is_write || is_write) {
                        // Both threads poised at the same location: the
                        // race is real. Classify, then let them collide.
                        let benign = Self::classify(
                            machine,
                            obj,
                            field,
                            p.is_write,
                            p.value,
                            is_write,
                            preview.written_value(),
                        );
                        let key = crate::race::RaceReport {
                            obj,
                            field,
                            first: crate::race::RaceAccess {
                                tid: p.tid,
                                is_write: p.is_write,
                                span: p.span,
                            },
                            second: crate::race::RaceAccess {
                                tid: t,
                                is_write,
                                span,
                            },
                            provenance: None,
                            static_verdict: None,
                        }
                        .static_key();
                        if !self.confirmed.iter().any(|c| c.key == key) {
                            self.confirmed.push(ConfirmedRace {
                                key,
                                obj,
                                field,
                                benign,
                                kinds: (p.is_write, is_write),
                                machine_seed: machine.seed(),
                                sched_seed: self.seed,
                                schedule: None,
                                static_verdict: None,
                            });
                        }
                        self.postponed = None;
                        // Randomly pick which access goes first.
                        return if self.rng.gen_bool(0.5) { t } else { p.tid };
                    }
                }
            }
        }

        // Pick randomly among runnable threads that are not postponed.
        let candidates: Vec<ThreadId> = runnable
            .iter()
            .copied()
            .filter(|&t| self.postponed.map(|p| p.tid != t).unwrap_or(true))
            .collect();
        if candidates.is_empty() {
            // Only the postponed thread remains: release it.
            let t = self.postponed.take().map(|p| p.tid).unwrap_or(runnable[0]);
            return t;
        }
        candidates[self.rng.gen_range(0..candidates.len())]
    }

    fn name(&self) -> &str {
        "racefuzzer"
    }
}
