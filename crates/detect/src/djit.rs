//! Djit⁺ happens-before race detection (Pozniansky & Schuster, PPoPP
//! 2003) — the full-vector-clock baseline that FastTrack's epochs
//! optimize. Kept as an independent implementation for two reasons:
//!
//! * a differential-testing oracle: Djit⁺ and FastTrack must report the
//!   same races on every trace (asserted by property tests);
//! * the benchmark suite reproduces FastTrack's headline comparison
//!   (epochs vs. per-location vector clocks).

use crate::race::{RaceAccess, RaceReport, StaticRaceKey};
use crate::vclock::VectorClock;
use narada_lang::Span;
use narada_vm::{Event, EventKind, EventSink, FieldKey, ObjId, ThreadId};
use std::collections::{HashMap, HashSet};

#[derive(Debug, Default)]
struct VarState {
    /// Full write vector clock: component `t` is the clock of `t`'s last
    /// write, with the site of the overall last write kept for reports.
    writes: VectorClock,
    last_write: Option<(ThreadId, Span)>,
    /// Full read vector clock plus last read site per thread.
    reads: VectorClock,
    read_sites: HashMap<ThreadId, Span>,
}

/// The Djit⁺ detector; feed it a concurrent execution.
#[derive(Debug, Default)]
pub struct DjitDetector {
    threads: HashMap<ThreadId, VectorClock>,
    locks: HashMap<ObjId, VectorClock>,
    vars: HashMap<(ObjId, FieldKey), VarState>,
    races: Vec<RaceReport>,
    seen: HashSet<StaticRaceKey>,
}

impl DjitDetector {
    /// Creates an empty detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The distinct races detected so far.
    pub fn races(&self) -> &[RaceReport] {
        &self.races
    }

    fn clock(&mut self, tid: ThreadId) -> &mut VectorClock {
        self.threads.entry(tid).or_insert_with(|| {
            let mut vc = VectorClock::new();
            vc.set(tid, 1);
            vc
        })
    }

    fn report(&mut self, obj: ObjId, field: FieldKey, first: RaceAccess, second: RaceAccess) {
        let r = RaceReport {
            obj,
            field,
            first,
            second,
            provenance: None,
            static_verdict: None,
        };
        if self.seen.insert(r.static_key()) {
            self.races.push(r);
        }
    }

    fn on_read(&mut self, tid: ThreadId, obj: ObjId, field: FieldKey, span: Span) {
        let ct = self.clock(tid).clone();
        let state = self.vars.entry((obj, field)).or_default();
        // Djit⁺ read check: the write clock must be ⊑ the reader's clock.
        let mut conflict = None;
        for u in 0..16u32 {
            let ut = ThreadId(u);
            if ut != tid && state.writes.get(ut) > ct.get(ut) {
                conflict = state.last_write;
                break;
            }
        }
        state.reads.set(tid, ct.get(tid));
        state.read_sites.insert(tid, span);
        if let Some((wt, wspan)) = conflict {
            self.report(
                obj,
                field,
                RaceAccess {
                    tid: wt,
                    is_write: true,
                    span: wspan,
                },
                RaceAccess {
                    tid,
                    is_write: false,
                    span,
                },
            );
        }
    }

    fn on_write(&mut self, tid: ThreadId, obj: ObjId, field: FieldKey, span: Span) {
        let ct = self.clock(tid).clone();
        let state = self.vars.entry((obj, field)).or_default();
        let mut conflicts: Vec<(RaceAccess, RaceAccess)> = Vec::new();
        // write-write: every prior write must be ⊑ C_t.
        for u in 0..16u32 {
            let ut = ThreadId(u);
            if ut != tid && state.writes.get(ut) > ct.get(ut) {
                if let Some((wt, wspan)) = state.last_write {
                    conflicts.push((
                        RaceAccess {
                            tid: wt,
                            is_write: true,
                            span: wspan,
                        },
                        RaceAccess {
                            tid,
                            is_write: true,
                            span,
                        },
                    ));
                }
                break;
            }
        }
        // read-write: every prior read must be ⊑ C_t.
        for u in 0..16u32 {
            let ut = ThreadId(u);
            if ut != tid && state.reads.get(ut) > ct.get(ut) {
                if let Some(&rspan) = state.read_sites.get(&ut) {
                    conflicts.push((
                        RaceAccess {
                            tid: ut,
                            is_write: false,
                            span: rspan,
                        },
                        RaceAccess {
                            tid,
                            is_write: true,
                            span,
                        },
                    ));
                }
            }
        }
        state.writes.set(tid, ct.get(tid));
        state.last_write = Some((tid, span));
        for (a, b) in conflicts {
            self.report(obj, field, a, b);
        }
    }
}

impl EventSink for DjitDetector {
    fn event(&mut self, ev: &Event) {
        match &ev.kind {
            EventKind::Lock { obj, .. } => {
                let lvc = self.locks.get(obj).cloned().unwrap_or_default();
                self.clock(ev.tid).join(&lvc);
            }
            EventKind::Unlock { obj, .. } => {
                let ct = self.clock(ev.tid).clone();
                self.locks.insert(*obj, ct);
                self.clock(ev.tid).tick(ev.tid);
            }
            EventKind::ThreadSpawn { child } => {
                let parent = self.clock(ev.tid).clone();
                self.clock(*child).join(&parent);
                self.clock(ev.tid).tick(ev.tid);
            }
            EventKind::Read { obj, field, .. } => {
                self.on_read(ev.tid, *obj, *field, ev.span);
            }
            EventKind::Write { obj, field, .. } => {
                self.on_write(ev.tid, *obj, *field, ev.span);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use narada_lang::mir::VarId;
    use narada_vm::{InvId, Label, Value};

    fn ev(label: u64, tid: u32, kind: EventKind) -> Event {
        Event {
            label: Label(label),
            tid: ThreadId(tid),
            span: Span::new(label as u32 * 10, label as u32 * 10 + 1),
            kind,
        }
    }

    fn write(label: u64, tid: u32, obj: u32) -> Event {
        ev(
            label,
            tid,
            EventKind::Write {
                inv: InvId(0),
                obj_var: VarId(0),
                obj: ObjId(obj),
                field: FieldKey::Elem(0),
                src_var: VarId(1),
                value: Value::Int(0),
            },
        )
    }

    fn read(label: u64, tid: u32, obj: u32) -> Event {
        ev(
            label,
            tid,
            EventKind::Read {
                inv: InvId(0),
                dst: VarId(0),
                obj_var: VarId(0),
                obj: ObjId(obj),
                field: FieldKey::Elem(0),
                value: Value::Int(0),
            },
        )
    }

    fn lock(label: u64, tid: u32, obj: u32) -> Event {
        ev(
            label,
            tid,
            EventKind::Lock {
                inv: InvId(0),
                var: None,
                obj: ObjId(obj),
            },
        )
    }

    fn unlock(label: u64, tid: u32, obj: u32) -> Event {
        ev(
            label,
            tid,
            EventKind::Unlock {
                inv: InvId(0),
                obj: ObjId(obj),
            },
        )
    }

    #[test]
    fn concurrent_writes_race() {
        let mut d = DjitDetector::new();
        d.event(&write(0, 1, 5));
        d.event(&write(1, 2, 5));
        assert_eq!(d.races().len(), 1);
    }

    #[test]
    fn lock_ordered_writes_do_not_race() {
        let mut d = DjitDetector::new();
        d.event(&lock(0, 1, 9));
        d.event(&write(1, 1, 5));
        d.event(&unlock(2, 1, 9));
        d.event(&lock(3, 2, 9));
        d.event(&write(4, 2, 5));
        d.event(&unlock(5, 2, 9));
        assert!(d.races().is_empty());
    }

    #[test]
    fn read_write_races() {
        let mut d = DjitDetector::new();
        d.event(&read(0, 1, 5));
        d.event(&write(1, 2, 5));
        assert_eq!(d.races().len(), 1);
    }

    #[test]
    fn fork_orders() {
        let mut d = DjitDetector::new();
        d.event(&write(0, 0, 5));
        d.event(&ev(1, 0, EventKind::ThreadSpawn { child: ThreadId(1) }));
        d.event(&write(2, 1, 5));
        assert!(d.races().is_empty());
    }

    #[test]
    fn multi_reader_write_races_each_unordered_read() {
        let mut d = DjitDetector::new();
        d.event(&read(0, 1, 5));
        d.event(&read(1, 2, 5));
        d.event(&write(2, 3, 5));
        // Both reads are concurrent with the write: two distinct races.
        assert_eq!(d.races().len(), 2);
    }
}
