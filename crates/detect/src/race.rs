//! Common race-report types shared by all detectors.

use narada_lang::hir::Program;
use narada_lang::Span;
use narada_vm::{FieldKey, ObjId, ThreadId};
use std::fmt;

/// One side of a race: a dynamic access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceAccess {
    /// Executing thread.
    pub tid: ThreadId,
    /// Whether it was a write.
    pub is_write: bool,
    /// Static source location of the access.
    pub span: Span,
}

/// Where a race report came from: the exploration run that manifested it.
///
/// Carries everything needed to name the replayable schedule — the
/// scheduler family, both seeds, and the [`Schedule::id`] of the recorded
/// interleaving — so a report line is traceable to the exact run (and,
/// through a `.sched` fixture, re-executable byte-identically).
///
/// [`Schedule::id`]: narada_vm::Schedule::id
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedProvenance {
    /// Scheduler family that produced the run (e.g. `random`, `pct`).
    pub scheduler: String,
    /// Machine seed of the manifesting run.
    pub machine_seed: u64,
    /// Scheduler seed of the manifesting run.
    pub sched_seed: u64,
    /// Identity hash of the recorded schedule.
    pub schedule_id: u64,
}

impl fmt::Display for SchedProvenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} sched-seed {:#x} machine-seed {:#x} schedule {:#018x}",
            self.scheduler, self.sched_seed, self.machine_seed, self.schedule_id
        )
    }
}

/// A detected data race: two conflicting accesses to one location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    /// The object raced on.
    pub obj: ObjId,
    /// The location within the object.
    pub field: FieldKey,
    /// First access (earlier in the trace).
    pub first: RaceAccess,
    /// Second access.
    pub second: RaceAccess,
    /// The run that manifested the race, when known. Detectors report
    /// `None`; the trial runner stamps it (it knows the seeds and the
    /// recorded schedule, the detectors do not).
    pub provenance: Option<SchedProvenance>,
    /// The static pre-screener's verdict on the pair this race was
    /// synthesized from, when a screener ran. Detectors report `None`;
    /// the CLI stamps it from `SynthesisOutput::verdicts`.
    pub static_verdict: Option<narada_core::StaticVerdict>,
}

impl RaceReport {
    /// Static identity of the race: the unordered pair of source sites plus
    /// the kind of location. Dynamic repetitions of the same race share a
    /// key.
    pub fn static_key(&self) -> StaticRaceKey {
        let (a, b) = if self.first.span.start <= self.second.span.start {
            (self.first.span, self.second.span)
        } else {
            (self.second.span, self.first.span)
        };
        StaticRaceKey {
            span_a: a,
            span_b: b,
            elem: matches!(self.field, FieldKey::Elem(_)),
        }
    }

    /// Renders the report (field names need the heap, so only spans and
    /// ids are shown). When provenance is known the manifesting run is
    /// named — scheduler, seeds, schedule id — on a second line.
    pub fn render(&self, _prog: &Program) -> String {
        let mut out = format!(
            "race on {}.{}: {} {} at {} vs {} {} at {}",
            self.obj,
            self.field,
            self.first.tid,
            rw(self.first.is_write),
            self.first.span,
            self.second.tid,
            rw(self.second.is_write),
            self.second.span,
        );
        if let Some(p) = &self.provenance {
            out.push_str("\n  via ");
            out.push_str(&p.to_string());
        }
        if let Some(v) = &self.static_verdict {
            out.push_str("\n  static ");
            out.push_str(&v.to_string());
        }
        out
    }
}

fn rw(w: bool) -> &'static str {
    if w {
        "write"
    } else {
        "read"
    }
}

/// Static identity of a race (see [`RaceReport::static_key`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StaticRaceKey {
    /// Lexicographically smaller source site.
    pub span_a: Span,
    /// Larger source site.
    pub span_b: Span,
    /// Whether the race is on an array element.
    pub elem: bool,
}

impl fmt::Display for StaticRaceKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}↔{}{}",
            self.span_a,
            self.span_b,
            if self.elem { " (elem)" } else { "" }
        )
    }
}

impl StaticRaceKey {
    /// Serializes for a `.sched` fixture's `target` metadata line:
    /// `A_START:A_END B_START:B_END field|elem`.
    pub fn to_meta(&self) -> String {
        format!(
            "{}:{} {}:{} {}",
            self.span_a.start,
            self.span_a.end,
            self.span_b.start,
            self.span_b.end,
            if self.elem { "elem" } else { "field" }
        )
    }

    /// Parses the [`StaticRaceKey::to_meta`] form.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on a malformed value.
    pub fn parse_meta(s: &str) -> Result<Self, String> {
        let mut parts = s.split_whitespace();
        let mut span = || -> Result<Span, String> {
            let tok = parts.next().ok_or_else(|| format!("short target `{s}`"))?;
            let (a, b) = tok
                .split_once(':')
                .ok_or_else(|| format!("bad span `{tok}` (want START:END)"))?;
            let parse = |v: &str| {
                v.parse::<u32>()
                    .map_err(|_| format!("bad number in `{tok}`"))
            };
            Ok(Span::new(parse(a)?, parse(b)?))
        };
        let span_a = span()?;
        let span_b = span()?;
        let elem = match parts.next() {
            Some("elem") => true,
            Some("field") | None => false,
            Some(other) => return Err(format!("bad location kind `{other}`")),
        };
        Ok(StaticRaceKey {
            span_a,
            span_b,
            elem,
        })
    }
}

/// The granularity at which the paper *counts* races: which two methods
/// race on which field. Many concrete source-site pairs (loop iterations,
/// multiple accesses per method) collapse onto one coarse race.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoarseRaceKey {
    /// Method containing the lexicographically smaller site (if known).
    pub method_a: Option<narada_lang::hir::MethodId>,
    /// Method containing the larger site.
    pub method_b: Option<narada_lang::hir::MethodId>,
    /// The field raced on (`None` for array elements).
    pub field: Option<narada_lang::hir::FieldId>,
}

/// Maps source spans back to the enclosing method, for coarse race keys.
#[derive(Debug)]
pub struct MethodIndex {
    ranges: Vec<(Span, narada_lang::hir::MethodId)>,
}

impl MethodIndex {
    /// Builds the index from a program's method declaration spans.
    pub fn new(prog: &Program) -> Self {
        let mut ranges: Vec<_> = prog.methods.iter().map(|m| (m.span, m.id)).collect();
        // Smaller (more specific) ranges first, so nested methods resolve
        // to the innermost declaration.
        ranges.sort_by_key(|(s, _)| s.end - s.start);
        MethodIndex { ranges }
    }

    /// The method whose declaration contains `span`, if any.
    pub fn enclosing(&self, span: Span) -> Option<narada_lang::hir::MethodId> {
        self.ranges
            .iter()
            .find(|(r, _)| r.start <= span.start && span.end <= r.end)
            .map(|&(_, m)| m)
    }

    /// Coarsens a fine race report to the paper's counting granularity
    /// (unordered method pair × field).
    pub fn coarsen(&self, report: &RaceReport) -> CoarseRaceKey {
        let key = report.static_key();
        let a = self.enclosing(key.span_a);
        let b = self.enclosing(key.span_b);
        let (method_a, method_b) = if a <= b { (a, b) } else { (b, a) };
        CoarseRaceKey {
            method_a,
            method_b,
            field: match report.field {
                FieldKey::Field(f) => Some(f),
                FieldKey::Elem(_) => None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_key_is_order_insensitive() {
        let a = RaceAccess {
            tid: ThreadId(1),
            is_write: true,
            span: Span::new(10, 12),
        };
        let b = RaceAccess {
            tid: ThreadId(2),
            is_write: false,
            span: Span::new(3, 5),
        };
        let r1 = RaceReport {
            obj: ObjId(0),
            field: FieldKey::Elem(0),
            first: a,
            second: b,
            provenance: None,
            static_verdict: None,
        };
        let r2 = RaceReport {
            obj: ObjId(9),
            field: FieldKey::Elem(5),
            first: b,
            second: a,
            provenance: None,
            static_verdict: None,
        };
        assert_eq!(r1.static_key(), r2.static_key());
    }

    #[test]
    fn static_key_meta_round_trip() {
        let key = StaticRaceKey {
            span_a: Span::new(3, 5),
            span_b: Span::new(10, 12),
            elem: true,
        };
        assert_eq!(StaticRaceKey::parse_meta(&key.to_meta()), Ok(key));
        let field = StaticRaceKey { elem: false, ..key };
        assert_eq!(StaticRaceKey::parse_meta(&field.to_meta()), Ok(field));
        assert!(StaticRaceKey::parse_meta("1:2").is_err());
        assert!(StaticRaceKey::parse_meta("1:2 3:x field").is_err());
    }

    #[test]
    fn render_includes_provenance_when_stamped() {
        let prog = narada_lang::compile("class C { int x; } test seed { var c = new C(); }")
            .expect("trivial program");
        let mut r = RaceReport {
            obj: ObjId(3),
            field: FieldKey::Elem(1),
            first: RaceAccess {
                tid: ThreadId(1),
                is_write: true,
                span: Span::new(4, 9),
            },
            second: RaceAccess {
                tid: ThreadId(2),
                is_write: false,
                span: Span::new(20, 25),
            },
            provenance: None,
            static_verdict: None,
        };
        // Without provenance: single line, exact form pinned.
        assert_eq!(
            r.render(&prog),
            "race on o3.[1]: T1 write at 4..9 vs T2 read at 20..25"
        );
        r.provenance = Some(SchedProvenance {
            scheduler: "pct".into(),
            machine_seed: 0xbeef,
            sched_seed: 0xcafe,
            schedule_id: 0x1234_5678_9abc_def0,
        });
        assert_eq!(
            r.render(&prog),
            "race on o3.[1]: T1 write at 4..9 vs T2 read at 20..25\n  \
             via pct sched-seed 0xcafe machine-seed 0xbeef schedule 0x123456789abcdef0"
        );
    }

    #[test]
    fn render_includes_static_verdict_when_stamped() {
        let prog = narada_lang::compile("class C { int x; } test seed { var c = new C(); }")
            .expect("trivial program");
        let mut r = RaceReport {
            obj: ObjId(1),
            field: FieldKey::Elem(0),
            first: RaceAccess {
                tid: ThreadId(1),
                is_write: true,
                span: Span::new(4, 9),
            },
            second: RaceAccess {
                tid: ThreadId(2),
                is_write: true,
                span: Span::new(20, 25),
            },
            provenance: None,
            static_verdict: Some(narada_core::StaticVerdict::MayRace { score: 91 }),
        };
        assert_eq!(
            r.render(&prog),
            "race on o1.[0]: T1 write at 4..9 vs T2 write at 20..25\n  static may-race(91)"
        );
        r.static_verdict = None;
        assert!(!r.render(&prog).contains("static"));
    }
}
