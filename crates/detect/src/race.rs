//! Common race-report types shared by all detectors.

use narada_lang::hir::Program;
use narada_lang::Span;
use narada_vm::{FieldKey, ObjId, ThreadId};
use std::fmt;

/// One side of a race: a dynamic access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceAccess {
    /// Executing thread.
    pub tid: ThreadId,
    /// Whether it was a write.
    pub is_write: bool,
    /// Static source location of the access.
    pub span: Span,
}

/// A detected data race: two conflicting accesses to one location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    /// The object raced on.
    pub obj: ObjId,
    /// The location within the object.
    pub field: FieldKey,
    /// First access (earlier in the trace).
    pub first: RaceAccess,
    /// Second access.
    pub second: RaceAccess,
}

impl RaceReport {
    /// Static identity of the race: the unordered pair of source sites plus
    /// the kind of location. Dynamic repetitions of the same race share a
    /// key.
    pub fn static_key(&self) -> StaticRaceKey {
        let (a, b) = if self.first.span.start <= self.second.span.start {
            (self.first.span, self.second.span)
        } else {
            (self.second.span, self.first.span)
        };
        StaticRaceKey {
            span_a: a,
            span_b: b,
            elem: matches!(self.field, FieldKey::Elem(_)),
        }
    }

    /// Renders the report (field names need the heap, so only spans and
    /// ids are shown).
    pub fn render(&self, _prog: &Program) -> String {
        format!(
            "race on {}.{}: {} {} at {} vs {} {} at {}",
            self.obj,
            self.field,
            self.first.tid,
            rw(self.first.is_write),
            self.first.span,
            self.second.tid,
            rw(self.second.is_write),
            self.second.span,
        )
    }
}

fn rw(w: bool) -> &'static str {
    if w {
        "write"
    } else {
        "read"
    }
}

/// Static identity of a race (see [`RaceReport::static_key`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StaticRaceKey {
    /// Lexicographically smaller source site.
    pub span_a: Span,
    /// Larger source site.
    pub span_b: Span,
    /// Whether the race is on an array element.
    pub elem: bool,
}

impl fmt::Display for StaticRaceKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}↔{}{}",
            self.span_a,
            self.span_b,
            if self.elem { " (elem)" } else { "" }
        )
    }
}

/// The granularity at which the paper *counts* races: which two methods
/// race on which field. Many concrete source-site pairs (loop iterations,
/// multiple accesses per method) collapse onto one coarse race.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoarseRaceKey {
    /// Method containing the lexicographically smaller site (if known).
    pub method_a: Option<narada_lang::hir::MethodId>,
    /// Method containing the larger site.
    pub method_b: Option<narada_lang::hir::MethodId>,
    /// The field raced on (`None` for array elements).
    pub field: Option<narada_lang::hir::FieldId>,
}

/// Maps source spans back to the enclosing method, for coarse race keys.
#[derive(Debug)]
pub struct MethodIndex {
    ranges: Vec<(Span, narada_lang::hir::MethodId)>,
}

impl MethodIndex {
    /// Builds the index from a program's method declaration spans.
    pub fn new(prog: &Program) -> Self {
        let mut ranges: Vec<_> = prog.methods.iter().map(|m| (m.span, m.id)).collect();
        // Smaller (more specific) ranges first, so nested methods resolve
        // to the innermost declaration.
        ranges.sort_by_key(|(s, _)| s.end - s.start);
        MethodIndex { ranges }
    }

    /// The method whose declaration contains `span`, if any.
    pub fn enclosing(&self, span: Span) -> Option<narada_lang::hir::MethodId> {
        self.ranges
            .iter()
            .find(|(r, _)| r.start <= span.start && span.end <= r.end)
            .map(|&(_, m)| m)
    }

    /// Coarsens a fine race report to the paper's counting granularity
    /// (unordered method pair × field).
    pub fn coarsen(&self, report: &RaceReport) -> CoarseRaceKey {
        let key = report.static_key();
        let a = self.enclosing(key.span_a);
        let b = self.enclosing(key.span_b);
        let (method_a, method_b) = if a <= b { (a, b) } else { (b, a) };
        CoarseRaceKey {
            method_a,
            method_b,
            field: match report.field {
                FieldKey::Field(f) => Some(f),
                FieldKey::Elem(_) => None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_key_is_order_insensitive() {
        let a = RaceAccess {
            tid: ThreadId(1),
            is_write: true,
            span: Span::new(10, 12),
        };
        let b = RaceAccess {
            tid: ThreadId(2),
            is_write: false,
            span: Span::new(3, 5),
        };
        let r1 = RaceReport {
            obj: ObjId(0),
            field: FieldKey::Elem(0),
            first: a,
            second: b,
        };
        let r2 = RaceReport {
            obj: ObjId(9),
            field: FieldKey::Elem(5),
            first: b,
            second: a,
        };
        assert_eq!(r1.static_key(), r2.static_key());
    }
}
