//! # narada-detect — dynamic race detection for MJ executions
//!
//! Off-the-shelf-style detectors consuming the VM's event stream, used to
//! evaluate the tests synthesized by [`narada_core`] exactly as the paper's
//! §5 does with RaceFuzzer:
//!
//! * [`LocksetDetector`] — Eraser-style lockset discipline (Savage et al.);
//! * [`FastTrackDetector`] — FastTrack-style happens-before with write
//!   epochs (Flanagan & Freund), plus [`DjitDetector`], the full
//!   vector-clock Djit⁺ baseline it optimizes;
//! * [`RaceFuzzerScheduler`] — active confirmation: postpone a thread at a
//!   targeted access until its partner arrives, then let them collide
//!   (Sen), with harmful/benign value triage;
//! * [`evaluate_test`]/[`evaluate_suite`] — the full §5 protocol: random
//!   schedules for detection, directed schedules for reproduction.

#![warn(missing_docs)]

pub mod djit;
pub mod fasttrack;
pub mod lockset;
pub mod minimize;
pub mod race;
pub mod racefuzzer;
pub mod report;
pub mod vclock;

pub use djit::DjitDetector;
pub use fasttrack::FastTrackDetector;
pub use lockset::LocksetDetector;
pub use minimize::{minimize_schedule, replay_schedule, MinimizeOutcome, ReplayOutcome};
pub use race::{
    CoarseRaceKey, MethodIndex, RaceAccess, RaceReport, SchedProvenance, StaticRaceKey,
};
pub use racefuzzer::{ConfirmedRace, RaceFuzzerScheduler, DEFAULT_POSTPONE_BUDGET};
pub use report::{
    evaluate_suite, evaluate_suite_full, evaluate_suite_observed, evaluate_test,
    evaluate_test_indexed, evaluate_test_observed, ClassDetection, DetectConfig, TestReport,
};
pub use vclock::{Epoch, VectorClock};
// Re-exported so explorer-mode consumers (CLI, difftest, serve, bench)
// need no direct narada-explore dependency.
pub use narada_explore::{ExploreMode, FORK_ONLY_METRICS};
