//! Liveness of the RaceFuzzer confirmation scheduler: a postponed thread
//! whose partner access never arrives must not hang the run. Two release
//! paths exist and both are exercised here:
//!
//! * **budget give-up** — the partner side simply never executes while
//!   other threads keep running; after `postpone_budget` scheduling
//!   decisions the suspension is abandoned (`gave_up` counts it);
//! * **last-thread release** — every other thread finishes first, leaving
//!   only the postponed thread runnable; it is released immediately
//!   without burning the budget (not a give-up).

use narada_detect::{LocksetDetector, RaceFuzzerScheduler, StaticRaceKey};
use narada_lang::hir::Program;
use narada_lang::lower::lower_program;
use narada_lang::mir::MirProgram;
use narada_vm::{Machine, MachineOptions, NullSink, RoundRobin, RunOutcome, Value};

/// `poke`/`other` race on `x`; `spin(n)` only touches `y`, so a thread
/// inside `spin` can never be the partner of a postponed `x` access.
const SRC: &str = r#"
    class C {
        int x;
        int y;
        void poke() { this.x = 1; }
        void other() { this.x = 2; }
        void spin(int n) {
            var i = 0;
            while (i < n) { this.y = this.y + 1; i = i + 1; }
        }
    }
    test seed { var c = new C(); c.poke(); c.other(); var d = new C(); d.spin(1); }
"#;

fn compile() -> (Program, MirProgram) {
    let prog = narada_lang::compile(SRC).expect("test program compiles");
    let mir = lower_program(&prog);
    (prog, mir)
}

fn method(prog: &Program, name: &str) -> narada_lang::hir::MethodId {
    prog.methods.iter().find(|m| m.name == name).unwrap().id
}

/// The real static key of the `poke`/`other` race on `x`, recovered from a
/// lockset run (the fuzzer targets source spans, which only the front end
/// knows).
fn poke_other_key(prog: &Program, mir: &MirProgram) -> StaticRaceKey {
    let mut m = Machine::new(prog, mir, MachineOptions::default());
    let c = m
        .heap
        .alloc_instance(prog, prog.class_by_name("C").unwrap());
    let mut lockset = LocksetDetector::new();
    m.spawn_invoke(
        method(prog, "poke"),
        Some(Value::Ref(c)),
        vec![],
        &mut lockset,
    )
    .unwrap();
    m.spawn_invoke(
        method(prog, "other"),
        Some(Value::Ref(c)),
        vec![],
        &mut lockset,
    )
    .unwrap();
    assert_eq!(
        m.run_threads(&mut RoundRobin::new(), &mut lockset, 100_000),
        RunOutcome::Completed
    );
    lockset
        .races()
        .first()
        .expect("unsynchronized x writes race")
        .static_key()
}

/// Runs `poke` (one side of the target race) against `spin(n)` (never the
/// partner) under the given fuzzer; returns the scheduler for inspection.
fn run_partnerless(n: i64, mut fuzzer: RaceFuzzerScheduler) -> RaceFuzzerScheduler {
    let (prog, mir) = compile();
    let mut m = Machine::new(&prog, &mir, MachineOptions::default());
    let c = m
        .heap
        .alloc_instance(&prog, prog.class_by_name("C").unwrap());
    let mut sink = NullSink;
    m.spawn_invoke(
        method(&prog, "poke"),
        Some(Value::Ref(c)),
        vec![],
        &mut sink,
    )
    .unwrap();
    m.spawn_invoke(
        method(&prog, "spin"),
        Some(Value::Ref(c)),
        vec![Value::Int(n)],
        &mut sink,
    )
    .unwrap();
    assert_eq!(
        m.run_threads(&mut fuzzer, &mut sink, 1_000_000),
        RunOutcome::Completed,
        "a partnerless postponement must not livelock the run"
    );
    fuzzer
}

#[test]
fn gives_up_within_budget_when_partner_never_arrives() {
    let (prog, mir) = compile();
    let key = poke_other_key(&prog, &mir);
    // Long spin, tiny budget: the suspension must be abandoned while the
    // spinner is still running.
    let fuzzer = run_partnerless(
        500,
        RaceFuzzerScheduler::new(key, 7).with_postpone_budget(10),
    );
    assert!(
        fuzzer.gave_up >= 1,
        "budget expiry must be counted as a give-up"
    );
    assert!(
        fuzzer.confirmed.is_empty(),
        "nothing may confirm without the partner access"
    );
}

#[test]
fn releases_postponed_thread_once_it_is_alone() {
    let (prog, mir) = compile();
    let key = poke_other_key(&prog, &mir);
    // Short spin, default (huge) budget: the spinner finishes long before
    // the budget, leaving only the postponed thread — released at once,
    // not counted as a give-up.
    let fuzzer = run_partnerless(2, RaceFuzzerScheduler::new(key, 7));
    assert_eq!(
        fuzzer.gave_up, 0,
        "last-thread release is not a budget give-up"
    );
    assert!(fuzzer.confirmed.is_empty());
}

#[test]
fn postpone_budget_is_configurable() {
    let (prog, mir) = compile();
    let key = poke_other_key(&prog, &mir);
    let f = RaceFuzzerScheduler::new(key, 1);
    assert_eq!(f.postpone_budget(), narada_detect::DEFAULT_POSTPONE_BUDGET);
    assert_eq!(f.with_postpone_budget(3).postpone_budget(), 3);
}
