//! End-to-end detection: synthesize racy tests, then run the paper's §5
//! protocol (lockset/HB detection under random schedules, RaceFuzzer-style
//! confirmation, harmful/benign triage).

use narada_core::{synthesize_source, SynthesisOptions};
use narada_detect::{evaluate_suite, evaluate_test, DetectConfig};

const FIG1: &str = r#"
    class Counter {
        int count;
        void inc() { this.count = this.count + 1; }
    }
    class Lib {
        Counter c;
        sync void update() { this.c.inc(); }
        sync void set(Counter x) { this.c = x; }
    }
    test seed {
        var r = new Counter();
        var p = new Lib();
        p.set(r);
        p.update();
    }
"#;

fn cfg() -> DetectConfig {
    DetectConfig {
        schedule_trials: 8,
        confirm_trials: 6,
        seed: 42,
        budget: 2_000_000,
        threads: 0,
        ..DetectConfig::default()
    }
}

#[test]
fn fig1_race_detected_and_reproduced_harmful() {
    let (prog, mir, out) = synthesize_source(FIG1, &SynthesisOptions::default()).unwrap();
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
    let test = out
        .tests
        .iter()
        .find(|t| t.plan.expects_race && prog.method(t.plan.racy[0].method).name == "update")
        .expect("update||update test");
    let report = evaluate_test(&prog, &mir, &seeds, &test.plan, &cfg());
    assert!(report.setup_errors.is_empty(), "{:?}", report.setup_errors);
    assert!(
        !report.detected.is_empty(),
        "lockset/HB must detect the count race"
    );
    assert!(
        !report.reproduced.is_empty(),
        "racefuzzer must reproduce it (detected: {:?})",
        report.detected
    );
    assert!(
        report.harmful() >= 1,
        "count++ vs count++ writes different values → harmful"
    );
}

#[test]
fn benign_reset_race_classified_benign() {
    // The C6 pattern: two threads reset a field to the same constant.
    let (prog, mir, out) = synthesize_source(
        r#"
        class Scanner {
            int state;
            void scan() { this.state = this.state + 1; }
            void reset() { this.state = 0; }
        }
        test seed {
            var s = new Scanner();
            s.scan();
            s.reset();
        }
        "#,
        &SynthesisOptions::default(),
    )
    .unwrap();
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
    // Find the reset||reset test (both writes store 0 → benign).
    let test = out
        .tests
        .iter()
        .find(|t| {
            prog.method(t.plan.racy[0].method).name == "reset"
                && prog.method(t.plan.racy[1].method).name == "reset"
        })
        .expect("reset||reset test");
    let report = evaluate_test(&prog, &mir, &seeds, &test.plan, &cfg());
    assert!(!report.reproduced.is_empty(), "reset race must reproduce");
    assert!(
        report.benign() >= 1,
        "two writes of 0 are benign: {:?}",
        report.reproduced
    );
}

#[test]
fn safe_class_reports_nothing() {
    let (prog, mir, out) = synthesize_source(
        r#"
        class Safe {
            int v;
            sync void add(int x) { this.v = this.v + x; }
            sync int get() { return this.v; }
        }
        test seed { var s = new Safe(); s.add(3); var g = s.get(); }
        "#,
        &SynthesisOptions::default(),
    )
    .unwrap();
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
    let plans: Vec<_> = out.tests.iter().map(|t| &t.plan).collect();
    let agg = evaluate_suite(&prog, &mir, &seeds, &plans, &cfg());
    assert_eq!(
        agg.races_detected, 0,
        "fully synchronized class has no races"
    );
    assert_eq!(agg.harmful + agg.benign, 0);
}

#[test]
fn suite_aggregation_counts_distinct_races() {
    let (prog, mir, out) = synthesize_source(FIG1, &SynthesisOptions::default()).unwrap();
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
    let plans: Vec<_> = out.tests.iter().map(|t| &t.plan).collect();
    let agg = evaluate_suite(&prog, &mir, &seeds, &plans, &cfg());
    assert!(agg.races_detected >= 1);
    assert!(agg.harmful >= 1);
    assert_eq!(agg.per_test_races.len(), plans.len());
    assert!(
        agg.per_test_races.iter().any(|&n| n > 0),
        "at least one test detects a race: {:?}",
        agg.per_test_races
    );
}
