//! Differential fork-vs-rerun harness (the explorer half of the engine
//! differential suite).
//!
//! The snapshot-forking explorer is only allowed to exist because it is
//! provably the same exploration: every test here runs identical
//! detection workloads under `ExploreMode::Rerun` and
//! `ExploreMode::Fork` and demands byte-identical observable output —
//! per-test verdicts (detected keys, confirmed races with their full
//! replayable schedules and provenance digests), setup-error strings,
//! and run-manifest metric sections, the latter compared after removing
//! the fork-only `explore.*` counters (`FORK_ONLY_METRICS`) that rerun
//! mode by construction never emits. Fork-mode output must additionally
//! be byte-identical at `--threads 1/2/8` (the fork tree is sharded
//! across workers with per-worker machine state — worker count must not
//! leak).
//!
//! Quick mode covers C1–C5 and an 8-class difftest slice; set
//! `NARADA_FORK_FULL=1` for the C1–C9 × threads 1/2/8 matrix and the
//! 32-class slice (the CI sweep in `scripts/ci.sh` runs the same shapes
//! through the binaries).

use narada_core::{synthesize_source, SynthesisOptions};
use narada_detect::{
    evaluate_suite_full, ClassDetection, DetectConfig, ExploreMode, TestReport, FORK_ONLY_METRICS,
};
use narada_difftest::{run_sweep, DiffConfig};
use narada_obs::{Obs, RunManifest};
use narada_vm::{Engine, ScheduleStrategy};

fn full() -> bool {
    std::env::var("NARADA_FORK_FULL").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn cfg(explore: ExploreMode, threads: usize) -> DetectConfig {
    DetectConfig {
        schedule_trials: 5,
        confirm_trials: 4,
        seed: 0xf04c,
        budget: 1_000_000,
        threads,
        strategy: ScheduleStrategy::Pct { depth: 3 },
        explore,
        ..DetectConfig::default()
    }
}

/// Everything a mode/thread-count run observably produced, as one byte
/// string: per-test reports (schedules, provenance, error strings — all
/// Debug-visible) plus the deterministic aggregate fields (wall clock
/// excluded; it is the one legitimately nondeterministic field).
fn render_verdicts(reports: &[TestReport], agg: &ClassDetection) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for (i, r) in reports.iter().enumerate() {
        let _ = writeln!(
            out,
            "test {i}: detected={:?} reproduced={:?} errors={:?}",
            r.detected, r.reproduced, r.setup_errors
        );
    }
    let _ = writeln!(
        out,
        "agg: detected={} harmful={} benign={} unreproduced={} per_test={:?} jobs={}",
        agg.races_detected, agg.harmful, agg.benign, agg.unreproduced, agg.per_test_races, agg.jobs
    );
    out
}

/// The manifest's deterministic metric section (wall gauges are split
/// out by `from_obs`), optionally with fork-only counters removed for
/// cross-mode comparison.
fn render_metrics(obs: &Obs, scrub_fork_only: bool) -> String {
    let mut m = RunManifest::from_obs("fork-diff", 1, obs);
    if scrub_fork_only {
        m.metrics
            .retain(|(k, _)| !FORK_ONLY_METRICS.contains(&k.as_str()));
    }
    m.metrics_json().to_compact()
}

/// One full detection run over a class's synthesized suite.
fn run_class(
    entry: &narada_corpus::CorpusEntry,
    explore: ExploreMode,
    threads: usize,
    engine: Engine,
) -> (String, String, String, Obs) {
    let (prog, mir, out) = synthesize_source(
        entry.source,
        &SynthesisOptions {
            threads: 1,
            ..SynthesisOptions::default()
        },
    )
    .unwrap_or_else(|e| panic!("{}: synthesis failed: {e:?}", entry.id));
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
    let plans: Vec<_> = out.tests.iter().map(|t| &t.plan).collect();
    let obs = Obs::new();
    let c = DetectConfig {
        engine,
        ..cfg(explore, threads)
    };
    let (reports, agg) = evaluate_suite_full(&prog, &mir, &seeds, &plans, &c, &obs);
    (
        render_verdicts(&reports, &agg),
        render_metrics(&obs, false),
        render_metrics(&obs, true),
        obs,
    )
}

/// The acceptance matrix: fork verdicts/manifests byte-identical to
/// rerun on the manual corpus, at every thread count, under both
/// engines' default (tree-walk here; the bytecode leg runs in
/// `fork_matches_rerun_bytecode`).
#[test]
fn fork_matches_rerun_on_corpus() {
    let entries = narada_corpus::all();
    let take = if full() { entries.len() } else { 5 };
    let thread_counts: &[usize] = &[1, 2, 8];
    let mut forked_somewhere = false;
    for entry in entries.iter().take(take) {
        let (rerun_verdicts, rerun_metrics, rerun_scrubbed, rerun_obs) =
            run_class(entry, ExploreMode::Rerun, 1, Engine::TreeWalk);
        // Rerun mode must emit no fork-only counter at all.
        assert_eq!(
            rerun_metrics, rerun_scrubbed,
            "{}: rerun manifests must not contain explore fork counters",
            entry.id
        );
        drop(rerun_obs);
        let mut fork_baseline: Option<(String, String)> = None;
        for &threads in thread_counts {
            let (verdicts, _, scrubbed, obs) =
                run_class(entry, ExploreMode::Fork, threads, Engine::TreeWalk);
            assert_eq!(
                verdicts, rerun_verdicts,
                "{}: fork verdicts diverge from rerun at threads={threads}",
                entry.id
            );
            assert_eq!(
                scrubbed, rerun_metrics,
                "{}: fork manifest (scrubbed) diverges from rerun at threads={threads}",
                entry.id
            );
            let unscrubbed = render_metrics(&obs, false);
            match &fork_baseline {
                None => {
                    if unscrubbed.contains("\"explore.forks\"") {
                        forked_somewhere = true;
                    }
                    fork_baseline = Some((verdicts, unscrubbed));
                }
                Some((base_v, base_m)) => {
                    assert_eq!(&verdicts, base_v, "{}: threads={threads}", entry.id);
                    assert_eq!(
                        &unscrubbed, base_m,
                        "{}: fork-only counters depend on worker count (threads={threads})",
                        entry.id
                    );
                }
            }
        }
    }
    assert!(
        forked_somewhere,
        "no class ever took the fork path — the differential proved nothing"
    );
}

/// The same contract under the bytecode engine (one class quick, three
/// full): the fork explorer must compose with compiled dispatch.
#[test]
fn fork_matches_rerun_bytecode() {
    let entries = narada_corpus::all();
    let take = if full() { 3 } else { 1 };
    for entry in entries.iter().take(take) {
        let (rerun_verdicts, rerun_metrics, _, _) =
            run_class(entry, ExploreMode::Rerun, 1, Engine::Bytecode);
        for threads in [1, 2] {
            let (verdicts, _, scrubbed, _) =
                run_class(entry, ExploreMode::Fork, threads, Engine::Bytecode);
            assert_eq!(
                verdicts, rerun_verdicts,
                "{}: bytecode fork verdicts",
                entry.id
            );
            assert_eq!(
                scrubbed, rerun_metrics,
                "{}: bytecode fork manifest",
                entry.id
            );
        }
    }
}

/// Table-3 comparability (satellite): `detect.trials_to_first_confirm`
/// must be identical across modes — probes are counted separately in
/// `explore.probes`, never folded into the confirm histogram.
#[test]
fn trials_to_first_confirm_comparable_across_modes() {
    let entry = narada_corpus::c1();
    let (_, rerun_metrics, _, _) = run_class(&entry, ExploreMode::Rerun, 1, Engine::TreeWalk);
    let (_, fork_metrics, _, fork_obs) = run_class(&entry, ExploreMode::Fork, 1, Engine::TreeWalk);
    let histo = "\"detect.trials_to_first_confirm\"";
    assert!(rerun_metrics.contains(histo), "{rerun_metrics}");
    let extract = |s: &str| {
        let i = s.find(histo).unwrap();
        s[i..s[i..].find('}').map_or(s.len(), |j| i + j + 1)].to_string()
    };
    assert_eq!(extract(&rerun_metrics), extract(&fork_metrics));
    // And the probe count is surfaced distinctly.
    let m = RunManifest::from_obs("probes", 1, &fork_obs);
    assert!(
        m.metric("explore.probes").is_some(),
        "fork runs must count probes"
    );
}

/// Generated-lattice slice: whole difftest sweeps (screener vs dynamic
/// pipeline) must produce identical digests and summaries in both
/// explorer modes, at several thread counts.
#[test]
fn difftest_slice_mode_invariant() {
    let count = if full() { 32 } else { 8 };
    let sweep = |explore: ExploreMode, threads: usize| {
        let cfg = DiffConfig {
            count,
            threads,
            schedule_trials: 4,
            confirm_trials: 3,
            explore,
            ..DiffConfig::default()
        };
        let report = run_sweep(&cfg, &Obs::new());
        (report.digest, report.summary())
    };
    let baseline = sweep(ExploreMode::Rerun, 1);
    for &threads in if full() {
        &[1usize, 2, 8][..]
    } else {
        &[1usize, 2][..]
    } {
        assert_eq!(
            sweep(ExploreMode::Fork, threads),
            baseline,
            "difftest sweep diverges under fork explorer (threads={threads})"
        );
    }
}
