//! Seed-suite coverage audit: the paper (§5) builds each benchmark's
//! sequential seed suite by invoking *every* public method of the class
//! under test at least once. This test enforces that inventory claim for
//! all nine corpus entries, so a port that adds a method without touching
//! the seed suite fails fast instead of silently shrinking the pair set
//! (and the fact basis `narada gen` bounds itself to). Helper and base
//! classes are exercised through the class under test; their shadowed
//! definitions (e.g. a base method every instantiated subclass overrides)
//! are not part of the audited surface.

use narada_lang::lower::lower_program;
use narada_vm::{EventKind, Machine, VecSink};
use std::collections::BTreeSet;

#[test]
fn every_public_method_is_invoked_by_some_seed() {
    for entry in narada_corpus::all() {
        let prog = entry
            .compile()
            .unwrap_or_else(|e| panic!("{}: {e}", entry.id));
        let mir = lower_program(&prog);
        let mut machine = Machine::with_defaults(&prog, &mir);
        let mut sink = VecSink::new();
        for t in &prog.tests {
            machine
                .run_test(t.id, &mut sink)
                .unwrap_or_else(|e| panic!("{} seed `{}` failed: {e}", entry.id, t.name));
        }

        // Methods that ran at any depth: the audit accepts indirect
        // exercise (a factory or wrapper calling through), matching how
        // the access analyzer attributes facts to client-call roots while
        // still tracing callee bodies.
        let invoked: BTreeSet<_> = sink
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::InvokeStart {
                    method: Some(m), ..
                } => Some(m),
                _ => None,
            })
            .collect();

        let class = prog
            .classes
            .iter()
            .find(|c| c.name == entry.class_name)
            .unwrap_or_else(|| panic!("{}: class {} not found", entry.id, entry.class_name));
        let missed: Vec<String> = prog
            .entry_points(class.id)
            .into_iter()
            .filter(|m| !invoked.contains(m))
            .map(|m| prog.qualified_name(m))
            .collect();
        assert!(
            missed.is_empty(),
            "{}: public methods of {} never invoked by any seed test: {missed:?}",
            entry.id,
            entry.class_name
        );
    }
}
