//! Seed-suite coverage audit: the paper (§5) builds each benchmark's
//! sequential seed suite by invoking *every* public method of the class
//! under test at least once. This test enforces that inventory claim for
//! all nine corpus entries, so a port that adds a method without touching
//! the seed suite fails fast instead of silently shrinking the pair set
//! (and the fact basis `narada gen` bounds itself to). Helper and base
//! classes are exercised through the class under test; their shadowed
//! definitions (e.g. a base method every instantiated subclass overrides)
//! are not part of the audited surface.

use narada_lang::lower::lower_program;
use narada_vm::{EventKind, Machine, VecSink};
use std::collections::BTreeSet;

#[test]
fn every_public_method_is_invoked_by_some_seed() {
    for entry in narada_corpus::all() {
        let prog = entry
            .compile()
            .unwrap_or_else(|e| panic!("{}: {e}", entry.id));
        let mir = lower_program(&prog);
        let mut machine = Machine::with_defaults(&prog, &mir);
        let mut sink = VecSink::new();
        for t in &prog.tests {
            machine
                .run_test(t.id, &mut sink)
                .unwrap_or_else(|e| panic!("{} seed `{}` failed: {e}", entry.id, t.name));
        }

        // Methods that ran at any depth: the audit accepts indirect
        // exercise (a factory or wrapper calling through), matching how
        // the access analyzer attributes facts to client-call roots while
        // still tracing callee bodies.
        let invoked: BTreeSet<_> = sink
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::InvokeStart {
                    method: Some(m), ..
                } => Some(m),
                _ => None,
            })
            .collect();

        let class = prog
            .classes
            .iter()
            .find(|c| c.name == entry.class_name)
            .unwrap_or_else(|| panic!("{}: class {} not found", entry.id, entry.class_name));
        let missed: Vec<String> = prog
            .entry_points(class.id)
            .into_iter()
            .filter(|m| !invoked.contains(m))
            .map(|m| prog.qualified_name(m))
            .collect();
        assert!(
            missed.is_empty(),
            "{}: public methods of {} never invoked by any seed test: {missed:?}",
            entry.id,
            entry.class_name
        );
    }
}

/// The same inventory audit against the differential corpus generator:
/// one pinned generated class per locking-discipline bucket. This
/// guards the client-suite emitter — a generated seed suite that stops
/// driving a `Subject` method would silently shrink the fact basis the
/// whole difftest oracle rests on.
#[test]
fn generated_seed_suites_cover_every_subject_method() {
    use narada_difftest::{emit, ClassSpec, Discipline};

    // First sweep spec per discipline, fixed to the default sweep seed so
    // the audited programs are the ones `narada difftest` actually runs.
    let specs = ClassSpec::enumerate(0xd1ff, 36);
    for discipline in Discipline::ALL {
        let spec = *specs
            .iter()
            .find(|s| s.discipline == discipline)
            .expect("lattice covers every discipline");
        let gen = emit(spec);
        let prog = gen
            .program
            .compile()
            .unwrap_or_else(|e| panic!("{}: {e}\n{}", spec.label(), gen.source()));
        let mir = lower_program(&prog);
        let mut machine = Machine::with_defaults(&prog, &mir);
        let mut sink = VecSink::new();
        for t in &prog.tests {
            machine
                .run_test(t.id, &mut sink)
                .unwrap_or_else(|e| panic!("{} seed `{}` failed: {e}", spec.label(), t.name));
        }
        let invoked: BTreeSet<_> = sink
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::InvokeStart {
                    method: Some(m), ..
                } => Some(m),
                _ => None,
            })
            .collect();
        let class = prog
            .classes
            .iter()
            .find(|c| c.name == "Subject")
            .unwrap_or_else(|| panic!("{}: no Subject class", spec.label()));
        let missed: Vec<String> = prog
            .entry_points(class.id)
            .into_iter()
            .filter(|m| !invoked.contains(m))
            .map(|m| prog.qualified_name(m))
            .collect();
        assert!(
            missed.is_empty(),
            "{}: Subject methods never driven by the generated seed suite: {missed:?}\n{}",
            spec.label(),
            gen.source()
        );
    }
}
