//! Golden snapshot of the Fig. 8(b)-style trace rendering for the C1
//! (hazelcast `WriteBehindQueue`) seed suite.
//!
//! The snapshot pins three things at once: the seed trace produced by the
//! VM under the default deterministic schedule, the `TraceRenderer`
//! output format (labels, thread ids, `t := b.x` / `lock(this)` lines),
//! and the stability of both across refactors. Regenerate intentionally
//! with `UPDATE_GOLDEN=1 cargo test -p narada-corpus --test render_golden`
//! and review the diff like any other code change.

use narada_lang::lower::lower_program;
use narada_vm::{Machine, TraceRenderer, VecSink};

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/c1_write_behind_queue.trace"
);

fn render_c1_seed_traces() -> String {
    let entry = narada_corpus::c1();
    let prog = entry.compile().expect("C1 compiles");
    let mir = lower_program(&prog);
    let mut out = String::new();
    for test in &prog.tests {
        let mut machine = Machine::with_defaults(&prog, &mir);
        let mut sink = VecSink::new();
        machine
            .run_test(test.id, &mut sink)
            .expect("seed test runs");
        let mut renderer = TraceRenderer::new(&prog, &mir);
        out.push_str(&format!("### trace of test {}\n", test.name));
        out.push_str(&renderer.render_all(&sink.events));
        out.push('\n');
    }
    out
}

#[test]
fn c1_trace_rendering_matches_golden_snapshot() {
    let rendered = render_c1_seed_traces();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden snapshot exists — regenerate with UPDATE_GOLDEN=1");
    assert!(
        rendered == golden,
        "C1 trace rendering drifted from the golden snapshot.\n\
         If the change is intentional, regenerate with\n\
         UPDATE_GOLDEN=1 cargo test -p narada-corpus --test render_golden\n\
         and review the diff.\n\nFirst divergence:\n{}",
        first_diff(&golden, &rendered)
    );
}

/// Pinpoints the first differing line so failures read like a diff hunk.
fn first_diff(golden: &str, got: &str) -> String {
    for (i, (g, r)) in golden.lines().zip(got.lines()).enumerate() {
        if g != r {
            return format!("line {}:\n  golden: {g}\n  got:    {r}", i + 1);
        }
    }
    format!(
        "line counts differ: golden {} vs got {}",
        golden.lines().count(),
        got.lines().count()
    )
}
