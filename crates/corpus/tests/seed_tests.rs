//! Every corpus seed suite must execute cleanly and produce a useful trace.

use narada_lang::lower::lower_program;
use narada_vm::{EventKind, Machine, VecSink};

#[test]
fn all_seed_suites_run_clean() {
    for entry in narada_corpus::all() {
        let prog = entry
            .compile()
            .unwrap_or_else(|e| panic!("{}: {e}", entry.id));
        let mir = lower_program(&prog);
        let mut machine = Machine::with_defaults(&prog, &mir);
        let mut sink = VecSink::new();
        for t in &prog.tests {
            machine
                .run_test(t.id, &mut sink)
                .unwrap_or_else(|e| panic!("{} seed `{}` failed: {e}", entry.id, t.name));
        }
        // The trace must contain client-level library invocations and heap
        // accesses — otherwise the analysis has nothing to work with.
        let client_invokes = sink
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    EventKind::InvokeStart {
                        from_client: true,
                        method: Some(_),
                        ..
                    }
                )
            })
            .count();
        let writes = sink
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Write { .. }))
            .count();
        assert!(
            client_invokes >= entry.paper.methods,
            "{}: seed must invoke every method once ({} invokes < {} methods)",
            entry.id,
            client_invokes,
            entry.paper.methods
        );
        assert!(writes > 0, "{}: no heap writes traced", entry.id);
    }
}

#[test]
fn seed_traces_are_deterministic() {
    let entry = narada_corpus::c6();
    let prog = entry.compile().unwrap();
    let mir = lower_program(&prog);
    let run = || {
        let mut machine = Machine::with_defaults(&prog, &mir);
        let mut sink = VecSink::new();
        for t in &prog.tests {
            machine.run_test(t.id, &mut sink).unwrap();
        }
        sink.events.len()
    };
    assert_eq!(run(), run());
}
