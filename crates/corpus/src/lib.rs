//! # narada-corpus — the paper's benchmark classes, ported to MJ
//!
//! MJ ports of the nine classes Narada was evaluated on (paper Table 3),
//! preserving each original's method inventory and — crucially — its
//! concurrency defect pattern:
//!
//! | Id | Benchmark | Class | Defect pattern |
//! |----|-----------|-------|----------------|
//! | C1 | hazelcast 3.3.2 | `SynchronizedWriteBehindQueue` | wrong mutex object (`this` instead of the wrapped queue) |
//! | C2 | openjdk 1.7 | `SynchronizedCollection` | shared backing collection under distinct mutexes |
//! | C3 | openjdk 1.7 | `CharArrayWriter` | `writeTo` mutates the target under the source's lock; unsynchronized `reset`/`size` |
//! | C4 | colt 1.2.0 | `DynamicBin1D` | representation exposure + internal fields with no client setter |
//! | C5 | hsqldb 2.3.2 | `DoubleIntIndex` | mostly unsynchronized parallel-array index |
//! | C6 | hsqldb 2.3.2 | `Scanner` | unsynchronized tokenizer; `reset` writes constants (benign races) |
//! | C7 | hedc | `PooledExecutorWithInvalidate` | unsynchronized kill-switch and drain |
//! | C8 | h2 1.4.182 | `Sequence` | unsynchronized accessors beside synchronized `getNext` |
//! | C9 | classpath 0.99 | `CharArrayReader` | `close` tears down without the lock |
//!
//! Each entry bundles the MJ source (library classes **and** the
//! sequential seed suite invoking every method once, §5) plus the paper's
//! reference numbers from Tables 3–5 so the benchmark harness can print
//! paper-vs-measured rows.

#![warn(missing_docs)]

use narada_lang::hir::Program;
use narada_lang::Diagnostics;

/// Reference numbers reported in the paper for one class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperNumbers {
    /// Table 4: methods in the class.
    pub methods: usize,
    /// Table 4: lines of code of the original Java class.
    pub loc: usize,
    /// Table 4: racing pairs.
    pub race_pairs: usize,
    /// Table 4: synthesized tests.
    pub tests: usize,
    /// Table 4: synthesis time in seconds.
    pub time_secs: f64,
    /// Table 5: races detected by RaceFuzzer.
    pub races_detected: usize,
    /// Table 5: reproduced harmful races.
    pub harmful: usize,
    /// Table 5: reproduced benign races.
    pub benign: usize,
    /// Table 5: manually-triaged true positives among unreproduced races.
    pub manual_tp: usize,
    /// Table 5: manually-triaged false positives.
    pub manual_fp: usize,
}

/// One corpus entry: a benchmark class with its seed suite and paper
/// reference numbers.
#[derive(Debug, Clone, Copy)]
pub struct CorpusEntry {
    /// Short id (`C1`…`C9`).
    pub id: &'static str,
    /// Originating benchmark (Table 3).
    pub benchmark: &'static str,
    /// Benchmark version (Table 3).
    pub version: &'static str,
    /// The analyzed class (Table 3).
    pub class_name: &'static str,
    /// Full MJ source: library classes plus seed tests.
    pub source: &'static str,
    /// The paper's reference numbers.
    pub paper: PaperNumbers,
}

impl CorpusEntry {
    /// Compiles the entry's MJ source.
    ///
    /// # Errors
    ///
    /// Corpus sources are tested to compile; errors indicate a build skew.
    pub fn compile(&self) -> Result<Program, Diagnostics> {
        narada_lang::compile(self.source)
    }

    /// Number of methods (including the constructor) of the analyzed class
    /// in the MJ port.
    pub fn method_count(&self, prog: &Program) -> usize {
        let class = prog
            .class_by_name(self.class_name)
            .unwrap_or_else(|| panic!("{} missing class {}", self.id, self.class_name));
        let c = prog.class(class);
        c.own_methods.len() + usize::from(c.ctor.is_some())
    }

    /// Lines of MJ source (comments and blanks excluded).
    pub fn loc(&self) -> usize {
        self.source
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with("//"))
            .count()
    }
}

/// The nine corpus entries, in paper order.
pub fn all() -> Vec<CorpusEntry> {
    vec![c1(), c2(), c3(), c4(), c5(), c6(), c7(), c8(), c9()]
}

/// Looks up an entry by id (`"C1"`…`"C9"`, case-insensitive).
pub fn by_id(id: &str) -> Option<CorpusEntry> {
    all().into_iter().find(|e| e.id.eq_ignore_ascii_case(id))
}

/// C1 — hazelcast `SynchronizedWriteBehindQueue` (the motivating example).
pub fn c1() -> CorpusEntry {
    CorpusEntry {
        id: "C1",
        benchmark: "hazelcast",
        version: "3.3.2",
        class_name: "SynchronizedWriteBehindQueue",
        source: include_str!("mj/c1_write_behind_queue.mj"),
        paper: PaperNumbers {
            methods: 14,
            loc: 104,
            race_pairs: 65,
            tests: 15,
            time_secs: 12.2,
            races_detected: 76,
            harmful: 58,
            benign: 2,
            manual_tp: 12,
            manual_fp: 4,
        },
    }
}

/// C2 — openjdk `SynchronizedCollection`.
pub fn c2() -> CorpusEntry {
    CorpusEntry {
        id: "C2",
        benchmark: "openjdk",
        version: "1.7",
        class_name: "SynchronizedCollection",
        source: include_str!("mj/c2_synchronized_collection.mj"),
        paper: PaperNumbers {
            methods: 19,
            loc: 85,
            race_pairs: 131,
            tests: 40,
            time_secs: 13.5,
            races_detected: 84,
            harmful: 65,
            benign: 1,
            manual_tp: 18,
            manual_fp: 0,
        },
    }
}

/// C3 — openjdk `CharArrayWriter`.
pub fn c3() -> CorpusEntry {
    CorpusEntry {
        id: "C3",
        benchmark: "openjdk",
        version: "1.7",
        class_name: "CharArrayWriter",
        source: include_str!("mj/c3_char_array_writer.mj"),
        paper: PaperNumbers {
            methods: 13,
            loc: 92,
            race_pairs: 13,
            tests: 9,
            time_secs: 2.2,
            races_detected: 8,
            harmful: 7,
            benign: 1,
            manual_tp: 0,
            manual_fp: 0,
        },
    }
}

/// C4 — colt `DynamicBin1D`.
pub fn c4() -> CorpusEntry {
    CorpusEntry {
        id: "C4",
        benchmark: "colt",
        version: "1.2.0",
        class_name: "DynamicBin1D",
        source: include_str!("mj/c4_dynamic_bin.mj"),
        paper: PaperNumbers {
            methods: 35,
            loc: 313,
            race_pairs: 26,
            tests: 11,
            time_secs: 33.0,
            races_detected: 4,
            harmful: 2,
            benign: 0,
            manual_tp: 2,
            manual_fp: 0,
        },
    }
}

/// C5 — hsqldb `DoubleIntIndex`.
pub fn c5() -> CorpusEntry {
    CorpusEntry {
        id: "C5",
        benchmark: "hsqldb",
        version: "2.3.2",
        class_name: "DoubleIntIndex",
        source: include_str!("mj/c5_double_int_index.mj"),
        paper: PaperNumbers {
            methods: 32,
            loc: 508,
            race_pairs: 136,
            tests: 8,
            time_secs: 7.4,
            races_detected: 36,
            harmful: 30,
            benign: 6,
            manual_tp: 0,
            manual_fp: 0,
        },
    }
}

/// C6 — hsqldb `Scanner`.
pub fn c6() -> CorpusEntry {
    CorpusEntry {
        id: "C6",
        benchmark: "hsqldb",
        version: "2.3.2",
        class_name: "Scanner",
        source: include_str!("mj/c6_scanner.mj"),
        paper: PaperNumbers {
            methods: 26,
            loc: 1802,
            race_pairs: 85,
            tests: 8,
            time_secs: 121.7,
            races_detected: 89,
            harmful: 15,
            benign: 62,
            manual_tp: 12,
            manual_fp: 0,
        },
    }
}

/// C7 — hedc `PooledExecutorWithInvalidate`.
pub fn c7() -> CorpusEntry {
    CorpusEntry {
        id: "C7",
        benchmark: "hedc",
        version: "NA",
        class_name: "PooledExecutorWithInvalidate",
        source: include_str!("mj/c7_pooled_executor.mj"),
        paper: PaperNumbers {
            methods: 9,
            loc: 191,
            race_pairs: 4,
            tests: 4,
            time_secs: 3.6,
            races_detected: 4,
            harmful: 4,
            benign: 0,
            manual_tp: 0,
            manual_fp: 0,
        },
    }
}

/// C8 — h2 `Sequence`.
pub fn c8() -> CorpusEntry {
    CorpusEntry {
        id: "C8",
        benchmark: "h2",
        version: "1.4.182",
        class_name: "Sequence",
        source: include_str!("mj/c8_sequence.mj"),
        paper: PaperNumbers {
            methods: 18,
            loc: 233,
            race_pairs: 4,
            tests: 4,
            time_secs: 5.8,
            races_detected: 4,
            harmful: 4,
            benign: 0,
            manual_tp: 0,
            manual_fp: 0,
        },
    }
}

/// C9 — classpath `CharArrayReader`.
pub fn c9() -> CorpusEntry {
    CorpusEntry {
        id: "C9",
        benchmark: "classpath",
        version: "0.99",
        class_name: "CharArrayReader",
        source: include_str!("mj/c9_char_array_reader.mj"),
        paper: PaperNumbers {
            methods: 8,
            loc: 102,
            race_pairs: 2,
            tests: 2,
            time_secs: 1.9,
            races_detected: 2,
            harmful: 2,
            benign: 0,
            manual_tp: 0,
            manual_fp: 0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_nine_entries_in_order() {
        let ids: Vec<_> = all().iter().map(|e| e.id).collect();
        assert_eq!(ids, ["C1", "C2", "C3", "C4", "C5", "C6", "C7", "C8", "C9"]);
    }

    #[test]
    fn by_id_lookup() {
        assert_eq!(by_id("c5").unwrap().class_name, "DoubleIntIndex");
        assert!(by_id("C10").is_none());
    }

    #[test]
    fn every_entry_compiles() {
        for e in all() {
            e.compile()
                .unwrap_or_else(|err| panic!("{} does not compile:\n{err}", e.id));
        }
    }

    #[test]
    fn method_counts_match_paper() {
        for e in all() {
            let prog = e.compile().unwrap();
            assert_eq!(
                e.method_count(&prog),
                e.paper.methods,
                "{}: MJ port must keep the paper's method inventory ({})",
                e.id,
                e.class_name
            );
        }
    }

    #[test]
    fn every_entry_has_a_seed_suite() {
        for e in all() {
            let prog = e.compile().unwrap();
            assert!(
                !prog.tests.is_empty(),
                "{} needs at least one seed test",
                e.id
            );
        }
    }

    #[test]
    fn paper_totals_match_table4() {
        let pairs: usize = all().iter().map(|e| e.paper.race_pairs).sum();
        let tests: usize = all().iter().map(|e| e.paper.tests).sum();
        assert_eq!(pairs, 466, "Table 4 total racing pairs");
        assert_eq!(tests, 101, "Table 4 total synthesized tests");
    }

    #[test]
    fn paper_totals_match_table5() {
        let detected: usize = all().iter().map(|e| e.paper.races_detected).sum();
        let harmful: usize = all().iter().map(|e| e.paper.harmful).sum();
        let benign: usize = all().iter().map(|e| e.paper.benign).sum();
        assert_eq!(detected, 307, "Table 5 total races");
        assert_eq!(harmful, 187, "Table 5 total harmful");
        assert_eq!(benign, 72, "Table 5 total benign");
    }
}
