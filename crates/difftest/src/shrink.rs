//! ddmin over class members: shrinks a soundness disagreement to a
//! minimal generated program before it is committed as a fixture.
//!
//! Same Zeller/Hildebrandt chunked-complement loop as the schedule
//! minimizer (`narada_detect::minimize`), but the unit of deletion is a
//! *noise member* of the generated class — the emitter re-renders the
//! program without the dropped members (and without their seed-suite
//! calls), and the oracle is "the soundness disagreement still
//! reproduces". The racy core (`read`/`write`/the sharing member) is
//! pinned by construction, so every candidate is a complete,
//! compilable program.

use crate::emit::emit_retained;
use crate::harness::{run_class, ClassReport, DiffConfig, Outcome};
use crate::spec::ClassSpec;
use narada_obs::Obs;
use std::collections::BTreeSet;

/// Cap on oracle executions per shrink; each probe is a full synthesize +
/// explore run. The member lists are small (≤ 4 noise members), so this
/// never binds in practice — it is a backstop against oracle flapping.
const MAX_PROBES: usize = 64;

/// Result of shrinking one disagreeing class.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// Report of the minimal still-disagreeing program.
    pub report: ClassReport,
    /// Noise members removed from the original emission.
    pub removed: Vec<String>,
    /// Noise members that had to stay.
    pub kept: Vec<String>,
    /// Oracle executions spent.
    pub probes: usize,
}

impl ShrinkOutcome {
    /// Fixture-ready source: header comments recording provenance and
    /// the disagreement, then the minimal program.
    pub fn fixture_source(&self) -> String {
        let spec = self.report.spec;
        let mut out = String::new();
        out.push_str(&format!(
            "// difftest regression fixture: {}\n",
            spec.label()
        ));
        out.push_str(&format!(
            "// generator_version={} seed={:#x} index={}\n",
            crate::GENERATOR_VERSION,
            spec.seed,
            spec.index
        ));
        if let Outcome::Soundness(ds) = &self.report.outcome {
            for d in ds {
                out.push_str(&format!(
                    "// disagreement: pair {} discharged ({}) but confirmed by test {}\n",
                    d.race, d.reason, d.test_index
                ));
            }
        }
        out.push_str(&format!(
            "// shrink: removed [{}], {} probe(s)\n",
            self.removed.join(", "),
            self.probes
        ));
        out.push('\n');
        out.push_str(&self.report.source);
        out
    }
}

fn is_soundness(report: &ClassReport) -> bool {
    matches!(report.outcome, Outcome::Soundness(_))
}

/// Shrinks a disagreeing class to a 1-minimal member set that still
/// disagrees. Returns `None` when the full program does not reproduce
/// the disagreement (stale report — e.g. a config drift between sweep
/// and shrink).
pub fn shrink_class(spec: ClassSpec, cfg: &DiffConfig, obs: &Obs) -> Option<ShrinkOutcome> {
    let probes = std::cell::Cell::new(0usize);
    let run = |dropped: &BTreeSet<String>| -> ClassReport {
        probes.set(probes.get() + 1);
        obs.metrics.counter("difftest.shrink.probes").inc();
        run_class(&emit_retained(spec, dropped), cfg, obs)
    };

    // The full emission must disagree, otherwise there is nothing to
    // shrink.
    let full = run(&BTreeSet::new());
    if !is_soundness(&full) {
        return None;
    }
    let all: Vec<String> = emit_retained(spec, &BTreeSet::new()).removable;

    // ddmin over the *kept* member list: a candidate keeps a subset of
    // noise members (drops the rest) and passes iff the disagreement
    // still reproduces.
    let mut kept = all.clone();
    let mut best = full;
    let mut n = 2usize;
    while !kept.is_empty() && probes.get() < MAX_PROBES {
        if kept.len() == 1 {
            // Terminal granularity: try dropping the last member outright.
            let dropped: BTreeSet<String> = all.iter().cloned().collect();
            let r = run(&dropped);
            if is_soundness(&r) {
                kept.clear();
                best = r;
            }
            break;
        }
        let chunk = kept.len().div_ceil(n);
        let mut reduced = None;
        for i in 0..n {
            let (lo, hi) = (i * chunk, ((i + 1) * chunk).min(kept.len()));
            if lo >= hi {
                continue;
            }
            // Complement: keep everything except chunk i.
            let candidate: Vec<String> = kept[..lo].iter().chain(&kept[hi..]).cloned().collect();
            let dropped: BTreeSet<String> = all
                .iter()
                .filter(|m| !candidate.contains(m))
                .cloned()
                .collect();
            let r = run(&dropped);
            if is_soundness(&r) {
                reduced = Some((candidate, r));
                break;
            }
            if probes.get() >= MAX_PROBES {
                break;
            }
        }
        match reduced {
            Some((candidate, r)) => {
                kept = candidate;
                best = r;
                n = 2.max(n - 1);
            }
            None => {
                if n >= kept.len() {
                    break;
                }
                n = (n * 2).min(kept.len());
            }
        }
    }

    let removed: Vec<String> = all.iter().filter(|m| !kept.contains(m)).cloned().collect();
    Some(ShrinkOutcome {
        report: best,
        removed,
        kept,
        probes: probes.get(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ClassSpec;

    /// Fault-injected disagreements shrink: the minimal program still
    /// disagrees (the injected flip tracks the top survivor, which lives
    /// in the pinned racy core, so noise members should all fall away).
    #[test]
    fn injected_disagreement_shrinks_to_core() {
        let cfg = DiffConfig {
            inject_unsound: true,
            schedule_trials: 4,
            confirm_trials: 3,
            threads: 1,
            ..DiffConfig::default()
        };
        let obs = Obs::new();
        // Find a spec with noise members whose injected run disagrees.
        let spec = ClassSpec::enumerate(cfg.seed, 12)
            .into_iter()
            .find(|&s| {
                !crate::emit::emit(s).removable.is_empty()
                    && matches!(
                        run_class(&crate::emit::emit(s), &cfg, &obs).outcome,
                        Outcome::Soundness(_)
                    )
            })
            .expect("an injected run with noise members disagrees");
        let outcome = shrink_class(spec, &cfg, &obs).expect("full program disagrees");
        assert!(is_soundness(&outcome.report));
        assert!(outcome.probes >= 1);
        let fixture = outcome.fixture_source();
        assert!(fixture.contains("difftest regression fixture"));
        assert!(fixture.contains("disagreement: pair"));
        // The fixture body must still compile.
        let body: String = fixture
            .lines()
            .filter(|l| !l.starts_with("//"))
            .collect::<Vec<_>>()
            .join("\n");
        narada_lang::compile(&body).expect("fixture body compiles");
    }

    #[test]
    fn agreeing_class_does_not_shrink() {
        let cfg = DiffConfig {
            schedule_trials: 2,
            confirm_trials: 2,
            threads: 1,
            ..DiffConfig::default()
        };
        let spec = ClassSpec::nth(cfg.seed, 0);
        assert!(shrink_class(spec, &cfg, &Obs::new()).is_none());
    }
}
