//! The class emitter: turns a [`ClassSpec`] into a complete MJ program —
//! library classes plus a sequential client seed suite that drives every
//! public method (the tracer only sees what the seeds invoke).
//!
//! Emission is a pure function of the spec: the per-class RNG draws the
//! same decisions in the same order regardless of which members a shrink
//! pass later drops, so `(GENERATOR_VERSION, seed, index)` reproduces a
//! program byte-for-byte.
//!
//! ## Generated shape
//!
//! Every program has a `Subject` (the class under test) holding an
//! `Inner` (the owner of the racy leaf), plus an `Item` helper when the
//! leaf is reference-typed or a wrong-lock guard is needed:
//!
//! * [`FieldKind`] decides the leaf: `Inner.val`, `Inner.arr[0]`, or
//!   `Inner.ref`.
//! * [`Discipline`] decides what `Subject.read`/`Subject.write` wrap the
//!   leaf access in: the owner's monitor (`sync (this.inner)`), nothing,
//!   a mix, or a wrong lock (`sync (this.guard)`) with a reentrant
//!   helper chain.
//! * [`Sharing`] decides how `Inner` escapes: a public setter, a getter
//!   alias, or constructor capture (which also writes `x.owner = this`,
//!   a constructor-escaped `this`).

use crate::spec::{ClassSpec, Discipline, FieldKind, Sharing};
use narada_lang::build::{ClassSrc, ProgramSrc, TestSrc};
use narada_vm::rng::SplitMix64;
use std::collections::BTreeSet;

/// A generated program plus the shrink surface over it.
#[derive(Debug, Clone)]
pub struct GenClass {
    /// The spec this program was emitted from.
    pub spec: ClassSpec,
    /// The assembled source (render with [`ProgramSrc::render`]).
    pub program: ProgramSrc,
    /// Names of `Subject` methods the ddmin pass may drop — noise
    /// members only; the racy core (`read`/`write`/the sharing member)
    /// is pinned.
    pub removable: Vec<String>,
}

impl GenClass {
    /// Canonical source text.
    pub fn source(&self) -> String {
        self.program.render()
    }
}

/// Emits the full program for a spec.
pub fn emit(spec: ClassSpec) -> GenClass {
    emit_retained(spec, &BTreeSet::new())
}

/// Emits the program with the given noise members (and their seed-suite
/// calls) removed — the shrinker's re-emission primitive. Dropping a
/// name that is not a noise member of this spec is a no-op.
pub fn emit_retained(spec: ClassSpec, dropped: &BTreeSet<String>) -> GenClass {
    // All random decisions are drawn up front, in a fixed order, so the
    // drawn values never depend on what is later emitted or dropped.
    let mut rng = SplitMix64::seed_from_u64(spec.seed);
    let v: Vec<u64> = (0..4).map(|_| rng.gen_range(1u64..50)).collect();
    let want_peek = spec.discipline != Discipline::Guarded && rng.gen_bool(0.5);
    let want_twice = rng.gen_bool(0.7);
    let want_check = rng.gen_bool(0.5);
    let want_mix = rng.gen_bool(0.3);

    let wants = [
        ("peek", want_peek),
        ("twice", want_twice),
        ("check", want_check),
        ("mix", want_mix),
    ];
    let present = |name: &str| -> bool {
        wants.iter().any(|&(n, w)| n == name && w) && !dropped.contains(name)
    };
    let removable: Vec<String> = wants
        .iter()
        .filter(|&&(n, w)| w && !dropped.contains(n))
        .map(|&(n, _)| n.to_string())
        .collect();

    let needs_item = spec.field_kind == FieldKind::Object || needs_guard(spec);
    let mut program = ProgramSrc::new();
    if needs_item {
        program = program.class(item_class());
    }
    program = program
        .class(inner_class(spec))
        .class(subject_class(spec, &present))
        .test(seed_suite(spec, &present, &v));
    GenClass {
        spec,
        program,
        removable,
    }
}

/// Whether the subject carries a `guard` lock object.
fn needs_guard(spec: ClassSpec) -> bool {
    spec.discipline == Discipline::WrongLock
}

fn item_class() -> ClassSrc {
    ClassSrc::new("Item")
        .field("int tag;")
        .ctor("init(int t) { this.tag = t; }")
}

fn inner_class(spec: ClassSpec) -> ClassSrc {
    let mut c = ClassSrc::new("Inner");
    if spec.sharing == Sharing::CtorCaptured {
        // Written by Subject's constructor: the captured owner points back
        // at its capturer, a constructor-escaped `this`.
        c = c.field("Subject owner;");
    }
    match spec.field_kind {
        FieldKind::Scalar => c.field("int val;").ctor("init(int v) { this.val = v; }"),
        FieldKind::Array => c
            .field("int[] arr;")
            .ctor("init(int v) {\n    this.arr = new int[4];\n    this.arr[0] = v;\n}"),
        FieldKind::Object => c
            .field("Item ref;")
            .ctor("init(int v) { this.ref = new Item(v); }"),
    }
}

/// The leaf-reading statement list (ends in `return`).
fn read_lines(kind: FieldKind) -> Vec<String> {
    match kind {
        FieldKind::Scalar => vec!["return this.inner.val;".into()],
        FieldKind::Array => vec!["return this.inner.arr[0];".into()],
        FieldKind::Object => vec!["var r = this.inner.ref;".into(), "return r.tag;".into()],
    }
}

/// The leaf-writing statement.
fn write_line(kind: FieldKind) -> String {
    match kind {
        FieldKind::Scalar => "this.inner.val = v;".into(),
        FieldKind::Array => "this.inner.arr[0] = v;".into(),
        FieldKind::Object => "this.inner.ref = new Item(v);".into(),
    }
}

/// Renders `sig { body }` with one body line per entry.
fn method_text(sig: &str, body: &[String]) -> String {
    let mut out = String::from(sig);
    out.push_str(" {\n");
    for line in body {
        out.push_str("    ");
        out.push_str(line);
        out.push('\n');
    }
    out.push('}');
    out
}

/// Wraps body lines in `sync (lock) { … }`.
fn locked(lock: &str, body: &[String]) -> Vec<String> {
    let mut out = vec![format!("sync ({lock}) {{")];
    for line in body {
        out.push(format!("    {line}"));
    }
    out.push("}".into());
    out
}

fn subject_class(spec: ClassSpec, present: &dyn Fn(&str) -> bool) -> ClassSrc {
    let mut c = ClassSrc::new("Subject").field("Inner inner;");
    if needs_guard(spec) {
        c = c.field("Item guard;");
    }

    // Constructor: how the owner arrives.
    let mut ctor_body: Vec<String> = match spec.sharing {
        Sharing::EscapingField | Sharing::ReturnedAlias => {
            vec!["this.inner = new Inner(v);".into()]
        }
        Sharing::CtorCaptured => vec!["this.inner = x;".into(), "x.owner = this;".into()],
    };
    if needs_guard(spec) {
        ctor_body.push("this.guard = new Item(0);".into());
    }
    let ctor_sig = match spec.sharing {
        Sharing::CtorCaptured => "init(Inner x)",
        _ => "init(int v)",
    };
    c = c.ctor(method_text(ctor_sig, &ctor_body));

    // The racy core: read/write over the leaf, wrapped per discipline.
    let bare_read = read_lines(spec.field_kind);
    let bare_write = vec![write_line(spec.field_kind)];
    match spec.discipline {
        Discipline::Guarded => {
            c = c
                .method(
                    "read",
                    method_text("int read()", &locked("this.inner", &bare_read)),
                )
                .method(
                    "write",
                    method_text("void write(int v)", &locked("this.inner", &bare_write)),
                );
        }
        Discipline::Unguarded => {
            c = c
                .method("read", method_text("int read()", &bare_read))
                .method("write", method_text("void write(int v)", &bare_write));
        }
        Discipline::Mixed => {
            c = c
                .method("read", method_text("int read()", &bare_read))
                .method(
                    "write",
                    method_text("void write(int v)", &locked("this.inner", &bare_write)),
                );
        }
        Discipline::WrongLock => {
            // `read` takes the wrong lock, then re-takes it in a helper:
            // the reentrant acquisition must not be mistaken for owner
            // protection.
            let call = vec!["return this.readLocked();".into()];
            c = c
                .method(
                    "read",
                    method_text("int read()", &locked("this.guard", &call)),
                )
                .method(
                    "readLocked",
                    method_text("int readLocked()", &locked("this.guard", &bare_read)),
                )
                .method(
                    "write",
                    method_text("void write(int v)", &locked("this.guard", &bare_write)),
                );
        }
    }

    // The sharing member, guarded consistently with the discipline:
    // setters count as writes, getters as reads.
    match spec.sharing {
        Sharing::EscapingField => {
            let body = vec!["this.inner = x;".into()];
            let decl = match spec.discipline {
                Discipline::Guarded | Discipline::Mixed => {
                    method_text("sync void setInner(Inner x)", &body)
                }
                Discipline::Unguarded => method_text("void setInner(Inner x)", &body),
                Discipline::WrongLock => {
                    method_text("void setInner(Inner x)", &locked("this.guard", &body))
                }
            };
            c = c.method("setInner", decl);
        }
        Sharing::ReturnedAlias => {
            let body = vec!["return this.inner;".into()];
            let decl = match spec.discipline {
                Discipline::Guarded => method_text("sync Inner getInner()", &body),
                Discipline::Unguarded | Discipline::Mixed => method_text("Inner getInner()", &body),
                Discipline::WrongLock => {
                    method_text("Inner getInner()", &locked("this.guard", &body))
                }
            };
            c = c.method("getInner", decl);
        }
        Sharing::CtorCaptured => {}
    }

    // Noise members: always-unguarded extras the shrinker may remove.
    if present("peek") {
        c = c.method("peek", method_text("int peek()", &bare_read));
    }
    if present("twice") {
        c = c.method("twice", "int twice(int x) { return x + x; }");
    }
    if present("check") {
        c = c.method("check", "bool check(int x) { return x > 0; }");
    }
    if present("mix") {
        c = c.method("mix", "int mix(int a, int b) { return a * 3 + b; }");
    }
    c
}

/// The client seed suite: a sequential test invoking every public method
/// so the tracer captures each of them at least once.
fn seed_suite(spec: ClassSpec, present: &dyn Fn(&str) -> bool, v: &[u64]) -> TestSrc {
    let mut t = TestSrc::new("seed");
    match spec.sharing {
        Sharing::EscapingField => {
            t = t
                .stmt(format!("var s = new Subject({});", v[0]))
                .stmt(format!("var i = new Inner({});", v[1]))
                .stmt("s.setInner(i);");
        }
        Sharing::ReturnedAlias => {
            t = t
                .stmt(format!("var s = new Subject({});", v[0]))
                .stmt("var a = s.getInner();");
        }
        Sharing::CtorCaptured => {
            t = t
                .stmt(format!("var i = new Inner({});", v[0]))
                .stmt("var s = new Subject(i);");
        }
    }
    t = t
        .stmt(format!("s.write({});", v[2]))
        .stmt("var r1 = s.read();")
        .stmt(format!("s.write({});", v[3]))
        .stmt("var r2 = s.read();");
    if spec.discipline == Discipline::WrongLock {
        t = t.stmt("var rl = s.readLocked();");
    }
    if present("peek") {
        t = t.stmt("var p1 = s.peek();");
    }
    if present("twice") {
        t = t.stmt("var n1 = s.twice(3);");
    }
    if present("check") {
        t = t.stmt("var c1 = s.check(r1);");
    }
    if present("mix") {
        t = t.stmt(format!("var m1 = s.mix(r1, {});", v[1]));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ClassSpec;

    #[test]
    fn every_lattice_point_compiles() {
        for spec in ClassSpec::enumerate(0xd1ff, 36) {
            let gen = emit(spec);
            if let Err(e) = gen.program.compile() {
                panic!("{} does not compile: {e}\n{}", spec.label(), gen.source());
            }
        }
    }

    #[test]
    fn emission_is_deterministic() {
        for spec in ClassSpec::enumerate(7, 40) {
            assert_eq!(emit(spec).source(), emit(spec).source());
        }
    }

    #[test]
    fn different_cycles_differ_in_surface_detail() {
        // Same lattice point, different derived seed: the racy core is
        // identical but drawn values should eventually differ.
        let differs = (0..5).any(|k| {
            ClassSpec::nth(3, k).seed != ClassSpec::nth(3, k + 36).seed
                && emit(ClassSpec::nth(3, k)).source() != emit(ClassSpec::nth(3, k + 36)).source()
        });
        assert!(differs);
    }

    #[test]
    fn retained_emission_drops_member_and_seed_call() {
        // Find a spec whose emission includes a noise member.
        let spec = ClassSpec::enumerate(11, 72)
            .into_iter()
            .find(|s| !emit(*s).removable.is_empty())
            .expect("some emission has noise members");
        let full = emit(spec);
        let victim = full.removable[0].clone();
        let dropped: BTreeSet<String> = [victim.clone()].into();
        let shrunk = emit_retained(spec, &dropped);
        assert!(!shrunk.removable.contains(&victim));
        let src = shrunk.source();
        assert!(
            !src.contains(&format!("s.{victim}(")),
            "seed call survived: {src}"
        );
        shrunk.program.compile().expect("shrunk program compiles");
    }

    #[test]
    fn seed_suite_invokes_every_subject_method() {
        for spec in ClassSpec::enumerate(0xbeef, 36) {
            let gen = emit(spec);
            let src = gen.source();
            let subject = gen.program.class_named("Subject").unwrap();
            for m in &subject.methods {
                assert!(
                    src.contains(&format!("s.{}(", m.name)),
                    "{}: seed suite never calls {}",
                    spec.label(),
                    m.name
                );
            }
        }
    }
}
