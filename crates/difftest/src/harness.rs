//! The differential harness: runs each generated program through the
//! static screener and the full dynamic pipeline and treats the two as
//! each other's oracle.
//!
//! * **Soundness** (fatal): a `MustNotRace` verdict on a pair that the
//!   scheduler then dynamically confirms is a screener soundness bug —
//!   the discharge promised no synthesized context could manifest the
//!   race.
//! * **Precision** (datapoint): a program whose discipline leaves the
//!   leaf exposed ([`ClassSpec::expects_manifest`]) but where no
//!   screener survivor is dynamically confirmed. Logged, never fatal —
//!   small trial budgets legitimately miss races.
//!
//! The sweep is a pure function of `(GENERATOR_VERSION, base seed,
//! count)`: per-class work derives every RNG seed from the spec, classes
//! are sharded with the order-preserving [`parallel_map`], and the
//! [`SweepReport::digest`] folds the per-class results in index order,
//! so a sweep is byte-identical at any `--threads` value.

use crate::emit::{emit, GenClass};
use crate::spec::ClassSpec;
use narada_core::parallel::parallel_map;
use narada_core::pipeline::{synthesize_with, SynthesisOutput};
use narada_core::screen::{ScreenReason, ScreenerFn, StaticVerdict};
use narada_core::SynthesisOptions;
use narada_detect::{evaluate_test_indexed, DetectConfig, ExploreMode};
use narada_lang::lower::lower_program;
use narada_obs::Obs;
use narada_vm::rng::derive_seed;
use narada_vm::{Engine, ScheduleStrategy};

/// Sweep configuration (the CLI's `narada difftest` knobs).
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Base seed; every per-class seed derives from it.
    pub seed: u64,
    /// Number of classes to generate (36 covers the lattice once).
    pub count: usize,
    /// Worker threads for the per-class shard (`0` = one per core).
    /// Purely a throughput knob: results are identical at any value.
    pub threads: usize,
    /// Random-schedule trials per synthesized test (detection pass).
    pub schedule_trials: usize,
    /// Directed attempts per potential race (confirmation pass).
    pub confirm_trials: usize,
    /// Step budget per concurrent run.
    pub budget: u64,
    /// Self-test hook: deliberately flip the top-scoring `MayRace`
    /// verdict of every class to a bogus discharge, so the disagreement
    /// path (exit code, shrinker, fixtures) can be exercised on demand.
    pub inject_unsound: bool,
    /// Execution engine for every machine in the sweep (synthesis *and*
    /// detection). Trace-equivalent to tree-walk, so sweep digests are
    /// engine-independent — a property the workspace suite asserts.
    pub engine: Engine,
    /// Exploration mode for every detection stage in the sweep. Verdicts
    /// and sweep digests are mode-independent (the fork-vs-rerun
    /// differential suite asserts this over difftest slices).
    pub explore: ExploreMode,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            seed: 0xd1ff,
            count: 36,
            threads: 0,
            schedule_trials: 6,
            confirm_trials: 4,
            budget: 2_000_000,
            inject_unsound: false,
            engine: Engine::TreeWalk,
            explore: ExploreMode::Rerun,
        }
    }
}

/// One screener-vs-scheduler contradiction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Disagreement {
    /// Index of the synthesized test that confirmed the race.
    pub test_index: usize,
    /// Display form of the static race key.
    pub race: String,
    /// Display form of the discharge reason that was contradicted.
    pub reason: String,
}

/// How a class's two verdict sources relate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// No contradiction: every confirmed race was ranked `MayRace`.
    Agree,
    /// Survivors were expected to manifest but nothing was confirmed.
    PrecisionMiss,
    /// At least one dynamically-confirmed race carried a `MustNotRace`
    /// verdict — a screener soundness bug.
    Soundness(Vec<Disagreement>),
}

/// Differential result for one generated class.
#[derive(Debug, Clone)]
pub struct ClassReport {
    /// The generating spec.
    pub spec: ClassSpec,
    /// The emitted source (what a fixture would contain).
    pub source: String,
    /// Racing pairs generated.
    pub pairs: usize,
    /// Pairs the screener discharged (`MustNotRace`).
    pub discharged: usize,
    /// Pairs the screener kept (`MayRace`).
    pub survivors: usize,
    /// Synthesized tests executed.
    pub tests: usize,
    /// Races the scheduler confirmed across all tests.
    pub confirmed: usize,
    /// The differential verdict.
    pub outcome: Outcome,
}

impl ClassReport {
    /// One-line render for logs and the CLI.
    pub fn summary(&self) -> String {
        let outcome = match &self.outcome {
            Outcome::Agree => "agree".to_string(),
            Outcome::PrecisionMiss => "precision-miss".to_string(),
            Outcome::Soundness(d) => format!("SOUNDNESS ({} disagreement(s))", d.len()),
        };
        format!(
            "{}: pairs={} discharged={} survivors={} tests={} confirmed={} -> {}",
            self.spec.label(),
            self.pairs,
            self.discharged,
            self.survivors,
            self.tests,
            self.confirmed,
            outcome
        )
    }
}

/// Aggregated sweep result.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Per-class reports, in spec-index order.
    pub reports: Vec<ClassReport>,
    /// FNV-1a fold of every per-class result (label, source, counts,
    /// outcome) in index order — equal digests mean byte-identical
    /// sweeps.
    pub digest: u64,
}

impl SweepReport {
    /// Classes whose outcome is a soundness disagreement.
    pub fn soundness(&self) -> Vec<&ClassReport> {
        self.reports
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Soundness(_)))
            .collect()
    }

    /// Number of precision misses.
    pub fn precision_misses(&self) -> usize {
        self.reports
            .iter()
            .filter(|r| r.outcome == Outcome::PrecisionMiss)
            .count()
    }

    /// Total confirmed races.
    pub fn confirmed(&self) -> usize {
        self.reports.iter().map(|r| r.confirmed).sum()
    }

    /// Total discharged pairs.
    pub fn discharged(&self) -> usize {
        self.reports.iter().map(|r| r.discharged).sum()
    }

    /// One-line sweep summary.
    pub fn summary(&self) -> String {
        format!(
            "difftest: {} classes, {} pairs, {} discharged, {} confirmed, \
             {} precision miss(es), {} soundness disagreement(s), digest={:016x}",
            self.reports.len(),
            self.reports.iter().map(|r| r.pairs).sum::<usize>(),
            self.discharged(),
            self.confirmed(),
            self.precision_misses(),
            self.soundness().len(),
            self.digest
        )
    }
}

/// A screener that deliberately mis-discharges the top-scoring surviving
/// pair — the harness's fault-injection self test. Plain `fn` so it fits
/// the pipeline's [`ScreenerFn`] hook.
pub fn screen_pairs_inject_unsound(
    mir: &narada_lang::mir::MirProgram,
    pairs: &narada_core::pairs::PairSet,
) -> Vec<StaticVerdict> {
    let mut verdicts = narada_screen::screen_pairs(mir, pairs);
    let top = verdicts
        .iter()
        .enumerate()
        .filter_map(|(i, v)| match v {
            StaticVerdict::MayRace { score } => Some((*score, i)),
            StaticVerdict::MustNotRace { .. } => None,
        })
        .max_by_key(|&(score, i)| (score, usize::MAX - i));
    if let Some((_, i)) = top {
        verdicts[i] = StaticVerdict::MustNotRace {
            reason: ScreenReason::NoRacyContext,
        };
    }
    verdicts
}

/// Synthesis options for the differential run: rank, don't filter, so a
/// wrongly-discharged pair still gets a derived plan and can be caught
/// in the act.
fn synth_opts(engine: Engine) -> SynthesisOptions {
    SynthesisOptions {
        static_rank: true,
        threads: 1,
        engine,
        ..SynthesisOptions::default()
    }
}

/// Detection knobs shared by every differential run; the per-program
/// seed is derived on top by [`check_agreement`].
fn detect_cfg_base(cfg: &DiffConfig) -> DetectConfig {
    DetectConfig {
        schedule_trials: cfg.schedule_trials,
        confirm_trials: cfg.confirm_trials,
        seed: 0,
        budget: cfg.budget,
        // Inner stages run single-threaded: the sweep already shards per
        // class, and both layers are thread-count independent anyway.
        threads: 1,
        strategy: ScheduleStrategy::Pct { depth: 3 },
        pct_horizon: 1_000,
        minimize: false,
        engine: cfg.engine,
        code: None,
        explore: cfg.explore,
    }
}

/// Both sides' tallies for one program: what the screener said, what the
/// scheduler confirmed, and every contradiction between them.
#[derive(Debug, Clone, Default)]
pub struct AgreementCheck {
    /// Racing pairs generated.
    pub pairs: usize,
    /// Pairs discharged (`MustNotRace`).
    pub discharged: usize,
    /// Pairs kept (`MayRace`).
    pub survivors: usize,
    /// Synthesized tests executed.
    pub tests: usize,
    /// Races confirmed across all tests.
    pub confirmed: usize,
    /// Confirmed races whose verdict was `MustNotRace`.
    pub disagreements: Vec<Disagreement>,
}

/// Runs any compiled program through both oracles — synthesis with the
/// screener ranking every pair, then detection + confirmation per
/// synthesized test — and tallies the relation. This is the shared core
/// of [`run_class`] and the committed-fixture regression suite: a
/// fixture promoted from a shrunk disagreement must come back with an
/// empty `disagreements` list once the screener bug is fixed.
pub fn check_agreement(
    prog: &narada_lang::hir::Program,
    base_seed: u64,
    cfg: &DiffConfig,
) -> AgreementCheck {
    let mir = lower_program(prog);
    let screener: ScreenerFn = if cfg.inject_unsound {
        &screen_pairs_inject_unsound
    } else {
        &narada_screen::screen_pairs
    };
    let out: SynthesisOutput = synthesize_with(prog, &mir, &synth_opts(cfg.engine), Some(screener));
    let verdicts = out.verdicts.as_deref().unwrap_or(&[]);
    let discharged = verdicts.iter().filter(|v| !v.may_race()).count();
    let survivors = verdicts.len() - discharged;

    let dcfg = DetectConfig {
        seed: derive_seed(base_seed, &[0xde7ec7]),
        ..detect_cfg_base(cfg)
    };
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
    let mut confirmed = 0usize;
    let mut disagreements = Vec::new();
    for (ti, t) in out.tests.iter().enumerate() {
        let report = evaluate_test_indexed(prog, &mir, &seeds, &t.plan, &dcfg, ti as u64);
        for (_, race) in &report.reproduced {
            confirmed += 1;
            let v = out.static_verdict_for(ti, race.key.span_a, race.key.span_b);
            if let Some(StaticVerdict::MustNotRace { reason }) = v {
                disagreements.push(Disagreement {
                    test_index: ti,
                    race: race.key.to_string(),
                    reason: reason.to_string(),
                });
            }
        }
    }
    AgreementCheck {
        pairs: out.pairs.pairs.len(),
        discharged,
        survivors,
        tests: out.tests.len(),
        confirmed,
        disagreements,
    }
}

/// Runs one generated program through both sides and classifies the
/// relation. Panics if the emitted program fails to compile — that is an
/// emitter bug, not a differential finding.
pub fn run_class(gen: &GenClass, cfg: &DiffConfig, obs: &Obs) -> ClassReport {
    let spec = gen.spec;
    let source = gen.source();
    let prog = match gen.program.compile() {
        Ok(p) => p,
        Err(e) => panic!(
            "{}: emitted program does not compile: {e}\n{source}",
            spec.label()
        ),
    };
    let check = check_agreement(&prog, spec.seed, cfg);
    let AgreementCheck {
        pairs,
        discharged,
        survivors,
        tests,
        confirmed,
        disagreements,
    } = check;

    let outcome = if !disagreements.is_empty() {
        Outcome::Soundness(disagreements)
    } else if confirmed == 0 && survivors > 0 && spec.expects_manifest() {
        Outcome::PrecisionMiss
    } else {
        Outcome::Agree
    };

    let m = &obs.metrics;
    m.counter("difftest.classes").inc();
    m.counter("difftest.pairs").add(pairs as u64);
    m.counter("difftest.discharged").add(discharged as u64);
    m.counter("difftest.survivors").add(survivors as u64);
    m.counter("difftest.tests").add(tests as u64);
    m.counter("difftest.confirmed").add(confirmed as u64);
    match &outcome {
        Outcome::Soundness(d) => m.counter("difftest.soundness").add(d.len() as u64),
        Outcome::PrecisionMiss => m.counter("difftest.precision_miss").inc(),
        Outcome::Agree => {}
    }

    ClassReport {
        spec,
        source,
        pairs,
        discharged,
        survivors,
        tests,
        confirmed,
        outcome,
    }
}

/// Runs the full sweep: `count` generated classes, sharded across
/// `threads` workers, results in spec-index order.
pub fn run_sweep(cfg: &DiffConfig, obs: &Obs) -> SweepReport {
    let specs = ClassSpec::enumerate(cfg.seed, cfg.count);
    let reports = parallel_map(cfg.threads, &specs, |_, &spec| {
        run_class(&emit(spec), cfg, obs)
    });
    let digest = digest_reports(&reports);
    SweepReport { reports, digest }
}

/// FNV-1a fold over per-class results in index order (the workspace's
/// shared hasher, `narada_core::digest::Fnv1a`).
fn digest_reports(reports: &[ClassReport]) -> u64 {
    let mut h = narada_core::digest::Fnv1a::new();
    let mut eat = |bytes: &[u8]| h.write(bytes);
    for r in reports {
        eat(r.spec.label().as_bytes());
        eat(r.source.as_bytes());
        for n in [r.pairs, r.discharged, r.survivors, r.tests, r.confirmed] {
            eat(&(n as u64).to_le_bytes());
        }
        match &r.outcome {
            Outcome::Agree => eat(b"agree"),
            Outcome::PrecisionMiss => eat(b"precision"),
            Outcome::Soundness(ds) => {
                eat(b"soundness");
                for d in ds {
                    eat(&(d.test_index as u64).to_le_bytes());
                    eat(d.race.as_bytes());
                    eat(d.reason.as_bytes());
                }
            }
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> DiffConfig {
        DiffConfig {
            count: 6,
            threads: 1,
            schedule_trials: 4,
            confirm_trials: 3,
            ..DiffConfig::default()
        }
    }

    #[test]
    fn small_sweep_has_no_soundness_disagreements() {
        let report = run_sweep(&small_cfg(), &Obs::new());
        assert_eq!(report.reports.len(), 6);
        let sound = report.soundness();
        assert!(
            sound.is_empty(),
            "soundness disagreements:\n{}",
            sound
                .iter()
                .map(|r| r.summary())
                .collect::<Vec<_>>()
                .join("\n")
        );
        // Non-vacuity: the sweep must exercise both oracles.
        assert!(report.confirmed() > 0, "scheduler confirmed nothing");
        assert!(report.discharged() > 0, "screener discharged nothing");
    }

    #[test]
    fn sweep_digest_is_thread_count_independent() {
        let cfg1 = small_cfg();
        let cfg4 = DiffConfig {
            threads: 4,
            ..small_cfg()
        };
        let a = run_sweep(&cfg1, &Obs::new());
        let b = run_sweep(&cfg4, &Obs::new());
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.summary(), b.summary());
    }

    #[test]
    fn injected_unsound_verdict_is_caught() {
        let cfg = DiffConfig {
            inject_unsound: true,
            ..small_cfg()
        };
        let report = run_sweep(&cfg, &Obs::new());
        assert!(
            !report.soundness().is_empty(),
            "fault injection produced no disagreement — the oracle is asleep"
        );
    }
}
