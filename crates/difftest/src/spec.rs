//! The generation lattice: which classes the corpus generator can emit.
//!
//! A [`ClassSpec`] names one point in the cross product
//! {field kind} × {locking discipline} × {sharing shape}, plus a derived
//! per-class RNG seed. The cross product has 36 points; sweeps larger
//! than that cycle through it with fresh seeds, so every combination is
//! revisited with different surface details (initial values, noise
//! members).

use narada_vm::rng::derive_seed;

/// Version stamp folded into every derived seed. Bump whenever the
/// emitter's output changes shape, so old `(version, seed)` pairs don't
/// silently reproduce different programs.
pub const GENERATOR_VERSION: u64 = 1;

/// What kind of storage the racy leaf is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FieldKind {
    /// `int val;` — a scalar field.
    Scalar,
    /// `int[] arr;` — element 0 of an array field.
    Array,
    /// `Item ref;` — a reference-typed field (the reference itself races).
    Object,
}

impl FieldKind {
    /// Every field kind, in lattice order.
    pub const ALL: [FieldKind; 3] = [FieldKind::Scalar, FieldKind::Array, FieldKind::Object];

    /// Short lowercase tag for labels and fixture names.
    pub fn tag(self) -> &'static str {
        match self {
            FieldKind::Scalar => "scalar",
            FieldKind::Array => "array",
            FieldKind::Object => "object",
        }
    }
}

/// How the library guards the racy leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Discipline {
    /// Reads and writes both hold the owner's monitor (`sync (this.inner)`).
    /// The screener should discharge these pairs, and the scheduler should
    /// confirm nothing.
    Guarded,
    /// No locking at all — the classic racy library.
    Unguarded,
    /// Writes guarded, reads bare: the paper's most common real-world bug
    /// shape (check-then-act readers).
    Mixed,
    /// Both sides locked, but on a lock object that is *not* the owner —
    /// including a reentrant helper chain on that wrong lock, so lockset
    /// reasoning that keys on "some lock held" rather than "the owner's
    /// monitor held" is caught out.
    WrongLock,
}

impl Discipline {
    /// Every discipline, in lattice order.
    pub const ALL: [Discipline; 4] = [
        Discipline::Guarded,
        Discipline::Unguarded,
        Discipline::Mixed,
        Discipline::WrongLock,
    ];

    /// Short lowercase tag for labels and fixture names.
    pub fn tag(self) -> &'static str {
        match self {
            Discipline::Guarded => "guarded",
            Discipline::Unguarded => "unguarded",
            Discipline::Mixed => "mixed",
            Discipline::WrongLock => "wronglock",
        }
    }
}

/// How the racy owner becomes reachable from more than one client call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sharing {
    /// The owner is held in a field with a public setter
    /// (`setInner(Inner x)`) — the Context Deriver's installable-path
    /// bread and butter.
    EscapingField,
    /// The owner leaks through a getter (`getInner()`) — representation
    /// exposure; no setter exists, so installation must go through the
    /// builder/same-receiver route.
    ReturnedAlias,
    /// The owner is captured by the constructor (`init(Inner x)`), which
    /// also writes `x.owner = this` — a constructor-escaped `this`.
    CtorCaptured,
}

impl Sharing {
    /// Every sharing shape, in lattice order.
    pub const ALL: [Sharing; 3] = [
        Sharing::EscapingField,
        Sharing::ReturnedAlias,
        Sharing::CtorCaptured,
    ];

    /// Short lowercase tag for labels and fixture names.
    pub fn tag(self) -> &'static str {
        match self {
            Sharing::EscapingField => "escaping",
            Sharing::ReturnedAlias => "aliased",
            Sharing::CtorCaptured => "captured",
        }
    }
}

/// One point of the generation lattice with its derived per-class seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClassSpec {
    /// Position in the sweep (also the lattice index modulo 36).
    pub index: usize,
    /// Storage kind of the racy leaf.
    pub field_kind: FieldKind,
    /// Locking discipline over the leaf.
    pub discipline: Discipline,
    /// How the owner escapes.
    pub sharing: Sharing,
    /// Per-class RNG seed: `derive_seed(base, [GENERATOR_VERSION, index])`.
    pub seed: u64,
}

impl ClassSpec {
    /// The `index`-th spec of a sweep rooted at `base_seed`. Walks the
    /// cross product in a fixed order (field kind fastest, sharing
    /// slowest) and cycles past 36.
    pub fn nth(base_seed: u64, index: usize) -> ClassSpec {
        let f = FieldKind::ALL[index % FieldKind::ALL.len()];
        let d = Discipline::ALL[(index / FieldKind::ALL.len()) % Discipline::ALL.len()];
        let s = Sharing::ALL
            [(index / (FieldKind::ALL.len() * Discipline::ALL.len())) % Sharing::ALL.len()];
        ClassSpec {
            index,
            field_kind: f,
            discipline: d,
            sharing: s,
            seed: derive_seed(base_seed, &[GENERATOR_VERSION, index as u64]),
        }
    }

    /// The first `count` specs of a sweep.
    pub fn enumerate(base_seed: u64, count: usize) -> Vec<ClassSpec> {
        (0..count).map(|i| ClassSpec::nth(base_seed, i)).collect()
    }

    /// Whether the dynamic pipeline is *expected* to confirm at least one
    /// race on this class. Only a fully guarded discipline promises
    /// race freedom; everything else leaves the leaf exposed.
    pub fn expects_manifest(self) -> bool {
        self.discipline != Discipline::Guarded
    }

    /// Stable human-readable label, e.g. `scalar-mixed-escaping-017`.
    pub fn label(self) -> String {
        format!(
            "{}-{}-{}-{:03}",
            self.field_kind.tag(),
            self.discipline.tag(),
            self.sharing.tag(),
            self.index
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn first_36_cover_the_whole_lattice() {
        let combos: BTreeSet<_> = ClassSpec::enumerate(1, 36)
            .into_iter()
            .map(|s| (s.field_kind, s.discipline, s.sharing))
            .collect();
        assert_eq!(combos.len(), 36);
    }

    #[test]
    fn cycling_repeats_combination_with_fresh_seed() {
        let a = ClassSpec::nth(1, 0);
        let b = ClassSpec::nth(1, 36);
        assert_eq!(
            (a.field_kind, a.discipline, a.sharing),
            (b.field_kind, b.discipline, b.sharing)
        );
        assert_ne!(a.seed, b.seed);
    }

    #[test]
    fn specs_are_pure_functions_of_base_and_index() {
        assert_eq!(ClassSpec::nth(7, 12), ClassSpec::nth(7, 12));
        assert_ne!(ClassSpec::nth(7, 12).seed, ClassSpec::nth(8, 12).seed);
    }
}
