//! # narada-difftest — differential corpus testing
//!
//! The paper's evaluation rests on nine hand-ported classes, so every
//! soundness claim (the screener's `MustNotRace` discharges, the replay
//! oracle) is only exercised on a fixed corpus. This crate manufactures
//! coverage instead of hoping for it: a deterministic, seed-driven
//! generator synthesizes complete MJ library classes by crossing
//!
//! * **field kinds** — scalar / array element / object reference,
//! * **locking disciplines** — fully guarded / unguarded / mixed /
//!   wrong-lock (with a reentrant helper chain),
//! * **sharing shapes** — escaping field (setter), returned alias
//!   (getter), constructor-captured owner (with a ctor-escaped `this`),
//!
//! emits a sequential client seed suite for each, and then runs every
//! generated program through **both** the static screener
//! (`narada_screen::screen_pairs`) and the full dynamic pipeline
//! (synthesis → PCT exploration → replay confirmation), treating the
//! two as each other's oracle:
//!
//! * a `MustNotRace` verdict on a dynamically-confirmed race is a
//!   **soundness bug** — always fatal;
//! * a dynamically-race-free program whose screener survivors were
//!   expected to manifest is a **precision datapoint** — logged.
//!
//! Disagreements are auto-shrunk with a ddmin pass over class members
//! ([`shrink::shrink_class`]) and committed as regression fixtures, so
//! the generator permanently grows the test bed.
//!
//! Everything is reproducible byte-for-byte from
//! `(GENERATOR_VERSION, seed)`: per-class seeds derive via the VM's
//! `derive_seed`, classes shard through the order-preserving
//! `parallel_map`, and [`harness::SweepReport::digest`] certifies that
//! two sweeps saw identical results.
//!
//! ```no_run
//! use narada_difftest::{DiffConfig, run_sweep};
//! use narada_obs::Obs;
//!
//! let cfg = DiffConfig { count: 36, ..DiffConfig::default() };
//! let report = run_sweep(&cfg, &Obs::new());
//! assert!(report.soundness().is_empty(), "{}", report.summary());
//! ```

pub mod emit;
pub mod harness;
pub mod shrink;
pub mod spec;

pub use emit::{emit, emit_retained, GenClass};
pub use harness::{
    check_agreement, run_class, run_sweep, screen_pairs_inject_unsound, AgreementCheck,
    ClassReport, DiffConfig, Disagreement, Outcome, SweepReport,
};
pub use shrink::{shrink_class, ShrinkOutcome};
pub use spec::{ClassSpec, Discipline, FieldKind, Sharing, GENERATOR_VERSION};
