//! Snapshot-forking exploration engine.
//!
//! Every schedule trial of the detection pipeline runs the same test: a
//! deterministic sequential *prefix* (seed-test object collection,
//! builders, setters — steps 1–3 of the paper's Algorithm 1) followed by
//! the concurrent *suffix* whose interleaving the trial actually varies.
//! The re-execution explorer pays the prefix once per trial; this crate
//! pays it once per test.
//!
//! The pieces:
//!
//! - [`ForkPoint`] — a test's shared prefix materialized once:
//!   an owned [`MachineSnapshot`] of the machine suspended right before
//!   the racy invocations, the resolved [`PlanPrefix`] context, and the
//!   prefix's event trace (re-fed to per-trial detectors instead of
//!   re-executed). Built by [`prepare_fork_point`].
//! - [`fork_map`] — a worker-sharded probe map with lazy per-worker
//!   state: the same self-scheduling (work-stealing) index queue as
//!   `narada_core::parallel::parallel_map`, except each worker
//!   materializes one machine from the shared snapshot and rewinds it
//!   between probes instead of rebuilding per probe. Results merge in
//!   item order, so output is byte-identical at any worker count.
//! - [`ExploreMode`] — the `--explore fork|rerun` knob threaded through
//!   `DetectConfig`, `difftest`, and `narada serve` job options.
//!
//! ## Determinism argument
//!
//! A fork probe is bit-for-bit the suffix of the corresponding rerun
//! trial when the prefix is *seed-independent*: schedulers are only
//! consulted by `run_threads` (the suffix), so a prefix differs across
//! trials only through `rand()` draws. [`prepare_fork_point`] therefore
//! refuses to fork (returns `None`) if the prefix consumed any RNG draw;
//! the caller falls back to the re-execution path wholesale. When zero
//! draws are consumed, restoring the snapshot and reseeding with trial
//! *t*'s machine seed reproduces exactly the machine state rerun trial
//! *t* would reach at the fork point — same heap, threads, monitor
//! tables, label/invocation counters, and a freshly-seeded RNG.
//!
//! ## Memory bounds
//!
//! One owned snapshot per test (heap payload + thread stacks,
//! `MachineSnapshot::approx_bytes`, surfaced as `explore.snapshot_bytes`)
//! plus one materialized machine per live worker. Probes themselves are
//! O(mutated objects): the VM's copy-on-write undo log
//! (`Heap::mark`/`rewind`) restores only what the probe touched.

use narada_core::synth::{execute_plan_prefix, ExecError, PlanPrefix};
use narada_core::TestPlan;
use narada_lang::hir::TestId;
use narada_vm::{Event, Machine, MachineSnapshot, VecSink};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// How the detection trial loops explore schedule suffixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExploreMode {
    /// Re-execute the whole test from `main()` for every trial (the
    /// original explorer; the byte-compat baseline).
    #[default]
    Rerun,
    /// Run the shared prefix once per test, snapshot at the fork point,
    /// and probe suffixes from copy-on-write forks.
    Fork,
}

impl ExploreMode {
    /// Parses the CLI/wire spelling (`"rerun"` / `"fork"`).
    pub fn parse(s: &str) -> Option<ExploreMode> {
        match s {
            "rerun" => Some(ExploreMode::Rerun),
            "fork" => Some(ExploreMode::Fork),
            _ => None,
        }
    }

    /// The canonical spelling (inverse of [`ExploreMode::parse`]).
    pub fn label(self) -> &'static str {
        match self {
            ExploreMode::Rerun => "rerun",
            ExploreMode::Fork => "fork",
        }
    }
}

impl fmt::Display for ExploreMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Metrics only the fork explorer emits. Rerun-mode manifests never
/// contain them, so cross-mode manifest comparisons (the fork-vs-rerun
/// differential suite, `scripts/ci.sh`) filter these names before
/// demanding byte-identity; within one mode manifests are identical at
/// any `--threads` with no filtering.
pub const FORK_ONLY_METRICS: &[&str] = &[
    "explore.forks",
    "explore.probes",
    "explore.snapshot_bytes",
    "explore.prefix_steps_saved",
    "explore.prefix_rng_fallbacks",
];

/// A test's shared prefix, materialized once: the machine state at the
/// fork point plus everything a suffix probe needs. `Arc`-share across
/// workers; each worker restores its own machine from the snapshot.
#[derive(Debug, Clone)]
pub struct ForkPoint {
    /// Machine state suspended right before the racy invocations.
    pub snapshot: MachineSnapshot,
    /// Resolved captures and built objects for suffix argument
    /// resolution.
    pub prefix: PlanPrefix,
    /// The prefix's event trace, in order — fed to per-trial detector
    /// clones so they observe exactly what a full re-execution would
    /// have shown them.
    pub prefix_events: Vec<Event>,
}

impl ForkPoint {
    /// Events the prefix emitted — the per-probe step count a fork saves
    /// (`explore.prefix_steps_saved` = this × (probes − 1)).
    pub fn prefix_steps(&self) -> u64 {
        self.prefix_events.len() as u64
    }
}

/// Runs the sequential prefix of `plan` on `machine` and captures a
/// [`ForkPoint`] at the suspension point.
///
/// Returns `None` — *fall back to the re-execution explorer* — when the
/// prefix fails (the rerun path reports such errors with its own exact
/// semantics) or consumed RNG draws (a seed-dependent prefix cannot be
/// shared across trial seeds; see the module docs). The attempt leaves no
/// trace in any shared telemetry, so a fallback's manifests are
/// indistinguishable from plain rerun mode up to the fork-only
/// `explore.prefix_rng_fallbacks` counter its caller records.
pub fn prepare_fork_point(
    machine: &mut Machine<'_>,
    seeds: &[TestId],
    plan: &TestPlan,
) -> Option<ForkPoint> {
    let mut sink = VecSink::new();
    let prefix: Result<PlanPrefix, ExecError> =
        execute_plan_prefix(machine, seeds, plan, &mut sink);
    let prefix = prefix.ok()?;
    if machine.rng_draws() > 0 {
        return None;
    }
    Some(ForkPoint {
        snapshot: machine.snapshot(),
        prefix,
        prefix_events: sink.events,
    })
}

/// Applies `probe` to every item of `items` across at most `threads`
/// workers, giving each worker its own lazily-created state (`init` runs
/// once per worker that actually claims an item). Results come back **in
/// item order** regardless of which worker computed what.
///
/// This is `parallel_map`'s self-scheduling index queue — idle workers
/// steal the next unclaimed index, so load balances without a
/// partitioning step — extended with per-worker state for the fork
/// explorer: a worker materializes one machine from the shared snapshot,
/// then rewinds it between probes. Correctness requirement on `probe`:
/// its result must depend only on `(index, item)` and a state `init()`
/// would produce (i.e. probes restore the state they dirty), which is
/// what makes output byte-identical at any `threads` value — locked in
/// by the fork-vs-rerun differential suite.
///
/// With `threads <= 1` or fewer than two items the map runs inline on
/// one state, the degenerate case of the same contract.
pub fn fork_map<T, R, S, G, F>(threads: usize, items: &[T], init: G, probe: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    G: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let threads = narada_core::parallel::effective_threads(threads).min(items.len());
    if threads <= 1 {
        if items.is_empty() {
            return Vec::new();
        }
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| probe(&mut state, i, t))
            .collect();
    }

    type Shard<R> = Result<Vec<(usize, R)>, Box<dyn std::any::Any + Send>>;

    let next = AtomicUsize::new(0);
    let shards: Vec<Shard<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut state: Option<S> = None;
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        let s = state.get_or_insert_with(&init);
                        local.push((i, probe(s, i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(std::thread::ScopedJoinHandle::join)
            .collect()
    });

    let mut merged: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
    for shard in shards {
        match shard {
            Ok(results) => {
                for (i, r) in results {
                    merged[i] = Some(r);
                }
            }
            Err(p) => panic = Some(p),
        }
    }
    if let Some(p) = panic {
        std::panic::resume_unwind(p);
    }
    merged
        .into_iter()
        .map(|r| r.expect("every index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explore_mode_round_trips() {
        for mode in [ExploreMode::Rerun, ExploreMode::Fork] {
            assert_eq!(ExploreMode::parse(mode.label()), Some(mode));
        }
        assert_eq!(ExploreMode::parse("bogus"), None);
        assert_eq!(ExploreMode::default(), ExploreMode::Rerun);
    }

    #[test]
    fn fork_only_metrics_all_namespaced() {
        for name in FORK_ONLY_METRICS {
            assert!(name.starts_with("explore."), "{name}");
        }
    }

    /// fork_map must equal the sequential map for state-restoring probes,
    /// at every thread count.
    #[test]
    fn fork_map_is_order_and_thread_invariant() {
        let items: Vec<u64> = (0..37).collect();
        let run = |threads: usize| {
            fork_map(
                threads,
                &items,
                || 0u64, // per-worker scratch the probe restores
                |scratch, i, &x| {
                    *scratch += 1; // dirty…
                    let r = x * x + i as u64;
                    *scratch -= 1; // …and restore
                    r
                },
            )
        };
        let seq = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), seq, "threads={threads}");
        }
        assert_eq!(seq[5], 25 + 5);
    }

    #[test]
    fn fork_map_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        let calls = AtomicUsize::new(0);
        let out = fork_map(
            8,
            &empty,
            || {
                calls.fetch_add(1, Ordering::Relaxed);
            },
            |_, i, &x| (i, x),
        );
        assert!(out.is_empty());
        assert_eq!(
            calls.load(Ordering::Relaxed),
            0,
            "init never runs with no items"
        );
        let one = fork_map(8, &[7u32], || (), |_, i, &x| (i, x));
        assert_eq!(one, vec![(0, 7)]);
    }

    #[test]
    fn fork_map_propagates_panics() {
        let items: Vec<u32> = (0..8).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            fork_map(
                4,
                &items,
                || (),
                |_, i, _| {
                    assert!(i != 3, "boom");
                    i
                },
            )
        }));
        assert!(result.is_err());
    }
}
