//! Integration tests for the MJ virtual machine: sequential semantics,
//! trace events, monitors, error paths, breakpoints, and concurrency.

use narada_lang::hir::Program;
use narada_lang::lower::lower_program;
use narada_lang::mir::MirProgram;
use narada_vm::{
    EventKind, Machine, MachineOptions, NullSink, RandomScheduler, RoundRobin, RunOutcome,
    ThreadStatus, Value, VecSink, VmErrorKind,
};

fn build(src: &str) -> (Program, MirProgram) {
    let prog = narada_lang::compile(src).unwrap_or_else(|e| panic!("compile failed:\n{e}"));
    let mir = lower_program(&prog);
    (prog, mir)
}

/// Runs a test and returns the value of the given field of the last
/// allocated instance of `class`.
fn run_and_get_field(src: &str, test: &str, class: &str, field: &str) -> Value {
    let (prog, mir) = build(src);
    let mut m = Machine::with_defaults(&prog, &mir);
    let mut sink = VecSink::new();
    m.run_test(prog.test_by_name(test).unwrap(), &mut sink)
        .unwrap_or_else(|e| panic!("vm failed: {e}"));
    let cid = prog.class_by_name(class).unwrap();
    let fid = prog.field_by_name(cid, field).unwrap();
    let obj = (0..m.heap.len() as u32)
        .rev()
        .map(narada_vm::ObjId)
        .find(|&o| m.heap.class_of(o) == Some(cid))
        .expect("instance allocated");
    m.heap.get_field(obj, fid)
}

#[test]
fn counter_increments() {
    let v = run_and_get_field(
        r#"
        class Counter { int count; void inc() { this.count = this.count + 1; } }
        test t { var c = new Counter(); c.inc(); c.inc(); c.inc(); }
        "#,
        "t",
        "Counter",
        "count",
    );
    assert_eq!(v, Value::Int(3));
}

#[test]
fn while_loop_sums() {
    let v = run_and_get_field(
        r#"
        class Acc {
            int total;
            void sum(int n) {
                var i = 1;
                while (i <= n) { this.total = this.total + i; i = i + 1; }
            }
        }
        test t { var a = new Acc(); a.sum(10); }
        "#,
        "t",
        "Acc",
        "total",
    );
    assert_eq!(v, Value::Int(55));
}

#[test]
fn dynamic_dispatch_picks_override() {
    let v = run_and_get_field(
        r#"
        class Base {
            int result;
            int get() { return 1; }
            void go() { this.result = this.get(); }
        }
        class Derived extends Base {
            int get() { return 42; }
        }
        test t { var d = new Derived(); d.go(); }
        "#,
        "t",
        "Derived",
        "result",
    );
    assert_eq!(v, Value::Int(42));
}

#[test]
fn constructor_and_field_initializers() {
    let v = run_and_get_field(
        r#"
        class Box {
            int pre = 7;
            int v;
            init(int x) { this.v = x + this.pre; }
        }
        test t { var b = new Box(10); }
        "#,
        "t",
        "Box",
        "v",
    );
    assert_eq!(v, Value::Int(17));
}

#[test]
fn arrays_grow_and_copy() {
    let v = run_and_get_field(
        r#"
        class Buf {
            int[] data;
            int size;
            init(int cap) { this.data = new int[cap]; this.size = 0; }
            void push(int v) {
                if (this.size == this.data.length) {
                    var bigger = new int[this.data.length * 2 + 1];
                    var i = 0;
                    while (i < this.size) { bigger[i] = this.data[i]; i = i + 1; }
                    this.data = bigger;
                }
                this.data[this.size] = v;
                this.size = this.size + 1;
            }
            int sum() {
                var s = 0;
                var i = 0;
                while (i < this.size) { s = s + this.data[i]; i = i + 1; }
                return s;
            }
        }
        class Out { int v; void set(Buf b) { this.v = b.sum(); } }
        test t {
            var b = new Buf(1);
            b.push(1); b.push(2); b.push(3); b.push(4);
            var o = new Out();
            o.set(b);
        }
        "#,
        "t",
        "Out",
        "v",
    );
    assert_eq!(v, Value::Int(10));
}

#[test]
fn static_factory_and_wrapping() {
    // The hazelcast motivating pattern: factory creating a wrapper.
    let v = run_and_get_field(
        r#"
        class Inner { int x; void bump() { this.x = this.x + 1; } }
        class Wrapper {
            Inner inner;
            init(Inner i) { this.inner = i; }
            sync void bump() { this.inner.bump(); }
        }
        class Factory {
            static Wrapper wrap(Inner i) { return new Wrapper(i); }
        }
        test t {
            var i = new Inner();
            var w1 = Factory.wrap(i);
            var w2 = Factory.wrap(i);
            w1.bump();
            w2.bump();
        }
        "#,
        "t",
        "Inner",
        "x",
    );
    assert_eq!(v, Value::Int(2));
}

#[test]
fn short_circuit_does_not_evaluate_rhs() {
    // Would null-deref if `&&` evaluated its rhs.
    let (prog, mir) = build(
        r#"
        class P { bool flag; }
        class C {
            int out;
            void m(P p) {
                if (p != null && p.flag) { this.out = 1; } else { this.out = 2; }
            }
        }
        test t { var c = new C(); c.m(null); }
        "#,
    );
    let mut m = Machine::with_defaults(&prog, &mir);
    m.run_test(prog.test_by_name("t").unwrap(), &mut NullSink)
        .expect("short-circuit must avoid null deref");
}

// ----------------------------------------------------------------------
// Error paths
// ----------------------------------------------------------------------

fn expect_error(src: &str) -> VmErrorKind {
    let (prog, mir) = build(src);
    let mut m = Machine::with_defaults(&prog, &mir);
    m.run_test(prog.tests[0].id, &mut NullSink)
        .expect_err("expected runtime error")
        .kind
}

#[test]
fn null_deref_fails() {
    let k = expect_error(
        r#"
        class A { int x; }
        test t { var a = new A(); a = null; a.x = 1; }
        "#,
    );
    assert_eq!(k, VmErrorKind::NullDeref);
}

#[test]
fn index_out_of_bounds_fails() {
    let k = expect_error("test t { var a = new int[2]; a[5] = 1; }");
    assert_eq!(k, VmErrorKind::IndexOutOfBounds { idx: 5, len: 2 });
}

#[test]
fn negative_index_fails() {
    let k = expect_error("test t { var a = new int[2]; var x = a[0 - 1]; }");
    assert!(matches!(k, VmErrorKind::IndexOutOfBounds { idx: -1, .. }));
}

#[test]
fn negative_array_length_fails() {
    let k = expect_error("test t { var a = new int[0 - 3]; }");
    assert_eq!(k, VmErrorKind::NegativeArrayLength(-3));
}

#[test]
fn div_by_zero_fails() {
    let k = expect_error("test t { var x = 1 / 0; }");
    assert_eq!(k, VmErrorKind::DivByZero);
    let k = expect_error("test t { var x = 1 % 0; }");
    assert_eq!(k, VmErrorKind::DivByZero);
}

#[test]
fn assert_failure_fails() {
    let k = expect_error("test t { assert 1 == 2; }");
    assert_eq!(k, VmErrorKind::AssertFailed);
}

#[test]
fn missing_return_fails() {
    let k = expect_error(
        r#"
        class C { int m(bool b) { if (b) { return 1; } } }
        test t { var c = new C(); var x = c.m(false); }
        "#,
    );
    assert_eq!(k, VmErrorKind::MissingReturn);
}

#[test]
fn infinite_loop_hits_step_limit() {
    let (prog, mir) = build("test t { while (true) { } }");
    let opts = MachineOptions {
        max_steps: 10_000,
        ..MachineOptions::default()
    };
    let mut m = Machine::new(&prog, &mir, opts);
    let err = m.run_test(prog.tests[0].id, &mut NullSink).unwrap_err();
    assert_eq!(err.kind, VmErrorKind::StepLimit);
}

#[test]
fn infinite_recursion_overflows() {
    let k = expect_error(
        r#"
        class C { void m() { this.m(); } }
        test t { var c = new C(); c.m(); }
        "#,
    );
    assert_eq!(k, VmErrorKind::StackOverflow);
}

// ----------------------------------------------------------------------
// Trace events
// ----------------------------------------------------------------------

#[test]
fn trace_contains_expected_events() {
    let (prog, mir) = build(
        r#"
        class Lib {
            int x;
            sync void set(int v) { this.x = v; }
        }
        test t { var l = new Lib(); l.set(5); }
        "#,
    );
    let mut m = Machine::with_defaults(&prog, &mir);
    let mut sink = VecSink::new();
    m.run_test(prog.tests[0].id, &mut sink).unwrap();
    let evs = &sink.events;

    // Labels strictly increase.
    assert!(evs.windows(2).all(|w| w[0].label < w[1].label));

    let lock_count = evs
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Lock { .. }))
        .count();
    let unlock_count = evs
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Unlock { .. }))
        .count();
    assert_eq!(lock_count, 1, "sync method locks once");
    assert_eq!(lock_count, unlock_count);

    // Client invocation of `set` is flagged from_client.
    assert!(evs.iter().any(|e| matches!(
        &e.kind,
        EventKind::InvokeStart { from_client: true, method: Some(mth), .. }
            if prog.method(*mth).name == "set"
    )));

    // The write to x is recorded with a value.
    assert!(evs.iter().any(|e| matches!(
        &e.kind,
        EventKind::Write {
            value: Value::Int(5),
            ..
        }
    )));

    // Allocation recorded.
    assert!(evs
        .iter()
        .any(|e| matches!(e.kind, EventKind::Alloc { class: Some(_), .. })));
}

#[test]
fn param_copy_events_precede_body() {
    let (prog, mir) = build(
        r#"
        class A { int x; void foo(A other) { this.x = 1; } }
        test t { var a = new A(); var b = new A(); a.foo(b); }
        "#,
    );
    let mut m = Machine::with_defaults(&prog, &mir);
    let mut sink = VecSink::new();
    m.run_test(prog.tests[0].id, &mut sink).unwrap();

    // Find the foo invocation, then the first events inside it must be the
    // two ParamCopy copies (I_this := this, I_p0 := other).
    let foo = prog.methods.iter().find(|mm| mm.name == "foo").unwrap();
    let body = mir.method(foo.id);
    let copies = body.param_copies();
    assert_eq!(copies.len(), 2);
    let inv = sink
        .events
        .iter()
        .find_map(|e| match &e.kind {
            EventKind::InvokeStart {
                inv,
                method: Some(mid),
                ..
            } if *mid == foo.id => Some(*inv),
            _ => None,
        })
        .unwrap();
    let inner: Vec<_> = sink
        .events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Copy { inv: i, dst, .. } if *i == inv => Some(*dst),
            _ => None,
        })
        .collect();
    assert_eq!(inner[0], copies[0].1);
    assert_eq!(inner[1], copies[1].1);
}

#[test]
fn call_result_copy_links_invocations() {
    let (prog, mir) = build(
        r#"
        class F { F self() { return this; } }
        test t { var f = new F(); var g = f.self(); }
        "#,
    );
    let mut m = Machine::with_defaults(&prog, &mir);
    let mut sink = VecSink::new();
    m.run_test(prog.tests[0].id, &mut sink).unwrap();
    assert!(sink.events.iter().any(|e| matches!(
        e.kind,
        EventKind::Copy {
            src: narada_vm::CopySrc::CallResult { .. },
            ..
        }
    )));
    // InvokeEnd for self() carries the returned register.
    assert!(sink.events.iter().any(|e| matches!(
        &e.kind,
        EventKind::InvokeEnd {
            ret_var: Some(_),
            ret: Some(Value::Ref(_)),
            ..
        }
    )));
}

#[test]
fn deterministic_given_seed() {
    let src = r#"
        class R { int v; void roll() { this.v = rand(); } }
        test t { var r = new R(); r.roll(); }
    "#;
    let (prog, mir) = build(src);
    let run = |seed| {
        let mut m = Machine::new(
            &prog,
            &mir,
            MachineOptions {
                seed,
                ..MachineOptions::default()
            },
        );
        let mut sink = VecSink::new();
        m.run_test(prog.tests[0].id, &mut sink).unwrap();
        sink.events
            .iter()
            .find_map(|e| match e.kind {
                EventKind::Write { value, .. } => Some(value),
                _ => None,
            })
            .unwrap()
    };
    assert_eq!(run(1), run(1));
    assert_ne!(run(1), run(2), "different seeds should differ");
}

// ----------------------------------------------------------------------
// Breakpoints (Algorithm 1 object collection)
// ----------------------------------------------------------------------

#[test]
fn run_test_until_call_captures_receiver_and_args() {
    let (prog, mir) = build(
        r#"
        class Q { int n; void add(Q other) { this.n = this.n + 1; } }
        test seed {
            var a = new Q();
            var b = new Q();
            a.add(b);
        }
        "#,
    );
    let add = prog.methods.iter().find(|m| m.name == "add").unwrap().id;
    let mut m = Machine::with_defaults(&prog, &mir);
    let site = m
        .run_test_until_call(prog.tests[0].id, &mut NullSink, &mut |s| s.method == add)
        .unwrap()
        .expect("breakpoint hit");
    assert_eq!(site.method, add);
    let recv = site.recv.unwrap().as_obj().unwrap();
    let arg = site.args[0].as_obj().unwrap();
    assert_ne!(recv, arg);
    // The objects survive in the heap and the method was NOT executed.
    let q = prog.class_by_name("Q").unwrap();
    let n = prog.field_by_name(q, "n").unwrap();
    assert_eq!(m.heap.get_field(recv, n), Value::Int(0));
}

#[test]
fn repeated_collection_yields_fresh_objects() {
    let (prog, mir) = build(
        r#"
        class Q { int n; void poke() { this.n = 1; } }
        test seed { var q = new Q(); q.poke(); }
        "#,
    );
    let poke = prog.methods.iter().find(|m| m.name == "poke").unwrap().id;
    let mut m = Machine::with_defaults(&prog, &mir);
    let s1 = m
        .run_test_until_call(prog.tests[0].id, &mut NullSink, &mut |s| s.method == poke)
        .unwrap()
        .unwrap();
    let s2 = m
        .run_test_until_call(prog.tests[0].id, &mut NullSink, &mut |s| s.method == poke)
        .unwrap()
        .unwrap();
    assert_ne!(
        s1.recv.unwrap().as_obj().unwrap(),
        s2.recv.unwrap().as_obj().unwrap(),
        "each seed run allocates fresh objects"
    );
}

#[test]
fn until_call_returns_none_when_no_match() {
    let (prog, mir) = build(
        r#"
        class Q { void a() { } }
        test seed { var q = new Q(); q.a(); }
        "#,
    );
    let mut m = Machine::with_defaults(&prog, &mir);
    let got = m
        .run_test_until_call(prog.tests[0].id, &mut NullSink, &mut |_| false)
        .unwrap();
    assert!(got.is_none());
}

// ----------------------------------------------------------------------
// Concurrency
// ----------------------------------------------------------------------

const RACY_COUNTER: &str = r#"
    class Counter {
        int count;
        void inc() {
            var t = this.count;
            var i = 0;
            while (i < 10) { i = i + 1; }   // widen the race window
            this.count = t + 1;
        }
    }
    test seed { var c = new Counter(); c.inc(); }
"#;

#[test]
fn unsynchronized_increments_can_lose_updates() {
    let (prog, mir) = build(RACY_COUNTER);
    let inc = prog.methods.iter().find(|m| m.name == "inc").unwrap().id;
    let counter = prog.class_by_name("Counter").unwrap();
    let count = prog.field_by_name(counter, "count").unwrap();

    let mut lost = false;
    for seed in 0..20 {
        let (prog2, mir2) = (&prog, &mir);
        let mut m = Machine::with_defaults(prog2, mir2);
        let obj = m.heap.alloc_instance(prog2, counter);
        let t1 = m
            .spawn_invoke(inc, Some(Value::Ref(obj)), vec![], &mut NullSink)
            .unwrap();
        let t2 = m
            .spawn_invoke(inc, Some(Value::Ref(obj)), vec![], &mut NullSink)
            .unwrap();
        let mut sched = RandomScheduler::new(seed);
        let out = m.run_threads(&mut sched, &mut NullSink, 1_000_000);
        assert_eq!(out, RunOutcome::Completed);
        assert_eq!(*m.thread_status(t1), ThreadStatus::Finished);
        assert_eq!(*m.thread_status(t2), ThreadStatus::Finished);
        if m.heap.get_field(obj, count) == Value::Int(1) {
            lost = true;
            break;
        }
    }
    assert!(lost, "some schedule must lose an update");
}

#[test]
fn synchronized_increments_never_lose_updates() {
    let (prog, mir) = build(
        r#"
        class Counter {
            int count;
            sync void inc() {
                var t = this.count;
                var i = 0;
                while (i < 10) { i = i + 1; }
                this.count = t + 1;
            }
        }
        test seed { var c = new Counter(); c.inc(); }
        "#,
    );
    let inc = prog.methods.iter().find(|m| m.name == "inc").unwrap().id;
    let counter = prog.class_by_name("Counter").unwrap();
    let count = prog.field_by_name(counter, "count").unwrap();
    for seed in 0..10 {
        let mut m = Machine::with_defaults(&prog, &mir);
        let obj = m.heap.alloc_instance(&prog, counter);
        m.spawn_invoke(inc, Some(Value::Ref(obj)), vec![], &mut NullSink)
            .unwrap();
        m.spawn_invoke(inc, Some(Value::Ref(obj)), vec![], &mut NullSink)
            .unwrap();
        let mut sched = RandomScheduler::new(seed);
        let out = m.run_threads(&mut sched, &mut NullSink, 1_000_000);
        assert_eq!(out, RunOutcome::Completed);
        assert_eq!(m.heap.get_field(obj, count), Value::Int(2), "seed {seed}");
    }
}

#[test]
fn deadlock_detected() {
    let (prog, mir) = build(
        r#"
        class L { }
        class T {
            L a; L b;
            init(L a, L b) { this.a = a; this.b = b; }
            void go() {
                sync (this.a) {
                    var i = 0;
                    while (i < 50) { i = i + 1; }
                    sync (this.b) { i = 0; }
                }
            }
        }
        test seed { var l = new L(); }
        "#,
    );
    let go = prog.methods.iter().find(|m| m.name == "go").unwrap().id;
    let l = prog.class_by_name("L").unwrap();
    let t = prog.class_by_name("T").unwrap();
    let fa = prog.field_by_name(t, "a").unwrap();
    let fb = prog.field_by_name(t, "b").unwrap();

    let mut found_deadlock = false;
    for _seed in 0..40 {
        let mut m = Machine::with_defaults(&prog, &mir);
        let la = m.heap.alloc_instance(&prog, l);
        let lb = m.heap.alloc_instance(&prog, l);
        let t1o = m.heap.alloc_instance(&prog, t);
        let t2o = m.heap.alloc_instance(&prog, t);
        // t1 locks a then b; t2 locks b then a.
        m.heap.set_field(t1o, fa, Value::Ref(la));
        m.heap.set_field(t1o, fb, Value::Ref(lb));
        m.heap.set_field(t2o, fa, Value::Ref(lb));
        m.heap.set_field(t2o, fb, Value::Ref(la));
        m.spawn_invoke(go, Some(Value::Ref(t1o)), vec![], &mut NullSink)
            .unwrap();
        m.spawn_invoke(go, Some(Value::Ref(t2o)), vec![], &mut NullSink)
            .unwrap();
        let mut sched = RoundRobin::new();
        if let RunOutcome::Deadlock { blocked } =
            m.run_threads(&mut sched, &mut NullSink, 1_000_000)
        {
            assert_eq!(blocked.len(), 2);
            found_deadlock = true;
            break;
        }
    }
    assert!(found_deadlock, "round-robin must deadlock this pattern");
}

#[test]
fn blocked_thread_resumes_after_release() {
    let (prog, mir) = build(
        r#"
        class C {
            int hits;
            sync void work() {
                var i = 0;
                while (i < 100) { i = i + 1; }
                this.hits = this.hits + 1;
            }
        }
        test seed { var c = new C(); }
        "#,
    );
    let work = prog.methods.iter().find(|m| m.name == "work").unwrap().id;
    let c = prog.class_by_name("C").unwrap();
    let hits = prog.field_by_name(c, "hits").unwrap();
    let mut m = Machine::with_defaults(&prog, &mir);
    let obj = m.heap.alloc_instance(&prog, c);
    m.spawn_invoke(work, Some(Value::Ref(obj)), vec![], &mut NullSink)
        .unwrap();
    m.spawn_invoke(work, Some(Value::Ref(obj)), vec![], &mut NullSink)
        .unwrap();
    let mut sched = RoundRobin::new();
    let out = m.run_threads(&mut sched, &mut NullSink, 1_000_000);
    assert_eq!(out, RunOutcome::Completed);
    assert_eq!(m.heap.get_field(obj, hits), Value::Int(2));
}

#[test]
fn invoke_runs_setters_on_main_thread() {
    let (prog, mir) = build(
        r#"
        class A { int x; void set(int v) { this.x = v; } int get() { return this.x; } }
        test seed { var a = new A(); }
        "#,
    );
    let set = prog.methods.iter().find(|m| m.name == "set").unwrap().id;
    let get = prog.methods.iter().find(|m| m.name == "get").unwrap().id;
    let a = prog.class_by_name("A").unwrap();
    let mut m = Machine::with_defaults(&prog, &mir);
    let obj = m.heap.alloc_instance(&prog, a);
    m.invoke(
        set,
        Some(Value::Ref(obj)),
        vec![Value::Int(9)],
        &mut NullSink,
    )
    .unwrap();
    let got = m
        .invoke(get, Some(Value::Ref(obj)), vec![], &mut NullSink)
        .unwrap();
    assert_eq!(got, Some(Value::Int(9)));
}

#[test]
fn early_return_inside_sync_releases_monitor() {
    let (prog, mir) = build(
        r#"
        class C {
            int x;
            void maybe(bool b) {
                sync (this) {
                    if (b) { return; }
                    this.x = 1;
                }
            }
        }
        test seed { var c = new C(); c.maybe(true); c.maybe(false); }
        "#,
    );
    let mut m = Machine::with_defaults(&prog, &mir);
    let mut sink = VecSink::new();
    m.run_test(prog.tests[0].id, &mut sink).unwrap();
    let locks = sink
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Lock { .. }))
        .count();
    let unlocks = sink
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Unlock { .. }))
        .count();
    assert_eq!(locks, 2);
    assert_eq!(unlocks, 2, "early return must release the monitor");
}

#[test]
fn reentrant_lock_emits_single_pair() {
    let (prog, mir) = build(
        r#"
        class C {
            int x;
            sync void outer() { this.inner(); }
            sync void inner() { this.x = 1; }
        }
        test seed { var c = new C(); c.outer(); }
        "#,
    );
    let mut m = Machine::with_defaults(&prog, &mir);
    let mut sink = VecSink::new();
    m.run_test(prog.tests[0].id, &mut sink).unwrap();
    let locks = sink
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Lock { .. }))
        .count();
    let unlocks = sink
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Unlock { .. }))
        .count();
    assert_eq!(
        (locks, unlocks),
        (1, 1),
        "re-entrant acquisition is not a lockset transition"
    );
}

#[test]
fn thread_failure_releases_locks_and_reports() {
    let (prog, mir) = build(
        r#"
        class C {
            int[] a;
            sync void boom() { this.a[99] = 1; }
            sync void ok() { }
        }
        test seed { var c = new C(); }
        "#,
    );
    let boom = prog.methods.iter().find(|m| m.name == "boom").unwrap().id;
    let ok = prog.methods.iter().find(|m| m.name == "ok").unwrap().id;
    let c = prog.class_by_name("C").unwrap();
    let mut m = Machine::with_defaults(&prog, &mir);
    let obj = m.heap.alloc_instance(&prog, c);
    let mut sink = VecSink::new();
    let t1 = m
        .spawn_invoke(boom, Some(Value::Ref(obj)), vec![], &mut sink)
        .unwrap();
    let t2 = m
        .spawn_invoke(ok, Some(Value::Ref(obj)), vec![], &mut sink)
        .unwrap();
    let mut sched = RoundRobin::new();
    let out = m.run_threads(&mut sched, &mut sink, 1_000_000);
    assert_eq!(out, RunOutcome::Completed);
    assert!(matches!(m.thread_status(t1), ThreadStatus::Failed(e)
        if e.kind == VmErrorKind::NullDeref));
    assert_eq!(*m.thread_status(t2), ThreadStatus::Finished);
    assert!(sink
        .events
        .iter()
        .any(|e| matches!(e.kind, EventKind::ThreadFail { .. })));
}

#[test]
fn spawn_invoke_seq_runs_calls_in_order() {
    let (prog, mir) = build(
        r#"
        class L { int[] log; int n; init() { this.log = new int[8]; this.n = 0; }
            void mark(int v) { this.log[this.n] = v; this.n = this.n + 1; } }
        test seed { var l = new L(); }
        "#,
    );
    let mark = prog.methods.iter().find(|m| m.name == "mark").unwrap().id;
    let l = prog.class_by_name("L").unwrap();
    let log = prog.field_by_name(l, "log").unwrap();
    let mut m = Machine::with_defaults(&prog, &mir);
    let obj = m.heap.alloc_instance(&prog, l);
    let ctor = prog.ctor_for(l).unwrap();
    m.invoke(ctor, Some(Value::Ref(obj)), vec![], &mut NullSink)
        .unwrap();
    let calls = (1..=3)
        .map(|i| narada_vm::PendingInvoke {
            method: mark,
            recv: Some(Value::Ref(obj)),
            args: vec![Value::Int(i)],
        })
        .collect();
    m.spawn_invoke_seq(calls, &mut NullSink).unwrap();
    let mut sched = RoundRobin::new();
    assert_eq!(
        m.run_threads(&mut sched, &mut NullSink, 100_000),
        RunOutcome::Completed
    );
    let arr = m.heap.get_field(obj, log).as_obj().unwrap();
    for i in 0..3 {
        assert_eq!(m.heap.get_elem(arr, i), Some(Value::Int(i + 1)));
    }
}

#[test]
fn queued_calls_do_not_run_after_a_crash() {
    let (prog, mir) = build(
        r#"
        class L { int n; void boom() { var x = 1 / 0; } void mark() { this.n = this.n + 1; } }
        test seed { var l = new L(); }
        "#,
    );
    let boom = prog.methods.iter().find(|m| m.name == "boom").unwrap().id;
    let mark = prog.methods.iter().find(|m| m.name == "mark").unwrap().id;
    let l = prog.class_by_name("L").unwrap();
    let n = prog.field_by_name(l, "n").unwrap();
    let mut m = Machine::with_defaults(&prog, &mir);
    let obj = m.heap.alloc_instance(&prog, l);
    let tid = m
        .spawn_invoke_seq(
            vec![
                narada_vm::PendingInvoke {
                    method: boom,
                    recv: Some(Value::Ref(obj)),
                    args: vec![],
                },
                narada_vm::PendingInvoke {
                    method: mark,
                    recv: Some(Value::Ref(obj)),
                    args: vec![],
                },
            ],
            &mut NullSink,
        )
        .unwrap();
    let mut sched = RoundRobin::new();
    m.run_threads(&mut sched, &mut NullSink, 100_000);
    assert!(matches!(m.thread_status(tid), ThreadStatus::Failed(_)));
    assert_eq!(m.heap.get_field(obj, n), Value::Int(0), "mark never ran");
}

#[test]
fn parked_threads_are_not_scheduled_until_unparked() {
    let (prog, mir) = build(
        r#"
        class W { int n; void bump() { this.n = this.n + 1; } }
        test seed { var w = new W(); }
        "#,
    );
    let bump = prog.methods.iter().find(|m| m.name == "bump").unwrap().id;
    let w = prog.class_by_name("W").unwrap();
    let n = prog.field_by_name(w, "n").unwrap();
    let mut m = Machine::with_defaults(&prog, &mir);
    let obj = m.heap.alloc_instance(&prog, w);
    let t1 = m
        .spawn_invoke(bump, Some(Value::Ref(obj)), vec![], &mut NullSink)
        .unwrap();
    m.park(t1);
    assert_eq!(*m.thread_status(t1), ThreadStatus::Parked);
    assert!(m.runnable_threads().is_empty());
    let mut sched = RoundRobin::new();
    // With only a parked thread, the run loop sees no runnable and no
    // blocked threads: it completes without running it.
    assert_eq!(
        m.run_threads(&mut sched, &mut NullSink, 10_000),
        RunOutcome::Completed
    );
    assert_eq!(m.heap.get_field(obj, n), Value::Int(0));
    m.unpark(t1);
    assert_eq!(
        m.run_threads(&mut sched, &mut NullSink, 10_000),
        RunOutcome::Completed
    );
    assert_eq!(m.heap.get_field(obj, n), Value::Int(1));
}

#[test]
fn invoke_partial_stops_after_target_write() {
    let (prog, mir) = build(
        r#"
        class X { }
        class H {
            X x;
            bool done;
            void set(X v) {
                this.x = v;
                this.x = new X();
                this.done = true;
            }
        }
        test seed { var h = new H(); var x = new X(); h.set(x); }
        "#,
    );
    let set = prog.methods.iter().find(|mm| mm.name == "set").unwrap().id;
    let h = prog.class_by_name("H").unwrap();
    let xf = prog.field_by_name(h, "x").unwrap();
    let done = prog.field_by_name(h, "done").unwrap();

    // Find the span of the FIRST write to x (`this.x = v;`).
    let body = mir.method(set);
    let first_write_span = body
        .instrs
        .iter()
        .find_map(|i| match i.kind {
            narada_lang::mir::InstrKind::WriteField { field, .. } if field == xf => Some(i.span),
            _ => None,
        })
        .unwrap();

    let mut m = Machine::with_defaults(&prog, &mir);
    let hobj = m.heap.alloc_instance(&prog, h);
    let xobj = m
        .heap
        .alloc_instance(&prog, prog.class_by_name("X").unwrap());
    let tid = m
        .invoke_partial(
            set,
            Some(Value::Ref(hobj)),
            vec![Value::Ref(xobj)],
            first_write_span,
            &mut NullSink,
        )
        .unwrap();
    assert_eq!(*m.thread_status(tid), ThreadStatus::Parked);
    // The first write happened; the clobbering write and `done` did not.
    assert_eq!(m.heap.get_field(hobj, xf), Value::Ref(xobj));
    assert_eq!(m.heap.get_field(hobj, done), Value::Bool(false));
}

#[test]
fn recorded_schedule_replays_the_same_outcome() {
    // Record a racy execution whose final state depends on the schedule,
    // then replay it: the replay must land on the identical final state.
    let (prog, mir) = build(RACY_COUNTER);
    let inc = prog.methods.iter().find(|m| m.name == "inc").unwrap().id;
    let counter = prog.class_by_name("Counter").unwrap();
    let count = prog.field_by_name(counter, "count").unwrap();

    let run = |sched: &mut dyn narada_vm::Scheduler| -> Value {
        let mut m = Machine::with_defaults(&prog, &mir);
        let obj = m.heap.alloc_instance(&prog, counter);
        m.spawn_invoke(inc, Some(Value::Ref(obj)), vec![], &mut NullSink)
            .unwrap();
        m.spawn_invoke(inc, Some(Value::Ref(obj)), vec![], &mut NullSink)
            .unwrap();
        m.run_threads(sched, &mut NullSink, 1_000_000);
        m.heap.get_field(obj, count)
    };

    for seed in 0..10 {
        let mut rec = narada_vm::RecordingScheduler::new(RandomScheduler::new(seed));
        let original = run(&mut rec);
        let schedule = rec.into_schedule();
        let mut replay = narada_vm::ReplayScheduler::new(schedule);
        let replayed = run(&mut replay);
        assert_eq!(original, replayed, "seed {seed}: replay must reproduce");
        assert!(replay.exhausted());
    }
}
