//! Trap coverage for the bytecode engine: every [`VmErrorKind`] variant
//! is *triggered through full bytecode execution* of an MJ program (not
//! unit-constructed), and each trap run is differentially checked against
//! the tree-walk engine — same error kind, same failing span behavior,
//! same trace up to and including the `ThreadFail` event.

use narada_lang::hir::Program;
use narada_lang::lower::lower_program;
use narada_lang::mir::MirProgram;
use narada_vm::{Engine, Machine, MachineOptions, Value, VecSink, VmError, VmErrorKind};

fn build(src: &str) -> (Program, MirProgram) {
    let prog = narada_lang::compile(src).unwrap_or_else(|e| panic!("compile failed:\n{e}"));
    let mir = lower_program(&prog);
    (prog, mir)
}

/// Runs the program's only test on the given engine and returns the
/// error it failed with plus the recorded trace.
fn run_trap(src: &str, engine: Engine, opts: MachineOptions) -> (VmError, Vec<narada_vm::Event>) {
    let (prog, mir) = build(src);
    let mut machine = Machine::new(&prog, &mir, MachineOptions { engine, ..opts });
    let mut sink = VecSink::new();
    let err = machine
        .run_test(prog.tests[0].id, &mut sink)
        .expect_err("trap program must fail");
    (err, sink.events)
}

/// Asserts the trap fires with the expected kind on the bytecode engine
/// and that tree-walk agrees byte-for-byte (error and trace).
fn assert_trap(src: &str, opts: MachineOptions, expect: impl Fn(&VmErrorKind) -> bool) {
    let (bc_err, bc_ev) = run_trap(src, Engine::Bytecode, opts.clone());
    assert!(
        expect(&bc_err.kind),
        "bytecode engine raised the wrong trap: {:?}",
        bc_err.kind
    );
    let (tree_err, tree_ev) = run_trap(src, Engine::TreeWalk, opts);
    assert_eq!(tree_err, bc_err, "engines disagree on the error");
    assert_eq!(tree_ev, bc_ev, "engines disagree on the failing trace");
    // The unwind must surface in the trace, not just the return value.
    assert!(
        bc_ev
            .iter()
            .any(|e| matches!(e.kind, narada_vm::EventKind::ThreadFail { .. })),
        "no ThreadFail event emitted"
    );
}

fn opts() -> MachineOptions {
    MachineOptions::default()
}

#[test]
fn trap_null_deref() {
    assert_trap(
        r#"
        class Box { int v; int poke(Box other) { return other.v; } }
        test t { var b = new Box(); b.poke(null); }
        "#,
        opts(),
        |k| matches!(k, VmErrorKind::NullDeref),
    );
}

#[test]
fn trap_null_receiver_call() {
    assert_trap(
        r#"
        class Box {
            int v;
            int get() { return this.v; }
            int relay(Box other) { return other.get(); }
        }
        test t { var b = new Box(); b.relay(null); }
        "#,
        opts(),
        |k| matches!(k, VmErrorKind::NullDeref),
    );
}

#[test]
fn trap_index_out_of_bounds() {
    assert_trap(
        r#"
        class Arr {
            int read(int[] a, int i) { return a[i]; }
        }
        test t { var a = new Arr(); var xs = new int[2]; a.read(xs, 5); }
        "#,
        opts(),
        |k| matches!(k, VmErrorKind::IndexOutOfBounds { idx: 5, len: 2 }),
    );
}

#[test]
fn trap_index_out_of_bounds_write() {
    assert_trap(
        r#"
        class Arr {
            void write(int[] a, int i) { a[i] = 7; }
        }
        test t { var a = new Arr(); var xs = new int[3]; a.write(xs, 0 - 1); }
        "#,
        opts(),
        |k| matches!(k, VmErrorKind::IndexOutOfBounds { idx: -1, len: 3 }),
    );
}

#[test]
fn trap_negative_array_length() {
    assert_trap(
        r#"
        class Mk { int[] make(int n) { return new int[n]; } }
        test t { var m = new Mk(); m.make(0 - 4); }
        "#,
        opts(),
        |k| matches!(k, VmErrorKind::NegativeArrayLength(-4)),
    );
}

#[test]
fn trap_div_by_zero() {
    assert_trap(
        r#"
        class Math { int div(int a, int b) { return a / b; } }
        test t { var m = new Math(); m.div(10, 0); }
        "#,
        opts(),
        |k| matches!(k, VmErrorKind::DivByZero),
    );
}

#[test]
fn trap_rem_by_zero() {
    assert_trap(
        r#"
        class Math { int rem(int a, int b) { return a % b; } }
        test t { var m = new Math(); m.rem(10, 0); }
        "#,
        opts(),
        |k| matches!(k, VmErrorKind::DivByZero),
    );
}

#[test]
fn trap_assert_failed() {
    assert_trap(
        r#"
        class Check { void must(bool c) { assert c; } }
        test t { var c = new Check(); c.must(1 > 2); }
        "#,
        opts(),
        |k| matches!(k, VmErrorKind::AssertFailed),
    );
}

#[test]
fn trap_missing_return() {
    assert_trap(
        r#"
        class Part {
            int half(int n) { if (n > 0) { return n; } }
        }
        test t { var p = new Part(); p.half(0 - 1); }
        "#,
        opts(),
        |k| matches!(k, VmErrorKind::MissingReturn),
    );
}

#[test]
fn trap_stack_overflow() {
    assert_trap(
        r#"
        class Rec { int down(int n) { return this.down(n + 1); } }
        test t { var r = new Rec(); r.down(0); }
        "#,
        MachineOptions {
            max_frames: 64,
            ..opts()
        },
        |k| matches!(k, VmErrorKind::StackOverflow),
    );
}

#[test]
fn trap_step_limit() {
    assert_trap(
        r#"
        class Spin {
            int go() {
                var i = 0;
                while (i >= 0) { i = i + 1; }
                return i;
            }
        }
        test t { var s = new Spin(); s.go(); }
        "#,
        MachineOptions {
            max_steps: 10_000,
            ..opts()
        },
        |k| matches!(k, VmErrorKind::StepLimit),
    );
}

/// `Internal` through the harness invocation path: an ill-typed receiver
/// (object of an unrelated class) must fail cleanly on both engines.
#[test]
fn trap_internal_receiver_mismatch() {
    let (prog, mir) = build(
        r#"
        class A { int x; int getx() { return this.x; } }
        class B { int y; int gety() { return this.y; } }
        test t { var a = new A(); var b = new B(); a.getx(); b.gety(); }
        "#,
    );
    let getx = prog
        .dispatch(prog.class_by_name("A").unwrap(), "getx")
        .unwrap();
    let run = |engine: Engine| {
        let mut m = Machine::new(
            &prog,
            &mir,
            MachineOptions {
                engine,
                ..MachineOptions::default()
            },
        );
        let mut sink = VecSink::new();
        m.run_test(prog.tests[0].id, &mut sink).unwrap();
        // Objects: 0 = the A instance, 1 = the B instance. Invoking A's
        // method on the B receiver is the ill-typed harness call.
        let err = m
            .invoke(
                getx,
                Some(Value::Ref(narada_vm::ObjId(1))),
                vec![],
                &mut sink,
            )
            .expect_err("mismatched receiver must fail");
        (err, sink.events)
    };
    let (tree_err, tree_ev) = run(Engine::TreeWalk);
    let (bc_err, bc_ev) = run(Engine::Bytecode);
    assert!(
        matches!(bc_err.kind, VmErrorKind::Internal(_)),
        "expected Internal, got {:?}",
        bc_err.kind
    );
    assert_eq!(tree_err, bc_err);
    assert_eq!(tree_ev, bc_ev);
}

/// A trap inside a `sync` method releases the monitor identically on
/// both engines (unwind path through `thread_fail`).
#[test]
fn trap_unwinds_monitors_identically() {
    let src = r#"
        class Guard {
            int v;
            sync int boom(int d) { return this.v / d; }
        }
        test t { var g = new Guard(); g.boom(0); }
    "#;
    let (bc_err, bc_ev) = run_trap(src, Engine::Bytecode, opts());
    let (tree_err, tree_ev) = run_trap(src, Engine::TreeWalk, opts());
    assert!(matches!(bc_err.kind, VmErrorKind::DivByZero));
    assert_eq!(tree_err, bc_err);
    assert_eq!(tree_ev, bc_ev);
    // The unwind must have emitted the Unlock before ThreadFail.
    let unlock = bc_ev
        .iter()
        .position(|e| matches!(e.kind, narada_vm::EventKind::Unlock { .. }))
        .expect("unwind released the monitor");
    let fail = bc_ev
        .iter()
        .position(|e| matches!(e.kind, narada_vm::EventKind::ThreadFail { .. }))
        .unwrap();
    assert!(unlock < fail, "unlock must precede the failure event");
}
