//! Differential interpreter-vs-bytecode harness (engine half).
//!
//! The bytecode engine is only allowed to exist because it is provably
//! the same machine: every test here runs identical workloads under
//! `Engine::TreeWalk` and `Engine::Bytecode` and asserts byte-identical
//! observable behavior — the full trace-event stream (labels, invocation
//! ids, spans, values), the trace digest, heap shape, per-thread
//! statuses, and run outcomes. The workspace-level suite extends the same
//! oracle across the synthesis pipeline, the committed replay fixtures,
//! and the generated difftest lattice.

use narada_corpus::all;
use narada_lang::hir::Program;
use narada_lang::lower::lower_program;
use narada_lang::mir::MirProgram;
use narada_vm::{
    trace_digest, Engine, Event, Machine, MachineOptions, NullSink, PctScheduler, RandomScheduler,
    RoundRobin, RunOutcome, Scheduler, ThreadId, ThreadStatus, Value, VecSink,
};

fn build(src: &str) -> (Program, MirProgram) {
    let prog = narada_lang::compile(src).unwrap_or_else(|e| panic!("compile failed:\n{e}"));
    let mir = lower_program(&prog);
    (prog, mir)
}

fn opts(engine: Engine, seed: u64) -> MachineOptions {
    MachineOptions {
        seed,
        engine,
        ..MachineOptions::default()
    }
}

/// Runs every seed test of a program sequentially on one machine,
/// returning the full trace, per-test results, and a heap summary.
fn run_seed_suite(
    prog: &Program,
    mir: &MirProgram,
    engine: Engine,
) -> (Vec<Event>, Vec<Result<(), String>>, usize) {
    let mut machine = Machine::new(prog, mir, opts(engine, 0xd1ff_5eed));
    let mut sink = VecSink::new();
    let mut results = Vec::new();
    for t in &prog.tests {
        results.push(machine.run_test(t.id, &mut sink).map_err(|e| e.to_string()));
    }
    (sink.events, results, machine.heap.len())
}

/// Asserts two traces are byte-identical, pointing at the first
/// divergence instead of dumping both streams.
fn assert_same_trace(label: &str, tree: &[Event], bc: &[Event]) {
    if let Some(i) = (0..tree.len().min(bc.len())).find(|&i| tree[i] != bc[i]) {
        panic!(
            "{label}: traces diverge at event {i}:\n  tree: {:?}\n  bc:   {:?}",
            tree[i], bc[i]
        );
    }
    assert_eq!(
        tree.len(),
        bc.len(),
        "{label}: trace lengths differ (tree {} vs bytecode {})",
        tree.len(),
        bc.len()
    );
    assert_eq!(
        trace_digest(tree),
        trace_digest(bc),
        "{label}: digests differ on equal traces (digest bug)"
    );
}

/// All nine corpus classes: full seed suites, event-for-event.
#[test]
fn corpus_seed_suites_byte_identical() {
    for entry in all() {
        let prog = entry.compile().expect("corpus entry compiles");
        let mir = lower_program(&prog);
        let (tree_ev, tree_res, tree_heap) = run_seed_suite(&prog, &mir, Engine::TreeWalk);
        let (bc_ev, bc_res, bc_heap) = run_seed_suite(&prog, &mir, Engine::Bytecode);
        assert_same_trace(entry.id, &tree_ev, &bc_ev);
        assert_eq!(tree_res, bc_res, "{}: per-test results differ", entry.id);
        assert_eq!(tree_heap, bc_heap, "{}: heap sizes differ", entry.id);
        assert!(!tree_ev.is_empty(), "{}: vacuous comparison", entry.id);
    }
}

/// Sharing one compiled program across machines (`Machine::with_code`)
/// is trace-identical to compiling per machine.
#[test]
fn shared_compilation_is_equivalent() {
    let entry = &all()[0];
    let prog = entry.compile().unwrap();
    let mir = lower_program(&prog);
    let (per_machine, ..) = run_seed_suite(&prog, &mir, Engine::Bytecode);

    let code = std::sync::Arc::new(narada_vm::BcProgram::compile(&prog, &mir));
    let mut machine = Machine::with_code(&prog, &mir, opts(Engine::TreeWalk, 0xd1ff_5eed), code);
    assert_eq!(
        machine.engine(),
        Engine::Bytecode,
        "with_code forces engine"
    );
    let mut sink = VecSink::new();
    for t in &prog.tests {
        let _ = machine.run_test(t.id, &mut sink);
    }
    assert_same_trace("shared-code", &per_machine, &sink.events);
}

/// Concurrent workload: racy increments plus monitor contention, driven
/// by three different scheduler families. A scheduler only observes the
/// machine through `preview`/`runnable_threads`, so identical machine
/// behavior must produce identical decision sequences, traces, outcomes,
/// and final heaps on both engines.
#[test]
fn concurrent_runs_byte_identical_under_schedulers() {
    let src = r#"
        class Counter {
            int count;
            int guarded;
            void inc() { this.count = this.count + 1; }
            sync void sinc() { this.guarded = this.guarded + 1; }
            int mix(int n) {
                var i = 0;
                while (i < n) {
                    this.inc();
                    this.sinc();
                    i = i + 1;
                }
                return this.count + this.guarded;
            }
        }
        test seed { var c = new Counter(); c.mix(2); }
    "#;
    let (prog, mir) = build(src);
    let cid = prog.class_by_name("Counter").unwrap();
    let mix = prog.dispatch(cid, "mix").unwrap();

    type MakeScheduler = Box<dyn Fn() -> Box<dyn Scheduler>>;
    let schedulers: Vec<(&str, MakeScheduler)> = vec![
        ("round-robin", Box::new(|| Box::new(RoundRobin::default()))),
        ("random", Box::new(|| Box::new(RandomScheduler::new(7)))),
        (
            "pct",
            Box::new(|| Box::new(PctScheduler::new(1234, 3, 1000))),
        ),
    ];

    for (name, make) in schedulers {
        let run = |engine: Engine| {
            let mut m = Machine::new(&prog, &mir, opts(engine, 99));
            let mut sink = VecSink::new();
            m.run_test(prog.tests[0].id, &mut sink).unwrap();
            let obj = Value::Ref(narada_vm::ObjId(0));
            let t1 = m
                .spawn_invoke(mix, Some(obj), vec![Value::Int(25)], &mut sink)
                .unwrap();
            let t2 = m
                .spawn_invoke(mix, Some(obj), vec![Value::Int(25)], &mut sink)
                .unwrap();
            let mut sched = make();
            let out = m.run_threads(sched.as_mut(), &mut sink, 1_000_000);
            let statuses: Vec<ThreadStatus> = [ThreadId::MAIN, t1, t2]
                .iter()
                .map(|&t| m.thread_status(t).clone())
                .collect();
            (sink.events, out, statuses, m.heap.len())
        };
        let (tree_ev, tree_out, tree_st, tree_heap) = run(Engine::TreeWalk);
        let (bc_ev, bc_out, bc_st, bc_heap) = run(Engine::Bytecode);
        assert_same_trace(name, &tree_ev, &bc_ev);
        assert_eq!(tree_out, bc_out, "{name}: run outcomes differ");
        assert_eq!(tree_st, bc_st, "{name}: thread statuses differ");
        assert_eq!(tree_heap, bc_heap, "{name}: heap sizes differ");
        assert_eq!(tree_out, RunOutcome::Completed);
    }
}

/// The seed-test suspension protocol (object collection) behaves
/// identically: same captured call site, same trace prefix.
#[test]
fn run_test_until_call_captures_identically() {
    let src = r#"
        class Box {
            int v;
            void set(int x) { this.v = x; }
            int get() { return this.v; }
        }
        test seed {
            var b = new Box();
            b.set(41);
            b.set(42);
            var r = b.get();
        }
    "#;
    let (prog, mir) = build(src);
    let run = |engine: Engine| {
        let mut m = Machine::new(&prog, &mir, opts(engine, 5));
        let mut sink = VecSink::new();
        let mut seen = 0;
        let site = m
            .run_test_until_call(prog.tests[0].id, &mut sink, &mut |s| {
                let is_set = prog.method(s.method).name == "set";
                if is_set {
                    seen += 1;
                }
                is_set && seen == 2
            })
            .unwrap()
            .expect("second set() captured");
        (
            sink.events,
            prog.method(site.method).name.clone(),
            site.recv,
            site.args,
        )
    };
    let tree = run(Engine::TreeWalk);
    let bc = run(Engine::Bytecode);
    assert_same_trace("until-call", &tree.0, &bc.0);
    assert_eq!((tree.1, tree.2, tree.3), (bc.1, bc.2, bc.3));
}

/// `invoke_partial` (park after a chosen write, outside all monitors)
/// lands both engines in the same parked state.
#[test]
fn invoke_partial_parks_identically() {
    let src = r#"
        class Pair {
            int a;
            int b;
            sync void setBoth(int x) {
                this.a = x;
                this.b = x + 1;
            }
        }
        test seed { var p = new Pair(); p.setBoth(1); }
    "#;
    let (prog, mir) = build(src);
    let cid = prog.class_by_name("Pair").unwrap();
    let set_both = prog.dispatch(cid, "setBoth").unwrap();
    // The span of the `this.a = x` write, discovered from a traced run.
    let find_stop = || {
        let mut m = Machine::with_defaults(&prog, &mir);
        let mut sink = VecSink::new();
        m.run_test(prog.tests[0].id, &mut sink).unwrap();
        sink.events
            .iter()
            .find_map(|e| match &e.kind {
                narada_vm::EventKind::Write { .. } => Some(e.span),
                _ => None,
            })
            .expect("a write in setBoth")
    };
    let stop = find_stop();
    let run = |engine: Engine| {
        let mut m = Machine::new(&prog, &mir, opts(engine, 5));
        let mut sink = VecSink::new();
        m.run_test(prog.tests[0].id, &mut sink).unwrap();
        let obj = Value::Ref(narada_vm::ObjId(0));
        let tid = m
            .invoke_partial(set_both, Some(obj), vec![Value::Int(9)], stop, &mut sink)
            .unwrap();
        (
            sink.events,
            m.thread_status(tid).clone(),
            m.held_locks(tid),
            m.heap
                .get_field(narada_vm::ObjId(0), prog.field_by_name(cid, "a").unwrap()),
        )
    };
    let tree = run(Engine::TreeWalk);
    let bc = run(Engine::Bytecode);
    assert_same_trace("invoke-partial", &tree.0, &bc.0);
    assert_eq!(tree.1, bc.1, "parked status differs");
    assert_eq!(tree.2, bc.2, "held locks differ");
    assert_eq!(tree.3, bc.3, "partial write visibility differs");
    assert_eq!(tree.1, ThreadStatus::Parked);
}

/// Label counters advance identically even when the sink discards events
/// (the bytecode engine skips event construction for `NullSink`): a
/// traced run after an untraced prefix continues with the same labels on
/// both engines.
#[test]
fn null_sink_prefix_keeps_labels_aligned() {
    let entry = &all()[0];
    let prog = entry.compile().unwrap();
    let mir = lower_program(&prog);
    let run = |engine: Engine| {
        let mut m = Machine::new(&prog, &mir, opts(engine, 3));
        // Untraced prefix: first seed test into a NullSink.
        m.run_test(prog.tests[0].id, &mut NullSink).unwrap();
        // Traced suffix must start at the same label on both engines.
        let mut sink = VecSink::new();
        for t in &prog.tests[1..] {
            let _ = m.run_test(t.id, &mut sink);
        }
        sink.events
    };
    let tree = run(Engine::TreeWalk);
    let bc = run(Engine::Bytecode);
    assert!(!tree.is_empty());
    assert_same_trace("null-prefix", &tree, &bc);
}
