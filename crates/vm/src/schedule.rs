//! Compact, replayable schedule logs.
//!
//! A [`Schedule`] is the serializable record of one concurrent execution:
//! the machine seed, the producing scheduler, the VM version, and the
//! thread chosen at every scheduling decision. Because the machine is a
//! pure function of `(program, seed, schedule)`, feeding a recorded
//! schedule back through a [`ReplayScheduler`](crate::ReplayScheduler)
//! re-executes the run byte-identically — the mechanism that turns a
//! manifested race from a probabilistic event into a regression artifact.
//!
//! ## The `.sched` text format
//!
//! Line-oriented, human-diffable, stable across platforms:
//!
//! ```text
//! narada-sched v1
//! vm 0.1.0
//! scheduler pct
//! seed 0x2a
//! class C1              # free-form metadata (key value), preserved
//! schedule 0x12 1x5 0x3
//! ```
//!
//! The `schedule` line run-length encodes the choices as `TIDxCOUNT`
//! tokens (`0x12` = thread 0 for 12 consecutive decisions). Unknown keys
//! are collected into [`Schedule::meta`] so higher layers (the race
//! confirmer's fixtures) can round-trip their own metadata — target race
//! key, plan index, expected verdict — through the same file.

use crate::event::ThreadId;
use crate::rng::splitmix64;
use std::fmt;

/// Version string of the VM crate, embedded in every schedule log so a
/// replay can detect that it was recorded by an incompatible interpreter.
pub const VM_VERSION: &str = env!("CARGO_PKG_VERSION");

/// Magic first line of the `.sched` format.
const HEADER: &str = "narada-sched v1";

/// A recorded thread interleaving plus everything needed to replay it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Name of the scheduler that produced the interleaving.
    pub scheduler: String,
    /// Machine seed of the recorded run (drives `rand()`).
    pub seed: u64,
    /// VM version that recorded the schedule.
    pub vm_version: String,
    /// Free-form `key value` metadata, preserved by parse/serialize.
    pub meta: Vec<(String, String)>,
    /// The thread chosen at each scheduling decision, in order.
    pub choices: Vec<ThreadId>,
}

/// Why a `.sched` document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleError(String);

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed schedule: {}", self.0)
    }
}

impl std::error::Error for ScheduleError {}

impl Schedule {
    /// Creates a schedule recorded by `scheduler` under machine `seed`,
    /// stamped with the current [`VM_VERSION`].
    pub fn new(scheduler: impl Into<String>, seed: u64, choices: Vec<ThreadId>) -> Self {
        Schedule {
            scheduler: scheduler.into(),
            seed,
            vm_version: VM_VERSION.to_string(),
            meta: Vec::new(),
            choices,
        }
    }

    /// Attaches a metadata key (builder style).
    #[must_use]
    pub fn with_meta(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.set_meta(key, value);
        self
    }

    /// Sets a metadata key, replacing any existing value.
    pub fn set_meta(&mut self, key: impl Into<String>, value: impl Into<String>) {
        let key = key.into();
        let value = value.into();
        match self.meta.iter_mut().find(|(k, _)| *k == key) {
            Some(slot) => slot.1 = value,
            None => self.meta.push((key, value)),
        }
    }

    /// Looks up a metadata key.
    pub fn meta_get(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Number of scheduling decisions recorded.
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// True when no decisions were recorded.
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }

    /// Number of preemptions: decisions that switched away from the
    /// previously running thread. The quantity ddmin minimization drives
    /// toward zero.
    pub fn preemptions(&self) -> usize {
        self.choices.windows(2).filter(|w| w[0] != w[1]).count()
    }

    /// Stable 64-bit identity of the schedule (scheduler, seed, and the
    /// full choice sequence). Two runs with the same id replay the same
    /// interleaving; rendered as `sched:0x…` in race reports.
    pub fn id(&self) -> u64 {
        let mut h = self.seed ^ (self.choices.len() as u64).rotate_left(17);
        for b in self.scheduler.bytes() {
            h = h.wrapping_mul(0x0100_0000_01b3) ^ u64::from(b);
        }
        for &t in &self.choices {
            h = h.wrapping_mul(0x0100_0000_01b3) ^ u64::from(t.0);
        }
        splitmix64(&mut h)
    }

    /// The run-length encoding `(thread, consecutive decisions)` of the
    /// choice sequence.
    pub fn runs(&self) -> Vec<(ThreadId, u64)> {
        let mut runs: Vec<(ThreadId, u64)> = Vec::new();
        for &t in &self.choices {
            match runs.last_mut() {
                Some((last, n)) if *last == t => *n += 1,
                _ => runs.push((t, 1)),
            }
        }
        runs
    }

    /// Serializes to the `.sched` text format.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{HEADER}");
        let _ = writeln!(out, "vm {}", self.vm_version);
        let _ = writeln!(out, "scheduler {}", self.scheduler);
        let _ = writeln!(out, "seed {:#x}", self.seed);
        for (k, v) in &self.meta {
            let _ = writeln!(out, "{k} {v}");
        }
        let tokens: Vec<String> = self
            .runs()
            .iter()
            .map(|(t, n)| format!("{}x{n}", t.0))
            .collect();
        let _ = writeln!(out, "schedule {}", tokens.join(" "));
        out
    }

    /// Parses the `.sched` text format.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] on a missing header, missing mandatory
    /// keys, or a malformed run-length token.
    pub fn parse(text: &str) -> Result<Schedule, ScheduleError> {
        let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
        match lines.next() {
            Some(HEADER) => {}
            other => {
                return Err(ScheduleError(format!(
                    "expected `{HEADER}` header, got {other:?}"
                )))
            }
        }
        let mut scheduler = None;
        let mut seed = None;
        let mut vm_version = None;
        let mut meta = Vec::new();
        let mut choices = None;
        for line in lines {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once(char::is_whitespace)
                .map(|(k, v)| (k, v.trim()))
                .unwrap_or((line, ""));
            match key {
                "vm" => vm_version = Some(value.to_string()),
                "scheduler" => scheduler = Some(value.to_string()),
                "seed" => seed = Some(parse_u64(value)?),
                "schedule" => {
                    let mut out = Vec::new();
                    for tok in value.split_whitespace() {
                        let (tid, count) = tok.split_once('x').ok_or_else(|| {
                            ScheduleError(format!("bad run token `{tok}` (want TIDxCOUNT)"))
                        })?;
                        let tid: u32 = tid
                            .parse()
                            .map_err(|_| ScheduleError(format!("bad thread id in `{tok}`")))?;
                        let count: u64 = count
                            .parse()
                            .map_err(|_| ScheduleError(format!("bad count in `{tok}`")))?;
                        for _ in 0..count {
                            out.push(ThreadId(tid));
                        }
                    }
                    choices = Some(out);
                }
                _ => meta.push((key.to_string(), value.to_string())),
            }
        }
        Ok(Schedule {
            scheduler: scheduler.ok_or_else(|| ScheduleError("missing `scheduler`".into()))?,
            seed: seed.ok_or_else(|| ScheduleError("missing `seed`".into()))?,
            vm_version: vm_version.unwrap_or_else(|| "unknown".into()),
            meta,
            choices: choices.ok_or_else(|| ScheduleError("missing `schedule` line".into()))?,
        })
    }
}

fn parse_u64(s: &str) -> Result<u64, ScheduleError> {
    let parsed = match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.map_err(|_| ScheduleError(format!("bad number `{s}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schedule {
        Schedule::new(
            "pct",
            0x2a,
            vec![
                ThreadId(0),
                ThreadId(0),
                ThreadId(1),
                ThreadId(1),
                ThreadId(1),
                ThreadId(0),
            ],
        )
        .with_meta("class", "C1")
        .with_meta("verdict", "harmful")
    }

    #[test]
    fn round_trips_through_text() {
        let s = sample();
        let parsed = Schedule::parse(&s.to_text()).unwrap();
        assert_eq!(parsed, s);
        assert_eq!(parsed.id(), s.id());
    }

    #[test]
    fn preemption_count() {
        assert_eq!(sample().preemptions(), 2);
        assert_eq!(Schedule::new("rr", 0, vec![]).preemptions(), 0);
    }

    #[test]
    fn id_depends_on_choices_and_scheduler() {
        let s = sample();
        let mut other = s.clone();
        other.choices.push(ThreadId(1));
        assert_ne!(s.id(), other.id());
        let mut renamed = s.clone();
        renamed.scheduler = "random".into();
        assert_ne!(s.id(), renamed.id());
    }

    #[test]
    fn meta_round_trip_and_overwrite() {
        let mut s = sample();
        assert_eq!(s.meta_get("class"), Some("C1"));
        s.set_meta("class", "C5");
        assert_eq!(s.meta_get("class"), Some("C5"));
        let parsed = Schedule::parse(&s.to_text()).unwrap();
        assert_eq!(parsed.meta_get("class"), Some("C5"));
        assert_eq!(parsed.meta_get("verdict"), Some("harmful"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Schedule::parse("not a schedule").is_err());
        assert!(Schedule::parse("narada-sched v1\nseed 1\nschedule 0x1").is_err());
        assert!(
            Schedule::parse("narada-sched v1\nscheduler r\nseed 1\nschedule zz").is_err(),
            "bad run token must be rejected"
        );
    }

    #[test]
    fn parse_accepts_comments_and_hex() {
        let text = "narada-sched v1\n# comment\nscheduler random\nseed 0xff\nschedule 1x3 0x1\n";
        let s = Schedule::parse(text).unwrap();
        assert_eq!(s.seed, 255);
        assert_eq!(s.choices.len(), 4);
        assert_eq!(s.choices[3], ThreadId(0));
    }
}
