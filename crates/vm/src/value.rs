//! Runtime values.

use std::fmt;

/// A heap object identity. `ObjId`s are never reused within one
/// [`Machine`](crate::Machine), so they double as stable object identities
/// for the race detectors and the synthesizer's collected references.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u32);

impl ObjId {
    /// Dense index of this object in the heap.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// A runtime value: MJ scalars plus heap references.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// The null reference (also the default for uninitialized slots).
    #[default]
    Null,
    /// Reference to a heap object.
    Ref(ObjId),
}

impl Value {
    /// The referenced object, if this is a non-null reference.
    #[inline]
    pub fn as_obj(self) -> Option<ObjId> {
        match self {
            Value::Ref(o) => Some(o),
            _ => None,
        }
    }

    /// The integer payload, if any.
    #[inline]
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(n),
            _ => None,
        }
    }

    /// The boolean payload, if any.
    #[inline]
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// MJ `==` semantics: scalars by value, references by identity,
    /// `null == null`.
    pub fn same(self, other: Value) -> bool {
        self == other
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<ObjId> for Value {
    fn from(o: ObjId) -> Self {
        Value::Ref(o)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Null => write!(f, "null"),
            Value::Ref(o) => write!(f, "{o}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_semantics() {
        assert!(Value::Int(3).same(Value::Int(3)));
        assert!(!Value::Int(3).same(Value::Int(4)));
        assert!(Value::Null.same(Value::Null));
        assert!(Value::Ref(ObjId(1)).same(Value::Ref(ObjId(1))));
        assert!(!Value::Ref(ObjId(1)).same(Value::Ref(ObjId(2))));
        assert!(!Value::Ref(ObjId(1)).same(Value::Null));
        assert!(!Value::Int(0).same(Value::Bool(false)));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(ObjId(2)), Value::Ref(ObjId(2)));
        assert_eq!(Value::default(), Value::Null);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Ref(ObjId(7)).as_obj(), Some(ObjId(7)));
        assert_eq!(Value::Null.as_obj(), None);
        assert_eq!(Value::Int(9).as_int(), Some(9));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(1).as_bool(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Ref(ObjId(3)).to_string(), "o3");
        assert_eq!(Value::Null.to_string(), "null");
    }
}
