//! The shared object heap.
//!
//! Objects are never garbage-collected: the synthesizer (paper §3.4) keeps
//! references to objects collected from suspended seed-test executions, so
//! everything stays live for the duration of one [`Machine`](crate::Machine).
//!
//! ## Copy-on-write marks
//!
//! The snapshot-forking explorer rewinds a heap to a *mark* thousands of
//! times per test, so a full heap clone per probe would dominate. Instead
//! the heap keeps an object-granularity undo log: every object carries an
//! epoch tag, [`Heap::mark`] opens a new epoch, and the first mutation of
//! an object inside an epoch (all mutations funnel through
//! [`Heap::object_mut`]) pushes its pre-image onto the log.
//! [`Heap::rewind`] pops the log back to the mark, restores the
//! pre-images, truncates objects allocated since, and opens a fresh epoch
//! so the next probe re-logs. Until the first mark the log is off
//! (`epoch == 0`) and `object_mut` costs one predictable branch.

use crate::value::{ObjId, Value};
use narada_lang::hir::{ClassId, FieldId, Program, Ty};
use std::collections::HashMap;

/// Payload of one heap object.
#[derive(Debug, Clone)]
pub enum ObjectData {
    /// A class instance with one slot per field (including inherited).
    Instance {
        /// Runtime class.
        class: ClassId,
        /// Field slots, ordered as `Program::fields_of(class)`.
        fields: Vec<Value>,
    },
    /// An array.
    Array {
        /// Element type.
        elem: Ty,
        /// Element slots.
        data: Vec<Value>,
    },
}

/// A heap object: payload plus its monitor.
#[derive(Debug, Clone)]
pub struct Object {
    /// The payload.
    pub data: ObjectData,
    /// Monitor owner (a thread index), if locked.
    pub(crate) lock_owner: Option<u32>,
    /// Re-entrancy count.
    pub(crate) lock_count: u32,
    /// Undo-log epoch this object was last logged (or allocated) in; `0`
    /// everywhere until the first [`Heap::mark`].
    epoch: u64,
}

impl Object {
    /// The runtime class, for instances.
    pub fn class(&self) -> Option<ClassId> {
        match &self.data {
            ObjectData::Instance { class, .. } => Some(*class),
            ObjectData::Array { .. } => None,
        }
    }

    /// True if some thread currently owns this object's monitor.
    pub fn is_locked(&self) -> bool {
        self.lock_owner.is_some()
    }
}

/// The heap: an arena of objects plus per-class field layouts.
#[derive(Debug, Clone)]
pub struct Heap {
    objects: Vec<Object>,
    /// Per-class map field → slot index (includes inherited fields).
    layouts: Vec<HashMap<FieldId, usize>>,
    /// Current undo-log epoch; `0` means no mark has ever been taken and
    /// the log is off.
    epoch: u64,
    /// Copy-on-write pre-images: `(object index, state before its first
    /// mutation in the epoch it was logged in)`.
    undo: Vec<(u32, Object)>,
}

/// A point in a heap's history that [`Heap::rewind`] can restore,
/// returned by [`Heap::mark`]. Rewinding does not consume the mark: the
/// fork explorer rewinds to the same mark once per probe.
#[derive(Debug, Clone, Copy)]
pub struct HeapMark {
    undo_len: usize,
    objects_len: usize,
}

impl Heap {
    /// Creates an empty heap with layouts derived from `prog`.
    pub fn new(prog: &Program) -> Self {
        let layouts = prog
            .classes
            .iter()
            .map(|c| {
                c.all_fields
                    .iter()
                    .enumerate()
                    .map(|(i, &f)| (f, i))
                    .collect()
            })
            .collect();
        Heap {
            objects: Vec::new(),
            layouts,
            epoch: 0,
            undo: Vec::new(),
        }
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when no objects have been allocated.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Allocates an instance of `class` with default field values
    /// (`0`, `false`, `null`).
    pub fn alloc_instance(&mut self, prog: &Program, class: ClassId) -> ObjId {
        let nfields = prog.fields_of(class).len();
        let fields = prog
            .fields_of(class)
            .iter()
            .map(|&f| default_value(&prog.field(f).ty))
            .collect::<Vec<_>>();
        debug_assert_eq!(fields.len(), nfields);
        self.push(Object {
            data: ObjectData::Instance { class, fields },
            lock_owner: None,
            lock_count: 0,
            epoch: self.epoch,
        })
    }

    /// Allocates an array of `len` default-valued elements.
    pub fn alloc_array(&mut self, elem: Ty, len: usize) -> ObjId {
        let fill = default_value(&elem);
        self.push(Object {
            data: ObjectData::Array {
                elem,
                data: vec![fill; len],
            },
            lock_owner: None,
            lock_count: 0,
            epoch: self.epoch,
        })
    }

    fn push(&mut self, obj: Object) -> ObjId {
        let id = ObjId(self.objects.len() as u32);
        self.objects.push(obj);
        id
    }

    // ------------------------------------------------------------------
    // Copy-on-write marks (see the module docs)
    // ------------------------------------------------------------------

    /// Opens a new undo epoch and returns a mark [`Heap::rewind`] can
    /// restore. Marks nest: rewinding to an outer mark also undoes
    /// everything an inner mark saw. Once the first mark is taken the
    /// undo log stays armed for the heap's lifetime (until
    /// [`Heap::clear_history`]); mutation cost is one pre-image clone per
    /// object per epoch.
    pub fn mark(&mut self) -> HeapMark {
        self.epoch += 1;
        HeapMark {
            undo_len: self.undo.len(),
            objects_len: self.objects.len(),
        }
    }

    /// Restores the heap to the state captured by `mark`: pre-images are
    /// written back newest-first, objects allocated since are truncated,
    /// and a fresh epoch opens so subsequent mutations re-log. The mark
    /// stays valid for further rewinds.
    ///
    /// # Panics
    ///
    /// Panics if `mark` came from a different heap history (its lengths
    /// exceed the current log).
    pub fn rewind(&mut self, mark: &HeapMark) {
        assert!(
            mark.undo_len <= self.undo.len() && mark.objects_len <= self.objects.len(),
            "heap mark from a different history"
        );
        while self.undo.len() > mark.undo_len {
            let (idx, pre) = self.undo.pop().expect("undo entry");
            // Pre-images of objects allocated after the mark die with the
            // truncation below.
            if (idx as usize) < mark.objects_len {
                self.objects[idx as usize] = pre;
            }
        }
        self.objects.truncate(mark.objects_len);
        self.epoch += 1;
    }

    /// Drops the undo log and disarms copy-on-write logging (objects keep
    /// their tags; a later [`Heap::mark`] re-arms). Used when a machine is
    /// restored from an owned snapshot, whose heap copy starts history
    /// afresh.
    pub(crate) fn clear_history(&mut self) {
        self.undo.clear();
        self.epoch = 0;
    }

    /// Number of pre-images currently in the undo log (test introspection).
    pub fn undo_len(&self) -> usize {
        self.undo.len()
    }

    /// Rough byte footprint of the live objects (payload slots plus fixed
    /// per-object overhead) — the `explore.snapshot_bytes` input. An
    /// estimate, not an allocator measurement, but a deterministic one.
    pub fn approx_bytes(&self) -> u64 {
        self.objects
            .iter()
            .map(|o| {
                let slots = match &o.data {
                    ObjectData::Instance { fields, .. } => fields.len(),
                    ObjectData::Array { data, .. } => data.len(),
                };
                (std::mem::size_of::<Object>() + slots * std::mem::size_of::<Value>()) as u64
            })
            .sum()
    }

    /// Deterministic full-state render: one line per object with payload,
    /// values, and monitor state, in allocation order. Two heaps render
    /// identically iff they are observationally identical — the byte
    /// surface the snapshot round-trip property tests compare.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, o) in self.objects.iter().enumerate() {
            let _ = write!(out, "#{i} ");
            match &o.data {
                ObjectData::Instance { class, fields } => {
                    let _ = write!(out, "instance c{}", class.index());
                    for f in fields {
                        let _ = write!(out, " {f}");
                    }
                }
                ObjectData::Array { data, .. } => {
                    let _ = write!(out, "array[{}]", data.len());
                    for e in data {
                        let _ = write!(out, " {e}");
                    }
                }
            }
            match o.lock_owner {
                Some(t) => {
                    let _ = writeln!(out, " lock=t{}x{}", t, o.lock_count);
                }
                None => {
                    let _ = writeln!(out, " unlocked");
                }
            }
        }
        out
    }

    /// Immutable access to an object.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not allocated by this heap.
    #[inline]
    pub fn object(&self, id: ObjId) -> &Object {
        &self.objects[id.index()]
    }

    #[inline]
    pub(crate) fn object_mut(&mut self, id: ObjId) -> &mut Object {
        let i = id.index();
        // COW hook: with a mark armed, log the object's pre-image the
        // first time it is mutably touched inside the current epoch.
        if self.epoch != 0 && self.objects[i].epoch != self.epoch {
            let pre = self.objects[i].clone();
            self.objects[i].epoch = self.epoch;
            self.undo.push((id.0, pre));
        }
        &mut self.objects[i]
    }

    /// The runtime class of `id`, if it is an instance.
    pub fn class_of(&self, id: ObjId) -> Option<ClassId> {
        self.object(id).class()
    }

    /// Slot index of `field` in instances of `class`.
    ///
    /// # Panics
    ///
    /// Panics if `field` is not a field of `class` — the type checker rules
    /// that out for well-typed programs.
    pub fn field_slot(&self, class: ClassId, field: FieldId) -> usize {
        self.layouts[class.index()][&field]
    }

    /// Reads `obj.field`.
    #[inline]
    pub fn get_field(&self, obj: ObjId, field: FieldId) -> Value {
        match &self.object(obj).data {
            ObjectData::Instance { class, fields } => fields[self.field_slot(*class, field)],
            ObjectData::Array { .. } => panic!("field read on array {obj}"),
        }
    }

    /// Reads the field at a statically-resolved layout `slot` — the
    /// bytecode engine's field access (slots are burned into the ops at
    /// compile time, skipping the per-class layout probe).
    ///
    /// # Panics
    ///
    /// Panics if `obj` is an array or `slot` is out of range; the
    /// compiler only emits slots for well-typed instance accesses.
    #[inline]
    pub(crate) fn get_slot(&self, obj: ObjId, slot: u32) -> Value {
        match &self.object(obj).data {
            ObjectData::Instance { fields, .. } => fields[slot as usize],
            ObjectData::Array { .. } => panic!("field read on array {obj}"),
        }
    }

    /// Writes the field at a statically-resolved layout `slot` (see
    /// [`Heap::get_slot`]).
    #[inline]
    pub(crate) fn set_slot(&mut self, obj: ObjId, slot: u32, value: Value) {
        match &mut self.object_mut(obj).data {
            ObjectData::Instance { fields, .. } => fields[slot as usize] = value,
            ObjectData::Array { .. } => panic!("field write on array {obj}"),
        }
    }

    /// Writes `obj.field := value`.
    pub fn set_field(&mut self, obj: ObjId, field: FieldId, value: Value) {
        let slot = match &self.object(obj).data {
            ObjectData::Instance { class, .. } => self.field_slot(*class, field),
            ObjectData::Array { .. } => panic!("field write on array {obj}"),
        };
        match &mut self.object_mut(obj).data {
            ObjectData::Instance { fields, .. } => fields[slot] = value,
            ObjectData::Array { .. } => unreachable!(),
        }
    }

    /// Array length of `obj`.
    pub fn array_len(&self, obj: ObjId) -> usize {
        match &self.object(obj).data {
            ObjectData::Array { data, .. } => data.len(),
            ObjectData::Instance { .. } => panic!("length of non-array {obj}"),
        }
    }

    /// Reads `obj[idx]`; `None` when out of bounds.
    pub fn get_elem(&self, obj: ObjId, idx: i64) -> Option<Value> {
        match &self.object(obj).data {
            ObjectData::Array { data, .. } => {
                usize::try_from(idx).ok().and_then(|i| data.get(i).copied())
            }
            ObjectData::Instance { .. } => panic!("index read on non-array {obj}"),
        }
    }

    /// Writes `obj[idx] := value`; `false` when out of bounds.
    #[must_use]
    pub fn set_elem(&mut self, obj: ObjId, idx: i64, value: Value) -> bool {
        match &mut self.object_mut(obj).data {
            ObjectData::Array { data, .. } => {
                match usize::try_from(idx).ok().and_then(|i| data.get_mut(i)) {
                    Some(slot) => {
                        *slot = value;
                        true
                    }
                    None => false,
                }
            }
            ObjectData::Instance { .. } => panic!("index write on non-array {obj}"),
        }
    }
}

/// Default value for a type: `0`, `false`, or `null`.
pub fn default_value(ty: &Ty) -> Value {
    match ty {
        Ty::Int => Value::Int(0),
        Ty::Bool => Value::Bool(false),
        _ => Value::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use narada_lang::compile;

    fn heap_and_prog() -> (Program, Heap) {
        let prog = compile(
            r#"
            class Base { int a; Base link; }
            class Derived extends Base { bool flag; }
        "#,
        )
        .unwrap();
        let heap = Heap::new(&prog);
        (prog, heap)
    }

    #[test]
    fn instance_defaults() {
        let (prog, mut heap) = heap_and_prog();
        let derived = prog.class_by_name("Derived").unwrap();
        let o = heap.alloc_instance(&prog, derived);
        let a = prog.field_by_name(derived, "a").unwrap();
        let link = prog.field_by_name(derived, "link").unwrap();
        let flag = prog.field_by_name(derived, "flag").unwrap();
        assert_eq!(heap.get_field(o, a), Value::Int(0));
        assert_eq!(heap.get_field(o, link), Value::Null);
        assert_eq!(heap.get_field(o, flag), Value::Bool(false));
    }

    #[test]
    fn inherited_field_slots_work() {
        let (prog, mut heap) = heap_and_prog();
        let derived = prog.class_by_name("Derived").unwrap();
        let o = heap.alloc_instance(&prog, derived);
        let a = prog.field_by_name(derived, "a").unwrap();
        heap.set_field(o, a, Value::Int(42));
        assert_eq!(heap.get_field(o, a), Value::Int(42));
    }

    #[test]
    fn arrays() {
        let (_, mut heap) = heap_and_prog();
        let a = heap.alloc_array(Ty::Int, 3);
        assert_eq!(heap.array_len(a), 3);
        assert_eq!(heap.get_elem(a, 0), Some(Value::Int(0)));
        assert!(heap.set_elem(a, 2, Value::Int(9)));
        assert_eq!(heap.get_elem(a, 2), Some(Value::Int(9)));
        assert_eq!(heap.get_elem(a, 3), None);
        assert_eq!(heap.get_elem(a, -1), None);
        assert!(!heap.set_elem(a, 3, Value::Int(1)));
        assert!(!heap.set_elem(a, -5, Value::Int(1)));
    }

    #[test]
    fn object_identity_distinct() {
        let (prog, mut heap) = heap_and_prog();
        let base = prog.class_by_name("Base").unwrap();
        let o1 = heap.alloc_instance(&prog, base);
        let o2 = heap.alloc_instance(&prog, base);
        assert_ne!(o1, o2);
        assert_eq!(heap.len(), 2);
        assert_eq!(heap.class_of(o1), Some(base));
    }

    #[test]
    fn array_has_no_class() {
        let (_, mut heap) = heap_and_prog();
        let a = heap.alloc_array(Ty::Bool, 1);
        assert_eq!(heap.class_of(a), None);
        assert!(!heap.object(a).is_locked());
    }

    #[test]
    fn mark_rewind_restores_mutations_and_allocations() {
        let (prog, mut heap) = heap_and_prog();
        let base = prog.class_by_name("Base").unwrap();
        let a = prog.field_by_name(base, "a").unwrap();
        let o = heap.alloc_instance(&prog, base);
        heap.set_field(o, a, Value::Int(1));
        let before = heap.render();

        let mark = heap.mark();
        heap.set_field(o, a, Value::Int(99));
        heap.set_field(o, a, Value::Int(100)); // second write, same epoch: one log entry
        let fresh = heap.alloc_instance(&prog, base);
        heap.set_field(fresh, a, Value::Int(7));
        assert_eq!(heap.undo_len(), 1, "fresh objects are never logged");
        assert_eq!(heap.len(), 2);

        heap.rewind(&mark);
        assert_eq!(heap.render(), before);
        assert_eq!(heap.len(), 1);
        assert_eq!(heap.get_field(o, a), Value::Int(1));
    }

    #[test]
    fn mark_is_reusable_across_probes() {
        let (prog, mut heap) = heap_and_prog();
        let base = prog.class_by_name("Base").unwrap();
        let a = prog.field_by_name(base, "a").unwrap();
        let o = heap.alloc_instance(&prog, base);
        let before = heap.render();
        let mark = heap.mark();
        for probe in 0..5 {
            heap.set_field(o, a, Value::Int(probe));
            heap.alloc_array(Ty::Int, 4);
            heap.rewind(&mark);
            assert_eq!(heap.render(), before, "probe {probe}");
        }
    }

    #[test]
    fn nested_marks_rewind_to_outer() {
        let (prog, mut heap) = heap_and_prog();
        let base = prog.class_by_name("Base").unwrap();
        let a = prog.field_by_name(base, "a").unwrap();
        let o = heap.alloc_instance(&prog, base);
        let outer_render = heap.render();
        let outer = heap.mark();
        heap.set_field(o, a, Value::Int(1));
        let inner_render = heap.render();
        let inner = heap.mark();
        heap.set_field(o, a, Value::Int(2));
        heap.rewind(&inner);
        assert_eq!(heap.render(), inner_render);
        heap.rewind(&outer);
        assert_eq!(heap.render(), outer_render);
    }

    #[test]
    fn rewind_restores_lock_state() {
        let (prog, mut heap) = heap_and_prog();
        let base = prog.class_by_name("Base").unwrap();
        let o = heap.alloc_instance(&prog, base);
        let mark = heap.mark();
        let obj = heap.object_mut(o);
        obj.lock_owner = Some(1);
        obj.lock_count = 2;
        assert!(heap.object(o).is_locked());
        heap.rewind(&mark);
        assert!(!heap.object(o).is_locked());
    }

    #[test]
    fn approx_bytes_tracks_payload() {
        let (_, mut heap) = heap_and_prog();
        let empty = heap.approx_bytes();
        heap.alloc_array(Ty::Int, 100);
        assert!(heap.approx_bytes() > empty + 100 * std::mem::size_of::<Value>() as u64 / 2);
    }
}
