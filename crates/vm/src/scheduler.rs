//! Thread schedulers for concurrent execution.
//!
//! The machine asks the scheduler which runnable thread should execute the
//! next instruction. Schedulers may inspect the machine (e.g. preview the
//! next access of each thread) — the RaceFuzzer-style confirmer in
//! `narada-detect` uses exactly this hook.

use crate::event::ThreadId;
use crate::machine::Machine;
use crate::rng::SplitMix64;
use crate::schedule::Schedule;

/// Chooses which runnable thread steps next.
pub trait Scheduler {
    /// Picks one element of `runnable` (guaranteed non-empty).
    fn choose(&mut self, machine: &Machine<'_>, runnable: &[ThreadId]) -> ThreadId;

    /// Human-readable name for reports.
    fn name(&self) -> &str {
        "scheduler"
    }

    /// Priority-change points actually consumed so far. Only directed
    /// strategies (PCT) spend change points; everything else reports 0,
    /// which the exploration telemetry sums into
    /// `explore.change_points_probed`.
    fn change_points_probed(&self) -> u64 {
        0
    }
}

impl<S: Scheduler + ?Sized> Scheduler for &mut S {
    fn choose(&mut self, machine: &Machine<'_>, runnable: &[ThreadId]) -> ThreadId {
        (**self).choose(machine, runnable)
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn change_points_probed(&self) -> u64 {
        (**self).change_points_probed()
    }
}

/// Deterministic round-robin over runnable threads.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// Creates a round-robin scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobin {
    fn choose(&mut self, _machine: &Machine<'_>, runnable: &[ThreadId]) -> ThreadId {
        let pick = runnable[self.next % runnable.len()];
        self.next = self.next.wrapping_add(1);
        pick
    }

    fn name(&self) -> &str {
        "round-robin"
    }
}

/// Uniformly random interleaving with an optional "stickiness" bias that
/// keeps running the same thread for short bursts, mimicking real
/// preemption granularity.
#[derive(Debug)]
pub struct RandomScheduler {
    rng: SplitMix64,
    /// Probability (0–100) of staying on the previously chosen thread when
    /// it is still runnable.
    stay_percent: u8,
    last: Option<ThreadId>,
}

impl RandomScheduler {
    /// Creates a seeded uniform scheduler.
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            rng: SplitMix64::seed_from_u64(seed),
            stay_percent: 0,
            last: None,
        }
    }

    /// Creates a seeded scheduler that keeps the current thread running
    /// with the given probability (percent).
    pub fn with_stickiness(seed: u64, stay_percent: u8) -> Self {
        RandomScheduler {
            rng: SplitMix64::seed_from_u64(seed),
            stay_percent: stay_percent.min(100),
            last: None,
        }
    }
}

impl Scheduler for RandomScheduler {
    fn choose(&mut self, _machine: &Machine<'_>, runnable: &[ThreadId]) -> ThreadId {
        if let Some(last) = self.last {
            if runnable.contains(&last) && self.rng.gen_range(0..100) < self.stay_percent {
                return last;
            }
        }
        let pick = runnable[self.rng.gen_range(0..runnable.len())];
        self.last = Some(pick);
        pick
    }

    fn name(&self) -> &str {
        "random"
    }
}

/// PCT — probabilistic concurrency testing (Burckhardt et al., ASPLOS
/// 2010): bounded-preemption priority scheduling. Every thread receives a
/// random high priority; `depth − 1` *priority-change points* are sampled
/// uniformly over an expected execution `horizon`; between change points
/// the highest-priority runnable thread runs uninterrupted, and at each
/// change point the currently favoured thread is demoted below every
/// other. For a bug of preemption depth `d`, one run manifests it with
/// probability ≥ 1/(n·kᵈ⁻¹) — far better than uniform random
/// interleaving, whose preemptions scatter over the whole run.
#[derive(Debug)]
pub struct PctScheduler {
    rng: SplitMix64,
    /// Sorted remaining change points (scheduling-decision indices).
    change_points: Vec<u64>,
    /// Demotion rank handed out at the next change point (0 = lowest).
    next_demotion: u64,
    /// Per-thread priority, lazily assigned; higher runs first. Demoted
    /// threads get values below `DEMOTED_BAND`.
    priorities: Vec<u64>,
    /// Scheduling decisions taken so far.
    step: u64,
    /// Change points consumed (popped at their decision index).
    probed: u64,
    depth: usize,
    horizon: u64,
}

/// Priorities at or above this value are "high" (initial random band);
/// demotions assign 0, 1, 2, … so earlier demotions sink deeper.
const DEMOTED_BAND: u64 = 1 << 32;

impl PctScheduler {
    /// Creates a PCT scheduler with `depth` (total priority budget, ≥ 1;
    /// `depth − 1` change points) over an expected run length of
    /// `horizon` scheduling decisions.
    pub fn new(seed: u64, depth: usize, horizon: u64) -> Self {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let horizon = horizon.max(1);
        let mut change_points: Vec<u64> = (0..depth.saturating_sub(1))
            .map(|_| rng.gen_range(0..horizon))
            .collect();
        change_points.sort_unstable();
        change_points.reverse(); // pop() yields the earliest
        PctScheduler {
            rng,
            change_points,
            next_demotion: 0,
            priorities: Vec::new(),
            step: 0,
            probed: 0,
            depth,
            horizon,
        }
    }

    /// The configured preemption depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The configured horizon (change-point sampling range).
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    fn priority(&mut self, tid: ThreadId) -> u64 {
        let i = tid.index();
        while self.priorities.len() <= i {
            // Random distinct-with-high-probability priorities in the
            // high band; ties broken by thread id below.
            let p = DEMOTED_BAND + (self.rng.next_u64() >> 16);
            self.priorities.push(p);
        }
        self.priorities[i]
    }

    fn top(&mut self, runnable: &[ThreadId]) -> ThreadId {
        let mut best = runnable[0];
        let mut best_p = self.priority(best);
        for &t in &runnable[1..] {
            let p = self.priority(t);
            if p > best_p || (p == best_p && t.0 > best.0) {
                best = t;
                best_p = p;
            }
        }
        best
    }
}

impl Scheduler for PctScheduler {
    fn choose(&mut self, _machine: &Machine<'_>, runnable: &[ThreadId]) -> ThreadId {
        let mut pick = self.top(runnable);
        // `while`: coinciding change points each demote the current top.
        while self.change_points.last() == Some(&self.step) {
            self.change_points.pop();
            self.probed += 1;
            // Demote the thread that *would* run now below every other.
            self.priorities[pick.index()] = self.next_demotion;
            self.next_demotion += 1;
            pick = self.top(runnable);
        }
        self.step += 1;
        pick
    }

    fn name(&self) -> &str {
        "pct"
    }

    fn change_points_probed(&self) -> u64 {
        self.probed
    }
}

/// Runs the first runnable thread to completion before the next — the
/// *serialized* schedule used as the ConTeGe baseline's oracle reference.
#[derive(Debug, Default)]
pub struct SerialScheduler;

impl SerialScheduler {
    /// Creates a serializing scheduler.
    pub fn new() -> Self {
        SerialScheduler
    }
}

impl Scheduler for SerialScheduler {
    fn choose(&mut self, _machine: &Machine<'_>, runnable: &[ThreadId]) -> ThreadId {
        runnable[0]
    }

    fn name(&self) -> &str {
        "serial"
    }
}

/// Wraps another scheduler, recording every choice so the exact
/// interleaving can be replayed later with [`ReplayScheduler`] — the
/// mechanism behind "automatically reproduced" races: once a schedule
/// manifests a race, it can be re-executed deterministically.
#[derive(Debug)]
pub struct RecordingScheduler<S> {
    inner: S,
    /// The recorded choices, in order.
    pub choices: Vec<ThreadId>,
}

impl<S: Scheduler> RecordingScheduler<S> {
    /// Wraps `inner`.
    pub fn new(inner: S) -> Self {
        RecordingScheduler {
            inner,
            choices: Vec::new(),
        }
    }

    /// The recorded schedule.
    pub fn into_schedule(self) -> Vec<ThreadId> {
        self.choices
    }

    /// Packages the recorded choices as a replayable [`Schedule`], named
    /// after the inner scheduler and stamped with the machine seed of the
    /// recorded run.
    pub fn to_schedule(&self, machine_seed: u64) -> Schedule {
        Schedule::new(self.inner.name(), machine_seed, self.choices.clone())
    }
}

impl<S: Scheduler> Scheduler for RecordingScheduler<S> {
    fn choose(&mut self, machine: &Machine<'_>, runnable: &[ThreadId]) -> ThreadId {
        let pick = self.inner.choose(machine, runnable);
        self.choices.push(pick);
        pick
    }

    fn name(&self) -> &str {
        "recording"
    }

    fn change_points_probed(&self) -> u64 {
        self.inner.change_points_probed()
    }
}

/// Wraps another scheduler, streaming every decision into the telemetry
/// registry: `sched.decisions` counts choices, `sched.preemptions` counts
/// choices that switched away from a still-runnable thread. Both are
/// commutative counter sums, so totals are identical at any `--threads`
/// value even when many observed runs share one registry.
#[derive(Debug)]
pub struct ObservedScheduler<S> {
    inner: S,
    decisions: narada_obs::Counter,
    preemptions: narada_obs::Counter,
    last: Option<ThreadId>,
}

impl<S: Scheduler> ObservedScheduler<S> {
    /// Wraps `inner`, recording into `metrics`.
    pub fn new(inner: S, metrics: &narada_obs::Metrics) -> Self {
        ObservedScheduler {
            inner,
            decisions: metrics.counter("sched.decisions"),
            preemptions: metrics.counter("sched.preemptions"),
            last: None,
        }
    }

    /// The wrapped scheduler.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Scheduler> Scheduler for ObservedScheduler<S> {
    fn choose(&mut self, machine: &Machine<'_>, runnable: &[ThreadId]) -> ThreadId {
        let pick = self.inner.choose(machine, runnable);
        self.decisions.inc();
        if let Some(last) = self.last {
            if pick != last && runnable.contains(&last) {
                self.preemptions.inc();
            }
        }
        self.last = Some(pick);
        pick
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn change_points_probed(&self) -> u64 {
        self.inner.change_points_probed()
    }
}

/// Replays a recorded schedule step for step. When the recording is
/// exhausted (or the recorded thread is no longer runnable — which cannot
/// happen when replaying against the same deterministic program and seed),
/// it falls back to the first runnable thread.
#[derive(Debug)]
pub struct ReplayScheduler {
    schedule: Vec<ThreadId>,
    pos: usize,
    divergences: usize,
}

impl ReplayScheduler {
    /// Creates a replayer for a recorded schedule.
    pub fn new(schedule: Vec<ThreadId>) -> Self {
        ReplayScheduler {
            schedule,
            pos: 0,
            divergences: 0,
        }
    }

    /// Creates a replayer for a parsed [`Schedule`] log. The machine must
    /// be constructed with the same seed ([`Schedule::seed`]) for the
    /// replay to be byte-identical.
    pub fn from_schedule(schedule: &Schedule) -> Self {
        Self::new(schedule.choices.clone())
    }

    /// True when every recorded choice was consumed.
    pub fn exhausted(&self) -> bool {
        self.pos >= self.schedule.len()
    }

    /// Number of decisions where the recorded thread was not runnable and
    /// the fallback was used. Non-zero means the replayed program or seed
    /// differs from the recording — a faithful replay reports 0.
    pub fn divergences(&self) -> usize {
        self.divergences
    }
}

impl Scheduler for ReplayScheduler {
    fn choose(&mut self, _machine: &Machine<'_>, runnable: &[ThreadId]) -> ThreadId {
        let recorded = self.schedule.get(self.pos).copied();
        self.pos += 1;
        match recorded {
            Some(t) if runnable.contains(&t) => t,
            _ => {
                self.divergences += 1;
                runnable[0]
            }
        }
    }

    fn name(&self) -> &str {
        "replay"
    }
}

/// Follows a sequence of `(thread, steps)` segments — the candidate
/// schedules ddmin minimization probes. A segment whose thread is no
/// longer runnable (finished, blocked, parked) is skipped; when all
/// segments are consumed the scheduler degenerates to serial execution.
/// Unlike [`ReplayScheduler`], infeasible candidates are tolerated rather
/// than diverging step counts: the point is to *search* schedules, not to
/// reproduce one exactly.
#[derive(Debug)]
pub struct SegmentScheduler {
    segments: Vec<(ThreadId, u64)>,
    pos: usize,
    used: u64,
}

impl SegmentScheduler {
    /// Creates a scheduler following `segments` in order.
    pub fn new(segments: Vec<(ThreadId, u64)>) -> Self {
        SegmentScheduler {
            segments,
            pos: 0,
            used: 0,
        }
    }
}

impl Scheduler for SegmentScheduler {
    fn choose(&mut self, _machine: &Machine<'_>, runnable: &[ThreadId]) -> ThreadId {
        while let Some(&(tid, len)) = self.segments.get(self.pos) {
            if self.used >= len || !runnable.contains(&tid) {
                self.pos += 1;
                self.used = 0;
                continue;
            }
            self.used += 1;
            return tid;
        }
        runnable[0]
    }

    fn name(&self) -> &str {
        "segments"
    }
}

/// A scheduler family selectable from configuration (the CLI's
/// `--strategy` flag): how the exploration engine interleaves threads
/// when hunting for a race manifestation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum ScheduleStrategy {
    /// Uniformly random interleaving ([`RandomScheduler`]).
    #[default]
    Random,
    /// Random with a bias to keep running the current thread
    /// ([`RandomScheduler::with_stickiness`]).
    Sticky {
        /// Probability (percent) of staying on the current thread.
        stay_percent: u8,
    },
    /// PCT bounded-preemption priority scheduling ([`PctScheduler`]).
    Pct {
        /// Priority-change budget (`depth − 1` change points).
        depth: usize,
    },
    /// Deterministic round-robin ([`RoundRobin`]).
    RoundRobin,
}

impl ScheduleStrategy {
    /// Parses a `--strategy` value: `random`, `sticky[:PERCENT]`,
    /// `pct[:DEPTH]`, or `rr`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown names or bad numbers.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (name, arg) = match s.split_once(':') {
            Some((n, a)) => (n, Some(a)),
            None => (s, None),
        };
        let num = |default: u64| -> Result<u64, String> {
            match arg {
                None => Ok(default),
                Some(a) => a
                    .parse()
                    .map_err(|_| format!("bad strategy argument `{a}` in `{s}`")),
            }
        };
        match name {
            "random" => Ok(ScheduleStrategy::Random),
            "sticky" => Ok(ScheduleStrategy::Sticky {
                stay_percent: num(90)?.min(100) as u8,
            }),
            "pct" => Ok(ScheduleStrategy::Pct {
                depth: num(3)?.max(1) as usize,
            }),
            "rr" | "round-robin" => Ok(ScheduleStrategy::RoundRobin),
            _ => Err(format!(
                "unknown strategy `{s}` (expected pct[:DEPTH], random, sticky[:PERCENT], rr)"
            )),
        }
    }

    /// Overrides the PCT depth (no-op for other strategies).
    #[must_use]
    pub fn with_depth(self, depth: usize) -> Self {
        match self {
            ScheduleStrategy::Pct { .. } => ScheduleStrategy::Pct {
                depth: depth.max(1),
            },
            other => other,
        }
    }

    /// Instantiates the scheduler. `horizon` is the expected number of
    /// scheduling decisions of one run (PCT samples its change points in
    /// that range; other strategies ignore it).
    pub fn build(&self, seed: u64, horizon: u64) -> Box<dyn Scheduler> {
        match *self {
            ScheduleStrategy::Random => Box::new(RandomScheduler::new(seed)),
            ScheduleStrategy::Sticky { stay_percent } => {
                Box::new(RandomScheduler::with_stickiness(seed, stay_percent))
            }
            ScheduleStrategy::Pct { depth } => Box::new(PctScheduler::new(seed, depth, horizon)),
            ScheduleStrategy::RoundRobin => Box::new(RoundRobin::new()),
        }
    }

    /// The strategy's display name (matches [`Scheduler::name`] of the
    /// built scheduler, plus parameters).
    pub fn label(&self) -> String {
        match *self {
            ScheduleStrategy::Random => "random".into(),
            ScheduleStrategy::Sticky { stay_percent } => format!("sticky:{stay_percent}"),
            ScheduleStrategy::Pct { depth } => format!("pct:{depth}"),
            ScheduleStrategy::RoundRobin => "rr".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use narada_lang::lower::lower_program;

    fn two_thread_machine(src: &str) -> (narada_lang::hir::Program, narada_lang::mir::MirProgram) {
        let prog = narada_lang::compile(src).expect("test program compiles");
        let mir = lower_program(&prog);
        (prog, mir)
    }

    const SRC: &str = r#"
        class C {
            int x;
            void bump() {
                var i = 0;
                while (i < 20) { this.x = this.x + 1; i = i + 1; }
            }
        }
        test seed { var c = new C(); c.bump(); }
    "#;

    /// Spawns two `bump` threads and runs them under `sched`, returning
    /// the recorded choice sequence.
    fn drive(sched: &mut dyn Scheduler, seed: u64) -> Vec<ThreadId> {
        let (prog, mir) = two_thread_machine(SRC);
        let mut m = crate::Machine::new(
            &prog,
            &mir,
            crate::MachineOptions {
                seed,
                ..Default::default()
            },
        );
        let mut sink = crate::NullSink;
        let c = m
            .heap
            .alloc_instance(&prog, prog.class_by_name("C").unwrap());
        let bump = prog.methods.iter().find(|mm| mm.name == "bump").unwrap().id;
        m.spawn_invoke(bump, Some(crate::Value::Ref(c)), vec![], &mut sink)
            .unwrap();
        m.spawn_invoke(bump, Some(crate::Value::Ref(c)), vec![], &mut sink)
            .unwrap();
        let mut rec = RecordingScheduler::new(sched);
        let outcome = m.run_threads(&mut rec, &mut sink, 100_000);
        assert_eq!(outcome, crate::RunOutcome::Completed);
        rec.into_schedule()
    }

    #[test]
    fn pct_is_deterministic_given_seed() {
        let a = drive(&mut PctScheduler::new(7, 3, 256), 1);
        let b = drive(&mut PctScheduler::new(7, 3, 256), 1);
        assert_eq!(a, b);
    }

    #[test]
    fn pct_bounds_preemptions_by_depth() {
        // With d priority values there are at most d − 1 change points;
        // every other context switch can only come from thread completion
        // or blocking, of which this program has at most one per thread.
        for seed in 0..32u64 {
            let choices = drive(&mut PctScheduler::new(seed, 3, 256), seed);
            let sched = Schedule::new("pct", seed, choices);
            assert!(
                sched.preemptions() <= 2 + 2,
                "seed {seed}: {} preemptions exceed depth+completions budget",
                sched.preemptions()
            );
        }
    }

    #[test]
    fn pct_depth_one_is_priority_serial() {
        // No change points: the highest-priority thread runs to completion
        // before the other starts (one switch at thread exit).
        let choices = drive(&mut PctScheduler::new(3, 1, 256), 3);
        let sched = Schedule::new("pct", 3, choices);
        assert!(sched.preemptions() <= 1, "{:?}", sched.runs());
    }

    #[test]
    fn pct_counts_consumed_change_points() {
        // depth 1 → no change points, nothing to probe.
        let mut serialish = PctScheduler::new(3, 1, 256);
        drive(&mut serialish, 3);
        assert_eq!(serialish.change_points_probed(), 0);
        // depth 3 over a short horizon → both change points land inside
        // the run and are consumed; wrappers forward the count.
        let mut pct = PctScheduler::new(7, 3, 64);
        let mut rec = RecordingScheduler::new(&mut pct);
        drive(&mut rec, 1);
        assert_eq!(rec.change_points_probed(), 2);
        assert_eq!(pct.change_points_probed(), 2);
    }

    #[test]
    fn observed_scheduler_streams_decision_counters() {
        let metrics = narada_obs::Metrics::new();
        let mut obs = ObservedScheduler::new(RandomScheduler::new(99), &metrics);
        let choices = drive(&mut obs, 5);
        assert_eq!(
            metrics.counter("sched.decisions").get(),
            choices.len() as u64
        );
        // True preemptions (switching off a still-runnable thread) are a
        // subset of all context switches.
        let switches = Schedule::new("random", 5, choices).preemptions() as u64;
        let preemptions = metrics.counter("sched.preemptions").get();
        assert!(preemptions <= switches, "{preemptions} > {switches}");
        assert!(
            preemptions > 0,
            "a random schedule of two contended threads preempts"
        );
        // And the wrapper is transparent to the recorded interleaving.
        let replayed = drive(&mut RandomScheduler::new(99), 5);
        let again = drive(
            &mut ObservedScheduler::new(RandomScheduler::new(99), &metrics),
            5,
        );
        assert_eq!(replayed, again);
    }

    #[test]
    fn replay_reproduces_recorded_run() {
        let choices = drive(&mut RandomScheduler::new(99), 5);
        let replayed = drive(&mut ReplayScheduler::new(choices.clone()), 5);
        assert_eq!(choices, replayed, "replay must follow the recording");
    }

    #[test]
    fn replay_counts_divergences() {
        // A schedule naming a thread that is never runnable diverges.
        let mut r = ReplayScheduler::new(vec![ThreadId(7); 4]);
        let _ = drive(&mut r, 5);
        assert!(r.divergences() > 0);
    }

    #[test]
    fn segment_scheduler_follows_then_falls_back_serial() {
        let choices = drive(
            &mut SegmentScheduler::new(vec![(ThreadId(1), 5), (ThreadId(2), 3), (ThreadId(1), 2)]),
            5,
        );
        assert_eq!(&choices[..5], &[ThreadId(1); 5]);
        assert_eq!(&choices[5..8], &[ThreadId(2); 3]);
        assert_eq!(&choices[8..10], &[ThreadId(1); 2]);
        // Tail is serial: lowest runnable thread first, no interleaving.
        let tail = Schedule::new("segments", 0, choices[10..].to_vec());
        assert!(tail.preemptions() <= 1, "{:?}", tail.runs());
    }

    #[test]
    fn strategy_parsing() {
        assert_eq!(
            ScheduleStrategy::parse("pct").unwrap(),
            ScheduleStrategy::Pct { depth: 3 }
        );
        assert_eq!(
            ScheduleStrategy::parse("pct:5").unwrap(),
            ScheduleStrategy::Pct { depth: 5 }
        );
        assert_eq!(
            ScheduleStrategy::parse("sticky:40").unwrap(),
            ScheduleStrategy::Sticky { stay_percent: 40 }
        );
        assert_eq!(
            ScheduleStrategy::parse("random").unwrap(),
            ScheduleStrategy::Random
        );
        assert_eq!(
            ScheduleStrategy::parse("rr").unwrap(),
            ScheduleStrategy::RoundRobin
        );
        assert!(ScheduleStrategy::parse("quantum").is_err());
        assert!(ScheduleStrategy::parse("pct:x").is_err());
    }

    #[test]
    fn strategy_labels_round_trip() {
        for s in ["pct:3", "sticky:90", "random", "rr"] {
            let parsed = ScheduleStrategy::parse(s).unwrap();
            assert_eq!(ScheduleStrategy::parse(&parsed.label()).unwrap(), parsed);
        }
    }
}
