//! Thread schedulers for concurrent execution.
//!
//! The machine asks the scheduler which runnable thread should execute the
//! next instruction. Schedulers may inspect the machine (e.g. preview the
//! next access of each thread) — the RaceFuzzer-style confirmer in
//! `narada-detect` uses exactly this hook.

use crate::event::ThreadId;
use crate::machine::Machine;
use crate::rng::SplitMix64;

/// Chooses which runnable thread steps next.
pub trait Scheduler {
    /// Picks one element of `runnable` (guaranteed non-empty).
    fn choose(&mut self, machine: &Machine<'_>, runnable: &[ThreadId]) -> ThreadId;

    /// Human-readable name for reports.
    fn name(&self) -> &str {
        "scheduler"
    }
}

/// Deterministic round-robin over runnable threads.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// Creates a round-robin scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobin {
    fn choose(&mut self, _machine: &Machine<'_>, runnable: &[ThreadId]) -> ThreadId {
        let pick = runnable[self.next % runnable.len()];
        self.next = self.next.wrapping_add(1);
        pick
    }

    fn name(&self) -> &str {
        "round-robin"
    }
}

/// Uniformly random interleaving with an optional "stickiness" bias that
/// keeps running the same thread for short bursts, mimicking real
/// preemption granularity.
#[derive(Debug)]
pub struct RandomScheduler {
    rng: SplitMix64,
    /// Probability (0–100) of staying on the previously chosen thread when
    /// it is still runnable.
    stay_percent: u8,
    last: Option<ThreadId>,
}

impl RandomScheduler {
    /// Creates a seeded uniform scheduler.
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            rng: SplitMix64::seed_from_u64(seed),
            stay_percent: 0,
            last: None,
        }
    }

    /// Creates a seeded scheduler that keeps the current thread running
    /// with the given probability (percent).
    pub fn with_stickiness(seed: u64, stay_percent: u8) -> Self {
        RandomScheduler {
            rng: SplitMix64::seed_from_u64(seed),
            stay_percent: stay_percent.min(100),
            last: None,
        }
    }
}

impl Scheduler for RandomScheduler {
    fn choose(&mut self, _machine: &Machine<'_>, runnable: &[ThreadId]) -> ThreadId {
        if let Some(last) = self.last {
            if runnable.contains(&last) && self.rng.gen_range(0..100) < self.stay_percent {
                return last;
            }
        }
        let pick = runnable[self.rng.gen_range(0..runnable.len())];
        self.last = Some(pick);
        pick
    }

    fn name(&self) -> &str {
        "random"
    }
}

/// Runs the first runnable thread to completion before the next — the
/// *serialized* schedule used as the ConTeGe baseline's oracle reference.
#[derive(Debug, Default)]
pub struct SerialScheduler;

impl SerialScheduler {
    /// Creates a serializing scheduler.
    pub fn new() -> Self {
        SerialScheduler
    }
}

impl Scheduler for SerialScheduler {
    fn choose(&mut self, _machine: &Machine<'_>, runnable: &[ThreadId]) -> ThreadId {
        runnable[0]
    }

    fn name(&self) -> &str {
        "serial"
    }
}

/// Wraps another scheduler, recording every choice so the exact
/// interleaving can be replayed later with [`ReplayScheduler`] — the
/// mechanism behind "automatically reproduced" races: once a schedule
/// manifests a race, it can be re-executed deterministically.
#[derive(Debug)]
pub struct RecordingScheduler<S> {
    inner: S,
    /// The recorded choices, in order.
    pub choices: Vec<ThreadId>,
}

impl<S: Scheduler> RecordingScheduler<S> {
    /// Wraps `inner`.
    pub fn new(inner: S) -> Self {
        RecordingScheduler {
            inner,
            choices: Vec::new(),
        }
    }

    /// The recorded schedule.
    pub fn into_schedule(self) -> Vec<ThreadId> {
        self.choices
    }
}

impl<S: Scheduler> Scheduler for RecordingScheduler<S> {
    fn choose(&mut self, machine: &Machine<'_>, runnable: &[ThreadId]) -> ThreadId {
        let pick = self.inner.choose(machine, runnable);
        self.choices.push(pick);
        pick
    }

    fn name(&self) -> &str {
        "recording"
    }
}

/// Replays a recorded schedule step for step. When the recording is
/// exhausted (or the recorded thread is no longer runnable — which cannot
/// happen when replaying against the same deterministic program and seed),
/// it falls back to the first runnable thread.
#[derive(Debug)]
pub struct ReplayScheduler {
    schedule: Vec<ThreadId>,
    pos: usize,
}

impl ReplayScheduler {
    /// Creates a replayer for a recorded schedule.
    pub fn new(schedule: Vec<ThreadId>) -> Self {
        ReplayScheduler { schedule, pos: 0 }
    }

    /// True when every recorded choice was consumed.
    pub fn exhausted(&self) -> bool {
        self.pos >= self.schedule.len()
    }
}

impl Scheduler for ReplayScheduler {
    fn choose(&mut self, _machine: &Machine<'_>, runnable: &[ThreadId]) -> ThreadId {
        let recorded = self.schedule.get(self.pos).copied();
        self.pos += 1;
        match recorded {
            Some(t) if runnable.contains(&t) => t,
            _ => runnable[0],
        }
    }

    fn name(&self) -> &str {
        "replay"
    }
}
