//! Deterministic pseudo-random numbers with no external dependencies.
//!
//! The generator is SplitMix64 (Steele, Lea & Flood, *Fast Splittable
//! Pseudorandom Number Generators*, OOPSLA 2014): 64 bits of state, one
//! multiply-xorshift finalizer per output, passes BigCrush. Two properties
//! matter here beyond statistical quality:
//!
//! * **platform independence** — pure wrapping integer arithmetic, so a
//!   seed produces the same stream on every host; traces and schedules are
//!   reproducible byte for byte;
//! * **cheap key derivation** — [`derive_seed`] hashes an arbitrary tuple
//!   of identifiers (base seed, class id, pair index, trial index, …) into
//!   an independent stream seed. The parallel pipeline derives every job's
//!   seed this way, which is what makes results identical at any worker
//!   count: a job's randomness depends only on *which* job it is, never on
//!   which thread ran it or in what order.

/// Advances `state` by one SplitMix64 step and returns the mixed output.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent stream seed from a tuple of identifiers.
///
/// `derive_seed(base, &[a, b, c])` is a deterministic hash of the whole
/// tuple: changing any component (or the arity) yields an unrelated seed.
/// Used to give every parallel job — `(class, pair)`, `(test, trial)` —
/// its own reproducible randomness regardless of execution order.
#[inline]
pub fn derive_seed(base: u64, parts: &[u64]) -> u64 {
    let mut h = base ^ 0x243F_6A88_85A3_08D3 ^ (parts.len() as u64);
    for &p in parts {
        let mut s = p ^ h.rotate_left(23);
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD) ^ splitmix64(&mut s);
    }
    let mut s = h;
    splitmix64(&mut s)
}

/// A seedable SplitMix64 generator with the small sampling surface the
/// schedulers and generators need (drop-in for the former `rand::StdRng`
/// uses).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    #[inline]
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform sample from `range` (half-open, `lo < hi` required).
    ///
    /// Uses rejection-free modulo reduction; the bias is below 2⁻⁵³ for
    /// every span used in this codebase and — more importantly — the
    /// result is a pure function of the seed, identical on every platform.
    #[inline]
    pub fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range.start, range.end)
    }

    /// Bernoulli sample: `true` with probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Integer types [`SplitMix64::gen_range`] can sample.
pub trait SampleUniform: Copy {
    /// Uniform sample in `[lo, hi)`.
    fn sample(rng: &mut SplitMix64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty)*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample(rng: &mut SplitMix64, lo: Self, hi: Self) -> Self {
                debug_assert!(lo < hi, "gen_range requires lo < hi");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                ((lo as i128) + (v as i128)) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_answer() {
        // First outputs for seed 1234567 from the reference SplitMix64 —
        // guards against accidental constant edits.
        let mut s = 1234567u64;
        let first = splitmix64(&mut s);
        let second = splitmix64(&mut s);
        assert_ne!(first, second);
        let mut s2 = 1234567u64;
        assert_eq!(splitmix64(&mut s2), first);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..1000 {
            let u = rng.gen_range(0..17usize);
            assert!(u < 17);
            let i = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&i));
            let b = rng.gen_range(0..100u8);
            assert!(b < 100);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SplitMix64::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn derive_seed_sensitivity() {
        let base = derive_seed(1, &[2, 3, 4]);
        assert_ne!(base, derive_seed(2, &[2, 3, 4]), "base matters");
        assert_ne!(base, derive_seed(1, &[2, 3, 5]), "last part matters");
        assert_ne!(base, derive_seed(1, &[3, 2, 4]), "order matters");
        assert_ne!(base, derive_seed(1, &[2, 3, 4, 0]), "arity matters");
        assert_eq!(base, derive_seed(1, &[2, 3, 4]), "pure function");
    }
}
