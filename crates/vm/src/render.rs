//! Human-readable trace rendering.
//!
//! Trace events name registers by [`VarId`], which is only meaningful
//! relative to the executing body. [`TraceRenderer`] tracks the
//! invocation→body mapping from `InvokeStart` events, so each event can be
//! printed with real variable names — the format of the paper's Fig. 8(b):
//! `t := b.x`, `lock(this)`, `b.y := y`.

use crate::event::{CopySrc, Event, EventKind, InvId};
use narada_lang::hir::Program;
use narada_lang::mir::{BodyId, MirProgram, VarId};
use std::collections::HashMap;

/// Streaming renderer for trace events. Feed events in order.
#[derive(Debug)]
pub struct TraceRenderer<'p> {
    prog: &'p Program,
    mir: &'p MirProgram,
    bodies: HashMap<InvId, BodyId>,
}

impl<'p> TraceRenderer<'p> {
    /// Creates a renderer for traces of the given program.
    pub fn new(prog: &'p Program, mir: &'p MirProgram) -> Self {
        TraceRenderer {
            prog,
            mir,
            bodies: HashMap::new(),
        }
    }

    fn var(&self, inv: InvId, v: VarId) -> String {
        match self.bodies.get(&inv) {
            Some(&b) => {
                let body = self.mir.body(b);
                if v.index() < body.vars.len() {
                    body.var_name(v).to_string()
                } else {
                    format!("{v}")
                }
            }
            None => format!("{v}"),
        }
    }

    /// Renders one event; call in trace order so invocation scopes resolve.
    pub fn render(&mut self, ev: &Event) -> String {
        let head = format!("{:>6} {} ", ev.label.0, ev.tid);
        let body = match &ev.kind {
            EventKind::InvokeStart {
                inv,
                body,
                method,
                from_client,
                recv,
                args,
                ..
            } => {
                self.bodies.insert(*inv, *body);
                let name = match (method, body) {
                    (Some(m), _) => self.prog.qualified_name(*m),
                    (None, BodyId::Test(t)) => format!("test {}", self.prog.test(*t).name),
                    (None, BodyId::FieldInit(f)) => {
                        format!("init-field {}", self.prog.qualified_field(*f))
                    }
                    (None, BodyId::Method(m)) => self.prog.qualified_name(*m),
                };
                let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                let recv = recv.map(|r| format!("{r}.")).unwrap_or_default();
                let client = if *from_client { " [client]" } else { "" };
                format!("invoke {recv}{name}({}){client}", args.join(", "))
            }
            EventKind::InvokeEnd { inv, ret, .. } => match ret {
                Some(v) => format!("return {v} from {inv}"),
                None => format!("return from {inv}"),
            },
            EventKind::Copy {
                inv,
                dst,
                src,
                value,
            } => match src {
                CopySrc::Var(v) => format!(
                    "{} := {}   [{value}]",
                    self.var(*inv, *dst),
                    self.var(*inv, *v)
                ),
                CopySrc::Opaque => format!("{} := {value}", self.var(*inv, *dst)),
                CopySrc::CallResult { callee } => {
                    format!("{} := result of {callee}   [{value}]", self.var(*inv, *dst))
                }
            },
            EventKind::Alloc {
                inv,
                dst,
                obj,
                class,
            } => match class {
                Some(c) => format!(
                    "{} := alloc {}   [{obj}]",
                    self.var(*inv, *dst),
                    self.prog.class(*c).name
                ),
                None => format!("{} := alloc []   [{obj}]", self.var(*inv, *dst)),
            },
            EventKind::Read {
                inv,
                dst,
                obj_var,
                obj,
                field,
                value,
            } => {
                format!(
                    "{} := {}{}   [{obj}{} = {value}]",
                    self.var(*inv, *dst),
                    self.var(*inv, *obj_var),
                    field_name(self.prog, field),
                    field_name(self.prog, field),
                )
            }
            EventKind::Write {
                inv,
                obj_var,
                obj,
                field,
                src_var,
                value,
            } => {
                format!(
                    "{}{} := {}   [{obj}{} = {value}]",
                    self.var(*inv, *obj_var),
                    field_name(self.prog, field),
                    self.var(*inv, *src_var),
                    field_name(self.prog, field),
                )
            }
            EventKind::Lock { inv, var, obj } => match var {
                Some(v) => format!("lock({})   [{obj}]", self.var(*inv, *v)),
                None => format!("lock {obj}"),
            },
            EventKind::Unlock { obj, .. } => format!("unlock({obj})"),
            EventKind::ThreadSpawn { child } => format!("spawn {child}"),
            EventKind::ThreadFinish => "thread finished".to_string(),
            EventKind::ThreadFail { message } => format!("thread FAILED: {message}"),
        };
        head + &body
    }

    /// Renders a whole trace.
    pub fn render_all(&mut self, events: &[Event]) -> String {
        events
            .iter()
            .map(|e| self.render(e))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Renders a one-paragraph human summary of a recorded schedule: identity,
/// length, per-thread step counts, and preemption structure. Used by the
/// CLI's `--record`/`--replay` output.
pub fn render_schedule_summary(s: &crate::schedule::Schedule) -> String {
    use std::collections::BTreeMap;
    use std::fmt::Write as _;
    let mut per_thread: BTreeMap<u32, u64> = BTreeMap::new();
    for t in &s.choices {
        *per_thread.entry(t.0).or_default() += 1;
    }
    let counts: Vec<String> = per_thread
        .iter()
        .map(|(t, n)| format!("T{t}:{n}"))
        .collect();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "schedule {:#018x} ({} by seed {:#x}, vm {})",
        s.id(),
        s.scheduler,
        s.seed,
        s.vm_version
    );
    let _ = write!(
        out,
        "  {} decisions, {} preemptions, steps per thread: {}",
        s.len(),
        s.preemptions(),
        if counts.is_empty() {
            "none".to_string()
        } else {
            counts.join(" ")
        }
    );
    out
}

fn field_name(prog: &Program, key: &crate::event::FieldKey) -> String {
    match key {
        crate::event::FieldKey::Field(f) => format!(".{}", prog.field(*f).name),
        crate::event::FieldKey::Elem(i) => format!("[{i}]"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Machine, VecSink};
    use narada_lang::lower::lower_program;

    #[test]
    fn renders_fig8_style_lines() {
        let prog = narada_lang::compile(
            r#"
            class X { int o; }
            class A {
                X x;
                init() { this.x = new X(); }
                sync void foo(X y) {
                    var b = this;
                    var t = b.x;
                    t.o = rand();
                }
            }
            test seed {
                var a = new A();
                var y = new X();
                a.foo(y);
            }
            "#,
        )
        .unwrap();
        let mir = lower_program(&prog);
        let mut machine = Machine::with_defaults(&prog, &mir);
        let mut sink = VecSink::new();
        machine.run_test(prog.tests[0].id, &mut sink).unwrap();
        let mut renderer = TraceRenderer::new(&prog, &mir);
        let text = renderer.render_all(&sink.events);
        assert!(text.contains("invoke"), "{text}");
        assert!(text.contains("A.foo"), "{text}");
        assert!(text.contains("lock(this)"), "{text}");
        assert!(text.contains("I_this := this"), "{text}");
        assert!(text.contains("b := this"), "{text}");
        assert!(text.contains("t.o :="), "{text}");
        assert!(text.contains("unlock"), "{text}");
    }

    #[test]
    fn renders_array_accesses() {
        let prog = narada_lang::compile(
            r#"
            class B { int[] a; init() { this.a = new int[3]; } void w() { this.a[1] = 9; } }
            test seed { var b = new B(); b.w(); }
            "#,
        )
        .unwrap();
        let mir = lower_program(&prog);
        let mut machine = Machine::with_defaults(&prog, &mir);
        let mut sink = VecSink::new();
        machine.run_test(prog.tests[0].id, &mut sink).unwrap();
        let mut renderer = TraceRenderer::new(&prog, &mir);
        let text = renderer.render_all(&sink.events);
        assert!(text.contains("[1] :="), "{text}");
        assert!(text.contains("alloc []"), "{text}");
    }
}
