//! MIR → bytecode lowering. One pass, no optimization: the win is purely
//! representational (dense bodies, `Copy` ops, pooled argument lists,
//! interned dispatch), so the op stream mirrors the instruction stream
//! 1:1 and pc values carry over unchanged.

use super::{ArgRange, BcBody, BcProgram, Op};
use crate::value::Value;
use narada_lang::hir::Program;
use narada_lang::mir::{Body, ConstVal, InstrKind, MirProgram, VarId};
use std::collections::HashMap;

pub(super) fn compile(program: &Program, mir: &MirProgram) -> BcProgram {
    // Intern every method name once; the dispatch table below is keyed by
    // (class, interned name).
    let mut names: Vec<String> = Vec::new();
    let mut name_id: HashMap<&str, u32> = HashMap::new();
    for m in &program.methods {
        name_id.entry(m.name.as_str()).or_insert_with(|| {
            names.push(m.name.clone());
            (names.len() - 1) as u32
        });
    }

    // Flat vtable: one probe per virtual call instead of a string-keyed
    // map walk. `u32::MAX` marks "no such method on this class".
    let mut dispatch = vec![u32::MAX; program.classes.len() * names.len()];
    for class in &program.classes {
        for (name, method) in &class.vtable {
            let n = name_id[name.as_str()];
            dispatch[class.id.index() * names.len() + n as usize] = method.0;
        }
    }

    // Field layouts are parent-prefix (`all_fields = parent's ++ own`,
    // shadowing rejected), so each field occupies the same slot in its
    // owner and every subclass: the slot can be burned into the op.
    let field_slot: Vec<u32> = program
        .fields
        .iter()
        .map(|f| {
            program
                .fields_of(f.owner)
                .iter()
                .position(|&g| g == f.id)
                .expect("field present in its owner's layout") as u32
        })
        .collect();

    let mut bc = BcProgram {
        bodies: Vec::with_capacity(mir.methods.len() + mir.tests.len() + mir.field_inits.len()),
        n_methods: mir.methods.len(),
        init_index: vec![u32::MAX; program.fields.len()],
        args_pool: Vec::new(),
        elem_pool: Vec::new(),
        names,
        dispatch,
    };

    for body in &mir.methods {
        compile_body(&mut bc, program, &name_id, &field_slot, body);
    }
    for body in &mir.tests {
        compile_body(&mut bc, program, &name_id, &field_slot, body);
    }
    // HashMap iteration order is arbitrary; fix the dense order by field
    // id so compilation is deterministic.
    let mut inits: Vec<_> = mir.field_inits.iter().collect();
    inits.sort_by_key(|(f, _)| f.index());
    for (field, body) in inits {
        bc.init_index[field.index()] = bc.bodies.len() as u32;
        compile_body(&mut bc, program, &name_id, &field_slot, body);
    }
    bc
}

fn compile_body(
    bc: &mut BcProgram,
    program: &Program,
    name_id: &HashMap<&str, u32>,
    field_slot: &[u32],
    body: &Body,
) {
    let mut ops = Vec::with_capacity(body.instrs.len());
    let mut spans = Vec::with_capacity(body.instrs.len());
    let pool_args = |pool: &mut Vec<VarId>, args: &[VarId]| -> ArgRange {
        let start = pool.len() as u32;
        pool.extend_from_slice(args);
        ArgRange {
            start,
            len: args.len() as u32,
        }
    };
    for instr in &body.instrs {
        spans.push(instr.span);
        ops.push(match instr.kind {
            InstrKind::Const { dst, val } => Op::Const {
                dst,
                val: match val {
                    ConstVal::Int(n) => Value::Int(n),
                    ConstVal::Bool(b) => Value::Bool(b),
                    ConstVal::Null => Value::Null,
                },
            },
            InstrKind::Copy { dst, src } => Op::Copy { dst, src },
            InstrKind::Rand { dst } => Op::Rand { dst },
            InstrKind::Binary { dst, op, l, r } => Op::Binary { dst, op, l, r },
            InstrKind::Unary { dst, op, v } => Op::Unary { dst, op, v },
            InstrKind::ReadField { dst, obj, field } => Op::ReadField {
                dst,
                obj,
                field,
                slot: field_slot[field.index()],
            },
            InstrKind::WriteField { obj, field, src } => Op::WriteField {
                obj,
                field,
                src,
                slot: field_slot[field.index()],
            },
            InstrKind::ReadIndex { dst, arr, idx } => Op::ReadIndex { dst, arr, idx },
            InstrKind::WriteIndex { arr, idx, src } => Op::WriteIndex { arr, idx, src },
            InstrKind::ArrayLen { dst, arr } => Op::ArrayLen { dst, arr },
            InstrKind::AllocObj { dst, class } => Op::AllocObj { dst, class },
            InstrKind::NewArray { dst, ref elem, len } => {
                bc.elem_pool.push(elem.clone());
                Op::NewArray {
                    dst,
                    elem: (bc.elem_pool.len() - 1) as u32,
                    len,
                }
            }
            InstrKind::CallInit { obj, field } => Op::CallInit { obj, field },
            InstrKind::Call {
                dst,
                recv,
                method,
                ref args,
            } => Op::Call {
                dst,
                recv,
                name: name_id[program.method(method).name.as_str()],
                args: pool_args(&mut bc.args_pool, args),
            },
            InstrKind::CallExact {
                dst,
                recv,
                method,
                ref args,
            } => Op::CallExact {
                dst,
                recv,
                method,
                args: pool_args(&mut bc.args_pool, args),
            },
            InstrKind::CallStatic {
                dst,
                method,
                ref args,
            } => Op::CallStatic {
                dst,
                method,
                args: pool_args(&mut bc.args_pool, args),
            },
            InstrKind::Jump { target } => Op::Jump {
                target: target as u32,
            },
            InstrKind::Branch {
                cond,
                then_t,
                else_t,
            } => Op::Branch {
                cond,
                then_t: then_t as u32,
                else_t: else_t as u32,
            },
            InstrKind::MonitorEnter { var } => Op::MonitorEnter { var },
            InstrKind::MonitorExit { var } => Op::MonitorExit { var },
            InstrKind::Return { val } => Op::Return { val },
            InstrKind::Assert { cond } => Op::Assert { cond },
            InstrKind::MissingReturn => Op::MissingReturn,
        });
    }
    fuse(&mut ops);
    bc.bodies.push(BcBody {
        id: body.id,
        ops,
        spans,
    });
}

/// Superinstruction fusion: rewrites a head op's tag when the one or two
/// ops that follow it have kinds the execution loop can continue into
/// without re-dispatching (see the fused arms in `exec.rs`). Only the tag
/// changes — the continuation ops keep their original slots, so pc
/// numbering, spans, jump targets, and mid-group pause/resume all still
/// line up, and a group is only formed when control flow cannot enter it
/// anywhere but the head.
fn fuse(ops: &mut [Op]) {
    // Interior slots must not be jump targets (entry at a group's head is
    // fine). Call/monitor resumption always lands right after the call op,
    // and call ops are never fused, so branch/jump targets are the only
    // interior entries to rule out.
    let mut entry = vec![false; ops.len()];
    for op in ops.iter() {
        match *op {
            Op::Jump { target } => entry[target as usize] = true,
            Op::Branch { then_t, else_t, .. } => {
                entry[then_t as usize] = true;
                entry[else_t as usize] = true;
            }
            _ => {}
        }
    }
    let mut i = 0;
    while i + 1 < ops.len() {
        if entry[i + 1] {
            i += 1;
            continue;
        }
        let next = ops[i + 1];
        let third = (i + 2 < ops.len() && !entry[i + 2]).then(|| ops[i + 2]);
        let fused = match (ops[i], next) {
            (Op::Const { dst, val }, Op::Binary { .. }) => Some(match third {
                Some(Op::WriteField { .. }) => (Op::ConstBinWrite { dst, val }, 3),
                Some(Op::Copy { .. }) => (Op::ConstBinCopy { dst, val }, 3),
                _ => (Op::ConstBin { dst, val }, 2),
            }),
            (
                Op::ReadField {
                    dst,
                    obj,
                    field,
                    slot,
                },
                Op::Binary { .. },
            ) => Some(match third {
                Some(Op::WriteField { .. }) => (
                    Op::ReadBinWrite {
                        dst,
                        obj,
                        field,
                        slot,
                    },
                    3,
                ),
                _ => (
                    Op::ReadBin {
                        dst,
                        obj,
                        field,
                        slot,
                    },
                    2,
                ),
            }),
            (Op::Binary { dst, op, l, r }, Op::WriteField { .. }) => {
                Some((Op::BinWrite { dst, op, l, r }, 2))
            }
            (Op::Binary { dst, op, l, r }, Op::Branch { .. }) => {
                Some((Op::BinBranch { dst, op, l, r }, 2))
            }
            _ => None,
        };
        match fused {
            Some((op, width)) => {
                ops[i] = op;
                i += width;
            }
            None => i += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{BcProgram, Op};
    use narada_lang::lower::lower_program;

    /// The canonical increment idioms must fuse: the loop body of
    /// `spin` below contains a compare+branch, two field increments, and
    /// an index bump, each of which has a superinstruction form.
    #[test]
    fn fuses_increment_idioms() {
        let prog = narada_lang::compile(
            r#"
            class Work {
                int a;
                int b;
                void spin(int n) {
                    var i = 0;
                    while (i < n) {
                        this.a = this.a + 1;
                        this.b = this.b + this.a;
                        i = i + 1;
                    }
                }
            }
            test seed { var w = new Work(); w.spin(3); }
            "#,
        )
        .unwrap();
        let mir = lower_program(&prog);
        let bc = BcProgram::compile(&prog, &mir);
        let ops = &bc.bodies[0].ops;
        let has = |pred: fn(&Op) -> bool| ops.iter().any(pred);
        assert!(has(|op| matches!(op, Op::BinBranch { .. })), "{ops:?}");
        assert!(has(|op| matches!(op, Op::ConstBinWrite { .. })), "{ops:?}");
        assert!(has(|op| matches!(op, Op::ReadBinWrite { .. })), "{ops:?}");
        assert!(has(|op| matches!(op, Op::ConstBinCopy { .. })), "{ops:?}");
        // Continuation slots keep their original ops so that jumps,
        // pauses, and single-step resumption still land on real
        // instructions.
        assert!(has(|op| matches!(op, Op::Binary { .. })), "{ops:?}");
    }
}
