//! Compiled register bytecode for the MJ virtual machine.
//!
//! The tree-walking interpreter in [`crate::machine`] pays a fixed tax on
//! every executed instruction: a `clone()` of the MIR instruction (which
//! heap-allocates the argument vector of every call), a `HashMap` lookup
//! for field-initializer bodies, and repeated frame re-fetches through the
//! register-access macros. None of that work depends on the instruction
//! actually being executed, so it compiles away.
//!
//! [`BcProgram::compile`] lowers a whole [`MirProgram`] once, up front:
//!
//! * all bodies (methods, tests, field initializers) land in one dense
//!   array indexed by [`BcProgram::body_index`], eliminating the
//!   per-step `HashMap` lookup for `BodyId::FieldInit`;
//! * every instruction becomes a compact `Copy` [`Op`] — constants are
//!   pre-converted to [`Value`]s, call argument lists are (start, len)
//!   ranges into one shared pool, array element types live in a side pool;
//! * method names are interned and virtual dispatch becomes a flat
//!   `classes × names` table probe instead of a per-call string-keyed
//!   vtable walk.
//!
//! The execution loop itself lives in `exec.rs` as
//! `Machine::run_bc` — a flat `loop { match op }` over the compiled body
//! that shares the tree-walker's frame, monitor, and event plumbing
//! (`push_callee_frame`, `do_return`, `release_monitor`, `thread_fail`),
//! so invocation and locking semantics are identical by construction and
//! the per-instruction semantics are proven identical by the differential
//! harness (`tests/engine_differential.rs` and the workspace property
//! suite).

mod compile;
mod exec;

use crate::value::Value;
use narada_lang::ast::{BinOp, UnOp};
use narada_lang::hir::{ClassId, FieldId, MethodId, Program, Ty};
use narada_lang::mir::{BodyId, MirProgram, VarId};
use narada_lang::Span;

/// Which execution engine a [`Machine`](crate::Machine) uses.
///
/// Both engines implement the same observable semantics — byte-identical
/// trace-event streams, heap outcomes, and error behavior — which the
/// differential harness asserts across the corpus, the replay fixtures,
/// and the generated difftest lattice. `TreeWalk` stays the default;
/// `Bytecode` compiles the MIR once and runs a flat-dispatch loop that is
/// several times faster on interpreter-bound workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Engine {
    /// Interpret the MIR instruction tree directly (the reference engine).
    #[default]
    TreeWalk,
    /// Execute compiled register bytecode with interned ids and a flat
    /// `loop { match opcode }` dispatch loop.
    Bytecode,
}

impl Engine {
    /// Parses a CLI spelling: `tree` / `treewalk` / `tree-walk` or
    /// `bytecode` / `bc`.
    ///
    /// # Errors
    ///
    /// Returns a usage message naming the accepted spellings.
    pub fn parse(s: &str) -> Result<Engine, String> {
        match s {
            "tree" | "treewalk" | "tree-walk" => Ok(Engine::TreeWalk),
            "bytecode" | "bc" => Ok(Engine::Bytecode),
            other => Err(format!(
                "unknown engine '{other}' (expected 'tree' or 'bytecode')"
            )),
        }
    }

    /// Canonical name, also accepted by [`Engine::parse`].
    pub fn label(self) -> &'static str {
        match self {
            Engine::TreeWalk => "tree",
            Engine::Bytecode => "bytecode",
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for Engine {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Engine::parse(s)
    }
}

/// A (start, len) range into [`BcProgram`]'s shared call-argument pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ArgRange {
    pub start: u32,
    pub len: u32,
}

/// One compiled instruction. `Copy`, fixed-size, with every id interned:
/// fetching one is an array index, never an allocation.
///
/// Ops map 1:1 onto [`narada_lang::mir::InstrKind`] (same pc numbering, so
/// jump targets and the scheduler-facing `(body, pc)` frame state carry
/// over unchanged); the differences are purely representational — see the
/// module docs.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Op {
    Const {
        dst: VarId,
        val: Value,
    },
    Copy {
        dst: VarId,
        src: VarId,
    },
    Rand {
        dst: VarId,
    },
    Binary {
        dst: VarId,
        op: BinOp,
        l: VarId,
        r: VarId,
    },
    Unary {
        dst: VarId,
        op: UnOp,
        v: VarId,
    },
    /// `slot` is the field's statically-resolved layout index (layouts
    /// are parent-prefix, so a field's slot is the same in its owner and
    /// every subclass) — the engine indexes object storage directly
    /// instead of probing the per-class layout map; `field` is kept for
    /// the trace event.
    ReadField {
        dst: VarId,
        obj: VarId,
        field: FieldId,
        slot: u32,
    },
    WriteField {
        obj: VarId,
        field: FieldId,
        src: VarId,
        slot: u32,
    },
    ReadIndex {
        dst: VarId,
        arr: VarId,
        idx: VarId,
    },
    WriteIndex {
        arr: VarId,
        idx: VarId,
        src: VarId,
    },
    ArrayLen {
        dst: VarId,
        arr: VarId,
    },
    AllocObj {
        dst: VarId,
        class: ClassId,
    },
    NewArray {
        dst: VarId,
        elem: u32,
        len: VarId,
    },
    CallInit {
        obj: VarId,
        field: FieldId,
    },
    Call {
        dst: Option<VarId>,
        recv: VarId,
        name: u32,
        args: ArgRange,
    },
    CallExact {
        dst: Option<VarId>,
        recv: VarId,
        method: MethodId,
        args: ArgRange,
    },
    CallStatic {
        dst: Option<VarId>,
        method: MethodId,
        args: ArgRange,
    },
    Jump {
        target: u32,
    },
    Branch {
        cond: VarId,
        then_t: u32,
        else_t: u32,
    },
    MonitorEnter {
        var: VarId,
    },
    MonitorExit {
        var: VarId,
    },
    Return {
        val: Option<VarId>,
    },
    Assert {
        cond: VarId,
    },
    MissingReturn,

    // Fused superinstructions. The tag names the statically-known kinds
    // of this op and the one or two ops that follow it in the stream; the
    // payload is the *first* op's, and the continuation ops keep their
    // original slots, so the fused arm destructures them directly instead
    // of re-dispatching. Control flow can only enter a group at its head
    // (compile.rs refuses interior jump targets), and a pause between
    // halves resumes on the untouched original op, so fusion is invisible
    // to every observable: steps, labels, events, spans, schedules.
    /// `Const`; `Binary`.
    ConstBin {
        dst: VarId,
        val: Value,
    },
    /// `Const`; `Binary`; `WriteField`.
    ConstBinWrite {
        dst: VarId,
        val: Value,
    },
    /// `Const`; `Binary`; `Copy`.
    ConstBinCopy {
        dst: VarId,
        val: Value,
    },
    /// `ReadField`; `Binary`.
    ReadBin {
        dst: VarId,
        obj: VarId,
        field: FieldId,
        slot: u32,
    },
    /// `ReadField`; `Binary`; `WriteField`.
    ReadBinWrite {
        dst: VarId,
        obj: VarId,
        field: FieldId,
        slot: u32,
    },
    /// `Binary`; `WriteField`.
    BinWrite {
        dst: VarId,
        op: BinOp,
        l: VarId,
        r: VarId,
    },
    /// `Binary`; `Branch`.
    BinBranch {
        dst: VarId,
        op: BinOp,
        l: VarId,
        r: VarId,
    },
}

/// One compiled body: ops and their source spans in parallel arrays
/// (same pc numbering as the MIR body it was lowered from).
#[derive(Debug)]
pub(crate) struct BcBody {
    /// The MIR body this was compiled from (frames keep storing `BodyId`,
    /// so previews and schedulers stay engine-independent).
    pub id: BodyId,
    pub ops: Vec<Op>,
    pub spans: Vec<Span>,
}

/// A whole MJ program compiled to register bytecode. Immutable once
/// built; share one across machines with `Arc` (see
/// [`Machine::with_code`](crate::Machine::with_code)).
#[derive(Debug)]
pub struct BcProgram {
    /// Methods first, then tests, then field initializers — see
    /// [`BcProgram::body_index`].
    pub(crate) bodies: Vec<BcBody>,
    pub(crate) n_methods: usize,
    /// `FieldId` → dense body index (`u32::MAX` when the field has no
    /// initializer body).
    pub(crate) init_index: Vec<u32>,
    /// Shared pool of call-argument registers, addressed by [`ArgRange`].
    pub(crate) args_pool: Vec<VarId>,
    /// Array element types referenced by `Op::NewArray`.
    pub(crate) elem_pool: Vec<Ty>,
    /// Interned method names (for dispatch-failure messages).
    pub(crate) names: Vec<String>,
    /// Flat dispatch table: `class.index() * names.len() + name` →
    /// `MethodId` index, `u32::MAX` on a miss. Precomputed from the
    /// per-class vtables, so a virtual call is one array probe.
    pub(crate) dispatch: Vec<u32>,
}

impl BcProgram {
    /// Dense index of a body in [`BcProgram::bodies`].
    #[inline]
    pub(crate) fn body_index(&self, id: BodyId) -> usize {
        match id {
            BodyId::Method(m) => m.index(),
            BodyId::Test(t) => self.n_methods + t.index(),
            BodyId::FieldInit(f) => self.init_index[f.index()] as usize,
        }
    }

    /// Vtable probe: the method `class` dispatches `name` to, if any.
    #[inline]
    pub(crate) fn dispatch(&self, class: ClassId, name: u32) -> Option<MethodId> {
        let raw = self.dispatch[class.index() * self.names.len() + name as usize];
        (raw != u32::MAX).then_some(MethodId(raw))
    }

    /// The argument registers of a call op.
    #[inline]
    pub(crate) fn args(&self, r: ArgRange) -> &[VarId] {
        &self.args_pool[r.start as usize..(r.start + r.len) as usize]
    }

    /// Number of compiled bodies (methods + tests + field initializers).
    pub fn body_count(&self) -> usize {
        self.bodies.len()
    }

    /// Total compiled ops across all bodies.
    pub fn op_count(&self) -> usize {
        self.bodies.iter().map(|b| b.ops.len()).sum()
    }

    /// Compiles a whole program. Cost is linear in the MIR; a `Machine`
    /// built with [`Engine::Bytecode`] does this once in its constructor.
    pub fn compile(program: &Program, mir: &MirProgram) -> BcProgram {
        compile::compile(program, mir)
    }
}
