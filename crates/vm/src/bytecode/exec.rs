//! The flat-dispatch bytecode execution loop.
//!
//! `Machine::run_bc` is the bytecode twin of `Machine::step`'s tree-walk
//! match, structured as a two-level loop. The inner **fast path** splits
//! the machine into its disjoint fields once per burst, destructures the
//! current frame into locals (`pc` mirror, register slice), and then
//! executes straight-line instructions without re-walking the thread
//! table — fetch, decode, register access, and pc update are all local
//! loads/stores, and step/label accounting lives in locals written back
//! once per burst. Any instruction that crosses an invocation or monitor
//! boundary (or fails) exits to the **slow path**, which delegates to the
//! exact helpers the tree-walker uses (`push_callee_frame`, `do_return`,
//! `release_monitor`, `thread_fail`), so the two engines cannot drift on
//! frame, lock, or event semantics — only the dispatch mechanics differ.
//!
//! Event emission is cheap by construction: the label counter always
//! advances (so a run is trace-identical no matter when a sink is
//! attached), but the `Event` value itself — and even the source-span
//! load it needs — only happens when the sink wants one
//! ([`EventSink::wants_events`] — false for `NullSink`), which removes
//! all tracing cost from untraced runs.

use super::{BcProgram, Op};
use crate::error::{VmError, VmErrorKind};
use crate::event::{CopySrc, Event, EventKind, EventSink, FieldKey, Label, ThreadId};
use crate::machine::{eval_binary, Frame, Machine, ThreadStatus};
use crate::value::Value;
use narada_lang::ast::UnOp;
use narada_lang::mir::BodyId;

/// Why the fast path stopped. `Pause` is budget exhaustion (fuel or the
/// step-limit boundary — disambiguated by the caller); the other arms
/// carry the instruction's pc so the slow path can recover its span.
enum Exit {
    Pause,
    Boundary(Op, usize),
    Fail(VmErrorKind, usize),
}

impl Machine<'_> {
    /// Executes up to `fuel` instructions of `tid` from compiled bytecode,
    /// stopping early when the thread leaves the `Runnable` state (return
    /// to an empty stack, monitor block, failure). Returns the number of
    /// scheduling steps consumed.
    ///
    /// With `fuel == 1` this is exactly one [`Machine::step`]; with
    /// unbounded fuel it is the sequential fast path (`run_test`,
    /// `invoke`), where hoisting the per-step dispatch overhead out of the
    /// scheduler round-trip is worth several multiples of throughput.
    pub(crate) fn run_bc(
        &mut self,
        code: &BcProgram,
        tid: ThreadId,
        sink: &mut dyn EventSink,
        fuel: u64,
    ) -> u64 {
        // Monomorphize the dispatch loop on whether the sink listens:
        // the untraced instance contains no event-construction code at
        // all (labels still advance), which is most of the per-op win on
        // the generation/exploration hot paths.
        if sink.wants_events() {
            self.run_bc_inner::<true>(code, tid, sink, fuel)
        } else {
            self.run_bc_inner::<false>(code, tid, sink, fuel)
        }
    }

    // `inline(never)` keeps the two monomorphizations as separate
    // functions — inlined into one caller, LLVM tail-merges them back
    // into a single loop with a runtime `wants` test, undoing the
    // specialization.
    #[inline(never)]
    fn run_bc_inner<const WANTS: bool>(
        &mut self,
        code: &BcProgram,
        tid: ThreadId,
        sink: &mut dyn EventSink,
        fuel: u64,
    ) -> u64 {
        let t = tid.index();
        let mut used = 0u64;

        'bursts: while used < fuel {
            if self.threads[t].status != ThreadStatus::Runnable {
                break;
            }
            // The two non-instruction outcomes consume a step, exactly as
            // one tree-walk iteration would: limit check first, then the
            // empty-stack Finished transition.
            if self.threads[t].steps >= self.opts.max_steps {
                used += 1;
                self.threads[t].steps += 1;
                let span = self.current_span(tid);
                self.thread_fail(tid, VmError::new(VmErrorKind::StepLimit, span), sink);
                break;
            }
            if self.threads[t].frames.is_empty() {
                used += 1;
                self.threads[t].steps += 1;
                self.threads[t].status = ThreadStatus::Finished;
                break;
            }

            let body_id = self.threads[t].frames.last().expect("frame").body;
            let body = &code.bodies[code.body_index(body_id)];
            debug_assert_eq!(body.id, body_id, "dense body index out of sync");

            // Instructions this burst may execute before fuel runs out or
            // the per-thread step limit fires (`until_limit >= 1` — the
            // preamble already handled an exhausted budget).
            let until_limit = self.opts.max_steps - self.threads[t].steps;
            let op_budget = (fuel - used).min(until_limit);
            let mut label = self.next_label;
            let mut stepped = 0u64;

            let exit = 'fast: {
                let Machine {
                    program,
                    heap,
                    threads,
                    rng,
                    rng_draws,
                    ..
                } = &mut *self;
                let thread = &mut threads[t];
                let Frame {
                    pc: frame_pc,
                    regs,
                    held,
                    inv,
                    ..
                } = thread.frames.last_mut().expect("frame");
                let inv = *inv;
                let regs: &mut [Value] = regs;
                let ops: &[Op] = &body.ops;
                let mut pc = *frame_pc;

                // Allocates the label for one event and builds/sends it
                // only when the sink listens.
                macro_rules! emit_ev {
                    ($pc:expr, $kind:expr) => {{
                        let l = Label(label);
                        label += 1;
                        if WANTS {
                            sink.event(&Event {
                                label: l,
                                tid,
                                span: body.spans[$pc],
                                kind: $kind,
                            });
                        }
                    }};
                }
                // Syncs the pc mirror back into the frame and leaves the
                // fast path (`pc` still points at the current op: breaks
                // happen before the arm advances it).
                macro_rules! exit_fast {
                    ($exit:expr) => {{
                        *frame_pc = pc;
                        break 'fast $exit;
                    }};
                }
                // Dereferences a register that must hold an object.
                macro_rules! obj_of {
                    ($v:expr) => {
                        match regs[$v.index()].as_obj() {
                            Some(o) => o,
                            None => exit_fast!(Exit::Fail(VmErrorKind::NullDeref, pc)),
                        }
                    };
                }
                // Straight-line op segments, shared between the plain
                // arms and the fused superinstruction arms so the two
                // cannot drift. Each executes one instruction at `pc`
                // and advances it.
                macro_rules! seg_const {
                    ($dst:expr, $val:expr) => {{
                        regs[$dst.index()] = $val;
                        emit_ev!(
                            pc,
                            EventKind::Copy {
                                inv,
                                dst: $dst,
                                src: CopySrc::Opaque,
                                value: $val,
                            }
                        );
                        pc += 1;
                    }};
                }
                macro_rules! seg_copy {
                    ($dst:expr, $src:expr) => {{
                        let value = regs[$src.index()];
                        regs[$dst.index()] = value;
                        emit_ev!(
                            pc,
                            EventKind::Copy {
                                inv,
                                dst: $dst,
                                src: CopySrc::Var($src),
                                value,
                            }
                        );
                        pc += 1;
                    }};
                }
                macro_rules! seg_binary {
                    ($dst:expr, $op:expr, $l:expr, $r:expr) => {{
                        let value = match eval_binary($op, regs[$l.index()], regs[$r.index()]) {
                            Ok(v) => v,
                            Err(kind) => exit_fast!(Exit::Fail(kind, pc)),
                        };
                        regs[$dst.index()] = value;
                        emit_ev!(
                            pc,
                            EventKind::Copy {
                                inv,
                                dst: $dst,
                                src: CopySrc::Opaque,
                                value,
                            }
                        );
                        pc += 1;
                    }};
                }
                macro_rules! seg_read {
                    ($dst:expr, $obj:expr, $field:expr, $slot:expr) => {{
                        let o = obj_of!($obj);
                        let value = heap.get_slot(o, $slot);
                        regs[$dst.index()] = value;
                        emit_ev!(
                            pc,
                            EventKind::Read {
                                inv,
                                dst: $dst,
                                obj_var: $obj,
                                obj: o,
                                field: FieldKey::Field($field),
                                value,
                            }
                        );
                        pc += 1;
                    }};
                }
                macro_rules! seg_write {
                    ($obj:expr, $field:expr, $src:expr, $slot:expr) => {{
                        let o = obj_of!($obj);
                        let value = regs[$src.index()];
                        heap.set_slot(o, $slot, value);
                        emit_ev!(
                            pc,
                            EventKind::Write {
                                inv,
                                obj_var: $obj,
                                obj: o,
                                field: FieldKey::Field($field),
                                src_var: $src,
                                value,
                            }
                        );
                        pc += 1;
                    }};
                }
                macro_rules! seg_branch {
                    ($cond:expr, $then_t:expr, $else_t:expr) => {{
                        let Some(b) = regs[$cond.index()].as_bool() else {
                            exit_fast!(Exit::Fail(
                                VmErrorKind::Internal("branch on non-bool".into()),
                                pc
                            ))
                        };
                        pc = if b {
                            $then_t as usize
                        } else {
                            $else_t as usize
                        };
                    }};
                }
                // Budget gate between the halves of a fused op —
                // identical to the gate at the top of the dispatch loop,
                // so a fused group is step-for-step the two or three ops
                // it replaced (a pause here resumes on the original,
                // unfused continuation op).
                macro_rules! gate {
                    () => {{
                        if stepped == op_budget {
                            exit_fast!(Exit::Pause);
                        }
                        stepped += 1;
                    }};
                }
                // Inline continuations: the stream op at `pc`, whose kind
                // the fused tag pinned down at compile time.
                macro_rules! next_binary {
                    () => {{
                        let Op::Binary { dst, op, l, r } = ops[pc] else {
                            unreachable!("fused tag promised Binary")
                        };
                        seg_binary!(dst, op, l, r);
                    }};
                }
                macro_rules! next_write {
                    () => {{
                        let Op::WriteField {
                            obj,
                            field,
                            src,
                            slot,
                        } = ops[pc]
                        else {
                            unreachable!("fused tag promised WriteField")
                        };
                        seg_write!(obj, field, src, slot);
                    }};
                }
                macro_rules! next_copy {
                    () => {{
                        let Op::Copy { dst, src } = ops[pc] else {
                            unreachable!("fused tag promised Copy")
                        };
                        seg_copy!(dst, src);
                    }};
                }
                macro_rules! next_branch {
                    () => {{
                        let Op::Branch {
                            cond,
                            then_t,
                            else_t,
                        } = ops[pc]
                        else {
                            unreachable!("fused tag promised Branch")
                        };
                        seg_branch!(cond, then_t, else_t);
                    }};
                }

                loop {
                    if stepped == op_budget {
                        exit_fast!(Exit::Pause);
                    }
                    stepped += 1;
                    debug_assert!(pc < ops.len(), "pc past end of body");
                    let op = ops[pc];

                    match op {
                        Op::Const { dst, val } => seg_const!(dst, val),
                        Op::Copy { dst, src } => seg_copy!(dst, src),
                        Op::Rand { dst } => {
                            *rng_draws += 1;
                            let value = Value::Int(rng.gen_range(0..1_000_000));
                            regs[dst.index()] = value;
                            emit_ev!(
                                pc,
                                EventKind::Copy {
                                    inv,
                                    dst,
                                    src: CopySrc::Opaque,
                                    value,
                                }
                            );
                            pc += 1;
                        }
                        Op::Binary { dst, op, l, r } => seg_binary!(dst, op, l, r),
                        Op::Unary { dst, op, v } => {
                            let value = match (op, regs[v.index()]) {
                                (UnOp::Not, Value::Bool(b)) => Value::Bool(!b),
                                (UnOp::Neg, Value::Int(n)) => Value::Int(n.wrapping_neg()),
                                _ => exit_fast!(Exit::Fail(
                                    VmErrorKind::Internal("unary type mismatch".into()),
                                    pc
                                )),
                            };
                            regs[dst.index()] = value;
                            emit_ev!(
                                pc,
                                EventKind::Copy {
                                    inv,
                                    dst,
                                    src: CopySrc::Opaque,
                                    value,
                                }
                            );
                            pc += 1;
                        }
                        Op::ReadField {
                            dst,
                            obj,
                            field,
                            slot,
                        } => seg_read!(dst, obj, field, slot),
                        Op::WriteField {
                            obj,
                            field,
                            src,
                            slot,
                        } => seg_write!(obj, field, src, slot),
                        Op::ReadIndex { dst, arr, idx } => {
                            let o = obj_of!(arr);
                            let i = regs[idx.index()].as_int().unwrap_or(0);
                            let Some(value) = heap.get_elem(o, i) else {
                                exit_fast!(Exit::Fail(
                                    VmErrorKind::IndexOutOfBounds {
                                        idx: i,
                                        len: heap.array_len(o),
                                    },
                                    pc
                                ));
                            };
                            regs[dst.index()] = value;
                            emit_ev!(
                                pc,
                                EventKind::Read {
                                    inv,
                                    dst,
                                    obj_var: arr,
                                    obj: o,
                                    field: FieldKey::Elem(i),
                                    value,
                                }
                            );
                            pc += 1;
                        }
                        Op::WriteIndex { arr, idx, src } => {
                            let o = obj_of!(arr);
                            let i = regs[idx.index()].as_int().unwrap_or(0);
                            let value = regs[src.index()];
                            if !heap.set_elem(o, i, value) {
                                exit_fast!(Exit::Fail(
                                    VmErrorKind::IndexOutOfBounds {
                                        idx: i,
                                        len: heap.array_len(o),
                                    },
                                    pc
                                ));
                            }
                            emit_ev!(
                                pc,
                                EventKind::Write {
                                    inv,
                                    obj_var: arr,
                                    obj: o,
                                    field: FieldKey::Elem(i),
                                    src_var: src,
                                    value,
                                }
                            );
                            pc += 1;
                        }
                        Op::ArrayLen { dst, arr } => {
                            let o = obj_of!(arr);
                            let value = Value::Int(heap.array_len(o) as i64);
                            regs[dst.index()] = value;
                            emit_ev!(
                                pc,
                                EventKind::Copy {
                                    inv,
                                    dst,
                                    src: CopySrc::Opaque,
                                    value,
                                }
                            );
                            pc += 1;
                        }
                        Op::AllocObj { dst, class } => {
                            let obj = heap.alloc_instance(program, class);
                            regs[dst.index()] = Value::Ref(obj);
                            emit_ev!(
                                pc,
                                EventKind::Alloc {
                                    inv,
                                    dst,
                                    obj,
                                    class: Some(class),
                                }
                            );
                            pc += 1;
                        }
                        Op::NewArray { dst, elem, len } => {
                            let n = regs[len.index()].as_int().unwrap_or(0);
                            if n < 0 {
                                exit_fast!(Exit::Fail(VmErrorKind::NegativeArrayLength(n), pc));
                            }
                            let obj =
                                heap.alloc_array(code.elem_pool[elem as usize].clone(), n as usize);
                            regs[dst.index()] = Value::Ref(obj);
                            emit_ev!(
                                pc,
                                EventKind::Alloc {
                                    inv,
                                    dst,
                                    obj,
                                    class: None,
                                }
                            );
                            pc += 1;
                        }
                        Op::MonitorEnter { var } => {
                            let o = obj_of!(var);
                            match heap.object(o).lock_owner {
                                None => {
                                    let objm = heap.object_mut(o);
                                    objm.lock_owner = Some(tid.0);
                                    objm.lock_count = 1;
                                    held.push(o);
                                    emit_ev!(
                                        pc,
                                        EventKind::Lock {
                                            inv,
                                            var: Some(var),
                                            obj: o,
                                        }
                                    );
                                    pc += 1;
                                }
                                Some(owner) if owner == tid.0 => {
                                    heap.object_mut(o).lock_count += 1;
                                    held.push(o);
                                    pc += 1;
                                }
                                // Contended: blocking needs the thread
                                // status, which the pinned frame borrow
                                // shadows — defer to the slow path.
                                Some(_) => exit_fast!(Exit::Boundary(op, pc)),
                            }
                        }
                        Op::Jump { target } => {
                            pc = target as usize;
                        }
                        Op::Branch {
                            cond,
                            then_t,
                            else_t,
                        } => seg_branch!(cond, then_t, else_t),
                        Op::ConstBin { dst, val } => {
                            seg_const!(dst, val);
                            gate!();
                            next_binary!();
                        }
                        Op::ConstBinWrite { dst, val } => {
                            seg_const!(dst, val);
                            gate!();
                            next_binary!();
                            gate!();
                            next_write!();
                        }
                        Op::ConstBinCopy { dst, val } => {
                            seg_const!(dst, val);
                            gate!();
                            next_binary!();
                            gate!();
                            next_copy!();
                        }
                        Op::ReadBin {
                            dst,
                            obj,
                            field,
                            slot,
                        } => {
                            seg_read!(dst, obj, field, slot);
                            gate!();
                            next_binary!();
                        }
                        Op::ReadBinWrite {
                            dst,
                            obj,
                            field,
                            slot,
                        } => {
                            seg_read!(dst, obj, field, slot);
                            gate!();
                            next_binary!();
                            gate!();
                            next_write!();
                        }
                        Op::BinWrite { dst, op, l, r } => {
                            seg_binary!(dst, op, l, r);
                            gate!();
                            next_write!();
                        }
                        Op::BinBranch { dst, op, l, r } => {
                            seg_binary!(dst, op, l, r);
                            gate!();
                            next_branch!();
                        }
                        Op::Assert { cond } => {
                            if regs[cond.index()] != Value::Bool(true) {
                                exit_fast!(Exit::Fail(VmErrorKind::AssertFailed, pc));
                            }
                            pc += 1;
                        }
                        Op::MissingReturn => {
                            exit_fast!(Exit::Fail(VmErrorKind::MissingReturn, pc));
                        }
                        // Everything that pushes or pops a frame.
                        Op::CallInit { .. }
                        | Op::Call { .. }
                        | Op::CallExact { .. }
                        | Op::CallStatic { .. }
                        | Op::Return { .. }
                        | Op::MonitorExit { .. } => exit_fast!(Exit::Boundary(op, pc)),
                    }
                }
            };

            used += stepped;
            self.threads[t].steps += stepped;
            self.next_label = label;

            // Fails the thread with `kind` at `span` and re-enters the
            // burst loop (whose status check then stops the run).
            macro_rules! fail {
                ($kind:expr, $span:expr) => {{
                    self.thread_fail(tid, VmError::new($kind, $span), sink);
                    continue 'bursts;
                }};
            }

            match exit {
                Exit::Pause => {
                    if used < fuel && stepped == until_limit {
                        // The next iteration would exceed the per-thread
                        // budget: it consumes a step, then fails — same
                        // accounting as the tree-walk.
                        used += 1;
                        self.threads[t].steps += 1;
                        let span = self.current_span(tid);
                        self.thread_fail(tid, VmError::new(VmErrorKind::StepLimit, span), sink);
                        break;
                    }
                    // Plain fuel exhaustion: the while condition exits.
                }
                Exit::Fail(kind, pc) => fail!(kind, body.spans[pc]),
                Exit::Boundary(op, pc) => {
                    let span = body.spans[pc];
                    // Dereferences a receiver register in the slow path
                    // (re-checked here: the fast path breaks out *before*
                    // dereferencing boundary-op receivers).
                    macro_rules! obj_of {
                        ($frame:expr, $v:expr) => {
                            match $frame.regs[$v.index()].as_obj() {
                                Some(o) => o,
                                None => fail!(VmErrorKind::NullDeref, span),
                            }
                        };
                    }
                    match op {
                        Op::CallInit { obj, field } => {
                            let frame = self.threads[t].frames.last_mut().expect("frame");
                            let o = obj_of!(frame, obj);
                            frame.pc = pc + 1;
                            self.push_callee_frame(
                                tid,
                                BodyId::FieldInit(field),
                                Some(Value::Ref(o)),
                                Vec::new(),
                                None,
                                Some(obj),
                                Vec::new(),
                                span,
                                sink,
                            );
                        }
                        Op::Call {
                            dst,
                            recv,
                            name,
                            args,
                        } => {
                            let frame = self.threads[t].frames.last().expect("frame");
                            let o = obj_of!(frame, recv);
                            let Some(class) = self.heap.class_of(o) else {
                                fail!(VmErrorKind::Internal("method call on array".into()), span);
                            };
                            let Some(target) = code.dispatch(class, name) else {
                                fail!(
                                    VmErrorKind::Internal(format!(
                                        "no method {} on {class}",
                                        code.names[name as usize]
                                    )),
                                    span
                                );
                            };
                            let frame = self.threads[t].frames.last_mut().expect("frame");
                            let arg_vars = code.args(args).to_vec();
                            let arg_vals: Vec<Value> =
                                arg_vars.iter().map(|a| frame.regs[a.index()]).collect();
                            frame.pc = pc + 1;
                            self.push_callee_frame(
                                tid,
                                BodyId::Method(target),
                                Some(Value::Ref(o)),
                                arg_vals,
                                dst,
                                Some(recv),
                                arg_vars,
                                span,
                                sink,
                            );
                        }
                        Op::CallExact {
                            dst,
                            recv,
                            method,
                            args,
                        } => {
                            let frame = self.threads[t].frames.last_mut().expect("frame");
                            let o = obj_of!(frame, recv);
                            let arg_vars = code.args(args).to_vec();
                            let arg_vals: Vec<Value> =
                                arg_vars.iter().map(|a| frame.regs[a.index()]).collect();
                            frame.pc = pc + 1;
                            self.push_callee_frame(
                                tid,
                                BodyId::Method(method),
                                Some(Value::Ref(o)),
                                arg_vals,
                                dst,
                                Some(recv),
                                arg_vars,
                                span,
                                sink,
                            );
                        }
                        Op::CallStatic { dst, method, args } => {
                            let frame = self.threads[t].frames.last_mut().expect("frame");
                            let arg_vars = code.args(args).to_vec();
                            let arg_vals: Vec<Value> =
                                arg_vars.iter().map(|a| frame.regs[a.index()]).collect();
                            frame.pc = pc + 1;
                            self.push_callee_frame(
                                tid,
                                BodyId::Method(method),
                                None,
                                arg_vals,
                                dst,
                                None,
                                arg_vars,
                                span,
                                sink,
                            );
                        }
                        Op::Return { val } => {
                            let frame = self.threads[t].frames.last().expect("frame");
                            let value = val.map(|v| frame.regs[v.index()]);
                            self.do_return(tid, val, value, span, sink);
                        }
                        Op::MonitorEnter { var } => {
                            let frame = self.threads[t].frames.last().expect("frame");
                            let o = obj_of!(frame, var);
                            self.threads[t].status = ThreadStatus::Blocked(o);
                        }
                        Op::MonitorExit { var } => {
                            let frame = self.threads[t].frames.last().expect("frame");
                            let o = obj_of!(frame, var);
                            self.release_monitor(tid, o, span, sink);
                            let frame = self.threads[t].frames.last_mut().expect("frame");
                            if let Some(pos) = frame.held.iter().rposition(|&h| h == o) {
                                frame.held.remove(pos);
                            }
                            frame.pc = pc + 1;
                        }
                        _ => unreachable!("non-boundary op in slow path"),
                    }
                }
            }
        }
        used
    }
}
