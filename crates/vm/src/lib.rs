//! # narada-vm — steppable virtual machine for MJ
//!
//! Executes the MIR produced by [`narada_lang`]:
//!
//! * a shared, non-collected [`Heap`] of objects with Java-style re-entrant
//!   monitors;
//! * a [`Machine`] holding any number of threads, each advanced one
//!   instruction at a time so a [`Scheduler`] controls the interleaving;
//! * an [`EventSink`] stream of labelled trace events consumed by the
//!   Narada trace analysis (sequential runs) and by the dynamic race
//!   detectors (concurrent runs);
//! * seed-test suspension ([`Machine::run_test_until_call`]) implementing
//!   the object-collection step of the paper's Algorithm 1.
//!
//! ## Example: trace a sequential seed test
//!
//! ```
//! use narada_lang::{compile, lower::lower_program};
//! use narada_vm::{Machine, VecSink};
//!
//! let program = compile(r#"
//!     class Counter { int count; void inc() { this.count = this.count + 1; } }
//!     test seed { var c = new Counter(); c.inc(); }
//! "#).unwrap();
//! let mir = lower_program(&program);
//! let mut machine = Machine::with_defaults(&program, &mir);
//! let mut trace = VecSink::new();
//! machine.run_test(program.test_by_name("seed").unwrap(), &mut trace)?;
//! assert!(!trace.events.is_empty());
//! # Ok::<(), narada_vm::VmError>(())
//! ```

#![warn(missing_docs)]

pub mod bytecode;
pub mod error;
pub mod event;
pub mod heap;
pub mod machine;
pub mod render;
pub mod rng;
pub mod schedule;
pub mod scheduler;
pub mod value;

pub use bytecode::{BcProgram, Engine};
pub use error::{VmError, VmErrorKind};
pub use event::{
    trace_digest, CopySrc, Event, EventKind, EventSink, FieldKey, InvId, Label, NullSink, TeeSink,
    ThreadId, VecSink,
};
pub use heap::{Heap, HeapMark, Object, ObjectData};
pub use machine::{
    CallSite, Machine, MachineMark, MachineOptions, MachineSnapshot, PendingInvoke, Preview,
    RunOutcome, ThreadStatus,
};
pub use render::{render_schedule_summary, TraceRenderer};
pub use rng::{derive_seed, splitmix64, SplitMix64};
pub use schedule::{Schedule, ScheduleError, VM_VERSION};
pub use scheduler::{
    ObservedScheduler, PctScheduler, RandomScheduler, RecordingScheduler, ReplayScheduler,
    RoundRobin, ScheduleStrategy, Scheduler, SegmentScheduler, SerialScheduler,
};
pub use value::{ObjId, Value};
