//! Execution trace events.
//!
//! Every semantically interesting VM step emits one [`Event`] with a unique,
//! monotonically increasing [`Label`] — the paper's *dynamic execution
//! index*. The same stream serves two consumers:
//!
//! * the **trace analysis** of `narada-core` (paper §3.1–§3.2), which reads
//!   the *symbolic* payload (register ids, parameter-copy variables,
//!   invocation scopes) to build the abstract heap `H`, the access map `A`,
//!   and the summaries `D`;
//! * the **dynamic race detectors** of `narada-detect`, which read the
//!   *concrete* payload (thread ids, object ids, lock transitions).

use crate::value::{ObjId, Value};
use narada_lang::hir::{ClassId, FieldId, MethodId};
use narada_lang::mir::{BodyId, VarId};
use narada_lang::Span;
use std::fmt;

macro_rules! fmt_display_tuple {
    ($prefix:literal) => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, concat!($prefix, "{}"), self.0)
        }
    };
}

/// Dynamic execution index: position of an event in the global trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(pub u64);

impl fmt::Display for Label {
    fmt_display_tuple!("#");
}

/// Identifies a VM thread. Thread 0 is the main (sequential) thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// The main thread, used for sequential seed tests and test setup.
    pub const MAIN: ThreadId = ThreadId(0);

    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    fmt_display_tuple!("T");
}

/// Identifies one dynamic method/test/initializer invocation; variables in
/// trace events are scoped by their invocation (paper §4: "We scope the
/// variable names by assigning unique index for each method invocation").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InvId(pub u64);

impl fmt::Display for InvId {
    fmt_display_tuple!("i");
}

/// Which memory location within an object an access touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FieldKey {
    /// A named field.
    Field(FieldId),
    /// An array element (concrete index, for precise race detection).
    Elem(i64),
}

impl fmt::Display for FieldKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldKey::Field(id) => write!(f, "{id}"),
            FieldKey::Elem(i) => write!(f, "[{i}]"),
        }
    }
}

/// Source classification of a register copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopySrc {
    /// `dst := src` — aliasing-relevant variable copy.
    Var(VarId),
    /// Result of a constant, arithmetic, `rand()`, or `length` — a value
    /// the client cannot control (paper: *not controllable*).
    Opaque,
    /// The value returned by a completed callee invocation.
    CallResult {
        /// The callee's invocation id.
        callee: InvId,
    },
}

/// The payload of one trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A method/constructor/field-initializer/test body began executing.
    InvokeStart {
        /// Fresh invocation id for the callee.
        inv: InvId,
        /// The body that starts.
        body: BodyId,
        /// The method, when `body` is a method.
        method: Option<MethodId>,
        /// Caller invocation (`None` for harness-driven or test roots).
        caller: Option<InvId>,
        /// True when invoked by client code (a `test` body or the harness):
        /// triggers the paper's `R` bootstrapping of controllability.
        from_client: bool,
        /// Receiver value, for instance bodies.
        recv: Option<Value>,
        /// Caller register holding the receiver, when known.
        recv_var: Option<VarId>,
        /// Argument values.
        args: Vec<Value>,
        /// Caller registers holding the arguments, when known.
        arg_vars: Vec<VarId>,
    },
    /// A body finished.
    InvokeEnd {
        /// The finished invocation.
        inv: InvId,
        /// The body that finished.
        body: BodyId,
        /// Callee register returned (`return(x)`), if a value was returned.
        ret_var: Option<VarId>,
        /// The returned value.
        ret: Option<Value>,
        /// True when returning to client code (the paper's *return* rule
        /// applies only on return to the client).
        to_client: bool,
    },
    /// Register copy: `dst := src` (assign rule) or an opaque definition.
    Copy {
        /// Executing invocation.
        inv: InvId,
        /// Destination register.
        dst: VarId,
        /// Source classification.
        src: CopySrc,
        /// The value copied.
        value: Value,
    },
    /// Object allocation (`x := alloc` rule).
    Alloc {
        /// Executing invocation.
        inv: InvId,
        /// Destination register.
        dst: VarId,
        /// The fresh object.
        obj: ObjId,
        /// Allocated class (`None` for arrays).
        class: Option<ClassId>,
    },
    /// Heap read: `dst := obj.field` / `dst := arr[i]`.
    Read {
        /// Executing invocation.
        inv: InvId,
        /// Destination register.
        dst: VarId,
        /// Register naming the object.
        obj_var: VarId,
        /// Concrete object read.
        obj: ObjId,
        /// Location within the object.
        field: FieldKey,
        /// Value read.
        value: Value,
    },
    /// Heap write: `obj.field := src` / `arr[i] := src`.
    Write {
        /// Executing invocation.
        inv: InvId,
        /// Register naming the object.
        obj_var: VarId,
        /// Concrete object written.
        obj: ObjId,
        /// Location within the object.
        field: FieldKey,
        /// Register naming the stored value.
        src_var: VarId,
        /// Value stored.
        value: Value,
    },
    /// Outermost monitor acquisition (re-entrant re-acquisitions are not
    /// reported: locksets only change on the 0→1 transition).
    Lock {
        /// Executing invocation.
        inv: InvId,
        /// Register naming the lock object, when from a `sync` construct.
        var: Option<VarId>,
        /// The lock object.
        obj: ObjId,
    },
    /// Final monitor release (1→0 transition).
    Unlock {
        /// Executing invocation.
        inv: InvId,
        /// The lock object.
        obj: ObjId,
    },
    /// A new thread was spawned by the harness.
    ThreadSpawn {
        /// The new thread.
        child: ThreadId,
    },
    /// A thread ran to completion.
    ThreadFinish,
    /// A thread aborted with a runtime error.
    ThreadFail {
        /// Rendered error message.
        message: String,
    },
}

/// One trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Dynamic execution index.
    pub label: Label,
    /// Executing thread.
    pub tid: ThreadId,
    /// Source span of the instruction.
    pub span: Span,
    /// Payload.
    pub kind: EventKind,
}

/// Order-sensitive 64-bit digest of an event trace.
///
/// Two runs with equal digests produced byte-identical traces (up to hash
/// collision); the record/replay tests and the committed `.sched` fixtures
/// use this as the "replay reproduced the run exactly" oracle without
/// storing whole traces.
pub fn trace_digest(events: &[Event]) -> u64 {
    use std::fmt::Write as _;
    let mut buf = String::new();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for ev in events {
        buf.clear();
        // Debug formatting is deterministic and covers every payload field.
        let _ = write!(buf, "{ev:?}");
        for b in buf.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }
    crate::rng::splitmix64(&mut h)
}

/// Consumer of the event stream. Detectors and the trace recorder implement
/// this; sinks must not assume events arrive from a single thread id.
pub trait EventSink {
    /// Called for every event, in trace order.
    fn event(&mut self, ev: &Event);

    /// Whether this sink actually consumes events. The bytecode engine
    /// skips *constructing* events for sinks that return `false` (label
    /// counters still advance, so the trace is unchanged if a listening
    /// sink is attached mid-run). Defaults to `true`; only sinks that
    /// provably discard everything should override.
    fn wants_events(&self) -> bool {
        true
    }
}

/// Sink that discards everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn event(&mut self, _ev: &Event) {}

    fn wants_events(&self) -> bool {
        false
    }
}

/// Sink that records the whole trace in memory.
#[derive(Debug, Default, Clone)]
pub struct VecSink {
    /// The recorded events, in order.
    pub events: Vec<Event>,
}

impl VecSink {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EventSink for VecSink {
    fn event(&mut self, ev: &Event) {
        self.events.push(ev.clone());
    }
}

/// Fans one event stream out to two sinks.
#[derive(Debug)]
pub struct TeeSink<'a, A: ?Sized, B: ?Sized> {
    /// First sink.
    pub a: &'a mut A,
    /// Second sink.
    pub b: &'a mut B,
}

impl<A: EventSink + ?Sized, B: EventSink + ?Sized> EventSink for TeeSink<'_, A, B> {
    fn event(&mut self, ev: &Event) {
        self.a.event(ev);
        self.b.event(ev);
    }

    fn wants_events(&self) -> bool {
        self.a.wants_events() || self.b.wants_events()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display() {
        assert_eq!(Label(5).to_string(), "#5");
        assert_eq!(ThreadId(2).to_string(), "T2");
        assert_eq!(InvId(9).to_string(), "i9");
        assert_eq!(FieldKey::Elem(3).to_string(), "[3]");
    }

    #[test]
    fn vec_sink_records_in_order() {
        let mut sink = VecSink::new();
        for i in 0..3 {
            sink.event(&Event {
                label: Label(i),
                tid: ThreadId::MAIN,
                span: Span::DUMMY,
                kind: EventKind::ThreadFinish,
            });
        }
        assert_eq!(sink.events.len(), 3);
        assert!(sink.events.windows(2).all(|w| w[0].label < w[1].label));
    }

    #[test]
    fn tee_sink_duplicates() {
        let mut a = VecSink::new();
        let mut b = VecSink::new();
        let ev = Event {
            label: Label(0),
            tid: ThreadId::MAIN,
            span: Span::DUMMY,
            kind: EventKind::ThreadFinish,
        };
        TeeSink {
            a: &mut a,
            b: &mut b,
        }
        .event(&ev);
        assert_eq!(a.events.len(), 1);
        assert_eq!(b.events.len(), 1);
    }
}
