//! Runtime errors. MJ has no exception handling, so a [`VmError`] aborts the
//! executing thread (like an uncaught Java exception) — the ConTeGe-style
//! baseline uses exactly this as its thread-safety-violation oracle.

use narada_lang::Span;
use std::error::Error;
use std::fmt;

/// What went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmErrorKind {
    /// Dereferenced `null` (field access, call, index, or `sync`).
    NullDeref,
    /// Array index out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        idx: i64,
        /// The array length.
        len: usize,
    },
    /// `new T[n]` with negative `n`.
    NegativeArrayLength(i64),
    /// Integer division or remainder by zero.
    DivByZero,
    /// `assert` failed.
    AssertFailed,
    /// Control fell off the end of a non-void method.
    MissingReturn,
    /// Call stack exceeded the configured limit.
    StackOverflow,
    /// Thread exceeded the configured step budget (runaway loop).
    StepLimit,
    /// Internal invariant violation (a bug in the VM or front end).
    Internal(String),
}

impl fmt::Display for VmErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmErrorKind::NullDeref => write!(f, "null dereference"),
            VmErrorKind::IndexOutOfBounds { idx, len } => {
                write!(f, "index {idx} out of bounds for length {len}")
            }
            VmErrorKind::NegativeArrayLength(n) => write!(f, "negative array length {n}"),
            VmErrorKind::DivByZero => write!(f, "division by zero"),
            VmErrorKind::AssertFailed => write!(f, "assertion failed"),
            VmErrorKind::MissingReturn => write!(f, "non-void method returned no value"),
            VmErrorKind::StackOverflow => write!(f, "call stack overflow"),
            VmErrorKind::StepLimit => write!(f, "step limit exceeded"),
            VmErrorKind::Internal(msg) => write!(f, "internal vm error: {msg}"),
        }
    }
}

/// A runtime error with the source location of the failing instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmError {
    /// What went wrong.
    pub kind: VmErrorKind,
    /// Where the failing instruction came from.
    pub span: Span,
}

impl VmError {
    /// Creates a new error.
    pub fn new(kind: VmErrorKind, span: Span) -> Self {
        VmError { kind, span }
    }
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at {})", self.kind, self.span)
    }
}

impl Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_span() {
        let e = VmError::new(VmErrorKind::DivByZero, Span::new(3, 9));
        assert_eq!(e.to_string(), "division by zero (at 3..9)");
    }

    #[test]
    fn oob_message() {
        let e = VmErrorKind::IndexOutOfBounds { idx: -1, len: 4 };
        assert_eq!(e.to_string(), "index -1 out of bounds for length 4");
    }
}
