//! The steppable MJ virtual machine.
//!
//! A [`Machine`] owns a heap and any number of threads, each an explicit
//! frame stack over flat MIR. Execution advances one instruction at a time
//! ([`Machine::step`]), so a [`Scheduler`](crate::Scheduler) can interleave
//! threads at instruction granularity — the basis for both the random
//! stress scheduler and the RaceFuzzer-style directed scheduler.
//!
//! The machine supports the object-collection protocol of the paper's
//! Algorithm 1: [`Machine::run_test_until_call`] executes a sequential seed
//! test and *suspends before* a chosen client-level invocation, returning
//! the receiver/argument references while keeping every allocated object
//! alive in the heap (there is no garbage collector).

use crate::bytecode::{BcProgram, Engine};
use crate::error::{VmError, VmErrorKind};
use crate::event::{CopySrc, Event, EventKind, EventSink, FieldKey, InvId, Label, ThreadId};
use crate::heap::{Heap, HeapMark};
use crate::rng::SplitMix64;
use crate::value::{ObjId, Value};
use narada_lang::ast::{BinOp, UnOp};
use narada_lang::hir::{MethodId, Program, TestId};
use narada_lang::mir::{BodyId, InstrKind, MirProgram, VarId};
use narada_lang::Span;
use std::sync::Arc;

/// Tuning knobs for a [`Machine`].
#[derive(Debug, Clone)]
pub struct MachineOptions {
    /// Seed for `rand()` and any stochastic choices. Runs are deterministic
    /// given the same seed and schedule.
    pub seed: u64,
    /// Per-thread executed-instruction budget; exceeding it fails the
    /// thread with [`VmErrorKind::StepLimit`].
    pub max_steps: u64,
    /// Maximum frame-stack depth per thread.
    pub max_frames: usize,
    /// Execution engine. Both produce byte-identical traces (proven by the
    /// differential harness); [`Engine::Bytecode`] compiles the MIR once at
    /// machine construction and runs several times faster.
    pub engine: Engine,
}

impl Default for MachineOptions {
    fn default() -> Self {
        MachineOptions {
            seed: 0x6e61_7261_6461,
            max_steps: 2_000_000,
            max_frames: 512,
            engine: Engine::TreeWalk,
        }
    }
}

/// Scheduling status of one thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreadStatus {
    /// Can execute its next instruction.
    Runnable,
    /// Waiting for another thread to release a monitor.
    Blocked(ObjId),
    /// Deliberately frozen mid-execution (paper §4: a context-setter
    /// suspended at its writeable assignment); never scheduled until
    /// unparked.
    Parked,
    /// Ran to completion.
    Finished,
    /// Aborted with a runtime error.
    Failed(VmError),
}

#[derive(Debug, Clone)]
pub(crate) struct Frame {
    pub(crate) body: BodyId,
    pub(crate) inv: InvId,
    pub(crate) pc: usize,
    pub(crate) regs: Vec<Value>,
    /// Monitors entered by this frame, innermost last; released on return
    /// (covers `return` inside `sync`, Java-style).
    pub(crate) held: Vec<ObjId>,
    /// Caller register receiving the return value.
    pub(crate) ret_dst: Option<VarId>,
}

/// A queued client invocation for a multi-call thread body.
#[derive(Debug, Clone)]
pub struct PendingInvoke {
    /// Method to invoke (dispatched on the receiver's runtime class).
    pub method: MethodId,
    /// Receiver (`None` for static methods).
    pub recv: Option<Value>,
    /// Arguments.
    pub args: Vec<Value>,
}

#[derive(Debug, Clone)]
pub(crate) struct ThreadState {
    pub(crate) frames: Vec<Frame>,
    pub(crate) status: ThreadStatus,
    pub(crate) steps: u64,
    /// Invocations to run after the current one completes (multi-call
    /// thread bodies, e.g. the ConTeGe baseline's suffixes).
    pub(crate) queue: std::collections::VecDeque<PendingInvoke>,
}

impl ThreadState {
    fn new() -> Self {
        ThreadState {
            frames: Vec::new(),
            status: ThreadStatus::Finished,
            steps: 0,
            queue: std::collections::VecDeque::new(),
        }
    }
}

/// What [`Machine::preview`] says the next instruction of a thread will do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preview {
    /// A heap read of the given location.
    Read(ObjId, FieldKey),
    /// A heap write of the given location, with the value about to be
    /// stored (used by the harmful/benign race triage).
    Write(ObjId, FieldKey, Value),
    /// A monitor acquisition.
    Lock(ObjId),
    /// Anything else.
    Other,
}

impl Preview {
    /// The location touched, for read/write previews.
    pub fn access(self) -> Option<(ObjId, FieldKey, bool)> {
        match self {
            Preview::Read(o, f) => Some((o, f, false)),
            Preview::Write(o, f, _) => Some((o, f, true)),
            _ => None,
        }
    }

    /// The value about to be written, for write previews.
    pub fn written_value(self) -> Option<Value> {
        match self {
            Preview::Write(_, _, v) => Some(v),
            _ => None,
        }
    }
}

/// Outcome of [`Machine::run_threads`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every thread finished (some may have failed; inspect
    /// [`Machine::thread_status`]).
    Completed,
    /// All remaining threads are blocked on monitors.
    Deadlock {
        /// The blocked threads.
        blocked: Vec<ThreadId>,
    },
    /// The global step budget ran out before completion.
    StepLimit,
}

/// A client-level call site observed by [`Machine::run_test_until_call`].
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The dispatch-resolved target method.
    pub method: MethodId,
    /// Receiver value (`None` for static calls).
    pub recv: Option<Value>,
    /// Argument values.
    pub args: Vec<Value>,
}

/// The MJ virtual machine. See the module docs.
#[derive(Debug)]
pub struct Machine<'p> {
    /// The program being executed.
    pub program: &'p Program,
    /// Its lowered MIR.
    pub mir: &'p MirProgram,
    /// The shared heap.
    pub heap: Heap,
    pub(crate) threads: Vec<ThreadState>,
    /// Return values of finished single-invocation threads.
    thread_results: Vec<(ThreadId, Value)>,
    pub(crate) next_label: u64,
    next_inv: u64,
    pub(crate) rng: SplitMix64,
    /// Count of `Rand` instructions executed since construction/reset.
    /// The fork explorer shares a prefix across seeds only when the
    /// prefix drew nothing (zero draws ⇒ prefix is seed-independent).
    pub(crate) rng_draws: u64,
    pub(crate) opts: MachineOptions,
    /// Compiled bytecode; present iff `opts.engine == Engine::Bytecode`.
    code: Option<Arc<BcProgram>>,
}

/// An owned, engine-independent copy of a [`Machine`]'s full mutable
/// state — heap, thread stacks, monitor tables (they live in heap
/// objects), label/invocation counters, and the RNG — taken by
/// [`Machine::snapshot`]. Restoring it onto any machine for the same
/// program yields a run bit-for-bit identical to continuing from the
/// capture point. `Arc`-share one snapshot across workers; each worker
/// restores its own machine from it.
#[derive(Debug, Clone)]
pub struct MachineSnapshot {
    heap: Heap,
    threads: Vec<ThreadState>,
    thread_results: Vec<(ThreadId, Value)>,
    next_label: u64,
    next_inv: u64,
    rng: SplitMix64,
    seed: u64,
    rng_draws: u64,
}

impl MachineSnapshot {
    /// Rough byte footprint of the captured state (heap payload plus
    /// fixed overhead) — the `explore.snapshot_bytes` input.
    pub fn approx_bytes(&self) -> u64 {
        let frames: usize = self
            .threads
            .iter()
            .map(|t| {
                t.frames
                    .iter()
                    .map(|f| f.regs.len() + f.held.len())
                    .sum::<usize>()
            })
            .sum();
        self.heap.approx_bytes()
            + (frames * std::mem::size_of::<Value>()) as u64
            + std::mem::size_of::<MachineSnapshot>() as u64
    }
}

/// An in-place rewind point from [`Machine::mark`]: a copy-on-write
/// [`HeapMark`] plus owned copies of the (small) non-heap state. Cheaper
/// than restoring a [`MachineSnapshot`] because [`Machine::rewind`]
/// undoes only what the probe actually mutated on the heap.
#[derive(Debug, Clone)]
pub struct MachineMark {
    heap: HeapMark,
    threads: Vec<ThreadState>,
    thread_results: Vec<(ThreadId, Value)>,
    next_label: u64,
    next_inv: u64,
    rng: SplitMix64,
    seed: u64,
    rng_draws: u64,
}

impl<'p> Machine<'p> {
    /// Creates a machine with one (empty) main thread. When
    /// `opts.engine` is [`Engine::Bytecode`] the MIR is compiled here,
    /// once (linear in program size); use [`Machine::with_code`] to share
    /// one compilation across many machines.
    pub fn new(program: &'p Program, mir: &'p MirProgram, opts: MachineOptions) -> Self {
        let code = match opts.engine {
            Engine::TreeWalk => None,
            Engine::Bytecode => Some(Arc::new(BcProgram::compile(program, mir))),
        };
        Self::with_optional_code(program, mir, opts, code)
    }

    /// Creates a bytecode-engine machine from an already-compiled program
    /// (`opts.engine` is forced to [`Engine::Bytecode`]). Hot loops that
    /// build one machine per trial share the `Arc` instead of recompiling.
    pub fn with_code(
        program: &'p Program,
        mir: &'p MirProgram,
        opts: MachineOptions,
        code: Arc<BcProgram>,
    ) -> Self {
        let opts = MachineOptions {
            engine: Engine::Bytecode,
            ..opts
        };
        Self::with_optional_code(program, mir, opts, Some(code))
    }

    fn with_optional_code(
        program: &'p Program,
        mir: &'p MirProgram,
        opts: MachineOptions,
        code: Option<Arc<BcProgram>>,
    ) -> Self {
        let rng = SplitMix64::seed_from_u64(opts.seed);
        Machine {
            program,
            mir,
            heap: Heap::new(program),
            threads: vec![ThreadState::new()],
            thread_results: Vec::new(),
            next_label: 0,
            next_inv: 0,
            rng,
            rng_draws: 0,
            opts,
            code,
        }
    }

    /// Creates a machine with default options.
    pub fn with_defaults(program: &'p Program, mir: &'p MirProgram) -> Self {
        Self::new(program, mir, MachineOptions::default())
    }

    /// The execution engine this machine runs on.
    pub fn engine(&self) -> Engine {
        self.opts.engine
    }

    /// Restores the machine to its freshly-constructed state under `seed`:
    /// empty heap, a single idle main thread, and label/invocation counters
    /// at zero. Lets callers that run many independent tests (e.g. the seed
    /// generator's candidate executor) reuse one machine instead of paying
    /// an allocation per run, while keeping each run's trace identical to a
    /// `Machine::new` run with the same seed.
    pub fn reset(&mut self, seed: u64) {
        self.heap = Heap::new(self.program);
        self.threads = vec![ThreadState::new()];
        self.thread_results = Vec::new();
        self.next_label = 0;
        self.next_inv = 0;
        self.opts.seed = seed;
        self.rng = SplitMix64::seed_from_u64(seed);
        self.rng_draws = 0;
    }

    /// Reseeds the RNG without touching any other state. The fork
    /// explorer calls this after restoring a snapshot so each probe's
    /// suffix draws from its own trial seed while sharing the prefix.
    pub fn reseed(&mut self, seed: u64) {
        self.opts.seed = seed;
        self.rng = SplitMix64::seed_from_u64(seed);
    }

    /// Number of `Rand` instructions executed since construction/reset.
    pub fn rng_draws(&self) -> u64 {
        self.rng_draws
    }

    // ------------------------------------------------------------------
    // Snapshots and marks (the fork explorer's substrate)
    // ------------------------------------------------------------------

    /// Captures the machine's full mutable state as an owned,
    /// `Arc`-shareable [`MachineSnapshot`]. The snapshot's heap copy
    /// starts with an empty undo log (history is per-machine, not
    /// shared).
    pub fn snapshot(&self) -> MachineSnapshot {
        let mut heap = self.heap.clone();
        heap.clear_history();
        MachineSnapshot {
            heap,
            threads: self.threads.clone(),
            thread_results: self.thread_results.clone(),
            next_label: self.next_label,
            next_inv: self.next_inv,
            rng: self.rng.clone(),
            seed: self.opts.seed,
            rng_draws: self.rng_draws,
        }
    }

    /// Overwrites this machine's mutable state with `snap`. The machine
    /// must run the same program the snapshot was taken from; engine and
    /// other options are kept, so a TreeWalk snapshot can resume on a
    /// Bytecode machine and vice versa.
    pub fn restore(&mut self, snap: &MachineSnapshot) {
        self.heap = snap.heap.clone();
        self.threads = snap.threads.clone();
        self.thread_results = snap.thread_results.clone();
        self.next_label = snap.next_label;
        self.next_inv = snap.next_inv;
        self.rng = snap.rng.clone();
        self.opts.seed = snap.seed;
        self.rng_draws = snap.rng_draws;
    }

    /// Takes an in-place rewind point: a copy-on-write heap mark plus
    /// owned copies of the small non-heap state. [`Machine::rewind`]
    /// restores it without cloning the heap; the same mark can be
    /// rewound to any number of times.
    pub fn mark(&mut self) -> MachineMark {
        MachineMark {
            heap: self.heap.mark(),
            threads: self.threads.clone(),
            thread_results: self.thread_results.clone(),
            next_label: self.next_label,
            next_inv: self.next_inv,
            rng: self.rng.clone(),
            seed: self.opts.seed,
            rng_draws: self.rng_draws,
        }
    }

    /// Rewinds to a mark taken on *this* machine: heap mutations since
    /// the mark are undone object-by-object via the heap's undo log, and
    /// the non-heap state is written back from the mark's copies.
    pub fn rewind(&mut self, mark: &MachineMark) {
        self.heap.rewind(&mark.heap);
        self.threads = mark.threads.clone();
        self.thread_results = mark.thread_results.clone();
        self.next_label = mark.next_label;
        self.next_inv = mark.next_inv;
        self.rng = mark.rng.clone();
        self.opts.seed = mark.seed;
        self.rng_draws = mark.rng_draws;
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Number of threads ever created (including main).
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// The machine seed. Together with a recorded schedule this is the
    /// complete reproduction recipe for a run (see
    /// [`Schedule`](crate::schedule::Schedule)).
    pub fn seed(&self) -> u64 {
        self.opts.seed
    }

    /// Status of a thread.
    pub fn thread_status(&self, tid: ThreadId) -> &ThreadStatus {
        &self.threads[tid.index()].status
    }

    /// Threads currently able to run.
    pub fn runnable_threads(&self) -> Vec<ThreadId> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == ThreadStatus::Runnable)
            .map(|(i, _)| ThreadId(i as u32))
            .collect()
    }

    /// Monitors currently held by a thread (all frames, innermost last).
    pub fn held_locks(&self, tid: ThreadId) -> Vec<ObjId> {
        self.threads[tid.index()]
            .frames
            .iter()
            .flat_map(|f| f.held.iter().copied())
            .collect()
    }

    /// Like [`Machine::preview`], also returning the source span of the
    /// next instruction (used by directed schedulers to match static
    /// program points).
    pub fn preview_detail(&self, tid: ThreadId) -> Option<(Preview, Span)> {
        let t = &self.threads[tid.index()];
        let frame = t.frames.last()?;
        let body = self.mir.body(frame.body);
        let span = body.instrs.get(frame.pc)?.span;
        Some((self.preview(tid)?, span))
    }

    /// Classifies the next instruction of `tid` without executing it.
    /// Returns `None` for finished/failed threads.
    pub fn preview(&self, tid: ThreadId) -> Option<Preview> {
        let t = &self.threads[tid.index()];
        if matches!(t.status, ThreadStatus::Finished | ThreadStatus::Failed(_)) {
            return None;
        }
        let frame = t.frames.last()?;
        let body = self.mir.body(frame.body);
        let instr = body.instrs.get(frame.pc)?;
        let reg = |v: &VarId| frame.regs[v.index()];
        Some(match &instr.kind {
            InstrKind::ReadField { obj, field, .. } => match reg(obj).as_obj() {
                Some(o) => Preview::Read(o, FieldKey::Field(*field)),
                None => Preview::Other,
            },
            InstrKind::WriteField { obj, field, src } => match reg(obj).as_obj() {
                Some(o) => Preview::Write(o, FieldKey::Field(*field), reg(src)),
                None => Preview::Other,
            },
            InstrKind::ReadIndex { arr, idx, .. } => match (reg(arr).as_obj(), reg(idx).as_int()) {
                (Some(o), Some(i)) => Preview::Read(o, FieldKey::Elem(i)),
                _ => Preview::Other,
            },
            InstrKind::WriteIndex { arr, idx, src } => match (reg(arr).as_obj(), reg(idx).as_int())
            {
                (Some(o), Some(i)) => Preview::Write(o, FieldKey::Elem(i), reg(src)),
                _ => Preview::Other,
            },
            InstrKind::MonitorEnter { var } => match reg(var).as_obj() {
                Some(o) => Preview::Lock(o),
                None => Preview::Other,
            },
            _ => Preview::Other,
        })
    }

    // ------------------------------------------------------------------
    // Sequential execution
    // ------------------------------------------------------------------

    /// Runs a sequential test to completion on the main thread.
    ///
    /// The heap is *not* reset: repeated runs accumulate objects, which is
    /// exactly what the synthesizer's object collection needs.
    ///
    /// # Errors
    ///
    /// Returns the runtime error if the test's thread aborts.
    pub fn run_test(&mut self, test: TestId, sink: &mut dyn EventSink) -> Result<(), VmError> {
        self.start_test(test, sink);
        self.run_thread_to_completion(ThreadId::MAIN, sink)
    }

    /// Runs a sequential test until just before a client-level call for
    /// which `want` returns true. Returns the captured call site (receiver
    /// and argument references) or `None` if the test completed without a
    /// match. The suspended execution is abandoned, but its objects stay
    /// alive in the heap.
    ///
    /// # Errors
    ///
    /// Returns the runtime error if the test's thread aborts before a match.
    pub fn run_test_until_call(
        &mut self,
        test: TestId,
        sink: &mut dyn EventSink,
        want: &mut dyn FnMut(&CallSite) -> bool,
    ) -> Result<Option<CallSite>, VmError> {
        self.start_test(test, sink);
        loop {
            match self.thread_status(ThreadId::MAIN) {
                ThreadStatus::Finished => return Ok(None),
                ThreadStatus::Failed(e) => return Err(e.clone()),
                ThreadStatus::Blocked(_) | ThreadStatus::Parked => {
                    // Sequential execution cannot block (monitors are
                    // re-entrant and no other thread runs) unless a previous
                    // concurrent phase leaked a lock; treat as deadlock.
                    return Err(VmError::new(
                        VmErrorKind::Internal("sequential test blocked on a monitor".into()),
                        Span::DUMMY,
                    ));
                }
                ThreadStatus::Runnable => {}
            }
            if let Some(site) = self.client_call_site(ThreadId::MAIN) {
                if want(&site) {
                    // Abandon the suspended execution: its objects stay
                    // alive in the heap, but the frames (and any monitors
                    // they hold) are discarded so the main thread can be
                    // reused for further seed runs and setter invocations.
                    self.abandon_thread(ThreadId::MAIN, sink);
                    return Ok(Some(site));
                }
            }
            self.step(ThreadId::MAIN, sink);
        }
    }

    /// If the next instruction of `tid` is a call *in a test body frame*,
    /// resolves and returns it.
    fn client_call_site(&self, tid: ThreadId) -> Option<CallSite> {
        let frame = self.threads[tid.index()].frames.last()?;
        if !matches!(frame.body, BodyId::Test(_)) {
            return None;
        }
        let body = self.mir.body(frame.body);
        let instr = body.instrs.get(frame.pc)?;
        let reg = |v: &VarId| frame.regs[v.index()];
        match &instr.kind {
            InstrKind::Call {
                recv, method, args, ..
            } => {
                let rv = reg(recv);
                let target = rv
                    .as_obj()
                    .and_then(|o| self.heap.class_of(o))
                    .and_then(|c| self.program.dispatch(c, &self.program.method(*method).name))
                    .unwrap_or(*method);
                Some(CallSite {
                    method: target,
                    recv: Some(rv),
                    args: args.iter().map(reg).collect(),
                })
            }
            InstrKind::CallStatic { method, args, .. } => Some(CallSite {
                method: *method,
                recv: None,
                args: args.iter().map(reg).collect(),
            }),
            InstrKind::CallExact {
                recv, method, args, ..
            } => Some(CallSite {
                method: *method,
                recv: Some(reg(recv)),
                args: args.iter().map(reg).collect(),
            }),
            _ => None,
        }
    }

    /// Invokes `method` on the main thread and runs it to completion,
    /// returning its result. Used to execute context-setter sequences of a
    /// synthesized test.
    ///
    /// # Errors
    ///
    /// Returns the runtime error if the invocation aborts.
    pub fn invoke(
        &mut self,
        method: MethodId,
        recv: Option<Value>,
        args: Vec<Value>,
        sink: &mut dyn EventSink,
    ) -> Result<Option<Value>, VmError> {
        self.begin_invocation(ThreadId::MAIN, method, recv, args, sink)?;
        self.run_thread_to_completion(ThreadId::MAIN, sink)?;
        Ok(self.take_thread_result(ThreadId::MAIN))
    }

    fn run_thread_to_completion(
        &mut self,
        tid: ThreadId,
        sink: &mut dyn EventSink,
    ) -> Result<(), VmError> {
        loop {
            match self.thread_status(tid) {
                ThreadStatus::Finished => return Ok(()),
                ThreadStatus::Failed(e) => return Err(e.clone()),
                ThreadStatus::Blocked(_) | ThreadStatus::Parked => {
                    return Err(VmError::new(
                        VmErrorKind::Internal(
                            "single-threaded execution blocked on a monitor".into(),
                        ),
                        Span::DUMMY,
                    ))
                }
                ThreadStatus::Runnable => {
                    // Sequential fast path: no scheduler can interleave, so
                    // the bytecode engine runs in one unbounded burst
                    // instead of paying the per-step dispatch round-trip.
                    if let Some(code) = self.code.clone() {
                        self.run_bc(&code, tid, sink, u64::MAX);
                    } else {
                        self.step(tid, sink);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Concurrent execution
    // ------------------------------------------------------------------

    /// Spawns a fresh thread that will perform a single client invocation
    /// of `method`. Emits `ThreadSpawn` and the client `InvokeStart`.
    ///
    /// # Errors
    ///
    /// Fails if `recv` does not match the method's staticness.
    pub fn spawn_invoke(
        &mut self,
        method: MethodId,
        recv: Option<Value>,
        args: Vec<Value>,
        sink: &mut dyn EventSink,
    ) -> Result<ThreadId, VmError> {
        let tid = ThreadId(self.threads.len() as u32);
        self.threads.push(ThreadState::new());
        self.emit(
            ThreadId::MAIN,
            Span::DUMMY,
            EventKind::ThreadSpawn { child: tid },
            sink,
        );
        self.begin_invocation(tid, method, recv, args, sink)?;
        Ok(tid)
    }

    /// Freezes a runnable thread; it will not be scheduled until
    /// [`Machine::unpark`].
    pub fn park(&mut self, tid: ThreadId) {
        if self.threads[tid.index()].status == ThreadStatus::Runnable {
            self.threads[tid.index()].status = ThreadStatus::Parked;
        }
    }

    /// Makes a parked thread runnable again.
    pub fn unpark(&mut self, tid: ThreadId) {
        if self.threads[tid.index()].status == ThreadStatus::Parked {
            self.threads[tid.index()].status = ThreadStatus::Runnable;
        }
    }

    /// Paper §4: run a context-setter *partially* — invoke `method` on a
    /// fresh thread and suspend it right after the write at `stop_span`
    /// executes, stepping on to the closest point where the thread holds
    /// no monitors, then park it. Used when a later (non-controllable)
    /// update inside the method would overwrite the state the context
    /// needs.
    ///
    /// Returns the parked thread (or a finished one, when the method ran
    /// to completion before reaching the site).
    ///
    /// # Errors
    ///
    /// Fails on receiver mismatch or when the partial run aborts.
    pub fn invoke_partial(
        &mut self,
        method: MethodId,
        recv: Option<Value>,
        args: Vec<Value>,
        stop_span: Span,
        sink: &mut dyn EventSink,
    ) -> Result<ThreadId, VmError> {
        let tid = self.spawn_invoke(method, recv, args, sink)?;
        let mut hit = false;
        loop {
            match self.thread_status(tid) {
                ThreadStatus::Finished => return Ok(tid),
                ThreadStatus::Failed(e) => return Err(e.clone()),
                ThreadStatus::Blocked(_) | ThreadStatus::Parked => {
                    return Err(VmError::new(
                        VmErrorKind::Internal("partial invocation blocked".into()),
                        stop_span,
                    ))
                }
                ThreadStatus::Runnable => {}
            }
            if hit && self.held_locks(tid).is_empty() {
                self.park(tid);
                return Ok(tid);
            }
            if !hit {
                if let Some((Preview::Write(..), span)) = self.preview_detail(tid) {
                    if span == stop_span {
                        hit = true; // execute the write, then unwind locks
                    }
                }
            }
            self.step(tid, sink);
        }
    }

    /// Spawns a thread that performs a whole *sequence* of client
    /// invocations, one after another (later calls run only if earlier
    /// ones neither fail nor deadlock).
    ///
    /// # Errors
    ///
    /// Fails if the first invocation's receiver/staticness mismatch.
    pub fn spawn_invoke_seq(
        &mut self,
        mut calls: Vec<PendingInvoke>,
        sink: &mut dyn EventSink,
    ) -> Result<ThreadId, VmError> {
        if calls.is_empty() {
            return Err(VmError::new(
                VmErrorKind::Internal("empty invocation sequence".into()),
                Span::DUMMY,
            ));
        }
        let first = calls.remove(0);
        let tid = self.spawn_invoke(first.method, first.recv, first.args, sink)?;
        self.threads[tid.index()].queue.extend(calls);
        Ok(tid)
    }

    /// Runs all runnable threads under `scheduler` until completion,
    /// deadlock, or the step `budget` is exhausted.
    pub fn run_threads(
        &mut self,
        scheduler: &mut dyn crate::Scheduler,
        sink: &mut dyn EventSink,
        budget: u64,
    ) -> RunOutcome {
        let mut steps = 0u64;
        loop {
            let runnable = self.runnable_threads();
            if runnable.is_empty() {
                let blocked: Vec<ThreadId> = self
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| matches!(t.status, ThreadStatus::Blocked(_)))
                    .map(|(i, _)| ThreadId(i as u32))
                    .collect();
                if blocked.is_empty() {
                    return RunOutcome::Completed;
                }
                return RunOutcome::Deadlock { blocked };
            }
            if steps >= budget {
                return RunOutcome::StepLimit;
            }
            let tid = scheduler.choose(self, &runnable);
            debug_assert!(runnable.contains(&tid), "scheduler chose unrunnable thread");
            self.step(tid, sink);
            steps += 1;
        }
    }

    // ------------------------------------------------------------------
    // Frame plumbing
    // ------------------------------------------------------------------

    fn fresh_inv(&mut self) -> InvId {
        let id = InvId(self.next_inv);
        self.next_inv += 1;
        id
    }

    pub(crate) fn emit(
        &mut self,
        tid: ThreadId,
        span: Span,
        kind: EventKind,
        sink: &mut dyn EventSink,
    ) {
        let label = Label(self.next_label);
        self.next_label += 1;
        sink.event(&Event {
            label,
            tid,
            span,
            kind,
        });
    }

    fn start_test(&mut self, test: TestId, sink: &mut dyn EventSink) {
        let body = self.mir.test(test);
        let inv = self.fresh_inv();
        let t = &mut self.threads[ThreadId::MAIN.index()];
        t.frames.clear();
        t.status = ThreadStatus::Runnable;
        t.steps = 0;
        t.frames.push(Frame {
            body: BodyId::Test(test),
            inv,
            pc: 0,
            regs: vec![Value::Null; body.vars.len()],
            held: Vec::new(),
            ret_dst: None,
        });
        self.emit(
            ThreadId::MAIN,
            Span::DUMMY,
            EventKind::InvokeStart {
                inv,
                body: BodyId::Test(test),
                method: None,
                caller: None,
                from_client: false,
                recv: None,
                recv_var: None,
                args: Vec::new(),
                arg_vars: Vec::new(),
            },
            sink,
        );
    }

    /// Pushes a client invocation frame onto `tid` (which must be idle).
    fn begin_invocation(
        &mut self,
        tid: ThreadId,
        method: MethodId,
        recv: Option<Value>,
        args: Vec<Value>,
        sink: &mut dyn EventSink,
    ) -> Result<(), VmError> {
        let m = self.program.method(method);
        // Dynamic dispatch from the harness mirrors a client call site.
        let target = match recv
            .and_then(Value::as_obj)
            .and_then(|o| self.heap.class_of(o))
        {
            Some(c) if !m.is_static => self.program.dispatch(c, &m.name).unwrap_or(method),
            _ => method,
        };
        let tm = self.program.method(target);
        if tm.is_static != recv.is_none() {
            return Err(VmError::new(
                VmErrorKind::Internal(format!(
                    "receiver mismatch invoking {}",
                    self.program.qualified_name(target)
                )),
                tm.span,
            ));
        }
        // An ill-typed harness invocation (receiver class unrelated to the
        // method's owner) must fail cleanly, not corrupt field layouts.
        if let Some(obj) = recv.and_then(Value::as_obj) {
            let ok = self
                .heap
                .class_of(obj)
                .map(|c| self.program.is_subclass(c, tm.owner))
                .unwrap_or(false);
            if !ok {
                return Err(VmError::new(
                    VmErrorKind::Internal(format!(
                        "receiver {obj} is not a {}",
                        self.program.class(tm.owner).name
                    )),
                    tm.span,
                ));
            }
        }
        let body = self.mir.method(target);
        let mut regs = vec![Value::Null; body.vars.len()];
        let mut slot = 0usize;
        if let Some(r) = recv {
            regs[0] = r;
            slot = 1;
        }
        for (i, a) in args.iter().enumerate() {
            regs[slot + i] = *a;
        }
        let inv = self.fresh_inv();
        let t = &mut self.threads[tid.index()];
        debug_assert!(t.frames.is_empty(), "begin_invocation on busy thread");
        t.status = ThreadStatus::Runnable;
        t.steps = 0;
        t.frames.push(Frame {
            body: BodyId::Method(target),
            inv,
            pc: 0,
            regs,
            held: Vec::new(),
            ret_dst: None,
        });
        self.emit(
            tid,
            tm.span,
            EventKind::InvokeStart {
                inv,
                body: BodyId::Method(target),
                method: Some(target),
                caller: None,
                from_client: true,
                recv,
                recv_var: None,
                args,
                arg_vars: Vec::new(),
            },
            sink,
        );
        Ok(())
    }

    /// The value produced by a finished single-invocation thread (stored by
    /// `do_return` in a side slot).
    fn take_thread_result(&mut self, tid: ThreadId) -> Option<Value> {
        self.thread_results
            .iter()
            .position(|(t, _)| *t == tid)
            .map(|i| self.thread_results.remove(i).1)
    }

    // ------------------------------------------------------------------
    // The interpreter core
    // ------------------------------------------------------------------

    /// Executes one instruction of `tid`. No-op unless the thread is
    /// runnable. Lock contention flips the thread to `Blocked` without
    /// consuming the instruction.
    pub fn step(&mut self, tid: ThreadId, sink: &mut dyn EventSink) {
        if let Some(code) = self.code.clone() {
            self.run_bc(&code, tid, sink, 1);
        } else {
            self.step_tree(tid, sink);
        }
    }

    /// One instruction of the tree-walking reference engine.
    fn step_tree(&mut self, tid: ThreadId, sink: &mut dyn EventSink) {
        let t = tid.index();
        if self.threads[t].status != ThreadStatus::Runnable {
            return;
        }
        self.threads[t].steps += 1;
        if self.threads[t].steps > self.opts.max_steps {
            let span = self.current_span(tid);
            self.thread_fail(tid, VmError::new(VmErrorKind::StepLimit, span), sink);
            return;
        }
        let Some(frame) = self.threads[t].frames.last() else {
            self.threads[t].status = ThreadStatus::Finished;
            return;
        };
        let body = self.mir.body(frame.body);
        debug_assert!(frame.pc < body.instrs.len(), "pc past end of body");
        let instr = body.instrs[frame.pc].clone();
        let span = instr.span;
        let inv = frame.inv;

        macro_rules! reg {
            ($v:expr) => {
                self.threads[t].frames.last().unwrap().regs[$v.index()]
            };
        }
        macro_rules! set_reg {
            ($v:expr, $val:expr) => {
                self.threads[t].frames.last_mut().unwrap().regs[$v.index()] = $val
            };
        }
        macro_rules! advance {
            () => {
                self.threads[t].frames.last_mut().unwrap().pc += 1
            };
        }
        macro_rules! fail {
            ($kind:expr) => {{
                self.thread_fail(tid, VmError::new($kind, span), sink);
                return;
            }};
        }
        macro_rules! obj_of {
            ($v:expr) => {
                match reg!($v).as_obj() {
                    Some(o) => o,
                    None => fail!(VmErrorKind::NullDeref),
                }
            };
        }

        match instr.kind {
            InstrKind::Const { dst, val } => {
                let value = match val {
                    narada_lang::mir::ConstVal::Int(n) => Value::Int(n),
                    narada_lang::mir::ConstVal::Bool(b) => Value::Bool(b),
                    narada_lang::mir::ConstVal::Null => Value::Null,
                };
                set_reg!(dst, value);
                self.emit(
                    tid,
                    span,
                    EventKind::Copy {
                        inv,
                        dst,
                        src: CopySrc::Opaque,
                        value,
                    },
                    sink,
                );
                advance!();
            }
            InstrKind::Copy { dst, src } => {
                let value = reg!(src);
                set_reg!(dst, value);
                self.emit(
                    tid,
                    span,
                    EventKind::Copy {
                        inv,
                        dst,
                        src: CopySrc::Var(src),
                        value,
                    },
                    sink,
                );
                advance!();
            }
            InstrKind::Rand { dst } => {
                self.rng_draws += 1;
                let value = Value::Int(self.rng.gen_range(0..1_000_000));
                set_reg!(dst, value);
                self.emit(
                    tid,
                    span,
                    EventKind::Copy {
                        inv,
                        dst,
                        src: CopySrc::Opaque,
                        value,
                    },
                    sink,
                );
                advance!();
            }
            InstrKind::Binary { dst, op, l, r } => {
                let value = match eval_binary(op, reg!(l), reg!(r)) {
                    Ok(v) => v,
                    Err(kind) => fail!(kind),
                };
                set_reg!(dst, value);
                self.emit(
                    tid,
                    span,
                    EventKind::Copy {
                        inv,
                        dst,
                        src: CopySrc::Opaque,
                        value,
                    },
                    sink,
                );
                advance!();
            }
            InstrKind::Unary { dst, op, v } => {
                let value = match (op, reg!(v)) {
                    (UnOp::Not, Value::Bool(b)) => Value::Bool(!b),
                    (UnOp::Neg, Value::Int(n)) => Value::Int(n.wrapping_neg()),
                    _ => fail!(VmErrorKind::Internal("unary type mismatch".into())),
                };
                set_reg!(dst, value);
                self.emit(
                    tid,
                    span,
                    EventKind::Copy {
                        inv,
                        dst,
                        src: CopySrc::Opaque,
                        value,
                    },
                    sink,
                );
                advance!();
            }
            InstrKind::ReadField { dst, obj, field } => {
                let o = obj_of!(obj);
                let value = self.heap.get_field(o, field);
                set_reg!(dst, value);
                self.emit(
                    tid,
                    span,
                    EventKind::Read {
                        inv,
                        dst,
                        obj_var: obj,
                        obj: o,
                        field: FieldKey::Field(field),
                        value,
                    },
                    sink,
                );
                advance!();
            }
            InstrKind::WriteField { obj, field, src } => {
                let o = obj_of!(obj);
                let value = reg!(src);
                self.heap.set_field(o, field, value);
                self.emit(
                    tid,
                    span,
                    EventKind::Write {
                        inv,
                        obj_var: obj,
                        obj: o,
                        field: FieldKey::Field(field),
                        src_var: src,
                        value,
                    },
                    sink,
                );
                advance!();
            }
            InstrKind::ReadIndex { dst, arr, idx } => {
                let o = obj_of!(arr);
                let i = reg!(idx).as_int().unwrap_or(0);
                let Some(value) = self.heap.get_elem(o, i) else {
                    fail!(VmErrorKind::IndexOutOfBounds {
                        idx: i,
                        len: self.heap.array_len(o),
                    });
                };
                set_reg!(dst, value);
                self.emit(
                    tid,
                    span,
                    EventKind::Read {
                        inv,
                        dst,
                        obj_var: arr,
                        obj: o,
                        field: FieldKey::Elem(i),
                        value,
                    },
                    sink,
                );
                advance!();
            }
            InstrKind::WriteIndex { arr, idx, src } => {
                let o = obj_of!(arr);
                let i = reg!(idx).as_int().unwrap_or(0);
                let value = reg!(src);
                if !self.heap.set_elem(o, i, value) {
                    fail!(VmErrorKind::IndexOutOfBounds {
                        idx: i,
                        len: self.heap.array_len(o),
                    });
                }
                self.emit(
                    tid,
                    span,
                    EventKind::Write {
                        inv,
                        obj_var: arr,
                        obj: o,
                        field: FieldKey::Elem(i),
                        src_var: src,
                        value,
                    },
                    sink,
                );
                advance!();
            }
            InstrKind::ArrayLen { dst, arr } => {
                let o = obj_of!(arr);
                let value = Value::Int(self.heap.array_len(o) as i64);
                set_reg!(dst, value);
                self.emit(
                    tid,
                    span,
                    EventKind::Copy {
                        inv,
                        dst,
                        src: CopySrc::Opaque,
                        value,
                    },
                    sink,
                );
                advance!();
            }
            InstrKind::AllocObj { dst, class } => {
                let obj = self.heap.alloc_instance(self.program, class);
                set_reg!(dst, Value::Ref(obj));
                self.emit(
                    tid,
                    span,
                    EventKind::Alloc {
                        inv,
                        dst,
                        obj,
                        class: Some(class),
                    },
                    sink,
                );
                advance!();
            }
            InstrKind::NewArray { dst, ref elem, len } => {
                let n = reg!(len).as_int().unwrap_or(0);
                if n < 0 {
                    fail!(VmErrorKind::NegativeArrayLength(n));
                }
                let obj = self.heap.alloc_array(elem.clone(), n as usize);
                set_reg!(dst, Value::Ref(obj));
                self.emit(
                    tid,
                    span,
                    EventKind::Alloc {
                        inv,
                        dst,
                        obj,
                        class: None,
                    },
                    sink,
                );
                advance!();
            }
            InstrKind::CallInit { obj, field } => {
                let o = obj_of!(obj);
                advance!();
                self.push_callee_frame(
                    tid,
                    BodyId::FieldInit(field),
                    Some(Value::Ref(o)),
                    Vec::new(),
                    None,
                    Some(obj),
                    Vec::new(),
                    span,
                    sink,
                );
            }
            InstrKind::Call {
                dst,
                recv,
                method,
                ref args,
            } => {
                let o = obj_of!(recv);
                let Some(class) = self.heap.class_of(o) else {
                    fail!(VmErrorKind::Internal("method call on array".into()));
                };
                let name = &self.program.method(method).name;
                let Some(target) = self.program.dispatch(class, name) else {
                    fail!(VmErrorKind::Internal(format!(
                        "no method {name} on {class}"
                    )));
                };
                let arg_vals: Vec<Value> = args.iter().map(|a| reg!(a)).collect();
                let arg_vars = args.clone();
                advance!();
                self.push_callee_frame(
                    tid,
                    BodyId::Method(target),
                    Some(Value::Ref(o)),
                    arg_vals,
                    dst,
                    Some(recv),
                    arg_vars,
                    span,
                    sink,
                );
            }
            InstrKind::CallExact {
                dst,
                recv,
                method,
                ref args,
            } => {
                let o = obj_of!(recv);
                let arg_vals: Vec<Value> = args.iter().map(|a| reg!(a)).collect();
                let arg_vars = args.clone();
                advance!();
                self.push_callee_frame(
                    tid,
                    BodyId::Method(method),
                    Some(Value::Ref(o)),
                    arg_vals,
                    dst,
                    Some(recv),
                    arg_vars,
                    span,
                    sink,
                );
            }
            InstrKind::CallStatic {
                dst,
                method,
                ref args,
            } => {
                let arg_vals: Vec<Value> = args.iter().map(|a| reg!(a)).collect();
                let arg_vars = args.clone();
                advance!();
                self.push_callee_frame(
                    tid,
                    BodyId::Method(method),
                    None,
                    arg_vals,
                    dst,
                    None,
                    arg_vars,
                    span,
                    sink,
                );
            }
            InstrKind::Jump { target } => {
                self.threads[t].frames.last_mut().unwrap().pc = target;
            }
            InstrKind::Branch {
                cond,
                then_t,
                else_t,
            } => {
                let Some(b) = reg!(cond).as_bool() else {
                    fail!(VmErrorKind::Internal("branch on non-bool".into()));
                };
                self.threads[t].frames.last_mut().unwrap().pc = if b { then_t } else { else_t };
            }
            InstrKind::MonitorEnter { var } => {
                let o = obj_of!(var);
                let owner = self.heap.object(o).lock_owner;
                match owner {
                    None => {
                        let objm = self.heap.object_mut(o);
                        objm.lock_owner = Some(tid.0);
                        objm.lock_count = 1;
                        self.threads[t].frames.last_mut().unwrap().held.push(o);
                        self.emit(
                            tid,
                            span,
                            EventKind::Lock {
                                inv,
                                var: Some(var),
                                obj: o,
                            },
                            sink,
                        );
                        advance!();
                    }
                    Some(owner) if owner == tid.0 => {
                        self.heap.object_mut(o).lock_count += 1;
                        self.threads[t].frames.last_mut().unwrap().held.push(o);
                        advance!();
                    }
                    Some(_) => {
                        self.threads[t].status = ThreadStatus::Blocked(o);
                    }
                }
            }
            InstrKind::MonitorExit { var } => {
                let o = obj_of!(var);
                self.release_monitor(tid, o, span, sink);
                let frame = self.threads[t].frames.last_mut().unwrap();
                if let Some(pos) = frame.held.iter().rposition(|&h| h == o) {
                    frame.held.remove(pos);
                }
                advance!();
            }
            InstrKind::Return { val } => {
                let value = val.map(|v| reg!(v));
                self.do_return(tid, val, value, span, sink);
            }
            InstrKind::Assert { cond } => {
                if reg!(cond) != Value::Bool(true) {
                    fail!(VmErrorKind::AssertFailed);
                }
                advance!();
            }
            InstrKind::MissingReturn => {
                fail!(VmErrorKind::MissingReturn);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn push_callee_frame(
        &mut self,
        tid: ThreadId,
        body_id: BodyId,
        recv: Option<Value>,
        args: Vec<Value>,
        ret_dst: Option<VarId>,
        recv_var: Option<VarId>,
        arg_vars: Vec<VarId>,
        span: Span,
        sink: &mut dyn EventSink,
    ) {
        let t = tid.index();
        if self.threads[t].frames.len() >= self.opts.max_frames {
            self.thread_fail(tid, VmError::new(VmErrorKind::StackOverflow, span), sink);
            return;
        }
        let caller_frame = self.threads[t].frames.last().expect("caller frame");
        let caller_inv = caller_frame.inv;
        let from_client = matches!(caller_frame.body, BodyId::Test(_));
        let body = self.mir.body(body_id);
        let mut regs = vec![Value::Null; body.vars.len()];
        let mut slot = 0usize;
        if let Some(r) = recv {
            regs[0] = r;
            slot = 1;
        }
        for (i, a) in args.iter().enumerate() {
            regs[slot + i] = *a;
        }
        let inv = self.fresh_inv();
        let method = match body_id {
            BodyId::Method(m) => Some(m),
            _ => None,
        };
        self.threads[t].frames.push(Frame {
            body: body_id,
            inv,
            pc: 0,
            regs,
            held: Vec::new(),
            ret_dst,
        });
        self.emit(
            tid,
            span,
            EventKind::InvokeStart {
                inv,
                body: body_id,
                method,
                caller: Some(caller_inv),
                from_client,
                recv,
                recv_var,
                args,
                arg_vars,
            },
            sink,
        );
    }

    pub(crate) fn do_return(
        &mut self,
        tid: ThreadId,
        ret_var: Option<VarId>,
        value: Option<Value>,
        span: Span,
        sink: &mut dyn EventSink,
    ) {
        let t = tid.index();
        let frame = self.threads[t].frames.pop().expect("return without frame");
        // Release monitors still held by the frame (early return in sync).
        for &o in frame.held.iter().rev() {
            self.release_monitor(tid, o, span, sink);
        }
        let to_client = self.threads[t]
            .frames
            .last()
            .map(|f| matches!(f.body, BodyId::Test(_)))
            .unwrap_or(true);
        self.emit(
            tid,
            span,
            EventKind::InvokeEnd {
                inv: frame.inv,
                body: frame.body,
                ret_var,
                ret: value,
                to_client,
            },
            sink,
        );
        match self.threads[t].frames.last_mut() {
            Some(parent) => {
                if let (Some(dst), Some(v)) = (frame.ret_dst, value) {
                    parent.regs[dst.index()] = v;
                    let parent_inv = parent.inv;
                    self.emit(
                        tid,
                        span,
                        EventKind::Copy {
                            inv: parent_inv,
                            dst,
                            src: CopySrc::CallResult { callee: frame.inv },
                            value: v,
                        },
                        sink,
                    );
                }
            }
            None => {
                if let Some(v) = value {
                    self.thread_results.push((tid, v));
                }
                if let Some(next) = self.threads[t].queue.pop_front() {
                    // Multi-call thread body: start the next invocation.
                    if let Err(e) =
                        self.begin_invocation(tid, next.method, next.recv, next.args, sink)
                    {
                        self.emit(
                            tid,
                            span,
                            EventKind::ThreadFail {
                                message: e.to_string(),
                            },
                            sink,
                        );
                        self.threads[t].status = ThreadStatus::Failed(e);
                    }
                } else {
                    self.threads[t].status = ThreadStatus::Finished;
                    self.emit(tid, span, EventKind::ThreadFinish, sink);
                }
            }
        }
    }

    /// Decrements a monitor; on the 1→0 transition releases it, emits
    /// `Unlock`, and wakes blocked threads.
    pub(crate) fn release_monitor(
        &mut self,
        tid: ThreadId,
        o: ObjId,
        span: Span,
        sink: &mut dyn EventSink,
    ) {
        let inv = self.threads[tid.index()]
            .frames
            .last()
            .map(|f| f.inv)
            .unwrap_or(InvId(u64::MAX));
        let obj = self.heap.object_mut(o);
        debug_assert_eq!(obj.lock_owner, Some(tid.0), "unlock by non-owner");
        obj.lock_count = obj.lock_count.saturating_sub(1);
        if obj.lock_count == 0 {
            obj.lock_owner = None;
            self.emit(tid, span, EventKind::Unlock { inv, obj: o }, sink);
            for thr in &mut self.threads {
                if thr.status == ThreadStatus::Blocked(o) {
                    thr.status = ThreadStatus::Runnable;
                }
            }
        }
    }

    /// Discards a thread's frames, releasing any monitors they hold. The
    /// heap is untouched.
    fn abandon_thread(&mut self, tid: ThreadId, sink: &mut dyn EventSink) {
        let t = tid.index();
        let frames = std::mem::take(&mut self.threads[t].frames);
        for frame in frames.iter().rev() {
            for &o in frame.held.iter().rev() {
                self.release_monitor(tid, o, Span::DUMMY, sink);
            }
        }
        self.threads[t].status = ThreadStatus::Finished;
    }

    pub(crate) fn thread_fail(&mut self, tid: ThreadId, err: VmError, sink: &mut dyn EventSink) {
        let t = tid.index();
        // Unwind: release all monitors held anywhere on the stack.
        let frames = std::mem::take(&mut self.threads[t].frames);
        for frame in frames.iter().rev() {
            for &o in frame.held.iter().rev() {
                self.release_monitor(tid, o, err.span, sink);
            }
        }
        self.emit(
            tid,
            err.span,
            EventKind::ThreadFail {
                message: err.to_string(),
            },
            sink,
        );
        self.threads[t].status = ThreadStatus::Failed(err);
    }

    pub(crate) fn current_span(&self, tid: ThreadId) -> Span {
        self.threads[tid.index()]
            .frames
            .last()
            .and_then(|f| self.mir.body(f.body).instrs.get(f.pc))
            .map(|i| i.span)
            .unwrap_or(Span::DUMMY)
    }
}

// `inline(always)`: both dispatch loops evaluate this on every binary
// instruction, and a plain `#[inline]` hint loses to the code size of
// the (cold, outlined) type-mismatch arm — an out-of-line call here
// forces the operands and result through the stack.
#[inline(always)]
pub(crate) fn eval_binary(op: BinOp, l: Value, r: Value) -> Result<Value, VmErrorKind> {
    use BinOp::*;
    Ok(match (op, l, r) {
        (Add, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_add(b)),
        (Sub, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_sub(b)),
        (Mul, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_mul(b)),
        (Div, Value::Int(_), Value::Int(0)) => return Err(VmErrorKind::DivByZero),
        (Div, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_div(b)),
        (Rem, Value::Int(_), Value::Int(0)) => return Err(VmErrorKind::DivByZero),
        (Rem, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_rem(b)),
        (Lt, Value::Int(a), Value::Int(b)) => Value::Bool(a < b),
        (Le, Value::Int(a), Value::Int(b)) => Value::Bool(a <= b),
        (Gt, Value::Int(a), Value::Int(b)) => Value::Bool(a > b),
        (Ge, Value::Int(a), Value::Int(b)) => Value::Bool(a >= b),
        (Eq, a, b) => Value::Bool(a.same(b)),
        (Ne, a, b) => Value::Bool(!a.same(b)),
        (And, Value::Bool(a), Value::Bool(b)) => Value::Bool(a && b),
        (Or, Value::Bool(a), Value::Bool(b)) => Value::Bool(a || b),
        _ => return Err(binary_type_mismatch(op, l, r)),
    })
}

#[cold]
#[inline(never)]
fn binary_type_mismatch(op: BinOp, l: Value, r: Value) -> VmErrorKind {
    VmErrorKind::Internal(format!("binary {op:?} on {l} and {r}"))
}
