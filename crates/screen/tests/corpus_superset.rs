//! The screener's soundness rests on its static summaries
//! *over-approximating* the dynamic ones the Context Deriver consumes:
//! anything the deriver can observe in a seed trace must have a static
//! counterpart, or "statically uninstallable ⇒ deriver fails" breaks.
//! These tests check that direction empirically on the whole corpus —
//! including the two deliberate non-approximations documented in
//! `summaries.rs` (callee-fresh returns, heap edges left by earlier
//! invocations), which must never matter on C1–C9.
//!
//! Matching is modulo `Statics::chain_variants`: when two sibling fields
//! of one object may hold the same value (C2's `mutex` and `c`), the
//! dynamic analyzer names paths through whichever field it concretely
//! traversed, while the static summary keeps one spelling plus rewrite
//! rules.

use narada_core::{synthesize, SynthesisOptions};
use narada_lang::lower::lower_program;
use narada_screen::summaries;

#[test]
fn static_setters_cover_every_dynamic_setter_summary() {
    for e in narada_corpus::all() {
        let prog = e.compile().expect("corpus compiles");
        let mir = lower_program(&prog);
        let out = synthesize(&prog, &mir, &SynthesisOptions::default());
        let statics = summaries::analyze(&mir);
        for s in &out.analysis.setters {
            let facts = &statics.methods[s.method.index()];
            let found = facts.writes.iter().any(|(l, r)| {
                let (Some(lp), Some(rp)) = (l.as_path(), r.as_path()) else {
                    return false;
                };
                lp.root == s.lhs.root
                    && rp.root == s.rhs.root
                    && statics.chain_variants(&lp.fields).contains(&s.lhs.fields)
                    && statics.chain_variants(&rp.fields).contains(&s.rhs.fields)
            });
            assert!(
                found,
                "{}: dynamic setter {} ⤳ {} in {} has no static counterpart",
                e.id,
                s.lhs,
                s.rhs,
                prog.qualified_name(s.method)
            );
        }
    }
}

#[test]
fn static_returns_cover_every_dynamic_return_summary() {
    for e in narada_corpus::all() {
        let prog = e.compile().expect("corpus compiles");
        let mir = lower_program(&prog);
        let out = synthesize(&prog, &mir, &SynthesisOptions::default());
        let statics = summaries::analyze(&mir);
        for r in &out.analysis.returns {
            let facts = &statics.methods[r.method.index()];
            let found = facts.returns.iter().any(|(chain, src)| {
                let Some(sp) = src.as_path() else {
                    return false;
                };
                sp.root == r.src.root
                    && statics.chain_variants(chain).contains(&r.ret_path.fields)
                    && statics.chain_variants(&sp.fields).contains(&r.src.fields)
            });
            assert!(
                found,
                "{}: dynamic return {} ⇐ {} in {} has no static counterpart",
                e.id,
                r.ret_path,
                r.src,
                prog.qualified_name(r.method)
            );
        }
    }
}
