//! Screener edge cases the differential corpus generator is built to
//! hit, pinned as unit tests. Each program here is the shrunk form of a
//! generator emission (every noise member dropped via
//! `emit_retained`), so the assertions survive emitter evolution only
//! consciously: if the generator's shape changes, these tests change
//! with it — under review.
//!
//! The three traps:
//! 1. **Reentrant monitor on a wrong lock** — both accesses hold *a*
//!    lock (twice, even: `read` → `readLocked` re-acquires it), but not
//!    the owner's monitor. Discharging via `OwnerMonitorHeld` here
//!    would be unsound.
//! 2. **Array-element writes under mixed guarding** — writes hold the
//!    owner's monitor, reads run bare. The read/write element pair must
//!    survive; only the write/write self-pair may be discharged.
//! 3. **Constructor-escaped `this`** — the owner arrives through the
//!    subject's constructor (which also writes `x.owner = this`), so it
//!    is client-reachable and must not be classified `ThreadLocalOwner`.

use narada_core::{synthesize, RaceKey, ScreenReason, StaticVerdict, SynthesisOptions};
use narada_difftest::{emit_retained, ClassSpec, Discipline, FieldKind, Sharing};
use narada_lang::hir::Program;
use narada_lang::lower::lower_program;
use narada_screen::screen_pairs;
use std::collections::BTreeSet;

/// Emits the shrunk (noise-free) program for the first sweep spec
/// matching the given lattice point.
fn shrunk_program(
    kind: FieldKind,
    discipline: Discipline,
    sharing: Sharing,
) -> (ClassSpec, Program) {
    let spec = ClassSpec::enumerate(0xd1ff, 36)
        .into_iter()
        .find(|s| s.field_kind == kind && s.discipline == discipline && s.sharing == sharing)
        .expect("36 specs cover the lattice");
    let full = narada_difftest::emit(spec);
    let dropped: BTreeSet<String> = full.removable.iter().cloned().collect();
    let gen = emit_retained(spec, &dropped);
    let prog = gen
        .program
        .compile()
        .unwrap_or_else(|e| panic!("{}: {e}\n{}", spec.label(), gen.source()));
    (spec, prog)
}

/// Screens a program and returns `(pairs-with-verdicts, prog)` keyed for
/// the assertions below.
fn screened(
    kind: FieldKind,
    discipline: Discipline,
    sharing: Sharing,
) -> (Program, Vec<(RaceKey, bool, bool, StaticVerdict)>) {
    let (spec, prog) = shrunk_program(kind, discipline, sharing);
    let mir = lower_program(&prog);
    let out = synthesize(&prog, &mir, &SynthesisOptions::default());
    let verdicts = screen_pairs(&mir, &out.pairs);
    assert_eq!(verdicts.len(), out.pairs.pairs.len(), "{}", spec.label());
    assert!(
        !out.pairs.pairs.is_empty(),
        "{}: no pairs generated",
        spec.label()
    );
    let rows = out
        .pairs
        .pairs
        .iter()
        .zip(&verdicts)
        .map(|(p, v)| {
            let (a, b) = out.pairs.accesses_of(p);
            (p.key, a.is_write, b.is_write, *v)
        })
        .collect();
    (prog, rows)
}

/// The leaf field's id in `Inner` (`val`, `arr`, or `ref`).
fn leaf_field(prog: &Program, name: &str) -> narada_lang::hir::FieldId {
    let inner = prog
        .classes
        .iter()
        .find(|c| c.name == "Inner")
        .expect("generated Inner class");
    *inner
        .own_fields
        .iter()
        .find(|f| prog.field(**f).name == name)
        .expect("leaf field")
}

#[test]
fn reentrant_wrong_lock_is_never_discharged_as_owner_monitor() {
    let (prog, rows) = screened(
        FieldKind::Scalar,
        Discipline::WrongLock,
        Sharing::EscapingField,
    );
    let val = leaf_field(&prog, "val");
    let mut leaf_pairs = 0usize;
    for (key, _, _, verdict) in &rows {
        // No pair anywhere in a wrong-lock class holds the owner's
        // monitor; an OwnerMonitorHeld discharge would be unsound.
        assert!(
            !matches!(
                verdict,
                StaticVerdict::MustNotRace {
                    reason: ScreenReason::OwnerMonitorHeld
                }
            ),
            "wrong-lock pair {key:?} discharged as OwnerMonitorHeld"
        );
        if matches!(key, RaceKey::Field(f) if *f == val) {
            leaf_pairs += 1;
            assert!(
                verdict.may_race(),
                "wrong-lock leaf pair {key:?} wrongly discharged: {verdict}"
            );
        }
    }
    assert!(leaf_pairs > 0, "no pair on the wrong-lock leaf");
}

#[test]
fn mixed_guarding_keeps_bare_array_element_reads_racy() {
    let (prog, rows) = screened(FieldKind::Array, Discipline::Mixed, Sharing::EscapingField);
    let arr = leaf_field(&prog, "arr");
    let on_elem = |key: &RaceKey| matches!(key, RaceKey::ElemVia(f) if *f == arr);
    // The bare read × guarded write pair must survive screening.
    let surviving_rw = rows
        .iter()
        .any(|(key, w1, w2, verdict)| on_elem(key) && (*w1 != *w2) && verdict.may_race());
    assert!(
        surviving_rw,
        "mixed-guarded array element: the read/write pair did not survive:\n{rows:?}"
    );
    // A write/write self-pair may be discharged, but only with a sound
    // argument: both sides hold the owner's monitor, or every derivable
    // sharing forces a lock collision. The object escapes through a
    // setter, so thread-locality would be flatly wrong.
    for (key, w1, w2, verdict) in &rows {
        if on_elem(key) && *w1 && *w2 {
            if let StaticVerdict::MustNotRace { reason } = verdict {
                assert_ne!(
                    *reason,
                    ScreenReason::ThreadLocalOwner,
                    "escaping array owner discharged as thread-local"
                );
            }
        }
    }
}

#[test]
fn ctor_captured_owner_is_not_thread_local() {
    let (prog, rows) = screened(
        FieldKind::Scalar,
        Discipline::Unguarded,
        Sharing::CtorCaptured,
    );
    let val = leaf_field(&prog, "val");
    let mut leaf_pairs = 0usize;
    for (key, _, _, verdict) in &rows {
        assert!(
            !matches!(
                verdict,
                StaticVerdict::MustNotRace {
                    reason: ScreenReason::ThreadLocalOwner
                }
            ),
            "ctor-captured owner classified thread-local for pair {key:?}"
        );
        if matches!(key, RaceKey::Field(f) if *f == val) {
            leaf_pairs += 1;
            assert!(
                verdict.may_race(),
                "unguarded leaf pair {key:?} wrongly discharged: {verdict}"
            );
        }
    }
    assert!(leaf_pairs > 0, "no pair on the captured unguarded leaf");
}

/// The same traps across every sharing shape. For almost every
/// under-locked lattice point the exposed leaf must survive screening.
/// The one exception is itself worth pinning: under
/// `WrongLock`/`ReturnedAlias` with all noise removed, the only
/// installable sharing is a single shared `Subject`, where every access
/// serializes on the same (wrong) guard — a lock collision, so
/// `NoRacyContext` is the *correct* discharge and the dynamic side
/// agrees the class is race-free.
#[test]
fn exposed_leaf_survives_screening_across_all_sharings() {
    for sharing in Sharing::ALL {
        for discipline in [
            Discipline::Unguarded,
            Discipline::WrongLock,
            Discipline::Mixed,
        ] {
            let (prog, rows) = screened(FieldKind::Scalar, discipline, sharing);
            let val = leaf_field(&prog, "val");
            let leaf_rows: Vec<_> = rows
                .iter()
                .filter(|(key, ..)| matches!(key, RaceKey::Field(f) if *f == val))
                .collect();
            assert!(
                !leaf_rows.is_empty(),
                "{discipline:?}/{sharing:?}: no pair on the exposed leaf"
            );
            if discipline == Discipline::WrongLock && sharing == Sharing::ReturnedAlias {
                // Single-subject sharing only: common guard on every
                // access, so the discharge must cite the lock collision
                // (no racy context), never monitor- or escape-based
                // arguments that do not hold here.
                for (key, _, _, verdict) in &leaf_rows {
                    assert_eq!(
                        *verdict,
                        StaticVerdict::MustNotRace {
                            reason: ScreenReason::NoRacyContext
                        },
                        "expected lock-collision discharge for {key:?}, got {verdict}"
                    );
                }
            } else {
                let survivors = leaf_rows.iter().filter(|(.., v)| v.may_race()).count();
                assert!(
                    survivors > 0,
                    "{:?}/{:?}: exposed leaf fully discharged:\n{rows:?}",
                    discipline,
                    sharing
                );
            }
        }
    }
}
