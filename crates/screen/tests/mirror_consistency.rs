//! Cross-checks the screener against the Context Deriver on the whole
//! corpus, without any dynamic exploration: a `MustNotRace` verdict
//! promises that no synthesized context can manifest the race — so every
//! test plan covering such a pair must itself have been derived with
//! `expects_race == false`. (The stronger check against races that
//! actually *manifest* under the scheduler lives in the workspace-level
//! `screener_agreement` property.)

use narada_core::{synthesize, StaticVerdict, SynthesisOptions};
use narada_lang::lower::lower_program;
use narada_screen::screen_pairs;

#[test]
fn must_not_race_pairs_never_yield_race_expecting_plans() {
    for e in narada_corpus::all() {
        let prog = e.compile().expect("corpus compiles");
        let mir = lower_program(&prog);
        let out = synthesize(&prog, &mir, &SynthesisOptions::default());
        let verdicts = screen_pairs(&mir, &out.pairs);
        assert_eq!(verdicts.len(), out.pairs.pairs.len());
        let mut expects = vec![false; out.pairs.pairs.len()];
        for t in &out.tests {
            for &pi in &t.covered_pairs {
                expects[pi] |= t.plan.expects_race;
            }
        }
        for (pi, v) in verdicts.iter().enumerate() {
            if let StaticVerdict::MustNotRace { reason } = v {
                assert!(
                    !expects[pi],
                    "{}: pair {pi} discharged ({reason}) but the deriver \
                     produced a race-expecting plan for it",
                    e.id
                );
            }
        }
    }
}

#[test]
fn screener_discharges_pairs_on_lock_heavy_classes() {
    // The screener must actually *do* something where there is something
    // to do: C2 (SynchronizedCollection), C3 (CharArrayWriter) and C5
    // (BufferedInputStream) all contain fully monitor-protected pair
    // populations whose derived plans cannot race.
    for id in ["C2", "C3", "C5"] {
        let e = narada_corpus::by_id(id).expect("known id");
        let prog = e.compile().expect("corpus compiles");
        let mir = lower_program(&prog);
        let out = synthesize(&prog, &mir, &SynthesisOptions::default());
        let verdicts = screen_pairs(&mir, &out.pairs);
        let pruned = verdicts.iter().filter(|v| !v.may_race()).count();
        assert!(pruned > 0, "{id}: expected at least one discharged pair");
    }
}

#[test]
fn ranking_scores_are_positive_and_bounded() {
    for e in narada_corpus::all() {
        let prog = e.compile().expect("corpus compiles");
        let mir = lower_program(&prog);
        let out = synthesize(&prog, &mir, &SynthesisOptions::default());
        for v in screen_pairs(&mir, &out.pairs) {
            match v {
                StaticVerdict::MayRace { score } => {
                    assert!((1..=101).contains(&score), "{}: score {score}", e.id)
                }
                StaticVerdict::MustNotRace { .. } => assert_eq!(v.score(), 0),
            }
        }
    }
}
