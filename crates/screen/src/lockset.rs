//! Must-hold lockset analysis.
//!
//! A forward dataflow over each body's instruction CFG computes, for
//! every instruction, the multiset of monitors that are held on **every**
//! path reaching it (`MonitorEnter` pushes, `MonitorExit` releases, joins
//! intersect — so reentrancy is counted, and a lock held on only one
//! branch arm does not survive the merge). An interprocedural query then
//! chases an access site through calls, accumulating caller-held locks
//! and translating everything into the client-invoked method's parameter
//! frame.
//!
//! Direction: this is a *must* analysis used to discharge pairs, so every
//! imprecision drops locks (a smaller must-set is always sound). Lock
//! registers with ambiguous symbolic values become opaque tokens that
//! never translate to a client path; a release that cannot be matched
//! clears the whole set; a callee parameter bound to more than one
//! possible caller value translates to nothing.

use crate::summaries::{call_operands, call_targets, Statics, Sym, SymRoot};
use narada_core::path::{IPath, PathRoot};
use narada_lang::mir::{Body, InstrKind, MirProgram};
use narada_lang::Span;

/// Call-chain depth bound for the interprocedural query.
const MAX_CALL_DEPTH: usize = 4;

/// One held monitor inside a body: a definite symbolic value, or an
/// opaque token (keyed by the acquiring instruction) when the lock
/// register's value is ambiguous.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// The monitor of this symbolic object.
    Sym(Sym),
    /// An unidentifiable monitor acquired at this instruction index.
    Opaque(usize),
}

/// Per-instruction must-hold state of one body: `None` = unreachable,
/// otherwise the multiset of held monitors *before* the instruction runs.
#[derive(Debug, Clone)]
pub struct BodyLocks {
    /// Indexed by instruction.
    pub at: Vec<Option<Vec<Tok>>>,
}

/// Multiset intersection (count-wise minimum), preserving `a`'s order.
fn intersect(a: &[Tok], b: &[Tok]) -> Vec<Tok> {
    let mut out: Vec<Tok> = Vec::new();
    for t in a {
        let kept = out.iter().filter(|o| *o == t).count();
        let in_b = b.iter().filter(|o| *o == t).count();
        if kept < in_b {
            out.push(t.clone());
        }
    }
    out
}

fn successors(kind: &InstrKind, i: usize, len: usize) -> Vec<usize> {
    match kind {
        InstrKind::Jump { target } => vec![*target],
        InstrKind::Branch { then_t, else_t, .. } => vec![*then_t, *else_t],
        InstrKind::Return { .. } | InstrKind::MissingReturn => Vec::new(),
        _ => {
            if i + 1 < len {
                vec![i + 1]
            } else {
                Vec::new()
            }
        }
    }
}

/// Computes the per-instruction must-hold locksets of one body, given its
/// register facts from the summary pass.
pub fn body_locks(body: &Body, syms: &[Vec<Sym>]) -> BodyLocks {
    let n = body.instrs.len();
    let mut at: Vec<Option<Vec<Tok>>> = vec![None; n];
    if n == 0 {
        return BodyLocks { at };
    }
    // A definite lock token only when the register's value is unambiguous.
    let definite = |v: narada_lang::mir::VarId| -> Option<Tok> {
        let set = &syms[v.index()];
        (set.len() == 1).then(|| Tok::Sym(set[0].clone()))
    };
    at[0] = Some(Vec::new());
    let mut work: Vec<usize> = vec![0];
    while let Some(i) = work.pop() {
        let state = at[i].clone().expect("worklist entries are reachable");
        let out = match &body.instrs[i].kind {
            InstrKind::MonitorEnter { var } => {
                let mut s = state;
                s.push(definite(*var).unwrap_or(Tok::Opaque(i)));
                s
            }
            InstrKind::MonitorExit { var } => {
                let mut s = state;
                // Match by symbolic identity; an opaque or unmatched
                // release means our model lost track, so drop everything
                // (sound: must-sets only shrink).
                match definite(*var).and_then(|t| s.iter().rposition(|h| *h == t)) {
                    Some(p) => {
                        s.remove(p);
                    }
                    None => s.clear(),
                }
                s
            }
            _ => state,
        };
        for succ in successors(&body.instrs[i].kind, i, n) {
            let joined = match &at[succ] {
                None => out.clone(),
                Some(prev) => intersect(prev, &out),
            };
            if at[succ].as_ref() != Some(&joined) {
                at[succ] = Some(joined);
                work.push(succ);
            }
        }
    }
    BodyLocks { at }
}

/// A callee-frame → client-frame binding: the definite client path of
/// each parameter slot, if any.
#[derive(Debug, Clone)]
struct Env {
    this: Option<IPath>,
    params: Vec<Option<IPath>>,
}

impl Env {
    fn of_slot(&self, root: PathRoot) -> Option<&IPath> {
        match root {
            PathRoot::This => self.this.as_ref(),
            PathRoot::Param(i) => self.params.get(i).and_then(|p| p.as_ref()),
            PathRoot::Ret => None,
        }
    }
}

fn translate_sym(s: &Sym, env: &Env) -> Option<IPath> {
    let SymRoot::Slot(root) = s.root else {
        return None;
    };
    let base = env.of_slot(root)?;
    let mut fields = base.fields.clone();
    fields.extend_from_slice(&s.chain);
    Some(IPath {
        root: base.root,
        fields,
    })
}

fn translate_tok(tok: &Tok, env: &Env) -> Option<IPath> {
    match tok {
        Tok::Sym(s) => translate_sym(s, env),
        Tok::Opaque(_) => None,
    }
}

/// The definite client path of a callee slot bound to a caller register,
/// `None` when ambiguous or unknown.
fn definite_path(syms: &[Sym], env: &Env) -> Option<IPath> {
    let mut path: Option<IPath> = None;
    for s in syms {
        let p = translate_sym(s, env)?;
        match &path {
            None => path = Some(p),
            Some(prev) if *prev == p => {}
            Some(_) => return None,
        }
    }
    path
}

/// A walk state: `(method, env.this, env.params, held)`. Visiting the
/// same state again with no more remaining depth cannot find anything
/// new.
type WalkKey = (usize, Option<IPath>, Vec<Option<IPath>>, Vec<IPath>);

/// One query-relevant instruction of a body: an access site being looked
/// up and/or a call whose (filtered) widened targets can reach one.
struct PlanSite {
    instr: usize,
    matched: bool,
    targets: Vec<usize>,
}

/// Shared state for interprocedural lockset queries over one program:
/// per-body dataflow results plus a call-graph reachability closure (over
/// the widened dispatch relation) used to prune the route walk.
pub struct LockCtx<'a> {
    mir: &'a MirProgram,
    statics: &'a Statics,
    locks: Vec<BodyLocks>,
    reach: Vec<Vec<bool>>,
}

impl<'a> LockCtx<'a> {
    /// Builds the per-body locksets and reachability closure.
    pub fn new(mir: &'a MirProgram, statics: &'a Statics) -> Self {
        let locks: Vec<BodyLocks> = mir
            .methods
            .iter()
            .enumerate()
            .map(|(m, b)| body_locks(b, &statics.methods[m].syms))
            .collect();
        // Direct call edges under widened dispatch, then transitive
        // closure (an over-approximation only steers where the walk
        // descends, so wider is merely slower, never wrong).
        let n = mir.methods.len();
        let mut reach: Vec<Vec<bool>> = (0..n).map(|_| vec![false; n]).collect();
        for (m, body) in mir.methods.iter().enumerate() {
            for instr in &body.instrs {
                for t in call_targets(statics, &instr.kind).unwrap_or_default() {
                    if t < n {
                        reach[m][t] = true;
                    }
                }
            }
        }
        loop {
            let mut grew = false;
            for m in 0..n {
                for t in 0..n {
                    if !reach[m][t] {
                        continue;
                    }
                    #[allow(clippy::needless_range_loop)] // two rows share `u`
                    for u in 0..n {
                        if reach[t][u] && !reach[m][u] {
                            reach[m][u] = true;
                            grew = true;
                        }
                    }
                }
            }
            if !grew {
                break;
            }
        }
        LockCtx {
            mir,
            statics,
            locks,
            reach,
        }
    }

    /// The client-relative must-hold lockset at every instruction matching
    /// `(span, matcher)` reachable from `method`'s body through at most
    /// [`MAX_CALL_DEPTH`] calls — intersected over all matching sites and
    /// routes. `None` when no site was found at all ("no information").
    pub fn must_locks_at(
        &self,
        method: usize,
        span: Span,
        matcher: &dyn Fn(&InstrKind) -> bool,
    ) -> Option<Vec<IPath>> {
        // Methods whose own body contains a matching site, for pruning.
        let containers: Vec<bool> = self
            .mir
            .methods
            .iter()
            .map(|b| {
                b.instrs
                    .iter()
                    .any(|ins| ins.span == span && matcher(&ins.kind))
            })
            .collect();
        // Per-query plan: the walk revisits each body once per distinct
        // (env, held) state, so the per-instruction site matching and
        // widened-target filtering are hoisted out of the recursion.
        let viable: Vec<bool> = (0..self.mir.methods.len())
            .map(|t| {
                containers[t]
                    || self.reach[t]
                        .iter()
                        .enumerate()
                        .any(|(u, &r)| r && containers[u])
            })
            .collect();
        let plan: Vec<Vec<PlanSite>> = self
            .mir
            .methods
            .iter()
            .enumerate()
            .map(|(m, body)| {
                let mut sites = Vec::new();
                for (i, instr) in body.instrs.iter().enumerate() {
                    if self.locks[m].at[i].is_none() {
                        continue;
                    }
                    let matched = instr.span == span && matcher(&instr.kind);
                    let targets: Vec<usize> = call_targets(self.statics, &instr.kind)
                        .unwrap_or_default()
                        .into_iter()
                        .filter(|&t| viable[t])
                        .collect();
                    if matched || !targets.is_empty() {
                        sites.push(PlanSite {
                            instr: i,
                            matched,
                            targets,
                        });
                    }
                }
                sites
            })
            .collect();
        let facts = &self.statics.methods[method];
        let env = Env {
            this: facts.is_instance.then(IPath::this),
            params: (0..facts.arity).map(|i| Some(IPath::param(i))).collect(),
        };
        let mut found: Vec<Vec<IPath>> = Vec::new();
        // The widened call graph is dense, so distinct routes constantly
        // reconverge on identical (method, env, held) states; revisiting
        // one can only re-derive locksets already recorded. Deduplicating
        // keeps the walk polynomial without changing its result. The walk
        // also aborts (returning `true`) as soon as any route reaches the
        // site with nothing held — the intersection is already empty.
        let mut seen: std::collections::HashMap<WalkKey, usize> = std::collections::HashMap::new();
        let lock_free = self.walk(method, &env, &[], &plan, 0, &mut seen, &mut found);
        if lock_free {
            return Some(Vec::new());
        }
        let mut it = found.into_iter();
        let mut acc = it.next()?;
        for ls in it {
            acc.retain(|p| ls.contains(p));
        }
        Some(acc)
    }

    #[allow(clippy::too_many_arguments)]
    fn walk(
        &self,
        method: usize,
        env: &Env,
        held: &[IPath],
        plan: &[Vec<PlanSite>],
        depth: usize,
        seen: &mut std::collections::HashMap<WalkKey, usize>,
        found: &mut Vec<Vec<IPath>>,
    ) -> bool {
        // A shallower prior visit subsumes this one (same state, at least
        // as much remaining depth), so only unseen-or-deeper states walk.
        let key = (method, env.this.clone(), env.params.clone(), held.to_vec());
        match seen.get(&key) {
            Some(&d) if d <= depth => return false,
            _ => {
                seen.insert(key, depth);
            }
        }
        let body = &self.mir.methods[method];
        let facts = &self.statics.methods[method];
        let locks = &self.locks[method];
        for site in &plan[method] {
            let i = site.instr;
            let state = locks.at[i].as_ref().expect("plan sites are reachable");
            let descend = depth < MAX_CALL_DEPTH && !site.targets.is_empty();
            if !site.matched && !descend {
                continue;
            }
            let here: Vec<IPath> = {
                let mut ls: Vec<IPath> = held.to_vec();
                for tok in state {
                    if let Some(p) = translate_tok(tok, env) {
                        ls.push(p);
                    }
                }
                ls
            };
            if site.matched {
                found.push(here.clone());
                if here.is_empty() {
                    return true;
                }
            }
            if !descend {
                continue;
            }
            let (recv, args) = call_operands(&body.instrs[i].kind).expect("call has operands");
            // Operand bindings depend only on the call's registers, not on
            // which widened target is taken — resolve them once.
            let recv_path = recv.and_then(|r| definite_path(&facts.syms[r.index()], env));
            let arg_paths: Vec<Option<IPath>> = args
                .iter()
                .map(|a| definite_path(&facts.syms[a.index()], env))
                .collect();
            for &t in &site.targets {
                let callee = &self.statics.methods[t];
                let callee_env = Env {
                    this: recv_path.clone().filter(|_| callee.is_instance),
                    params: (0..callee.arity)
                        .map(|j| arg_paths.get(j).cloned().flatten())
                        .collect(),
                };
                if self.walk(t, &callee_env, &here, plan, depth + 1, seen, found) {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use narada_core::path::PathField;

    fn sym_this() -> Sym {
        Sym {
            root: SymRoot::Slot(PathRoot::This),
            chain: Vec::new(),
        }
    }

    #[test]
    fn intersect_is_countwise_min() {
        let a = vec![Tok::Sym(sym_this()), Tok::Sym(sym_this()), Tok::Opaque(3)];
        let b = vec![Tok::Sym(sym_this()), Tok::Opaque(3), Tok::Opaque(3)];
        let i = intersect(&a, &b);
        assert_eq!(i, vec![Tok::Sym(sym_this()), Tok::Opaque(3)]);
    }

    #[test]
    fn intersect_with_empty_is_empty() {
        let a = vec![Tok::Sym(sym_this())];
        assert!(intersect(&a, &[]).is_empty());
        assert!(intersect(&[], &a).is_empty());
    }

    #[test]
    fn translate_appends_chain_to_env_binding() {
        let env = Env {
            this: Some(IPath::param(1)),
            params: vec![],
        };
        let tok = Tok::Sym(Sym {
            root: SymRoot::Slot(PathRoot::This),
            chain: vec![PathField::Elem],
        });
        let p = translate_tok(&tok, &env).unwrap();
        assert_eq!(p.root, PathRoot::Param(1));
        assert_eq!(p.fields, vec![PathField::Elem]);
        assert!(translate_tok(&Tok::Opaque(0), &env).is_none());
    }
}
