//! Interprocedural symbolic summaries over MIR.
//!
//! A flow-insensitive abstract interpretation assigns every register of
//! every method body a set of *symbolic values* ([`Sym`]): access paths
//! rooted at the invocation's parameter slots (`this`, `param i`) or at an
//! allocation site within the body. From those the pass derives, per
//! method, the static analogues of the dynamic access summaries `D` of
//! paper §3.2:
//!
//! * **writes** — `lhs ⤳ rhs` heap-edge installations (`obj.f := src`
//!   with both sides expressed symbolically), including effects of
//!   callees translated through call sites;
//! * **ret_alias** — parameter-rooted paths the return value may alias
//!   (used to propagate call results during the fixpoint);
//! * **returns** — builder exposures `ret.chain ⤳ src`: paths below the
//!   returned object that hold a parameter (the Fig. 9 return-summary
//!   analogue, covering `this.f = x; return this` and fresh-builder
//!   chains alike).
//!
//! ## Soundness direction
//!
//! The screener discharges a pair only when something is statically
//! *impossible*, so these summaries must **over-approximate** every
//! summary the dynamic analyzer can observe: chains are capped above the
//! dynamic analyzer's depth limit, type compatibility is ignored, and
//! virtual calls (`InstrKind::Call` re-dispatches by name at runtime)
//! are resolved to *every* method body of matching shape (instance-ness
//! and arity) — names are not part of MIR, so this is the widest sound
//! resolution available. Two deliberate non-approximations are safe
//! because the dynamic analyzer cannot produce the corresponding
//! summaries either: callee-internal allocations returned to the caller
//! carry no client path (they are not controllable, so the dynamic
//! analyzer never summarizes through them), and heap edges installed by
//! *earlier* invocations are invisible to both analyses' per-invocation
//! parameter frames. The corpus-wide superset test
//! (`tests/corpus_superset.rs`) checks both empirically.

use narada_core::path::{IPath, PathField, PathRoot};
use narada_lang::mir::{Body, InstrKind, MirProgram, PSlot, VarId};

/// Chain-length cap, above the dynamic analyzer's depth limit (4) so the
/// static set stays a superset of anything it can record.
pub const MAX_CHAIN: usize = 6;
/// Per-register symbolic-set cap (a growth backstop; corpus bodies stay
/// far below it).
pub const MAX_SYMS: usize = 64;
/// Per-method cap on summary entries of each kind.
pub const MAX_ENTRIES: usize = 512;

/// Where a symbolic value is rooted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SymRoot {
    /// A parameter slot of the current invocation (`This` / `Param(i)`;
    /// never `Ret`).
    Slot(PathRoot),
    /// The allocation at this instruction index of the current body.
    Fresh(usize),
}

/// A symbolic value: root plus dereference chain.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym {
    /// The root.
    pub root: SymRoot,
    /// Field chain below the root.
    pub chain: Vec<PathField>,
}

impl Sym {
    /// The bare symbolic value of a parameter slot.
    pub fn slot(s: PSlot) -> Sym {
        Sym {
            root: SymRoot::Slot(slot_root(s)),
            chain: Vec::new(),
        }
    }

    /// Extends the chain by one field, `None` past the cap.
    pub fn child(&self, f: PathField) -> Option<Sym> {
        if self.chain.len() >= MAX_CHAIN {
            return None;
        }
        let mut chain = self.chain.clone();
        chain.push(f);
        Some(Sym {
            root: self.root,
            chain,
        })
    }

    /// Extends the chain by a suffix, `None` past the cap.
    pub fn extend(&self, suffix: &[PathField]) -> Option<Sym> {
        if self.chain.len() + suffix.len() > MAX_CHAIN {
            return None;
        }
        let mut chain = self.chain.clone();
        chain.extend_from_slice(suffix);
        Some(Sym {
            root: self.root,
            chain,
        })
    }

    /// The client-relative path this value denotes, `None` for fresh
    /// allocations.
    pub fn as_path(&self) -> Option<IPath> {
        match self.root {
            SymRoot::Slot(root) => Some(IPath {
                root,
                fields: self.chain.clone(),
            }),
            SymRoot::Fresh(_) => None,
        }
    }
}

/// Maps a parameter slot to its path root.
pub fn slot_root(s: PSlot) -> PathRoot {
    match s {
        PSlot::This => PathRoot::This,
        PSlot::Param(i) => PathRoot::Param(i),
    }
}

/// Per-method static facts.
#[derive(Debug, Clone, Default)]
pub struct MethodFacts {
    /// Symbolic values per register.
    pub syms: Vec<Vec<Sym>>,
    /// Heap-edge installations `lhs ⤳ rhs` in this method's frame
    /// (callee effects included). `lhs` ends in the written field.
    pub writes: Vec<(Sym, Sym)>,
    /// The subset of [`MethodFacts::writes`] installed by a write
    /// instruction in this body itself, with a bare single-field lhs.
    /// Alias-rule derivation uses only these: composed entries replicate
    /// setter shapes through the widened call graph into unrelated
    /// methods, which would manufacture junk field-alias rules.
    pub direct_setters: Vec<(Sym, Sym)>,
    /// Slot-rooted values the return value may alias.
    pub ret_alias: Vec<Sym>,
    /// Builder exposures: `(chain below the returned value, src)` with
    /// `src` slot-rooted.
    pub returns: Vec<(Vec<PathField>, Sym)>,
    /// Allocation sites (instruction indices) whose object escapes the
    /// body: stored into the heap, passed to a call, or returned.
    pub escaped: Vec<usize>,
    /// Declared parameter count (from the entry parameter copies).
    pub arity: usize,
    /// `true` for instance methods (a `this` parameter copy exists).
    pub is_instance: bool,
}

/// The whole-program static summary: one [`MethodFacts`] per `MethodId`.
#[derive(Debug, Clone)]
pub struct Statics {
    /// Indexed like `MirProgram::methods`.
    pub methods: Vec<MethodFacts>,
    /// Sibling-field alias rewrite rules `a ↔ b` (see [`alias_rules`]):
    /// when two fields of one object may hold the same value, a path
    /// through either field names the same heap location. Summary entries
    /// are *not* materialized under these rules — callers compare chains
    /// modulo [`Statics::chain_variants`] instead, which keeps the
    /// fixpoint small and fast.
    pub alias_rules: Vec<(Vec<PathField>, Vec<PathField>)>,
}

impl Statics {
    /// All spellings of `chain` under the program's sibling-field alias
    /// rules, including `chain` itself.
    pub fn chain_variants(&self, chain: &[PathField]) -> Vec<Vec<PathField>> {
        chain_variants(chain, &self.alias_rules)
    }

    /// Methods a virtual call with `argc` arguments may dispatch to: every
    /// instance body of that arity (MIR carries no method names, so shape
    /// is the widest sound resolution; see module docs).
    pub fn virtual_targets(&self, argc: usize) -> impl Iterator<Item = usize> + '_ {
        self.methods
            .iter()
            .enumerate()
            .filter(move |(_, f)| f.is_instance && f.arity == argc)
            .map(|(i, _)| i)
    }
}

/// Resolved dispatch targets of one call instruction, or `None` for
/// non-call instructions.
pub fn call_targets(statics: &Statics, kind: &InstrKind) -> Option<Vec<usize>> {
    match kind {
        InstrKind::Call { method, args, .. } => {
            let mut ts: Vec<usize> = statics.virtual_targets(args.len()).collect();
            if !ts.contains(&method.index()) {
                ts.push(method.index());
            }
            Some(ts)
        }
        InstrKind::CallExact { method, .. } | InstrKind::CallStatic { method, .. } => {
            Some(vec![method.index()])
        }
        _ => None,
    }
}

/// The registers feeding a call's parameter slots: `(recv, args)`.
pub fn call_operands(kind: &InstrKind) -> Option<(Option<VarId>, &[VarId])> {
    match kind {
        InstrKind::Call { recv, args, .. } | InstrKind::CallExact { recv, args, .. } => {
            Some((Some(*recv), args))
        }
        InstrKind::CallStatic { args, .. } => Some((None, args)),
        _ => None,
    }
}

fn add_sym(set: &mut Vec<Sym>, s: Sym) -> bool {
    if set.len() >= MAX_SYMS || set.contains(&s) {
        return false;
    }
    set.push(s);
    true
}

/// Computes the whole-program summary to a fixpoint.
pub fn analyze(mir: &MirProgram) -> Statics {
    let mut statics = Statics {
        methods: mir
            .methods
            .iter()
            .map(|b| {
                let copies = b.param_copies();
                MethodFacts {
                    syms: vec![Vec::new(); b.vars.len()],
                    arity: copies
                        .iter()
                        .filter(|(s, _)| matches!(s, PSlot::Param(_)))
                        .count(),
                    is_instance: copies.iter().any(|(s, _)| matches!(s, PSlot::This)),
                    ..MethodFacts::default()
                }
            })
            .collect(),
        alias_rules: Vec::new(),
    };

    // Round-robin the bodies until nothing grows. Every set is monotone
    // and bounded, so this terminates; the cap is a safety net.
    for _round in 0..64 {
        let mut grew = false;
        for (m, body) in mir.methods.iter().enumerate() {
            grew |= flow_body(m, body, &mut statics);
            grew |= summarize_body(m, body, &mut statics);
        }
        if !grew {
            break;
        }
    }

    // Sibling-field aliasing is resolved *after* the fixpoint and kept as
    // rewrite rules rather than materialized into the summary sets: when
    // two fields of one object may hold the same value (`this.c = backing;
    // this.mutex = lockOn;` called with one object for both), the dynamic
    // analyzer may name a path through either field, so superset queries
    // must compare chains modulo [`Statics::chain_variants`]. Closing the
    // sets themselves would feed the doubled entries back into call-site
    // composition and blow every summary to its cap.
    statics.alias_rules = alias_rules(mir, &statics);

    for (m, body) in mir.methods.iter().enumerate() {
        let escaped = escaping_allocs(body, &statics.methods[m].syms);
        statics.methods[m].escaped = escaped;
    }
    statics
}

/// One flow-insensitive pass of symbolic propagation over `body`,
/// returning whether any register set grew.
fn flow_body(m: usize, body: &Body, statics: &mut Statics) -> bool {
    let mut grew = false;
    // Seed: the explicit entry copies `I_x := local` identify which local
    // carries which parameter slot; seed both sides so propagation covers
    // uses of the local and of the `I` copy alike.
    for instr in &body.instrs {
        if let InstrKind::Copy { dst, src } = instr.kind {
            if let narada_lang::mir::VarKind::ParamCopy(slot) = body.vars[dst.index()].kind {
                let s = Sym::slot(slot);
                let set = &mut statics.methods[m].syms;
                grew |= add_sym(&mut set[src.index()], s.clone());
                grew |= add_sym(&mut set[dst.index()], s);
            }
        }
    }

    loop {
        let mut local_grew = false;
        for (i, instr) in body.instrs.iter().enumerate() {
            match &instr.kind {
                InstrKind::Copy { dst, src } => {
                    let from = statics.methods[m].syms[src.index()].clone();
                    let set = &mut statics.methods[m].syms[dst.index()];
                    for s in from {
                        local_grew |= add_sym(set, s);
                    }
                }
                InstrKind::ReadField { dst, obj, field } => {
                    let from = statics.methods[m].syms[obj.index()].clone();
                    let set = &mut statics.methods[m].syms[dst.index()];
                    for s in from {
                        if let Some(c) = s.child(PathField::Field(*field)) {
                            local_grew |= add_sym(set, c);
                        }
                    }
                }
                InstrKind::ReadIndex { dst, arr, .. } => {
                    let from = statics.methods[m].syms[arr.index()].clone();
                    let set = &mut statics.methods[m].syms[dst.index()];
                    for s in from {
                        if let Some(c) = s.child(PathField::Elem) {
                            local_grew |= add_sym(set, c);
                        }
                    }
                }
                InstrKind::AllocObj { dst, .. } | InstrKind::NewArray { dst, .. } => {
                    let set = &mut statics.methods[m].syms[dst.index()];
                    local_grew |= add_sym(
                        set,
                        Sym {
                            root: SymRoot::Fresh(i),
                            chain: Vec::new(),
                        },
                    );
                }
                kind => {
                    // Call results: pull the callee's return aliases
                    // through the argument bindings.
                    let (dst, targets) = match (kind, call_targets(statics, kind)) {
                        (
                            InstrKind::Call { dst: Some(d), .. }
                            | InstrKind::CallExact { dst: Some(d), .. }
                            | InstrKind::CallStatic { dst: Some(d), .. },
                            Some(ts),
                        ) => (*d, ts),
                        _ => continue,
                    };
                    let (recv, args) = call_operands(kind).expect("call has operands");
                    let args = args.to_vec();
                    let mut incoming: Vec<Sym> = Vec::new();
                    for t in targets {
                        let aliases = statics.methods[t].ret_alias.clone();
                        for alias in aliases {
                            let SymRoot::Slot(root) = alias.root else {
                                continue;
                            };
                            for base in translate_slot(statics, m, root, recv, &args) {
                                if let Some(s) = base.extend(&alias.chain) {
                                    incoming.push(s);
                                }
                            }
                        }
                    }
                    let set = &mut statics.methods[m].syms[dst.index()];
                    for s in incoming {
                        local_grew |= add_sym(set, s);
                    }
                }
            }
        }
        grew |= local_grew;
        if !local_grew {
            break;
        }
    }
    grew
}

/// The caller-frame symbolic values feeding a callee's parameter slot.
fn translate_slot(
    statics: &Statics,
    m: usize,
    root: PathRoot,
    recv: Option<VarId>,
    args: &[VarId],
) -> Vec<Sym> {
    let reg = match root {
        PathRoot::This => recv,
        PathRoot::Param(i) => args.get(i).copied(),
        PathRoot::Ret => None,
    };
    match reg {
        Some(r) => statics.methods[m].syms[r.index()].clone(),
        None => Vec::new(),
    }
}

fn add_entry<T: PartialEq>(set: &mut Vec<T>, e: T) -> bool {
    if set.len() >= MAX_ENTRIES || set.contains(&e) {
        return false;
    }
    set.push(e);
    true
}

/// Rebuilds the write/return summaries of one body from the current
/// register facts (plus callee summaries), returning whether anything new
/// appeared.
fn summarize_body(m: usize, body: &Body, statics: &mut Statics) -> bool {
    let mut grew = false;

    // Direct and composed heap edges. A hash-set view of the current
    // entries keeps dedup O(1); the candidate cross-products get large
    // under the widened call graph.
    let mut write_set: std::collections::HashSet<(Sym, Sym)> =
        statics.methods[m].writes.iter().cloned().collect();
    let mut new_writes: Vec<(Sym, Sym)> = Vec::new();
    let mut direct: Vec<(Sym, Sym)> = Vec::new();
    let push = |write_set: &mut std::collections::HashSet<(Sym, Sym)>,
                new_writes: &mut Vec<(Sym, Sym)>,
                e: (Sym, Sym)| {
        if write_set.len() < MAX_ENTRIES && write_set.insert(e.clone()) {
            new_writes.push(e);
        }
    };
    for instr in &body.instrs {
        match &instr.kind {
            InstrKind::WriteField { obj, field, src } => {
                for so in &statics.methods[m].syms[obj.index()] {
                    let Some(lhs) = so.child(PathField::Field(*field)) else {
                        continue;
                    };
                    for ss in &statics.methods[m].syms[src.index()] {
                        if matches!(lhs.root, SymRoot::Slot(_)) && lhs.chain.len() == 1 {
                            direct.push((lhs.clone(), ss.clone()));
                        }
                        push(&mut write_set, &mut new_writes, (lhs.clone(), ss.clone()));
                    }
                }
            }
            InstrKind::WriteIndex { arr, src, .. } => {
                for so in &statics.methods[m].syms[arr.index()] {
                    let Some(lhs) = so.child(PathField::Elem) else {
                        continue;
                    };
                    for ss in &statics.methods[m].syms[src.index()] {
                        push(&mut write_set, &mut new_writes, (lhs.clone(), ss.clone()));
                    }
                }
            }
            kind => {
                let Some(targets) = call_targets(statics, kind) else {
                    continue;
                };
                let (recv, args) = call_operands(kind).expect("call has operands");
                let args = args.to_vec();
                for t in targets {
                    let callee_writes = statics.methods[t].writes.clone();
                    for (l, r) in callee_writes {
                        let (SymRoot::Slot(lr), SymRoot::Slot(rr)) = (l.root, r.root) else {
                            continue;
                        };
                        for lb in translate_slot(statics, m, lr, recv, &args) {
                            let Some(lhs) = lb.extend(&l.chain) else {
                                continue;
                            };
                            for rb in translate_slot(statics, m, rr, recv, &args) {
                                if let Some(rhs) = rb.extend(&r.chain) {
                                    push(&mut write_set, &mut new_writes, (lhs.clone(), rhs));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    if !new_writes.is_empty() {
        grew = true;
        statics.methods[m].writes.extend(new_writes);
    }
    for e in direct {
        grew |= add_entry(&mut statics.methods[m].direct_setters, e);
    }

    // Return aliases.
    let mut new_aliases: Vec<Sym> = Vec::new();
    let mut returned: Vec<Sym> = Vec::new();
    for instr in &body.instrs {
        if let InstrKind::Return { val: Some(v) } = instr.kind {
            for s in &statics.methods[m].syms[v.index()] {
                returned.push(s.clone());
                if matches!(s.root, SymRoot::Slot(_)) {
                    new_aliases.push(s.clone());
                }
            }
        }
    }
    for a in new_aliases {
        grew |= add_entry(&mut statics.methods[m].ret_alias, a);
    }

    // Builder exposures: expand heap edges reachable below each returned
    // value; every slot-rooted right-hand side at chain `c` yields
    // `ret.c ⤳ src`.
    let writes = statics.methods[m].writes.clone();
    let mut exposures: Vec<(Vec<PathField>, Sym)> = Vec::new();
    let mut work: Vec<(Vec<PathField>, Sym)> =
        returned.into_iter().map(|s| (Vec::new(), s)).collect();
    let mut seen: std::collections::HashSet<(Vec<PathField>, Sym)> = work.iter().cloned().collect();
    while let Some((prefix, at)) = work.pop() {
        if prefix.len() >= MAX_CHAIN {
            continue;
        }
        for (l, r) in &writes {
            if l.root != at.root
                || !l.chain.starts_with(&at.chain)
                || l.chain.len() <= at.chain.len()
            {
                continue;
            }
            let mut ext = prefix.clone();
            ext.extend_from_slice(&l.chain[at.chain.len()..]);
            if ext.len() > MAX_CHAIN {
                continue;
            }
            if matches!(r.root, SymRoot::Slot(_)) {
                exposures.push((ext.clone(), r.clone()));
            }
            let next = (ext, r.clone());
            if seen.len() < MAX_ENTRIES && seen.insert(next.clone()) {
                work.push(next);
            }
        }
    }
    let mut ret_set: std::collections::HashSet<(Vec<PathField>, Sym)> =
        statics.methods[m].returns.iter().cloned().collect();
    for e in exposures {
        if ret_set.len() >= MAX_ENTRIES {
            break;
        }
        if ret_set.insert(e.clone()) {
            statics.methods[m].returns.push(e);
            grew = true;
        }
    }
    grew
}

/// Variant cap per chain during alias closure (alias classes are tiny in
/// practice; the cap is a blowup backstop).
const MAX_VARIANTS: usize = 32;

/// Derives subchain rewrite rules `a ↔ b` from sibling-field aliasing:
/// two bare setter writes `this.fA = <v>` / `this.fB = <v'>` in one
/// method make `fA` and `fB` interchangeable chain links whenever `v` and
/// `v'` may be the same object — either literally the same symbolic value,
/// or two parameter slots that share an incoming value at some call site
/// of the method (`new SynchronizedCollection(c, c)`).
fn alias_rules(mir: &MirProgram, statics: &Statics) -> Vec<(Vec<PathField>, Vec<PathField>)> {
    // Parameter slots of a callee that may be bound to one object.
    let mut slot_pairs: Vec<(usize, PathRoot, PathRoot)> = Vec::new();
    for (m, body) in mir.methods.iter().enumerate() {
        for instr in &body.instrs {
            let Some(targets) = call_targets(statics, &instr.kind) else {
                continue;
            };
            let Some((recv, args)) = call_operands(&instr.kind) else {
                continue;
            };
            let mut ops: Vec<(PathRoot, VarId)> = Vec::new();
            if let Some(r) = recv {
                ops.push((PathRoot::This, r));
            }
            for (i, a) in args.iter().enumerate() {
                ops.push((PathRoot::Param(i), *a));
            }
            for x in 0..ops.len() {
                for y in x + 1..ops.len() {
                    let sx = &statics.methods[m].syms[ops[x].1.index()];
                    let sy = &statics.methods[m].syms[ops[y].1.index()];
                    if !sx.iter().any(|s| sy.contains(s)) {
                        continue;
                    }
                    for &t in &targets {
                        let e = (t, ops[x].0, ops[y].0);
                        if !slot_pairs.contains(&e) {
                            slot_pairs.push(e);
                        }
                    }
                }
            }
        }
    }

    let mut rules: Vec<(Vec<PathField>, Vec<PathField>)> = Vec::new();
    for (t, f) in statics.methods.iter().enumerate() {
        // Only installs this body performs itself qualify (see
        // [`MethodFacts::direct_setters`]): the widened call graph
        // replicates setter shapes into every caller, and rules built
        // from those would alias unrelated fields program-wide.
        let setters = &f.direct_setters;
        for (i, (l1, r1)) in setters.iter().enumerate() {
            for (l2, r2) in &setters[i + 1..] {
                if l1.root != l2.root || l1.chain == l2.chain {
                    continue;
                }
                let bare_slot = |s: &Sym| match (s.chain.is_empty(), s.root) {
                    (true, SymRoot::Slot(r)) => Some(r),
                    _ => None,
                };
                let same_value = r1 == r2
                    || match (bare_slot(r1), bare_slot(r2)) {
                        (Some(ra), Some(rb)) => {
                            slot_pairs.contains(&(t, ra, rb)) || slot_pairs.contains(&(t, rb, ra))
                        }
                        _ => false,
                    };
                if !same_value {
                    continue;
                }
                let e = (l1.chain.clone(), l2.chain.clone());
                let rev = (l2.chain.clone(), l1.chain.clone());
                if !rules.contains(&e) && !rules.contains(&rev) {
                    rules.push(e);
                }
            }
        }
    }
    rules
}

/// All spellings of `chain` under the rewrite rules (including itself).
/// Register facts are deliberately *not* rewritten by callers: the
/// lockset analysis depends on their precision — a monitor register names
/// the field it concretely reads.
fn chain_variants(
    chain: &[PathField],
    rules: &[(Vec<PathField>, Vec<PathField>)],
) -> Vec<Vec<PathField>> {
    let mut out = vec![chain.to_vec()];
    let mut i = 0;
    while i < out.len() {
        let cur = out[i].clone();
        for (a, b) in rules {
            for (from, to) in [(a, b), (b, a)] {
                if from.is_empty() || cur.len() < from.len() {
                    continue;
                }
                for pos in 0..=cur.len() - from.len() {
                    if &cur[pos..pos + from.len()] != from.as_slice() {
                        continue;
                    }
                    let mut v = cur[..pos].to_vec();
                    v.extend_from_slice(to);
                    v.extend_from_slice(&cur[pos + from.len()..]);
                    if v.len() <= MAX_CHAIN && !out.contains(&v) && out.len() < MAX_VARIANTS {
                        out.push(v);
                    }
                }
            }
        }
        i += 1;
    }
    out
}

/// Allocation sites of `body` whose object escapes: stored into any heap
/// location, bound to any call parameter (including field initializers),
/// or returned.
fn escaping_allocs(body: &Body, syms: &[Vec<Sym>]) -> Vec<usize> {
    let mut escaped: Vec<usize> = Vec::new();
    let mark = |regs: &[VarId], escaped: &mut Vec<usize>| {
        for r in regs {
            for s in &syms[r.index()] {
                if let SymRoot::Fresh(site) = s.root {
                    if !escaped.contains(&site) {
                        escaped.push(site);
                    }
                }
            }
        }
    };
    for instr in &body.instrs {
        match &instr.kind {
            InstrKind::WriteField { src, .. } | InstrKind::WriteIndex { src, .. } => {
                mark(&[*src], &mut escaped)
            }
            InstrKind::Return { val: Some(v) } => mark(&[*v], &mut escaped),
            InstrKind::CallInit { obj, .. } => mark(&[*obj], &mut escaped),
            kind => {
                if let Some((recv, args)) = call_operands(kind) {
                    if let Some(r) = recv {
                        mark(&[r], &mut escaped);
                    }
                    mark(args, &mut escaped);
                }
            }
        }
    }
    escaped.sort_unstable();
    escaped
}
