//! # narada-screen — static race pre-screener
//!
//! A MIR-level lockset/escape analysis that judges each generated racing
//! pair *before* any dynamic exploration: [`screen_pairs`] returns one
//! [`StaticVerdict`] per pair — `MustNotRace { reason }` when a static
//! argument proves no synthesized context can manifest the race, or
//! `MayRace { score }` with a digest-style suspicion rank otherwise.
//!
//! Three discharge arguments apply, strongest first (DESIGN.md §5 gives
//! the full soundness case):
//!
//! 1. **owner-monitor-held** — the must-hold lockset (see [`lockset`]) of
//!    *both* accesses contains the accessed owner's own path. Racing
//!    requires the two owners to alias, so both threads would hold the
//!    same monitor — mutual exclusion, no race.
//! 2. **thread-local-owner** — one side's owner is a fresh allocation
//!    that never escapes its invocation (see
//!    [`summaries::MethodFacts::escaped`]); no other thread can reach the
//!    object it accesses.
//! 3. **no-racy-context** — a mirror of the Context Deriver's anchor
//!    search: every candidate anchor either forces the two calls onto a
//!    common lock (the deriver's own [`lock_collision`] predicate) or
//!    cannot be installed through the *statically over-approximated*
//!    setter/builder summaries (see [`summaries`]) — so the deriver can
//!    only emit a non-racing plan for this pair.
//!
//! The screener never *invents* pairs and `MayRace` promises nothing;
//! only the discharge direction carries a soundness obligation, which is
//! why every static summary over-approximates its dynamic counterpart
//! (`tests/corpus_superset.rs` checks this on C1–C9) and the
//! `screener_agreement` property in the workspace `tests/properties.rs`
//! cross-checks verdicts against actually-manifesting races.

#![warn(missing_docs)]

pub mod lockset;
pub mod summaries;

use narada_core::access::AccessRecord;
use narada_core::lock_collision;
use narada_core::pairs::PairSet;
use narada_core::path::{IPath, PathField, PathRoot};
use narada_core::screen::{ScreenReason, StaticVerdict};
use narada_lang::mir::{InstrKind, MirProgram};

use lockset::LockCtx;
use summaries::{Statics, SymRoot};

/// Mirror of `SynthesisOptions::max_setter_depth`'s default: the deriver
/// bound the mirror must respect (a *larger* static bound is sound — it
/// only weakens discharge — a smaller one is not).
const MAX_SETTER_DEPTH: usize = 4;

/// Screens every pair of `pairs`, returning one verdict per pair in pair
/// order. This is the [`narada_core::screen::ScreenerFn`] the CLI plugs
/// into `synthesize_with`.
pub fn screen_pairs(mir: &MirProgram, pairs: &PairSet) -> Vec<StaticVerdict> {
    screen_pairs_with(&summaries::analyze(mir), mir, pairs)
}

/// [`screen_pairs`] over a pre-built whole-program summary — the
/// screener's artifact-cache entry point: [`summaries::analyze`] is the
/// fixpoint that dominates screening cost and depends only on the MIR,
/// so a warm cache (`narada serve`) computes it once per program digest
/// and closes a [`narada_core::screen::ScreenerFn`] over it. `statics`
/// must be `analyze(mir)` for this same `mir`; verdicts are then
/// byte-identical to the cold path.
pub fn screen_pairs_with(
    statics: &Statics,
    mir: &MirProgram,
    pairs: &PairSet,
) -> Vec<StaticVerdict> {
    let shapes = Shapes::collect(statics);
    let lock_ctx = LockCtx::new(mir, statics);
    // Per-access facts, computed once (pairs share accesses heavily).
    let facts: Vec<AccessFacts> = pairs
        .accesses
        .iter()
        .map(|a| AccessFacts::compute(mir, statics, &lock_ctx, a))
        .collect();
    pairs
        .pairs
        .iter()
        .map(|pair| {
            let (x, y) = pairs.accesses_of(pair);
            verdict(x, y, &facts[pair.a1], &facts[pair.a2], &shapes)
        })
        .collect()
}

/// The global setter/builder shape sets the installability mirror queries
/// (the deriver searches summaries program-wide, so existence is global).
struct Shapes {
    /// `lhs ⤳ rhs` with both sides slot-rooted, as client paths.
    setters: Vec<(IPath, IPath)>,
    /// Builder exposures: `(chain below returned value, src path)`.
    builders: Vec<(Vec<PathField>, IPath)>,
    /// Memoized [`Shapes::setter_installable`] results: the anchor walks
    /// of different pairs re-query the same short chains constantly.
    cache: std::cell::RefCell<std::collections::HashMap<(Vec<PathField>, usize), bool>>,
}

impl Shapes {
    fn collect(statics: &Statics) -> Shapes {
        // Every alias spelling of every summary entry is admitted
        // (`Statics::chain_variants`): the dynamic analyzer may name a
        // setter or builder through whichever sibling field aliases the
        // object, and installability must over-approximate what the
        // deriver can do with those dynamic summaries.
        let mut setters = std::collections::HashSet::new();
        let mut builders = std::collections::HashSet::new();
        for f in &statics.methods {
            for (l, r) in &f.writes {
                if let (Some(lhs), Some(rhs)) = (l.as_path(), r.as_path()) {
                    for lc in statics.chain_variants(&lhs.fields) {
                        for rc in statics.chain_variants(&rhs.fields) {
                            setters.insert((
                                IPath {
                                    root: lhs.root,
                                    fields: lc.clone(),
                                },
                                IPath {
                                    root: rhs.root,
                                    fields: rc,
                                },
                            ));
                        }
                    }
                }
            }
            for (chain, src) in &f.returns {
                if let Some(src) = src.as_path() {
                    for cc in statics.chain_variants(chain) {
                        for sc in statics.chain_variants(&src.fields) {
                            builders.insert((
                                cc.clone(),
                                IPath {
                                    root: src.root,
                                    fields: sc,
                                },
                            ));
                        }
                    }
                }
            }
        }
        let mut setters: Vec<_> = setters.into_iter().collect();
        let mut builders: Vec<_> = builders.into_iter().collect();
        setters.sort();
        builders.sort();
        Shapes {
            setters,
            builders,
            cache: Default::default(),
        }
    }

    /// Mirror of `Deriver::derive_setters_impl` + `derive_builder_impl`
    /// existence, with types ignored (an over-approximation: anything the
    /// deriver can install, this returns `true` for).
    fn installable(&self, chain: &[PathField]) -> bool {
        self.setter_installable(chain, 0) || self.builder_exists(chain)
    }

    fn setter_installable(&self, chain: &[PathField], depth: usize) -> bool {
        if depth > MAX_SETTER_DEPTH || chain.is_empty() {
            return false;
        }
        if chain.iter().any(|pf| matches!(pf, PathField::Elem)) {
            return false;
        }
        let key = (chain.to_vec(), depth);
        if let Some(&hit) = self.cache.borrow().get(&key) {
            return hit;
        }
        let result = self.setter_installable_uncached(chain, depth);
        self.cache.borrow_mut().insert(key, result);
        result
    }

    fn setter_installable_uncached(&self, chain: &[PathField], depth: usize) -> bool {
        // deep-set / set: one summary assigns the whole chain.
        for (lhs, rhs) in &self.setters {
            if lhs.root != PathRoot::This
                || lhs.fields != chain
                || !matches!(rhs.root, PathRoot::Param(_))
            {
                continue;
            }
            if rhs.fields.is_empty() || self.setter_installable(&rhs.fields, depth + 1) {
                return true;
            }
        }
        // concat: bare-param setter for the head, then the tail on the
        // intermediate object.
        if chain.len() >= 2 {
            let head_ok = self.setters.iter().any(|(lhs, rhs)| {
                lhs.root == PathRoot::This
                    && lhs.fields == chain[..1]
                    && rhs.fields.is_empty()
                    && matches!(rhs.root, PathRoot::Param(_))
            });
            if head_ok && self.setter_installable(&chain[1..], depth + 1) {
                return true;
            }
        }
        false
    }

    fn builder_exists(&self, chain: &[PathField]) -> bool {
        self.builders.iter().any(|(c, src)| {
            c == chain && src.fields.is_empty() && matches!(src.root, PathRoot::Param(_))
        })
    }
}

/// Per-access static facts shared by all pairs touching the access.
struct AccessFacts {
    /// Client-relative must-hold lockset at the access (`None` = site not
    /// located statically, no information).
    must_locks: Option<Vec<IPath>>,
    /// The accessed owner provably never escapes its invocation.
    thread_local_owner: bool,
    /// The access's client method can anchor at this root (mirror of the
    /// deriver's `root_ref`/`root_type`).
    root_ok: RootOk,
}

#[derive(Clone, Copy)]
struct RootOk {
    is_instance: bool,
    arity: usize,
}

impl RootOk {
    fn ok(&self, root: PathRoot) -> bool {
        match root {
            PathRoot::This => self.is_instance,
            PathRoot::Param(i) => i < self.arity,
            PathRoot::Ret => false,
        }
    }
}

/// Does this instruction perform the access `(leaf, is_write)`?
fn access_matcher(leaf: PathField, is_write: bool) -> impl Fn(&InstrKind) -> bool {
    move |kind: &InstrKind| match (leaf, is_write, kind) {
        (PathField::Field(f), true, InstrKind::WriteField { field, .. }) => *field == f,
        (PathField::Field(f), false, InstrKind::ReadField { field, .. }) => *field == f,
        (PathField::Elem, true, InstrKind::WriteIndex { .. }) => true,
        (PathField::Elem, false, InstrKind::ReadIndex { .. }) => true,
        _ => false,
    }
}

/// The owner register of a matching access instruction.
fn owner_reg(kind: &InstrKind) -> Option<narada_lang::mir::VarId> {
    match kind {
        InstrKind::WriteField { obj, .. } | InstrKind::ReadField { obj, .. } => Some(*obj),
        InstrKind::WriteIndex { arr, .. } | InstrKind::ReadIndex { arr, .. } => Some(*arr),
        _ => None,
    }
}

impl AccessFacts {
    fn compute(
        mir: &MirProgram,
        statics: &Statics,
        lock_ctx: &LockCtx<'_>,
        acc: &AccessRecord,
    ) -> AccessFacts {
        let m = acc.method.index();
        let matcher = access_matcher(acc.leaf, acc.is_write);
        let must_locks = lock_ctx.must_locks_at(m, acc.span, &matcher);

        // Thread-locality: only claimed when the access site sits in the
        // client method's own body and every symbolic owner is a fresh,
        // never-escaping allocation of that body.
        let facts = &statics.methods[m];
        let mut sites = 0usize;
        let mut all_local = true;
        for instr in &mir.methods[m].instrs {
            if instr.span != acc.span || !matcher(&instr.kind) {
                continue;
            }
            sites += 1;
            let local = owner_reg(&instr.kind).is_some_and(|r| {
                let syms = &facts.syms[r.index()];
                !syms.is_empty()
                    && syms.iter().all(|s| match s.root {
                        SymRoot::Fresh(site) => {
                            s.chain.is_empty() && !facts.escaped.contains(&site)
                        }
                        SymRoot::Slot(_) => false,
                    })
            });
            all_local &= local;
        }
        let thread_local_owner = sites > 0 && all_local;

        AccessFacts {
            must_locks,
            thread_local_owner,
            root_ok: RootOk {
                is_instance: facts.is_instance,
                arity: facts.arity,
            },
        }
    }
}

fn verdict(
    x: &AccessRecord,
    y: &AccessRecord,
    fx: &AccessFacts,
    fy: &AccessFacts,
    shapes: &Shapes,
) -> StaticVerdict {
    let owner = |a: &AccessRecord| -> Option<IPath> {
        a.path.as_ref().and_then(|p| p.split_last()).map(|(o, _)| o)
    };
    let o1 = owner(x);
    let o2 = owner(y);

    // 1. Owner monitor held on both sides: racing owners must alias, so
    //    both threads would hold the same monitor.
    let owner_locked = |o: &Option<IPath>, f: &AccessFacts| -> bool {
        match (o, &f.must_locks) {
            (Some(o), Some(ls)) => ls.contains(o),
            _ => false,
        }
    };
    if owner_locked(&o1, fx) && owner_locked(&o2, fy) {
        return StaticVerdict::MustNotRace {
            reason: ScreenReason::OwnerMonitorHeld,
        };
    }

    // 2. A thread-local owner on either side: no second thread can reach
    //    the accessed object at all.
    if fx.thread_local_owner || fy.thread_local_owner {
        return StaticVerdict::MustNotRace {
            reason: ScreenReason::ThreadLocalOwner,
        };
    }

    // 3. Mirror of the deriver's primary anchor loop.
    let mut bare_anchor = false;
    if let (Some(o1), Some(o2)) = (&o1, &o2) {
        let mut any_sharable = false;
        for s in 0..=o1.common_suffix_len(o2) {
            let q1 = o1.drop_suffix(s);
            let q2 = o2.drop_suffix(s);
            if lock_collision(&x.locks, &y.locks, &q1, &q2) {
                continue;
            }
            if !sharable(&q1, &q2, fx, fy, shapes) {
                continue;
            }
            any_sharable = true;
            bare_anchor |= q1.fields.is_empty() && q2.fields.is_empty();
        }
        if !any_sharable {
            return StaticVerdict::MustNotRace {
                reason: ScreenReason::NoRacyContext,
            };
        }
    }

    StaticVerdict::MayRace {
        score: score(x, y, fx, fy, bare_anchor),
    }
}

/// Mirror of `Deriver::build_sharing` existence: can a shared object be
/// installed at `q1` of side 1's root and `q2` of side 2's root? Static
/// installability over-approximates the deriver's, so `false` here means
/// the deriver fails too.
fn sharable(q1: &IPath, q2: &IPath, fx: &AccessFacts, fy: &AccessFacts, shapes: &Shapes) -> bool {
    if !fx.root_ok.ok(q1.root) || !fy.root_ok.ok(q2.root) {
        return false;
    }
    let need1 = !q1.fields.is_empty();
    let need2 = !q2.fields.is_empty();
    (!need1 || shapes.installable(&q1.fields)) && (!need2 || shapes.installable(&q2.fields))
}

/// Digest-style suspicion score for an undischarged pair. Components:
/// write/write conflicts outrank write/read, dynamically-unprotected
/// sides outrank protected ones, statically lock-free sides add
/// certainty, and a bare-root anchor (the racy objects themselves are
/// handed to both threads, no installation needed) is easiest to poise.
fn score(
    x: &AccessRecord,
    y: &AccessRecord,
    fx: &AccessFacts,
    fy: &AccessFacts,
    bare_anchor: bool,
) -> u32 {
    let mut score = 1;
    score += match (x.is_write, y.is_write) {
        (true, true) => 40,
        _ => 20,
    };
    score += match (x.unprotected, y.unprotected) {
        (true, true) => 30,
        (true, false) | (false, true) => 15,
        (false, false) => 0,
    };
    let lock_free = |f: &AccessFacts| matches!(&f.must_locks, Some(ls) if ls.is_empty());
    score += match (lock_free(fx), lock_free(fy)) {
        (true, true) => 20,
        (true, false) | (false, true) => 10,
        (false, false) => 0,
    };
    if bare_anchor {
        score += 10;
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;
    use narada_lang::hir::FieldId;

    fn fields(ids: &[u32]) -> Vec<PathField> {
        ids.iter().map(|&f| PathField::Field(FieldId(f))).collect()
    }

    fn shapes(setters: Vec<(IPath, IPath)>, builders: Vec<(Vec<PathField>, IPath)>) -> Shapes {
        Shapes {
            setters,
            builders,
            cache: Default::default(),
        }
    }

    #[test]
    fn direct_setter_installs_its_chain() {
        let s = shapes(
            vec![(
                IPath {
                    root: PathRoot::This,
                    fields: fields(&[1]),
                },
                IPath::param(0),
            )],
            vec![],
        );
        assert!(s.installable(&fields(&[1])));
        assert!(!s.installable(&fields(&[2])));
        assert!(!s.installable(&fields(&[])));
    }

    #[test]
    fn elem_chains_are_never_setter_installable() {
        let s = shapes(
            vec![(
                IPath {
                    root: PathRoot::This,
                    fields: vec![PathField::Elem],
                },
                IPath::param(0),
            )],
            vec![],
        );
        assert!(!s.installable(&[PathField::Elem]));
    }

    #[test]
    fn concat_composes_head_and_tail() {
        // set(x): this.f = x;  setg(x): this.g = x  →  f.g installable.
        let s = shapes(
            vec![
                (
                    IPath {
                        root: PathRoot::This,
                        fields: fields(&[1]),
                    },
                    IPath::param(0),
                ),
                (
                    IPath {
                        root: PathRoot::This,
                        fields: fields(&[2]),
                    },
                    IPath::param(0),
                ),
            ],
            vec![],
        );
        assert!(s.installable(&fields(&[1, 2])));
        assert!(
            !s.installable(&fields(&[2, 1, 1, 1, 1, 1])),
            "depth-bounded"
        );
    }

    #[test]
    fn recursive_rhs_requires_its_own_setter() {
        // setter this.f ⤳ p0.g: installable only if .g itself is.
        let deep = shapes(
            vec![(
                IPath {
                    root: PathRoot::This,
                    fields: fields(&[1]),
                },
                IPath {
                    root: PathRoot::Param(0),
                    fields: fields(&[2]),
                },
            )],
            vec![],
        );
        assert!(!deep.installable(&fields(&[1])), "no setter for .g");
        let with_g = shapes(
            vec![
                (
                    IPath {
                        root: PathRoot::This,
                        fields: fields(&[1]),
                    },
                    IPath {
                        root: PathRoot::Param(0),
                        fields: fields(&[2]),
                    },
                ),
                (
                    IPath {
                        root: PathRoot::This,
                        fields: fields(&[2]),
                    },
                    IPath::param(1),
                ),
            ],
            vec![],
        );
        assert!(with_g.installable(&fields(&[1])));
    }

    #[test]
    fn builder_route_installs_without_setters() {
        let s = shapes(vec![], vec![(fields(&[3]), IPath::param(0))]);
        assert!(s.installable(&fields(&[3])));
        assert!(!s.installable(&fields(&[4])));
    }

    #[test]
    fn non_param_lhs_or_rhs_shapes_are_ignored() {
        // Param-rooted lhs and This-rooted rhs mirror summaries the
        // deriver filters out.
        let s = shapes(
            vec![
                (
                    IPath::param(0).child(PathField::Field(FieldId(1))),
                    IPath::param(1),
                ),
                (
                    IPath {
                        root: PathRoot::This,
                        fields: fields(&[2]),
                    },
                    IPath::this(),
                ),
            ],
            vec![],
        );
        assert!(!s.installable(&fields(&[1])));
        assert!(!s.installable(&fields(&[2])));
    }
}
